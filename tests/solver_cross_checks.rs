//! Cross-validation of the solvers against brute force on tiny instances:
//! the CP solver must agree with exhaustive enumeration, and the platform
//! simulator must stay feasible under every allocator.

use cpo_iaas::cpsolve::prelude::*;
use cpo_iaas::model::attr::AttrSet;
use cpo_iaas::platform::prelude::*;
use cpo_iaas::prelude::*;
use cpo_iaas::scenario::request_gen::RequestSpec;

/// Exhaustively enumerate all m^n assignments of a tiny problem.
fn brute_force_feasible(problem: &AllocationProblem) -> Vec<Vec<usize>> {
    let (m, n) = (problem.m(), problem.n());
    let mut out = Vec::new();
    let total = m.pow(n as u32);
    for code in 0..total {
        let mut genes = Vec::with_capacity(n);
        let mut c = code;
        for _ in 0..n {
            genes.push(c % m);
            c /= m;
        }
        if problem.is_feasible(&Assignment::from_genes(&genes)) {
            out.push(genes);
        }
    }
    out
}

fn tiny_problem(seed: u64) -> AllocationProblem {
    let profile = ServerProfile::commodity(3);
    let infra = Infrastructure::new(
        AttrSet::standard(),
        vec![
            ("dc0".into(), profile.build_many(2)),
            ("dc1".into(), profile.build_many(1)),
        ],
    );
    let mut batch = RequestBatch::new();
    // Deterministic pseudo-random small batch with one rule.
    let kinds = [
        AffinityKind::SameServer,
        AffinityKind::SameDatacenter,
        AffinityKind::DifferentServer,
        AffinityKind::DifferentDatacenter,
    ];
    let kind = kinds[(seed % 4) as usize];
    let cpu = 4.0 + (seed % 3) as f64 * 6.0;
    batch.push_request(
        vec![vm_spec(cpu, 2048.0, 20.0); 2],
        vec![AffinityRule::new(kind, vec![VmId(0), VmId(1)])],
    );
    batch.push_request(vec![vm_spec(8.0, 4096.0, 40.0)], vec![]);
    AllocationProblem::new(infra, batch, None)
}

#[test]
fn cp_allocator_agrees_with_brute_force_on_feasibility() {
    for seed in 0..12 {
        let problem = tiny_problem(seed);
        let feasible = brute_force_feasible(&problem);
        let outcome = CpAllocator::default().allocate(&problem);
        if feasible.is_empty() {
            assert!(
                !outcome.rejected.is_empty(),
                "seed {seed}: brute force says infeasible, CP accepted everything"
            );
        } else {
            // CP admits per request in order; when a global solution exists
            // it must find one (requests here don't interact via rules).
            assert_eq!(
                outcome.rejected.len(),
                0,
                "seed {seed}: feasible per brute force but CP rejected {:?}",
                outcome.rejected
            );
            assert!(problem.is_feasible(&outcome.assignment), "seed {seed}");
        }
    }
}

#[test]
fn cp_optimize_matches_brute_force_minimum_cost() {
    // Pure packing (no rules): B&B over marginal cost must match the
    // exhaustive minimum of the usage+opex objective.
    let profile = ServerProfile::commodity(3);
    for seed in 0..8u64 {
        let infra = Infrastructure::new(
            AttrSet::standard(),
            vec![("dc".into(), profile.build_many(3))],
        );
        let mut batch = RequestBatch::new();
        for i in 0..3 {
            let cpu = 2.0 + ((seed + i) % 5) as f64 * 2.0;
            batch.push_request(vec![vm_spec(cpu, 1024.0, 10.0)], vec![]);
        }
        let problem = AllocationProblem::new(infra, batch, None);
        let feasible = brute_force_feasible(&problem);
        let best_cost = feasible
            .iter()
            .map(|g| problem.evaluate(&Assignment::from_genes(g)).usage_opex)
            .fold(f64::INFINITY, f64::min);
        let outcome = CpAllocator::default().allocate(&problem);
        // Sequential admission cannot always reach the global optimum, but
        // on single-VM requests with identical servers it can and must.
        assert!(
            outcome.provider_cost() <= best_cost + 1e-6,
            "seed {seed}: CP cost {} vs brute-force optimum {best_cost}",
            outcome.provider_cost()
        );
    }
}

#[test]
fn csp_solver_enumeration_matches_brute_force() {
    // A raw CSP: 3 vars, 3 values, one all-different + one pack.
    for cap in [6.0, 10.0, 30.0] {
        let mut csp = Csp::new(3, 3);
        csp.add(Box::new(AllDifferent {
            vars: vec![VarId(0), VarId(1)],
        }));
        csp.add(Box::new(Pack::new(
            vec![VarId(0), VarId(1), VarId(2)],
            vec![vec![4.0], vec![5.0], vec![6.0]],
            vec![vec![cap]; 3],
        )));
        let (outcome, _) = solve(&mut csp, &SearchConfig::default());
        // Brute force.
        let mut any = false;
        for a in 0..3 {
            for b in 0..3 {
                for c in 0..3 {
                    if a == b {
                        continue;
                    }
                    let mut load = [0.0; 3];
                    load[a] += 4.0;
                    load[b] += 5.0;
                    load[c] += 6.0;
                    if load.iter().all(|&l| l <= cap) {
                        any = true;
                    }
                }
            }
        }
        assert_eq!(
            outcome.solution().is_some(),
            any,
            "cap {cap}: solver and brute force disagree"
        );
    }
}

/// Enumerate all m^n complete assignments and keep those the ILP
/// formulation accepts, with their objective values.
fn ilp_enumeration(problem: &AllocationProblem) -> Vec<(Vec<usize>, f64)> {
    let ilp = cpo_iaas::model::ilp::IlpFormulation::from_problem(problem);
    let (m, n) = (problem.m(), problem.n());
    let mut out = Vec::new();
    for code in 0..m.pow(n as u32) {
        let mut genes = Vec::with_capacity(n);
        let mut c = code;
        for _ in 0..n {
            genes.push(c % m);
            c /= m;
        }
        let solution = ilp.solution_of(&Assignment::from_genes(&genes));
        if ilp.is_feasible(&solution) {
            let cost = ilp.objective_value(&solution);
            out.push((genes, cost));
        }
    }
    out
}

#[test]
fn cp_allocator_matches_ilp_enumeration_under_both_engines() {
    // Satellite check for the engine swap: on tiny scenarios the CP
    // allocator's feasibility verdict must match exhaustive enumeration
    // through the explicit ILP formulation, and any accepted assignment
    // must itself be ILP-feasible — identically under the queued and the
    // reference engine.
    for engine in [Engine::Queued, Engine::Reference] {
        for seed in 0..12u64 {
            let problem = tiny_problem(seed);
            let feasible = ilp_enumeration(&problem);
            let allocator = CpAllocator {
                engine,
                ..CpAllocator::default()
            };
            let outcome = allocator.allocate(&problem);
            if feasible.is_empty() {
                assert!(
                    !outcome.rejected.is_empty(),
                    "seed {seed} ({engine:?}): ILP says infeasible, CP accepted everything"
                );
            } else {
                assert!(
                    outcome.rejected.is_empty(),
                    "seed {seed} ({engine:?}): ILP-feasible but CP rejected {:?}",
                    outcome.rejected
                );
                let ilp = cpo_iaas::model::ilp::IlpFormulation::from_problem(&problem);
                let solution = ilp.solution_of(&outcome.assignment);
                assert!(
                    ilp.is_feasible(&solution),
                    "seed {seed} ({engine:?}): CP answer violates the ILP rows"
                );
            }
        }
    }
}

#[test]
fn cp_optimal_cost_matches_ilp_enumeration_under_both_engines() {
    // Single-VM requests on identical servers: sequential CP admission can
    // and must reach the global ILP optimum, engine-independently.
    let profile = ServerProfile::commodity(3);
    for engine in [Engine::Queued, Engine::Reference] {
        for seed in 0..8u64 {
            let infra = Infrastructure::new(
                AttrSet::standard(),
                vec![("dc".into(), profile.build_many(3))],
            );
            let mut batch = RequestBatch::new();
            for i in 0..3 {
                let cpu = 2.0 + ((seed + i) % 5) as f64 * 2.0;
                batch.push_request(vec![vm_spec(cpu, 1024.0, 10.0)], vec![]);
            }
            let problem = AllocationProblem::new(infra, batch, None);
            let feasible = ilp_enumeration(&problem);
            let ilp_best = feasible
                .iter()
                .map(|(_, c)| *c)
                .fold(f64::INFINITY, f64::min);
            assert!(ilp_best.is_finite(), "seed {seed}: tiny instance must fit");
            let allocator = CpAllocator {
                engine,
                ..CpAllocator::default()
            };
            let outcome = allocator.allocate(&problem);
            let ilp = cpo_iaas::model::ilp::IlpFormulation::from_problem(&problem);
            let cp_cost = ilp.objective_value(&ilp.solution_of(&outcome.assignment));
            assert!(
                cp_cost <= ilp_best + 1e-6,
                "seed {seed} ({engine:?}): CP cost {cp_cost} vs ILP optimum {ilp_best}"
            );
        }
    }
}

#[test]
fn platform_stays_feasible_under_every_allocator() {
    let mk_infra = || {
        Infrastructure::new(
            AttrSet::standard(),
            vec![("dc".into(), ServerProfile::commodity(3).build_many(6))],
        )
    };
    let config = SimConfig {
        arrivals: RequestSpec {
            total_vms: 8,
            ..Default::default()
        },
        lifetime: (2, 4),
        seed: 5,
        ..Default::default()
    };
    let allocators: Vec<Box<dyn Allocator>> = vec![
        Box::new(RoundRobinAllocator),
        Box::new(CpAllocator::default()),
        Box::new(EvoAllocator::nsga3_tabu(NsgaConfig {
            population_size: 16,
            max_evaluations: 400,
            ..NsgaConfig::paper_defaults(Variant::Nsga3)
        })),
    ];
    for allocator in &allocators {
        let mut sim = PlatformSim::new(mk_infra(), config.clone());
        for _ in 0..5 {
            sim.step(allocator.as_ref());
            let report = sim.verify_state();
            assert!(
                report.is_feasible(),
                "platform corrupted under {}: {report:?}",
                allocator.name()
            );
        }
    }
}

#[test]
fn moea_engine_improves_over_random_on_allocation() {
    use cpo_iaas::core::prelude::AllocMoeaProblem;
    use cpo_iaas::moea::prelude::*;

    let size = ScenarioSize::with_servers(8);
    let problem = ScenarioSpec::for_size(&size).generate(13);
    let adapter = AllocMoeaProblem::new(&problem);

    let cfg = NsgaConfig {
        population_size: 24,
        max_evaluations: 1_200,
        parallel_eval: false,
        ..NsgaConfig::paper_defaults(Variant::Nsga3)
    };
    let result = run(&adapter, &cfg, None);
    let first = &result.history[0];
    let last = result.history.last().unwrap();
    let improved_feasibility = last.feasible >= first.feasible;
    let improved_cost = match (first.best_feasible_total, last.best_feasible_total) {
        (Some(a), Some(b)) => b <= a + 1e-9,
        (None, Some(_)) => true,
        _ => false,
    };
    assert!(
        improved_feasibility || improved_cost,
        "evolution made no progress: {first:?} -> {last:?}"
    );
}
