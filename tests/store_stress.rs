//! Deterministic-permutation stress of the versioned-entry commit path
//! under conflict storms: every shard aims at one hot server, and every
//! possible commit order is enumerated exhaustively. The store must
//! show the same aggregate behaviour under **all** interleavings —
//! same number of commits, same final residual bits, conflict counters
//! that account for every attempt — plus progress (at least one commit
//! per round) and accurate counters under a real thread storm.

use cpo_iaas::model::attr::AttrSet;
use cpo_iaas::prelude::*;
use std::sync::Arc;

fn hot_infra() -> Infrastructure {
    Infrastructure::new(
        AttrSet::standard(),
        vec![("dc".into(), ServerProfile::commodity(3).build_many(1))],
    )
}

/// All permutations of `0..n` (Heap's algorithm, deterministic order).
fn permutations(n: usize) -> Vec<Vec<usize>> {
    fn heap(k: usize, xs: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if k <= 1 {
            out.push(xs.clone());
            return;
        }
        for i in 0..k {
            heap(k - 1, xs, out);
            if k.is_multiple_of(2) {
                xs.swap(i, k - 1);
            } else {
                xs.swap(0, k - 1);
            }
        }
    }
    let mut xs: Vec<usize> = (0..n).collect();
    let mut out = Vec::new();
    heap(n, &mut xs, &mut out);
    out
}

/// Commits `txns` (demand rows, all against server 0) in the given
/// order against one shared starting snapshot — the single-round
/// conflict storm. Returns (commit flags per txn, final residual row).
fn run_order(demands: &[Vec<f64>], order: &[usize]) -> (Vec<bool>, Vec<f64>, StoreMetrics) {
    let store = PlacementStore::new(&hot_infra());
    let snap = store.snapshot();
    let mut committed = vec![false; demands.len()];
    for &i in order {
        let placements = [(ServerId(0), demands[i].as_slice())];
        let ctx = CommitCtx {
            key: i as u64,
            tenant: i as u64,
            window: 0,
            round: 0,
        };
        committed[i] = store.try_commit(&placements, &snap.versions, &ctx).is_ok();
    }
    (committed, store.residual_row(ServerId(0)), store.metrics())
}

#[test]
fn identical_demands_commit_the_same_count_under_every_permutation() {
    // Five identical wedges, of which only a prefix fits: any order must
    // commit exactly the same number and leave bit-identical residuals.
    let base = PlacementStore::new(&hot_infra()).residual_row(ServerId(0));
    let demand: Vec<f64> = base.iter().map(|c| c / 3.0).collect();
    let demands: Vec<Vec<f64>> = (0..5).map(|_| demand.clone()).collect();

    let mut expected: Option<(usize, Vec<u64>)> = None;
    for order in permutations(demands.len()) {
        let (committed, residual, metrics) = run_order(&demands, &order);
        let commits = committed.iter().filter(|&&c| c).count();
        let bits: Vec<u64> = residual.iter().map(|v| v.to_bits()).collect();
        match &expected {
            None => expected = Some((commits, bits)),
            Some((want_commits, want_bits)) => {
                assert_eq!(commits, *want_commits, "order {order:?} commit count");
                assert_eq!(&bits, want_bits, "order {order:?} residual bits");
            }
        }
        assert!(commits >= 1, "progress: some commit always lands");
        assert!(commits < demands.len(), "storm must actually conflict");
        // Counter accuracy: every attempt is exactly one commit or one
        // conflict, and every bounce here is a lost race (the wedge fits
        // a fresh snapshot), never a capacity conflict.
        assert_eq!(metrics.commits as usize, commits, "order {order:?}");
        assert_eq!(
            metrics.conflicts as usize,
            demands.len() - commits,
            "order {order:?}"
        );
        assert_eq!(metrics.capacity_conflicts, 0, "order {order:?}");
    }
}

#[test]
fn mixed_demands_never_oversubscribe_under_any_permutation() {
    let base = PlacementStore::new(&hot_infra()).residual_row(ServerId(0));
    // Wedges of 50%, 35%, 30%, 20% of the hot server: which subset
    // commits depends on the order, but the sum may never exceed 100%.
    let fractions = [0.50, 0.35, 0.30, 0.20];
    let demands: Vec<Vec<f64>> = fractions
        .iter()
        .map(|f| base.iter().map(|c| c * f).collect())
        .collect();
    for order in permutations(demands.len()) {
        let (committed, residual, metrics) = run_order(&demands, &order);
        for (l, r) in residual.iter().enumerate() {
            assert!(
                *r >= -1e-9,
                "order {order:?} oversubscribed attr {l}: residual {r}"
            );
        }
        let commits = committed.iter().filter(|&&c| c).count();
        assert!(commits >= 1, "order {order:?} made no progress");
        // The first transaction in commit order always wins: it validated
        // against the exact snapshot it was committed under.
        assert!(committed[order[0]], "order {order:?}: first committer lost");
        assert_eq!(
            (metrics.commits + metrics.conflicts) as usize,
            demands.len(),
            "order {order:?}: every attempt must be counted exactly once"
        );
        assert_eq!(metrics.commits as usize, commits, "order {order:?}");
    }
}

#[test]
fn round_based_retries_drain_the_storm_within_the_commit_bound() {
    // The scheduler's protocol in miniature: bounced transactions retry
    // on a fresh snapshot each round. Each round's first commit always
    // succeeds, so rounds are bounded by the transaction count.
    let store = PlacementStore::new(&hot_infra());
    let base = store.residual_row(ServerId(0));
    let demand: Vec<f64> = base.iter().map(|c| c / 4.0).collect();
    let mut remaining: Vec<usize> = (0..8).collect();
    let mut rounds = 0usize;
    let mut done = [false; 8];
    while !remaining.is_empty() {
        rounds += 1;
        assert!(rounds <= 8, "storm failed to drain: {remaining:?} left");
        let snap = store.snapshot();
        let mut bounced = Vec::new();
        for &i in &remaining {
            let placements = [(ServerId(0), demand.as_slice())];
            let ctx = CommitCtx {
                key: i as u64,
                tenant: i as u64,
                window: 0,
                round: rounds as u64 - 1,
            };
            match store.try_commit(&placements, &snap.versions, &ctx) {
                Ok(()) => done[i] = true,
                Err(ConflictReason::Capacity) => done[i] = true, // terminal
                Err(ConflictReason::Stale) => bounced.push(i),
            }
        }
        assert!(
            bounced.len() < remaining.len(),
            "round {rounds} made no progress"
        );
        remaining = bounced;
    }
    assert!(done.iter().all(|&d| d), "every transaction must terminate");
    let metrics = store.metrics();
    // Four quarters fit; the other four eventually hit terminal
    // capacity conflicts on fresh snapshots.
    assert_eq!(metrics.commits, 4);
    assert!(metrics.capacity_conflicts >= 4);
}

#[test]
fn threaded_storm_keeps_counters_exact() {
    // 8 threads × 6 attempts, all on the hot server, one-third wedges:
    // exactly 3 commits can land; every other attempt must be counted
    // as a conflict — no lost updates, no double counts.
    let store = Arc::new(PlacementStore::new(&hot_infra()));
    let base = store.residual_row(ServerId(0));
    let demand: Vec<f64> = base.iter().map(|c| c / 3.0).collect();
    let threads = 8usize;
    let attempts_each = 6usize;
    let snap = store.snapshot();
    let committed: usize = std::thread::scope(|s| {
        (0..threads)
            .map(|t| {
                let store = Arc::clone(&store);
                let demand = demand.clone();
                let versions = snap.versions.clone();
                s.spawn(move || {
                    let mut wins = 0usize;
                    for a in 0..attempts_each {
                        let placements = [(ServerId(0), demand.as_slice())];
                        let ctx = CommitCtx {
                            key: (t * attempts_each + a) as u64,
                            tenant: t as u64,
                            window: 0,
                            round: a as u64,
                        };
                        if store.try_commit(&placements, &versions, &ctx).is_ok() {
                            wins += 1;
                        }
                    }
                    wins
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().expect("storm thread panicked"))
            .sum()
    });
    assert_eq!(committed, 3, "exactly three thirds fit");
    let metrics = store.metrics();
    assert_eq!(metrics.commits, 3);
    assert_eq!(
        (metrics.commits + metrics.conflicts) as usize,
        threads * attempts_each,
        "every attempt counted exactly once"
    );
    assert_eq!(
        metrics.capacity_conflicts, 0,
        "stale-version bounces, not capacity rejections: the wedge fits a fresh snapshot"
    );
    // The residual must reflect exactly three subtractions.
    let residual = store.residual_row(ServerId(0));
    for (l, (r, c)) in residual.iter().zip(&base).enumerate() {
        let expect = c - demand[l] - demand[l] - demand[l];
        assert_eq!(
            r.to_bits(),
            expect.to_bits(),
            "attr {l}: residual bits after three commits"
        );
    }
}
