//! Differential suite for the sharded scheduler: at `shards = 1` the
//! optimistic-commit path must be **bit-identical** to the seed
//! (unsharded) path — same accepted/rejected sets, same placements,
//! same provider cost to the last bit — on synthetic Poisson (fig. 8
//! style) scenarios and on trace replay, over both the
//! `WindowExecutor` and `FleetExecutor` backends.
//!
//! At `shards > 1` outcomes may legitimately differ from the seed path
//! (each shard solves a sub-batch), so there the suite pins the weaker
//! invariants that must always hold: every request terminates, the
//! fleet stays feasible, and the whole run is double-run deterministic.

use cpo_core::prelude::RoundRobinAllocator;
use cpo_des::prelude::*;
use cpo_model::attr::AttrSet;
use cpo_model::prelude::*;
use cpo_platform::prelude::{
    FleetExecutor, ShardConfig, ShardedScheduler, SimConfig, WindowExecutor, WindowReport,
};
use cpo_scenario::prelude::ArrivalSpec;
use cpo_traces::prelude::*;
use std::io::Cursor;

const SAMPLE: &str = include_str!("../examples/data/azure_sample.csv");

fn infra(servers: usize) -> Infrastructure {
    Infrastructure::new(
        AttrSet::standard(),
        vec![("dc".into(), ServerProfile::commodity(3).build_many(servers))],
    )
}

fn des_config(seed: u64) -> DesConfig {
    DesConfig {
        latency: LatencyModel::PerRequest {
            base: 0.02,
            per_request: 0.01,
        },
        failures: None,
        seed,
        ..Default::default()
    }
}

/// Compares two window streams field by field, bitwise on the float
/// costs, ignoring only measured wall time (`solve_time`).
fn assert_windows_identical(native: &[WindowReport], sharded: &[WindowReport], label: &str) {
    assert_eq!(native.len(), sharded.len(), "{label}: window count");
    for (a, b) in native.iter().zip(sharded) {
        assert_eq!(a.window, b.window, "{label}: window index");
        assert_eq!(a.arrivals, b.arrivals, "{label}: arrivals @ {}", a.window);
        assert_eq!(a.admitted, b.admitted, "{label}: admitted @ {}", a.window);
        assert_eq!(a.rejected, b.rejected, "{label}: rejected @ {}", a.window);
        assert_eq!(
            a.migrations, b.migrations,
            "{label}: migrations @ {}",
            a.window
        );
        assert_eq!(
            a.migration_cost.to_bits(),
            b.migration_cost.to_bits(),
            "{label}: migration cost bits @ {}",
            a.window
        );
        assert_eq!(
            a.provider_cost.to_bits(),
            b.provider_cost.to_bits(),
            "{label}: provider cost bits @ {}",
            a.window
        );
        assert_eq!(
            a.downtime_cost.to_bits(),
            b.downtime_cost.to_bits(),
            "{label}: downtime cost bits @ {}",
            a.window
        );
        assert_eq!(
            a.running_tenants, b.running_tenants,
            "{label}: tenants @ {}",
            a.window
        );
        assert_eq!(a.running_vms, b.running_vms, "{label}: vms @ {}", a.window);
        assert_eq!(
            a.active_servers, b.active_servers,
            "{label}: active servers @ {}",
            a.window
        );
        assert_eq!(
            a.stranded_vms, b.stranded_vms,
            "{label}: stranded @ {}",
            a.window
        );
    }
}

// ---------------------------------------------------------------------
// FleetExecutor backend: shards=1 runs the full store protocol (solve
// on snapshot → optimistic commit), so equality here proves the commit
// arithmetic replays the native reserve arithmetic bit for bit.
// ---------------------------------------------------------------------

fn run_fleet_native(
    servers: usize,
    seed: u64,
    rate: f64,
    horizon: f64,
) -> (DesReport, FleetExecutor) {
    let source = PoissonArrivals::new(
        ArrivalSpec {
            rate,
            ..Default::default()
        },
        seed,
    );
    let mut sched = WindowedScheduler::with_backend(
        FleetExecutor::new(infra(servers)),
        des_config(seed),
        source,
    );
    let report = sched.run(&RoundRobinAllocator, horizon);
    let exec = sched.into_backend();
    (report, exec)
}

fn run_fleet_sharded(
    servers: usize,
    seed: u64,
    rate: f64,
    horizon: f64,
    shards: usize,
) -> (DesReport, FleetExecutor) {
    let source = PoissonArrivals::new(
        ArrivalSpec {
            rate,
            ..Default::default()
        },
        seed,
    );
    let backend = ShardedScheduler::new(
        FleetExecutor::new(infra(servers)),
        ShardConfig {
            shards,
            ..ShardConfig::default()
        },
    );
    let mut sched = WindowedScheduler::with_backend(backend, des_config(seed), source);
    let report = sched.run(&RoundRobinAllocator, horizon);
    let sharded = sched.into_backend();
    (report, sharded.into_backend())
}

/// Bitwise comparison of the two fleets' residual capacity tables: if
/// every server's remaining headroom matches to the last bit, the two
/// runs placed the same VMs on the same servers in the same order.
fn assert_residuals_identical(a: &FleetExecutor, b: &FleetExecutor, label: &str) {
    assert_eq!(a.server_count(), b.server_count(), "{label}: fleet size");
    for j in 0..a.server_count() {
        let ra = a.residual_row(ServerId(j));
        let rb = b.residual_row(ServerId(j));
        let bits_a: Vec<u64> = ra.iter().map(|v| v.to_bits()).collect();
        let bits_b: Vec<u64> = rb.iter().map(|v| v.to_bits()).collect();
        assert_eq!(bits_a, bits_b, "{label}: residual bits of server {j}");
    }
}

#[test]
fn fleet_single_shard_is_bit_identical_on_poisson_arrivals() {
    // Fig. 8 shape: more demand than the fleet can serve, so the run
    // exercises both admission and rejection.
    let (native, native_exec) = run_fleet_native(6, 11, 6.0, 30.0);
    let (sharded, sharded_exec) = run_fleet_sharded(6, 11, 6.0, 30.0, 1);
    assert_windows_identical(&native.windows, &sharded.windows, "fleet/poisson");
    assert_residuals_identical(&native_exec, &sharded_exec, "fleet/poisson");
    assert_eq!(
        native_exec.resident_requests(),
        sharded_exec.resident_requests(),
        "resident population"
    );
    // The protocol ran (commits recorded), yet one shard never races
    // itself: zero conflicts.
    let m = sharded_exec.store().metrics();
    assert!(
        m.commits > 0,
        "store protocol must actually run at shards=1"
    );
    assert_eq!(m.conflicts, 0, "a single shard cannot lose a race");
    assert!(sharded_exec.verify().is_ok());
}

#[test]
fn fleet_single_shard_is_bit_identical_on_trace_replay() {
    let replay = |shards: Option<usize>| {
        let reader = AzureReader::new(Cursor::new(SAMPLE), MalformedPolicy::Fail)
            .expect("embedded sample parses");
        let amp = Amplifier::new(
            reader,
            AmplifyConfig {
                factor: 8,
                time_jitter: 30.0,
                demand_jitter: 0.2,
                seed: 7,
            },
        )
        .expect("sample amplifies");
        let horizon = amp.horizon() + 120.0;
        let source = TraceArrivalSource::new(amp, ArrivalSpec::default(), 7);
        let config = DesConfig {
            window_length: 60.0,
            latency: LatencyModel::Fixed(0.0),
            failures: None,
            seed: 7,
            solve_deadline: None,
        };
        match shards {
            None => {
                let mut sched =
                    WindowedScheduler::with_backend(FleetExecutor::new(infra(24)), config, source);
                let report = sched.run(&RoundRobinAllocator, horizon);
                let exec = sched.into_backend();
                (report, exec)
            }
            Some(s) => {
                let backend = ShardedScheduler::new(
                    FleetExecutor::new(infra(24)),
                    ShardConfig {
                        shards: s,
                        ..ShardConfig::default()
                    },
                );
                let mut sched = WindowedScheduler::with_backend(backend, config, source);
                let report = sched.run(&RoundRobinAllocator, horizon);
                let sharded = sched.into_backend();
                (report, sharded.into_backend())
            }
        }
    };
    let (native, native_exec) = replay(None);
    let (sharded, sharded_exec) = replay(Some(1));
    assert_windows_identical(&native.windows, &sharded.windows, "fleet/trace");
    assert_residuals_identical(&native_exec, &sharded_exec, "fleet/trace");
    assert_eq!(sharded_exec.store().metrics().conflicts, 0);
}

#[test]
fn fleet_multi_shard_is_feasible_and_double_run_deterministic() {
    let (r1, e1) = run_fleet_sharded(5, 23, 8.0, 25.0, 4);
    let (r2, e2) = run_fleet_sharded(5, 23, 8.0, 25.0, 4);
    assert_windows_identical(&r1.windows, &r2.windows, "fleet/4-shards double run");
    assert_residuals_identical(&e1, &e2, "fleet/4-shards double run");
    assert_eq!(
        e1.store().metrics(),
        e2.store().metrics(),
        "conflict counters"
    );
    assert!(e1.verify().is_ok(), "sharded fleet books must balance");
    // Every arrival terminated one way or the other.
    for w in &r1.windows {
        assert_eq!(w.arrivals, w.admitted + w.rejected, "window {}", w.window);
    }
}

// ---------------------------------------------------------------------
// WindowExecutor backend: shards=1 must delegate to the native
// reconfiguration path (migrations preserved), shards>1 runs
// admission-only over a per-window store (residents pinned).
// ---------------------------------------------------------------------

fn run_executor(
    servers: usize,
    seed: u64,
    rate: f64,
    horizon: f64,
    shards: Option<usize>,
) -> DesReport {
    let source = PoissonArrivals::new(
        ArrivalSpec {
            rate,
            ..Default::default()
        },
        seed,
    );
    match shards {
        None => {
            let mut sched = WindowedScheduler::new(
                infra(servers),
                SimConfig::default(),
                des_config(seed),
                source,
            );
            sched.run(&RoundRobinAllocator, horizon)
        }
        Some(s) => {
            let backend = ShardedScheduler::new(
                WindowExecutor::new(infra(servers), SimConfig::default()),
                ShardConfig {
                    shards: s,
                    ..ShardConfig::default()
                },
            );
            let mut sched = WindowedScheduler::with_backend(backend, des_config(seed), source);
            sched.run(&RoundRobinAllocator, horizon)
        }
    }
}

#[test]
fn executor_single_shard_is_bit_identical_on_poisson_arrivals() {
    let native = run_executor(8, 5, 4.0, 30.0, None);
    let sharded = run_executor(8, 5, 4.0, 30.0, Some(1));
    assert_windows_identical(&native.windows, &sharded.windows, "executor/poisson");
}

#[test]
fn executor_multi_shard_admits_without_migrating() {
    let sharded = run_executor(6, 13, 7.0, 25.0, Some(3));
    let rerun = run_executor(6, 13, 7.0, 25.0, Some(3));
    assert_windows_identical(
        &sharded.windows,
        &rerun.windows,
        "executor/3-shards double run",
    );
    for w in &sharded.windows {
        assert_eq!(
            w.migrations, 0,
            "sharded admission never migrates (window {})",
            w.window
        );
        assert_eq!(w.arrivals, w.admitted + w.rejected, "window {}", w.window);
    }
}
