//! End-to-end acceptance of the time-series telemetry layer: a
//! continuous-time run over each window backend (`WindowExecutor` and
//! `FleetExecutor`) must feed the global series bus one fleet-health
//! probe per closed window, stay inside the ring's constant-memory
//! bound, produce byte-identical deterministic series JSON across
//! same-seed replays, and render to a self-contained HTML dashboard
//! whose embedded payload parses back.
//!
//! The series bus is process-global, so the whole scenario runs inside
//! one test function.

use cpo_iaas::core::prelude::RoundRobinAllocator;
use cpo_iaas::des::prelude::*;
use cpo_iaas::model::attr::AttrSet;
use cpo_iaas::obs::{dash, series};
use cpo_iaas::platform::prelude::{FleetExecutor, SimConfig};
use cpo_iaas::prelude::*;

fn infra(servers: usize) -> Infrastructure {
    Infrastructure::new(
        AttrSet::standard(),
        vec![("dc".into(), ServerProfile::commodity(3).build_many(servers))],
    )
}

fn arrivals(seed: u64) -> PoissonArrivals {
    PoissonArrivals::new(
        ArrivalSpec {
            rate: 4.0,
            lifetime: (2.0, 6.0),
            ..Default::default()
        },
        seed,
    )
}

fn des_config(seed: u64) -> DesConfig {
    DesConfig {
        window_length: 1.0,
        latency: LatencyModel::Fixed(0.02),
        failures: None,
        seed,
        solve_deadline: None,
    }
}

/// Runs the default (`WindowExecutor`) backend and returns the
/// deterministic series JSON plus the number of windows closed.
fn run_window_backend(seed: u64) -> (String, usize) {
    series::reset();
    let mut sched = WindowedScheduler::new(
        infra(8),
        SimConfig::default(),
        des_config(seed),
        arrivals(seed),
    );
    let report = sched.run(&RoundRobinAllocator, 30.0);
    (series::snapshot().to_json(false), report.windows.len())
}

/// Same run shape over the memory-lean `FleetExecutor`.
fn run_fleet_backend(seed: u64) -> (String, usize) {
    series::reset();
    let mut sched = WindowedScheduler::with_backend(
        FleetExecutor::new(infra(8)),
        des_config(seed),
        arrivals(seed),
    );
    let report = sched.run(&RoundRobinAllocator, 30.0);
    (series::snapshot().to_json(false), report.windows.len())
}

#[test]
fn both_backends_probe_every_window_and_replay_byte_identically() {
    // Small capacity so the 30-window run actually exercises the
    // halve-on-overflow path while staying inside the bound.
    series::enable_with_capacity(16);

    for (label, run) in [
        ("window", run_window_backend as fn(u64) -> (String, usize)),
        ("fleet", run_fleet_backend),
    ] {
        let (json_a, windows) = run(7);
        assert!(windows > 0, "{label}: run must close windows");

        // Coverage: at least the six per-window fleet-health series,
        // each sampled exactly once per closed window, every ring
        // inside its constant-memory capacity bound.
        series::reset();
        let _ = run(7);
        let bus = series::snapshot();
        let fleet: Vec<&str> = bus
            .series()
            .keys()
            .map(String::as_str)
            .filter(|n| n.starts_with("fleet."))
            .collect();
        assert!(
            fleet.len() >= 6,
            "{label}: expected >= 6 fleet-health series, got {fleet:?}"
        );
        for need in [
            "fleet.fragmentation",
            "fleet.acceptance_rate",
            "fleet.queue_depth",
            "fleet.active_vms",
            "fleet.active_servers",
            "fleet.solve_latency_ms",
        ] {
            assert!(bus.series().contains_key(need), "{label}: missing {need}");
        }
        for (name, s) in bus.series() {
            assert!(
                s.ring.points().len() <= bus.capacity(),
                "{label}/{name}: {} points exceed capacity {}",
                s.ring.points().len(),
                bus.capacity()
            );
            assert_eq!(
                s.ring.total(),
                windows as u64,
                "{label}/{name}: must be sampled once per window"
            );
        }

        // Determinism: same seed, byte-identical deterministic JSON.
        let (json_b, windows_b) = run(7);
        assert_eq!(windows, windows_b, "{label}: window count must replay");
        assert_eq!(
            json_a, json_b,
            "{label}: deterministic series JSON must be byte-identical"
        );

        // A different seed must actually change the sampled data.
        let (json_c, _) = run(8);
        assert_ne!(json_a, json_c, "{label}: seed must matter");
    }

    // Dashboard round trip: the HTML is self-contained and the embedded
    // machine-readable payload parses back to the same series set.
    let bus = series::snapshot();
    let dir = std::env::temp_dir().join("cpo_series_dashboard_test");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("dash.html");
    dash::write_html(&bus, &path, "integration test").unwrap();
    let html = std::fs::read_to_string(&path).unwrap();
    assert!(html.contains("<!DOCTYPE html>"));
    assert!(html.contains("<svg"), "sparklines must be inline SVG");
    let payload = html
        .split("<script type=\"application/json\" id=\"cpo-series-data\">")
        .nth(1)
        .and_then(|rest| rest.split("</script>").next())
        .expect("embedded series payload present");
    let value = cpo_iaas::obs::json::parse(&payload.replace("<\\/", "</")).unwrap();
    let names: Vec<&str> = value
        .get("series")
        .and_then(|s| s.as_array())
        .expect("series array")
        .iter()
        .filter_map(|s| s.get("name").and_then(|n| n.as_str()))
        .collect();
    for name in bus.series().keys() {
        assert!(
            names.contains(&name.as_str()),
            "dashboard payload dropped series {name}"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);

    series::disable();
    series::reset();
}
