//! Cross-crate integration: scenario generation → each of the six
//! allocators → outcome invariants.

use cpo_iaas::exper::runner::{Algorithm, Effort};
use cpo_iaas::prelude::*;

fn scenario(servers: usize, seed: u64) -> AllocationProblem {
    let size = ScenarioSize::with_servers(servers);
    ScenarioSpec::for_size(&size)
        .with_heavy_affinity()
        .generate(seed)
}

#[test]
fn every_algorithm_produces_a_consistent_outcome() {
    let problem = scenario(12, 3);
    for algorithm in Algorithm::all() {
        let outcome = algorithm.build(Effort::Quick, 3).allocate(&problem);
        // Metrics are internally consistent with the assignment.
        assert!(
            (outcome.rejection_rate - problem.rejection_rate(&outcome.assignment)).abs() < 1e-12,
            "{}: rejection rate mismatch",
            algorithm.label()
        );
        let z = problem.evaluate(&outcome.assignment);
        assert_eq!(
            z.as_array(),
            outcome.objectives.as_array(),
            "{}: objective mismatch",
            algorithm.label()
        );
        assert!(outcome.rejection_rate >= 0.0 && outcome.rejection_rate <= 1.0);
    }
}

#[test]
fn clean_algorithms_never_violate() {
    for seed in 0..3 {
        let problem = scenario(10, seed);
        for algorithm in [
            Algorithm::RoundRobin,
            Algorithm::ConstraintProgramming,
            Algorithm::Nsga3Cp,
            Algorithm::Nsga3Tabu,
        ] {
            let outcome = algorithm.build(Effort::Quick, seed).allocate(&problem);
            assert_eq!(
                outcome.violated_constraints,
                0,
                "{} violated constraints on seed {seed}",
                algorithm.label()
            );
        }
    }
}

#[test]
fn rejected_requests_have_no_placed_vms() {
    let problem = scenario(8, 5);
    for algorithm in [
        Algorithm::RoundRobin,
        Algorithm::ConstraintProgramming,
        Algorithm::Nsga3Tabu,
    ] {
        let outcome = algorithm.build(Effort::Quick, 5).allocate(&problem);
        for r in &outcome.rejected {
            for &k in &problem.batch().request(*r).vms {
                assert_eq!(
                    outcome.assignment.server_of(k),
                    None,
                    "{}: rejected request {r:?} has a placed VM",
                    algorithm.label()
                );
            }
        }
    }
}

#[test]
fn accepted_requests_respect_their_rules() {
    let problem = scenario(12, 7);
    let outcome = Algorithm::Nsga3Tabu
        .build(Effort::Quick, 7)
        .allocate(&problem);
    let accepted = problem.accepted_requests(&outcome.assignment);
    for r in &accepted {
        let req = problem.batch().request(*r);
        for rule in &req.rules {
            assert!(
                rule.is_satisfied(&outcome.assignment, problem.infra()),
                "accepted request {r:?} breaks {:?}",
                rule.kind()
            );
        }
    }
}

#[test]
fn allocators_are_deterministic_under_seed() {
    let problem = scenario(10, 9);
    for algorithm in Algorithm::all() {
        let a = algorithm.build(Effort::Quick, 9).allocate(&problem);
        let b = algorithm.build(Effort::Quick, 9).allocate(&problem);
        assert_eq!(
            a.assignment,
            b.assignment,
            "{} not deterministic",
            algorithm.label()
        );
    }
}

#[test]
fn capacity_is_respected_by_clean_algorithms() {
    let problem = scenario(10, 11);
    for algorithm in [Algorithm::ConstraintProgramming, Algorithm::Nsga3Tabu] {
        let outcome = algorithm.build(Effort::Quick, 11).allocate(&problem);
        let tracker = problem.tracker(&outcome.assignment);
        for j in problem.infra().server_ids() {
            assert!(
                tracker.overloads(j, problem.infra()).is_empty(),
                "{}: server {j:?} overloaded",
                algorithm.label()
            );
        }
    }
}

#[test]
fn exper_figures_run_end_to_end() {
    use cpo_iaas::exper::figures;
    use cpo_iaas::exper::report::{figure_csv, render_figure};
    use cpo_iaas::exper::runner::Effort;

    // One-run micro versions of each figure; checks plumbing, not shapes.
    let fig = figures::fig7(Effort::Quick, 1, 1);
    assert_eq!(fig.cells.len(), 6 * fig.sizes.len());
    let ascii = render_figure(&fig);
    assert!(ascii.contains("nsga3-tabu"));
    let csv = figure_csv(&fig);
    assert_eq!(csv.lines().count(), 1 + fig.cells.len());
}
