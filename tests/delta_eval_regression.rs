//! Regression guard for delta move scoring, pinned on the fig8
//! (100-server) tabu run at the canonical seed 42.
//!
//! Scoring a relocation the full way costs O(n·h + m·h + rules) model
//! cells; the delta evaluator touches only the two servers, the moved
//! VM's rules, and its migration term, then resums cached per-unit
//! values. The guard demands the delta engine reach the *identical*
//! result with ≥ 5× less evaluation work (heavy model cells touched,
//! the `eval_work` counter), and stay under a pinned absolute budget so
//! a future change silently reverting to full rescoring fails CI here.

use cpo_iaas::model::prelude::*;
use cpo_iaas::scenario::prelude::{ScenarioSize, ScenarioSpec};
use cpo_iaas::tabu::{tabu_search, Scoring, TabuConfig, TabuResult};

/// The fig8 seed-42 cell under the paper-shaped tabu polish.
fn run_cell(scoring: Scoring) -> TabuResult {
    let problem = ScenarioSpec::for_size(&ScenarioSize::with_servers(100)).generate(42);
    let mut s = 7u64;
    let genes: Vec<usize> = (0..problem.n())
        .map(|_| {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (s >> 33) as usize % problem.m()
        })
        .collect();
    let start = Assignment::from_genes(&genes);
    let config = TabuConfig {
        tenure: 24,
        max_iterations: 200,
        candidates: 48,
        seed: 42,
        scoring,
        ..TabuConfig::default()
    };
    tabu_search(&problem, start, &config)
}

#[test]
fn delta_scoring_saves_5x_eval_work_on_fig8_tabu() {
    let delta = run_cell(Scoring::Delta);
    let full = run_cell(Scoring::Full);

    // Same trajectory first — a "saving" that changes the answer is a bug.
    assert_eq!(delta.best, full.best, "scoring modes diverged");
    assert_eq!(
        delta.best_score.total_cost.to_bits(),
        full.best_score.total_cost.to_bits()
    );
    assert_eq!(delta.candidates_scanned, full.candidates_scanned);

    assert!(
        full.eval_work >= 5 * delta.eval_work,
        "expected ≥5× saving: delta {} vs full {}",
        delta.eval_work,
        full.eval_work
    );

    // Absolute pin, well below the full-scoring count on this fixed seed:
    // a silent revert to full rescoring lands at the full count and fails.
    // Headroom over the measured value covers benign heuristic tweaks,
    // not an engine regression.
    const PINNED_MAX_DELTA_WORK: u64 = 1_200_000; // measured 818_116 on 2026-08-06
    assert!(
        delta.eval_work <= PINNED_MAX_DELTA_WORK,
        "delta eval work regressed past the pin: {} > {}",
        delta.eval_work,
        PINNED_MAX_DELTA_WORK
    );
    println!(
        "delta_work={} full_work={} ratio={:.1} delta_evals={} full_evals={}",
        delta.eval_work,
        full.eval_work,
        full.eval_work as f64 / delta.eval_work as f64,
        delta.delta_evals,
        full.full_evals
    );
}
