//! Differential validation of the delta evaluation path at paper scale:
//! on the fig8 (100-server) scenario, incremental move scoring must be
//! bit-identical to the full recompute — same scores on arbitrary
//! assignments, and (because every candidate score matches bit-for-bit)
//! the same tabu trajectory, move for move.

use cpo_iaas::model::delta::DeltaEvaluator;
use cpo_iaas::model::prelude::*;
use cpo_iaas::scenario::prelude::{ScenarioSize, ScenarioSpec};
use cpo_iaas::tabu::{tabu_search, Scoring, TabuConfig, TabuResult};

/// The fig8 seed-42 cell: 100 servers, the paper's request mix.
fn fig8_problem() -> AllocationProblem {
    ScenarioSpec::for_size(&ScenarioSize::with_servers(100)).generate(42)
}

/// A deterministic pseudo-random complete assignment.
fn scrambled(problem: &AllocationProblem, seed: u64) -> Assignment {
    let mut s = seed;
    let genes: Vec<usize> = (0..problem.n())
        .map(|_| {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (s >> 33) as usize % problem.m()
        })
        .collect();
    Assignment::from_genes(&genes)
}

fn score_bits(s: &cpo_iaas::tabu::Score) -> (u64, u64) {
    (s.violation.to_bits(), s.total_cost.to_bits())
}

#[test]
fn delta_scores_match_full_recompute_on_fig8_assignments() {
    let problem = fig8_problem();
    for seed in [1, 7, 42, 1234, 987654321] {
        let a = scrambled(&problem, seed);
        let ev = DeltaEvaluator::new(&problem, a.clone());
        let delta = ev.score();

        let tracker = problem.tracker(&a);
        let z = problem.evaluate_with_tracker(&a, &tracker);
        let report = problem.check_with_tracker(&a, &tracker);
        assert_eq!(
            delta.violation.to_bits(),
            report.degree().to_bits(),
            "violation bits diverged at seed {seed}"
        );
        for (i, (d, f)) in delta
            .objectives
            .as_array()
            .iter()
            .zip(z.as_array().iter())
            .enumerate()
        {
            assert_eq!(
                d.to_bits(),
                f.to_bits(),
                "objective {i} diverged at seed {seed}: delta {d} vs full {f}"
            );
        }
    }
}

/// Runs the same tabu configuration under both scoring modes.
fn run_both(seed: u64) -> (TabuResult, TabuResult) {
    let problem = fig8_problem();
    let start = scrambled(&problem, 7);
    let config = TabuConfig {
        tenure: 24,
        max_iterations: 120,
        candidates: 48,
        seed,
        ..TabuConfig::default()
    };
    let delta = tabu_search(
        &problem,
        start.clone(),
        &TabuConfig {
            scoring: Scoring::Delta,
            ..config
        },
    );
    let full = tabu_search(
        &problem,
        start,
        &TabuConfig {
            scoring: Scoring::Full,
            ..config
        },
    );
    (delta, full)
}

#[test]
fn delta_and_full_tabu_walk_identical_trajectories_on_fig8() {
    for seed in [42, 4242] {
        let (d, f) = run_both(seed);
        assert_eq!(d.best, f.best, "best assignments diverged at seed {seed}");
        assert_eq!(
            score_bits(&d.best_score),
            score_bits(&f.best_score),
            "best scores diverged at seed {seed}"
        );
        assert_eq!(d.iterations, f.iterations);
        assert_eq!(d.accepted_moves, f.accepted_moves);
        assert_eq!(d.aspiration_hits, f.aspiration_hits);
        assert_eq!(d.candidates_scanned, f.candidates_scanned);
        // Each mode used its own engine exclusively.
        assert!(d.delta_evals > 0 && d.full_evals == 0);
        assert!(f.full_evals > 0 && f.delta_evals == 0);
    }
}
