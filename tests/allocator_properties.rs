//! Property-based tests over the allocators: on randomly generated
//! scenarios, the admission-controlled algorithms (Round Robin, filtering,
//! CP) must always produce clean, capacity-respecting placements with
//! internally consistent metrics.

use cpo_iaas::prelude::*;
use proptest::prelude::*;

fn scenario_strategy() -> impl Strategy<Value = AllocationProblem> {
    (6usize..20, 1.0_f64..4.0, 0u64..500).prop_map(|(servers, scale, seed)| {
        let size = ScenarioSize::with_servers(servers);
        let mut spec = ScenarioSpec::for_size(&size);
        spec.requests.demand_scale = scale;
        spec.requests.request_size = (1, 4);
        spec.requests.p_same_server = 0.25;
        spec.requests.p_different_server = 0.25;
        spec.generate(seed)
    })
}

fn check_clean(problem: &AllocationProblem, outcome: &AllocationOutcome, name: &str) {
    // No violated constraints ever.
    assert_eq!(
        outcome.violated_constraints, 0,
        "{name} violated constraints"
    );
    // No server overloaded.
    let tracker = problem.tracker(&outcome.assignment);
    for j in problem.infra().server_ids() {
        assert!(
            tracker.overloads(j, problem.infra()).is_empty(),
            "{name} overloaded server {j:?}"
        );
    }
    // Every placed request's rules hold; every rejected request is empty.
    let accepted = problem.accepted_requests(&outcome.assignment);
    for req in problem.batch().requests() {
        if outcome.rejected.contains(&req.id) {
            for &k in &req.vms {
                assert_eq!(
                    outcome.assignment.server_of(k),
                    None,
                    "{name} left a VM of a rejected request placed"
                );
            }
        } else {
            assert!(
                accepted.contains(&req.id),
                "{name}: request neither rejected nor accepted"
            );
        }
    }
    // Metric consistency.
    assert!(
        (outcome.rejection_rate
            - outcome.rejected.len() as f64 / problem.batch().request_count() as f64)
            .abs()
            < 1e-9,
        "{name} rejection-rate mismatch"
    );
    assert!(outcome.gross_revenue >= 0.0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn round_robin_is_always_clean(problem in scenario_strategy()) {
        let outcome = RoundRobinAllocator.allocate(&problem);
        check_clean(&problem, &outcome, "round-robin");
    }

    #[test]
    fn filtering_is_always_clean(problem in scenario_strategy()) {
        let outcome = FilteringAllocator.allocate(&problem);
        check_clean(&problem, &outcome, "filtering");
    }

    #[test]
    fn cp_is_always_clean(problem in scenario_strategy()) {
        let outcome = CpAllocator::feasible_only().allocate(&problem);
        check_clean(&problem, &outcome, "cp");
    }

    /// CP admission accepts at least as much as filtering on identical
    /// instances (it searches where filtering only greedily commits).
    #[test]
    fn cp_accepts_at_least_as_much_as_filtering(problem in scenario_strategy()) {
        let cp = CpAllocator::feasible_only().allocate(&problem);
        let filt = FilteringAllocator.allocate(&problem);
        prop_assert!(
            cp.accepted_requests + 1 >= filt.accepted_requests,
            "cp accepted {} but filtering {}",
            cp.accepted_requests,
            filt.accepted_requests
        );
    }

    /// The portfolio never does worse than its best member under its own
    /// criterion.
    #[test]
    fn portfolio_dominates_members(problem in scenario_strategy()) {
        let members: Vec<Box<dyn Allocator>> = vec![
            Box::new(RoundRobinAllocator),
            Box::new(FilteringAllocator),
        ];
        let portfolio =
            PortfolioAllocator::new(members, PortfolioCriterion::AcceptanceThenCost);
        let out = portfolio.allocate(&problem);
        let rr = RoundRobinAllocator.allocate(&problem);
        let filt = FilteringAllocator.allocate(&problem);
        for member in [&rr, &filt] {
            prop_assert!(
                (out.rejection_rate, out.provider_cost())
                    <= (member.rejection_rate, member.provider_cost() + 1e-9)
            );
        }
    }
}
