//! Cross-crate integration tests for the trace-ingestion pipeline: CSV →
//! reader → amplifier → `TraceArrivalSource` → continuous-time scheduler
//! over the `FleetExecutor`, all through the public `cpo_iaas` facade.

use cpo_iaas::des::prelude::*;
use cpo_iaas::model::attr::AttrSet;
use cpo_iaas::prelude::*;
use cpo_iaas::scenario::prelude::ArrivalSpec;
use cpo_iaas::traces::prelude::*;
use std::io::Write as _;

const SAMPLE: &str = include_str!("../examples/data/azure_sample.csv");

fn sample_path() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("cpo_trace_ingestion_tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("azure_sample.csv");
    std::fs::write(&path, SAMPLE).unwrap();
    path
}

fn replay(seed: u64, factor: usize) -> Vec<(usize, usize, usize)> {
    let reader = open_dataset(
        &format!("azure:{}", sample_path().display()),
        MalformedPolicy::Fail,
    )
    .unwrap();
    let amp = Amplifier::new(
        reader,
        AmplifyConfig {
            factor,
            time_jitter: 20.0,
            demand_jitter: 0.15,
            seed,
        },
    )
    .unwrap();
    let horizon = amp.horizon() + 120.0;
    let infra = Infrastructure::new(
        AttrSet::standard(),
        vec![("dc".into(), ServerProfile::commodity(3).build_many(48))],
    );
    let source = TraceArrivalSource::new(amp, ArrivalSpec::default(), seed);
    let config = DesConfig {
        window_length: 60.0,
        latency: LatencyModel::Fixed(0.0),
        failures: None,
        seed,
        solve_deadline: None,
    };
    let mut sched = WindowedScheduler::with_backend(FleetExecutor::new(infra), config, source);
    let report = sched.run(&RoundRobinAllocator, horizon);
    assert!(sched.source().error().is_none(), "stream must stay clean");
    sched.backend().verify().expect("fleet books balance");
    report
        .windows
        .iter()
        .map(|w| (w.admitted, w.rejected, w.running_vms))
        .collect()
}

#[test]
fn amplified_replay_is_seed_deterministic() {
    let a = replay(11, 8);
    let b = replay(11, 8);
    assert_eq!(a, b, "same seed must reproduce identical window outcomes");
    assert!(
        a.iter().map(|w| w.0).sum::<usize>() > 0,
        "something admitted"
    );
}

#[test]
fn different_amplifier_seeds_diverge() {
    let a = replay(1, 8);
    let b = replay(2, 8);
    assert_ne!(a, b, "jittered replicas must depend on the seed");
}

#[test]
fn malformed_rows_skip_or_fail_by_policy() {
    let dir = std::env::temp_dir().join("cpo_trace_ingestion_tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("malformed.csv");
    let mut f = std::fs::File::create(&path).unwrap();
    writeln!(f, "vm_id,vm_created,vm_deleted,core_count,memory_gb").unwrap();
    writeln!(f, "a,0,100,2,4").unwrap();
    writeln!(f, "b,5,not-a-number,2,4").unwrap();
    writeln!(f, "c,10,100,1,2").unwrap();
    drop(f);
    let spec = format!("azure:{}", path.display());

    let mut skip = open_dataset(&spec, MalformedPolicy::Skip).unwrap();
    let mut good = 0;
    while let Some(event) = skip.next_event() {
        event.unwrap();
        good += 1;
    }
    assert_eq!(good, 2);
    assert_eq!(skip.skipped_rows(), 1);

    let mut fail = open_dataset(&spec, MalformedPolicy::Fail).unwrap();
    let mut saw_error = false;
    while let Some(event) = fail.next_event() {
        if let Err(TraceError::MalformedRow { line, .. }) = event {
            assert_eq!(line, 3);
            saw_error = true;
            break;
        }
    }
    assert!(saw_error, "Fail policy must surface the malformed row");
}

#[test]
fn out_of_order_rows_are_healed_within_the_reorder_window() {
    // vm_created out of order by a bounded amount: the Sorted wrapper that
    // open_dataset installs must emit a non-decreasing stream anyway.
    let dir = std::env::temp_dir().join("cpo_trace_ingestion_tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("unordered.csv");
    let mut f = std::fs::File::create(&path).unwrap();
    writeln!(f, "vm_id,vm_created,vm_deleted,core_count,memory_gb").unwrap();
    for (id, created) in [("a", 30), ("b", 10), ("c", 20), ("d", 5)] {
        writeln!(f, "{id},{created},{},2,4", created + 100).unwrap();
    }
    drop(f);
    let mut reader =
        open_dataset(&format!("azure:{}", path.display()), MalformedPolicy::Fail).unwrap();
    let mut times = Vec::new();
    while let Some(event) = reader.next_event() {
        times.push(event.unwrap().at);
    }
    assert_eq!(times, vec![5.0, 10.0, 20.0, 30.0]);
}

#[test]
fn zero_duration_vms_flow_through_and_depart_immediately() {
    // A VM deleted the instant it is created (holding 0) must be admitted
    // and departed without tripping strict accounting.
    let events = vec![
        TraceEvent {
            at: 0.0,
            id: 0,
            vm_count: 1,
            cpu: 2.0,
            ram: 4096.0,
            disk: 20.0,
            holding: 0.0,
        },
        TraceEvent {
            at: 10.0,
            id: 1,
            vm_count: 2,
            cpu: 1.0,
            ram: 2048.0,
            disk: 10.0,
            holding: 50.0,
        },
    ];
    let infra = Infrastructure::new(
        AttrSet::standard(),
        vec![("dc".into(), ServerProfile::commodity(3).build_many(4))],
    );
    let source = TraceArrivalSource::new(VecReader::new(events), ArrivalSpec::default(), 3);
    let config = DesConfig {
        window_length: 20.0,
        latency: LatencyModel::Fixed(0.0),
        failures: None,
        seed: 3,
        solve_deadline: None,
    };
    let mut sched = WindowedScheduler::with_backend(FleetExecutor::new(infra), config, source);
    let report = sched.run(&RoundRobinAllocator, 200.0);
    assert_eq!(report.total_admitted(), 2);
    assert_eq!(report.total_rejected(), 0);
    // Everyone gone by the end: the backend drained back to empty books.
    let last = report.windows.last().unwrap();
    assert_eq!(last.running_vms, 0);
    assert_eq!(last.active_servers, 0);
    sched.backend().verify().unwrap();
}

#[test]
fn amplifier_stream_is_byte_identical_for_the_same_seed() {
    let collect = |seed: u64| -> Vec<(u64, u64, u64)> {
        let reader = AzureReader::new(std::io::Cursor::new(SAMPLE), MalformedPolicy::Fail).unwrap();
        let mut amp = Amplifier::new(
            reader,
            AmplifyConfig {
                factor: 50,
                time_jitter: 40.0,
                demand_jitter: 0.3,
                seed,
            },
        )
        .unwrap();
        let mut out = Vec::new();
        while let Some(event) = amp.next_event() {
            let e = event.unwrap();
            out.push((e.id, e.at.to_bits(), e.cpu.to_bits()));
        }
        out
    };
    let a = collect(9);
    assert_eq!(a.len(), 64 * 50);
    assert_eq!(a, collect(9));
    assert_ne!(a, collect(10));
}
