//! Qualitative shape checks of the paper's claims at miniature scale.
//! These are the Section IV findings, asserted as inequalities over
//! seed-averaged metrics — the same direction the full figures show.

use cpo_iaas::exper::runner::{Algorithm, Effort};
use cpo_iaas::prelude::*;

const SEEDS: [u64; 3] = [1, 2, 3];

fn mean<F: Fn(&AllocationOutcome) -> f64>(
    algorithm: Algorithm,
    servers: usize,
    heavy: bool,
    f: F,
) -> f64 {
    let mut total = 0.0;
    for &seed in &SEEDS {
        let size = ScenarioSize::with_servers(servers);
        let spec = if heavy {
            ScenarioSpec::for_size(&size).with_heavy_affinity()
        } else {
            ScenarioSpec::for_size(&size)
        };
        let problem = spec.generate(seed);
        let outcome = algorithm.build(Effort::Quick, seed).allocate(&problem);
        total += f(&outcome);
    }
    total / SEEDS.len() as f64
}

/// Fig. 7: on small problems the evolutionary algorithms are slower than
/// Round Robin and CP ("2 to 3 times slower" in the paper; we assert the
/// ordering, not the ratio).
#[test]
fn fig7_shape_baselines_faster_on_small_problems() {
    let time = |o: &AllocationOutcome| o.elapsed.as_secs_f64();
    let rr = mean(Algorithm::RoundRobin, 10, false, time);
    let cp = mean(Algorithm::ConstraintProgramming, 10, false, time);
    let tabu = mean(Algorithm::Nsga3Tabu, 10, false, time);
    assert!(
        rr < tabu,
        "round-robin ({rr:.4}s) must beat the hybrid ({tabu:.4}s)"
    );
    assert!(
        cp < tabu,
        "cp ({cp:.4}s) must beat the hybrid ({tabu:.4}s) on small sizes"
    );
}

/// Fig. 8: CP's solve time grows much faster with size than the hybrid's
/// (the scalability cliff). Compare growth factors between two sizes.
#[test]
fn fig8_shape_cp_scales_worse_than_the_hybrid() {
    let time = |o: &AllocationOutcome| o.elapsed.as_secs_f64();
    let cp_small = mean(Algorithm::ConstraintProgramming, 20, false, time);
    let cp_big = mean(Algorithm::ConstraintProgramming, 120, false, time);
    let tabu_small = mean(Algorithm::Nsga3Tabu, 20, false, time);
    let tabu_big = mean(Algorithm::Nsga3Tabu, 120, false, time);
    let cp_growth = cp_big / cp_small.max(1e-9);
    let tabu_growth = tabu_big / tabu_small.max(1e-9);
    assert!(
        cp_growth > tabu_growth,
        "cp growth {cp_growth:.1}x must exceed hybrid growth {tabu_growth:.1}x"
    );
}

/// Fig. 9: the hybrid rejects no more than Round Robin and far less than
/// unmodified NSGA (whose 'rejections' are requests it fails to serve).
#[test]
fn fig9_shape_hybrid_accepts_most() {
    let rej = |o: &AllocationOutcome| o.rejection_rate;
    let rr = mean(Algorithm::RoundRobin, 25, true, rej);
    let nsga3 = mean(Algorithm::Nsga3, 25, true, rej);
    let tabu = mean(Algorithm::Nsga3Tabu, 25, true, rej);
    // Both sides are stochastic at Effort::Quick over 3 seeds; a single
    // request flipping in one seed moves the pooled mean by
    // 1/(seeds × requests). Allow exactly that one-flip margin — the
    // figure's claim is about the ordering, not a dead heat.
    let requests = ScenarioSpec::for_size(&ScenarioSize::with_servers(25))
        .with_heavy_affinity()
        .generate(SEEDS[0])
        .batch()
        .request_count();
    let one_flip = 1.0 / (SEEDS.len() as f64 * requests as f64);
    assert!(
        tabu <= rr + one_flip,
        "hybrid rejection ({tabu:.3}) must not exceed round-robin ({rr:.3}) \
         by more than one flipped request ({one_flip:.4})"
    );
    assert!(
        tabu < nsga3,
        "hybrid rejection ({tabu:.3}) must beat unmodified nsga3 ({nsga3:.3})"
    );
}

/// Fig. 10: only the unmodified evolutionary algorithms violate
/// constraints; everything else is exactly zero.
#[test]
fn fig10_shape_only_unmodified_nsga_violates() {
    let viol = |o: &AllocationOutcome| o.violated_constraints as f64;
    for algorithm in [
        Algorithm::RoundRobin,
        Algorithm::ConstraintProgramming,
        Algorithm::Nsga3Cp,
        Algorithm::Nsga3Tabu,
    ] {
        let v = mean(algorithm, 25, true, viol);
        assert_eq!(v, 0.0, "{} must never violate", algorithm.label());
    }
    let v2 = mean(Algorithm::Nsga2, 25, true, viol);
    let v3 = mean(Algorithm::Nsga3, 25, true, viol);
    assert!(
        v2 > 0.0,
        "unmodified nsga2 should violate on hard scenarios"
    );
    assert!(
        v3 > 0.0,
        "unmodified nsga3 should violate on hard scenarios"
    );
}

/// Fig. 11: unmodified NSGA incurs the highest provider cost; CP and the
/// hybrids stay below it.
#[test]
fn fig11_shape_cp_and_hybrids_cheapest() {
    let cost = |o: &AllocationOutcome| o.provider_cost();
    let cp = mean(Algorithm::ConstraintProgramming, 25, true, cost);
    let nsga2 = mean(Algorithm::Nsga2, 25, true, cost);
    let tabu = mean(Algorithm::Nsga3Tabu, 25, true, cost);
    assert!(
        cp < nsga2,
        "cp ({cp:.1}) must undercut unmodified nsga2 ({nsga2:.1})"
    );
    assert!(
        tabu < nsga2,
        "hybrid ({tabu:.1}) must undercut unmodified nsga2 ({nsga2:.1})"
    );
}

/// The conclusion's revenue claim: the hybrid "is designed to generate
/// the largest revenues for the providers" — net revenue (earned minus
/// Eq. 15 costs) must beat the unmodified NSGA and be at least
/// competitive with Round Robin.
#[test]
fn conclusion_hybrid_earns_most_net_revenue() {
    let net = |o: &AllocationOutcome| o.net_revenue();
    let tabu = mean(Algorithm::Nsga3Tabu, 25, true, net);
    let nsga3 = mean(Algorithm::Nsga3, 25, true, net);
    let rr = mean(Algorithm::RoundRobin, 25, true, net);
    assert!(
        tabu > nsga3,
        "hybrid net revenue ({tabu:.1}) must beat unmodified nsga3 ({nsga3:.1})"
    );
    assert!(
        tabu >= rr - 1e-9,
        "hybrid net revenue ({tabu:.1}) must be at least round-robin's ({rr:.1})"
    );
}

/// Table II, NSGA row: our modified NSGA achieves what the paper set out
/// to add — constraint compliance + scalability + customer compliance —
/// on one instance, end to end.
#[test]
fn table2_modified_nsga_meets_the_three_needs() {
    let size = ScenarioSize::with_servers(20);
    let problem = ScenarioSpec::for_size(&size)
        .with_heavy_affinity()
        .generate(4);
    let outcome = Algorithm::Nsga3Tabu
        .build(Effort::Quick, 4)
        .allocate(&problem);
    // Compliance with constraints.
    assert_eq!(outcome.violated_constraints, 0);
    // Compliance with customer requests: at least as many acceptances as
    // the greedy baseline.
    let rr = Algorithm::RoundRobin
        .build(Effort::Quick, 4)
        .allocate(&problem);
    assert!(outcome.rejection_rate <= rr.rejection_rate + 1e-9);
    // Control over infrastructure: provider cost is accounted and finite.
    assert!(outcome.provider_cost().is_finite() && outcome.provider_cost() > 0.0);
}
