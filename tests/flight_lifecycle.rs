//! End-to-end acceptance of the flight recorder and invariant monitors:
//!
//! * a failure-injected continuous-time run yields a complete, ordered,
//!   gap-free, orphan-free timeline for every generated request;
//! * deliberately corrupted assignments (capacity overload,
//!   anti-affinity break) trip the online monitors — counters, flight
//!   markers and, under strict mode, a fail-fast panic;
//! * the six paper allocators report zero monitor violations on a
//!   paper-shape scenario, and the monitor event count always equals the
//!   outcome's violated-constraint count.
//!
//! The recorder is process-global, so every test grabs `LOCK` first.

use cpo_iaas::core::prelude::*;
use cpo_iaas::des::prelude::*;
use cpo_iaas::exper::runner::{Algorithm, Effort};
use cpo_iaas::model::attr::AttrSet;
use cpo_iaas::obs::{flight, timeline};
use cpo_iaas::prelude::*;
use std::sync::Mutex;
use std::time::Duration;

static LOCK: Mutex<()> = Mutex::new(());

/// Serialise access to the process-global recorder; a panic in one test
/// must not poison the others.
fn recorder_guard() -> std::sync::MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn violation_events() -> Vec<cpo_iaas::obs::flight::FlightEvent> {
    flight::snapshot()
        .events
        .into_iter()
        .filter(|e| e.kind == flight::FlightKind::Violation)
        .collect()
}

#[test]
fn des_failure_run_yields_complete_timelines_for_every_request() {
    let _guard = recorder_guard();
    flight::enable();
    flight::reset();

    let infra = Infrastructure::new(
        AttrSet::standard(),
        vec![("dc".into(), ServerProfile::commodity(3).build_many(10))],
    );
    let arrivals = PoissonArrivals::new(
        ArrivalSpec {
            rate: 3.0,
            lifetime: (2.0, 6.0),
            ..Default::default()
        },
        11,
    );
    let config = DesConfig {
        window_length: 1.0,
        latency: LatencyModel::Fixed(0.05),
        failures: Some(FailureSpec {
            mtbf: 12.0,
            mttr: 2.5,
        }),
        seed: 11,
        solve_deadline: None,
    };
    let mut sched = WindowedScheduler::new(infra, SimConfig::default(), config, arrivals);
    let report = sched.run(&RoundRobinAllocator, 30.0);
    assert!(report.total_admitted() > 0, "the run must admit requests");

    let snap = flight::snapshot();
    flight::disable();
    assert_eq!(snap.overwritten, 0, "this run must fit in the ring");
    let generated: Vec<u64> = snap
        .events
        .iter()
        .filter(|e| e.kind == flight::FlightKind::Generated)
        .map(|e| e.key)
        .collect();
    assert!(!generated.is_empty());

    let set = timeline::reconstruct(&snap.events);
    // Complete: every generated request has a timeline...
    for &uid in &generated {
        assert!(
            set.timeline(uid).is_some(),
            "request {uid} generated but has no timeline"
        );
    }
    // ...and nothing else does.
    assert_eq!(set.timelines.len(), generated.len());
    // Orphan-free: every tenant-scoped event joined back to a request.
    assert!(set.orphans.is_empty(), "orphans: {:?}", set.orphans);
    // Ordered + gap-free: the lifecycle state machine accepts every one.
    let errors = set.all_errors();
    assert!(errors.is_empty(), "lifecycle defects: {errors:?}");
    // The failure injection actually exercised the failure path.
    assert!(snap
        .events
        .iter()
        .any(|e| e.kind == flight::FlightKind::ServerFailed));

    // The whole-run timeline file round-trips exactly.
    let text = timeline::timelines_json_lines(&set);
    let back = timeline::timelines_from_json_lines(&text).expect("own dump must parse");
    assert_eq!(back.timelines, set.timelines);
}

/// A 2-VM problem with an anti-affinity rule, plus an assignment that
/// overloads one server *and* breaks the rule.
fn corrupted_case() -> (AllocationProblem, Assignment) {
    let infra = Infrastructure::new(
        AttrSet::standard(),
        vec![("dc".into(), ServerProfile::commodity(3).build_many(3))],
    );
    let mut batch = RequestBatch::new();
    batch.push_request(
        // Far beyond any commodity server's capacity.
        vec![vm_spec(10_000.0, 1e9, 10.0); 2],
        vec![AffinityRule::new(
            AffinityKind::DifferentServer,
            vec![VmId(0), VmId(1)],
        )],
    );
    let problem = AllocationProblem::new(infra, batch, None);
    let mut assignment = Assignment::unassigned(2);
    assignment.assign(VmId(0), ServerId(0));
    assignment.assign(VmId(1), ServerId(0));
    (problem, assignment)
}

#[test]
fn monitors_flag_corrupted_assignments() {
    let _guard = recorder_guard();
    flight::enable();
    flight::reset();
    cpo_iaas::obs::enable();

    let (problem, assignment) = corrupted_case();
    let outcome = AllocationOutcome::from_assignment(
        &problem,
        assignment,
        Vec::new(),
        Duration::from_millis(1),
        0,
    );
    assert!(outcome.violated_constraints > 0);

    let events = violation_events();
    flight::disable();
    assert_eq!(
        events.len(),
        outcome.violated_constraints,
        "one monitor event per violated constraint"
    );
    // Both classes present: capacity (code 0) and affinity (code 2).
    assert!(events
        .iter()
        .any(|e| e.key == cpo_iaas::core::monitor::CODE_CAPACITY));
    assert!(events
        .iter()
        .any(|e| e.key == cpo_iaas::core::monitor::CODE_AFFINITY));

    // The labelled counters moved too.
    let snap = cpo_iaas::obs::snapshot();
    assert!(snap.counters.get("monitor.allocator.capacity").copied() > Some(0));
    assert!(snap.counters.get("monitor.allocator.affinity").copied() > Some(0));
}

#[test]
fn strict_mode_turns_violations_into_panics() {
    let _guard = recorder_guard();
    flight::enable();
    flight::reset();
    flight::set_strict(true);

    let (problem, assignment) = corrupted_case();
    let result = std::panic::catch_unwind(move || {
        AllocationOutcome::from_assignment(
            &problem,
            assignment,
            Vec::new(),
            Duration::from_millis(1),
            0,
        )
    });
    flight::set_strict(false);
    flight::disable();
    assert!(result.is_err(), "strict monitors must fail fast");
}

#[test]
fn six_allocators_report_zero_monitor_violations_on_paper_shapes() {
    let _guard = recorder_guard();
    flight::enable();

    let size = ScenarioSize::with_servers(15);
    let problem = ScenarioSpec::for_size(&size).generate(42);
    for algorithm in Algorithm::all() {
        flight::reset();
        let outcome = algorithm.build(Effort::Quick, 42).allocate(&problem);
        let events = violation_events();
        // Consistency: the monitor saw exactly what the outcome reports.
        assert_eq!(
            events.len(),
            outcome.violated_constraints,
            "{}: monitor events must match violated_constraints",
            algorithm.label()
        );
        assert_eq!(
            outcome.violated_constraints,
            0,
            "{}: paper-shape scenario must be solved violation-free",
            algorithm.label()
        );
    }
    flight::disable();
}
