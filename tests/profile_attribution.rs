//! Acceptance suite for the latency-attribution profiler
//! (`cpo_obs::prof`) over real sharded runs: per-request stage sums
//! must equal end-to-end latency, the deterministic profile subset must
//! reproduce byte-for-byte across same-seed runs, and the per-server
//! conflict heat must agree with the placement store's own counters.
//!
//! The profiler and the flight hook are global, so every test in this
//! file serialises on one mutex and resets both on the way out.

use cpo_core::prelude::RoundRobinAllocator;
use cpo_des::prelude::*;
use cpo_model::attr::AttrSet;
use cpo_model::prelude::*;
use cpo_obs::prof::{self, ProfConfig, Profile};
use cpo_platform::prelude::{
    FleetExecutor, ShardConfig, ShardedScheduler, SimConfig, StoreMetrics, WindowExecutor,
};
use cpo_scenario::prelude::ArrivalSpec;
use cpo_traces::prelude::*;
use std::io::Cursor;
use std::sync::Mutex;

const SAMPLE: &str = include_str!("../examples/data/azure_sample.csv");

/// Serialises profiler-touching tests (flight + prof are process-wide).
static LOCK: Mutex<()> = Mutex::new(());

fn infra(servers: usize) -> Infrastructure {
    Infrastructure::new(
        AttrSet::standard(),
        vec![("dc".into(), ServerProfile::commodity(3).build_many(servers))],
    )
}

/// One profiled sharded trace replay; returns the profile and the
/// store's cumulative commit counters.
fn profiled_trace_replay(
    servers: usize,
    shards: usize,
    amplify: usize,
    seed: u64,
    config: ProfConfig,
) -> (Profile, StoreMetrics) {
    let reader = AzureReader::new(Cursor::new(SAMPLE), MalformedPolicy::Fail).expect("sample");
    let amp = Amplifier::new(
        reader,
        AmplifyConfig {
            factor: amplify,
            time_jitter: 30.0,
            demand_jitter: 0.2,
            seed,
        },
    )
    .expect("amplify");
    let horizon = amp.horizon() + 120.0;
    let source = TraceArrivalSource::new(amp, ArrivalSpec::default(), seed);
    let des = DesConfig {
        window_length: 60.0,
        latency: LatencyModel::Fixed(0.0),
        failures: None,
        seed,
        solve_deadline: None,
    };
    cpo_obs::flight::enable();
    prof::enable_with(config);
    let backend = ShardedScheduler::new(
        FleetExecutor::new(infra(servers)),
        ShardConfig {
            shards,
            // Round-robin partitioning on purpose: these tests attribute
            // commit *conflicts*, which region hashing is built to avoid.
            partition: cpo_platform::prelude::PartitionStrategy::RoundRobin,
            ..ShardConfig::default()
        },
    );
    let mut sched = WindowedScheduler::with_backend(backend, des, source);
    sched.run(&RoundRobinAllocator, horizon);
    let metrics = sched.backend().backend().store().metrics();
    let profile = prof::snapshot().expect("profiler enabled");
    prof::disable();
    prof::reset();
    cpo_obs::flight::disable();
    cpo_obs::flight::reset();
    (profile, metrics)
}

/// One profiled sharded Poisson DES run (synthetic arrivals, sharded
/// `WindowExecutor` backend — the `exper des --shards N` path).
fn profiled_des_run(
    servers: usize,
    shards: usize,
    rate: f64,
    horizon: f64,
    seed: u64,
    config: ProfConfig,
) -> Profile {
    let source = PoissonArrivals::new(
        ArrivalSpec {
            rate,
            ..Default::default()
        },
        seed,
    );
    let des = DesConfig {
        latency: LatencyModel::PerRequest {
            base: 0.02,
            per_request: 0.01,
        },
        failures: None,
        seed,
        ..Default::default()
    };
    cpo_obs::flight::enable();
    prof::enable_with(config);
    let backend = ShardedScheduler::new(
        WindowExecutor::new(infra(servers), SimConfig::default()),
        ShardConfig {
            shards,
            // Round-robin partitioning on purpose: these tests attribute
            // commit *conflicts*, which region hashing is built to avoid.
            partition: cpo_platform::prelude::PartitionStrategy::RoundRobin,
            ..ShardConfig::default()
        },
    );
    let mut sched = WindowedScheduler::with_backend(backend, des, source);
    sched.run(&RoundRobinAllocator, horizon);
    let profile = prof::snapshot().expect("profiler enabled");
    prof::disable();
    prof::reset();
    cpo_obs::flight::disable();
    cpo_obs::flight::reset();
    profile
}

#[test]
fn stage_sums_equal_end_to_end_latency_on_a_sharded_trace_replay() {
    let _g = LOCK.lock().unwrap();
    let (profile, _) = profiled_trace_replay(
        48,
        4,
        40,
        42,
        ProfConfig {
            exemplars: 8,
            keep_requests: true,
        },
    );
    assert!(profile.tracked > 0, "replay must track requests");
    assert_eq!(
        profile.finalized(),
        profile.tracked - profile.in_flight,
        "every decided request is finalized"
    );
    // The acceptance invariant asks for ≥95% attribution per admitted
    // request; the segment construction is gap-free, so the sum is in
    // fact exact for every finalized request.
    for r in &profile.requests {
        assert_eq!(
            r.stage_sum_us(),
            r.total_us,
            "request {}: stages {:?} must sum to total {}",
            r.key,
            r.stage_us,
            r.total_us
        );
    }
    assert!(
        profile.accounted_fraction() >= 0.95,
        "accounted fraction {:.4} below the 95% invariant",
        profile.accounted_fraction()
    );
    assert_eq!(
        profile.requests.len() as u64,
        profile.finalized(),
        "keep_requests must retain every finalized request"
    );
}

#[test]
fn conflict_hotspots_agree_with_store_metrics() {
    let _g = LOCK.lock().unwrap();
    let (profile, metrics) = profiled_trace_replay(32, 4, 40, 7, ProfConfig::default());
    assert!(
        metrics.conflicts > 0,
        "a 4-shard replay on a small fleet must produce conflicts"
    );
    assert_eq!(profile.commits, metrics.commits, "commit counters agree");
    assert_eq!(profile.bounces, metrics.conflicts, "bounce counters agree");
    assert_eq!(
        profile.capacity_bounces, metrics.capacity_conflicts,
        "capacity split agrees"
    );
    let heat: u64 = profile.hot_servers.iter().map(|h| h.conflicts).sum();
    assert_eq!(
        heat, metrics.conflicts,
        "per-server heat must sum to the store's conflict counter"
    );
    // Ranking is conflicts-descending, ties broken by server index.
    for pair in profile.hot_servers.windows(2) {
        assert!(
            (pair[1].conflicts, pair[0].server) <= (pair[0].conflicts, pair[1].server),
            "hot-server ranking out of order: {pair:?}"
        );
    }
    for h in &profile.hot_servers {
        assert_eq!(h.conflicts, h.stale + h.capacity, "reason split is total");
    }
}

#[test]
fn deterministic_profile_subset_is_byte_identical_across_same_seed_runs() {
    let _g = LOCK.lock().unwrap();
    let (a, _) = profiled_trace_replay(32, 4, 30, 13, ProfConfig::default());
    let (b, _) = profiled_trace_replay(32, 4, 30, 13, ProfConfig::default());
    assert_eq!(
        a.to_json(false),
        b.to_json(false),
        "deterministic profile JSON must reproduce byte-for-byte"
    );
    // A different seed must actually change the deterministic payload —
    // otherwise the byte-identity above proves nothing.
    let (c, _) = profiled_trace_replay(32, 4, 30, 14, ProfConfig::default());
    assert_ne!(
        a.to_json(false),
        c.to_json(false),
        "deterministic subset must depend on the run"
    );
}

mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(6))]

        /// On randomized sharded Poisson runs, every finalized request's
        /// stage decomposition sums exactly to its end-to-end latency
        /// and the accounting invariant holds.
        #[test]
        fn stage_sums_equal_latency_on_randomized_sharded_runs(
            seed in 0u64..1000,
            servers in 6usize..20,
            shards in 1usize..5,
            rate in 1.0f64..6.0,
        ) {
            let _g = LOCK.lock().unwrap();
            let profile = profiled_des_run(
                servers,
                shards,
                rate,
                30.0,
                seed,
                ProfConfig { exemplars: 4, keep_requests: true },
            );
            for r in &profile.requests {
                prop_assert_eq!(
                    r.stage_sum_us(),
                    r.total_us,
                    "request {}: stages {:?} vs total {}",
                    r.key, r.stage_us, r.total_us
                );
            }
            if profile.finalized() > 0 {
                prop_assert!(profile.accounted_fraction() >= 0.95);
            }
        }
    }
}
