//! Property tests over the optimistic-commit [`PlacementStore`]:
//! randomized concurrent commit interleavings must never oversubscribe
//! a server (the capacity side of Eqs. 9–14, re-checked from scratch
//! via `cpo_model::constraints::check`), every transaction must
//! terminate within a provable retry bound, and the sharded scheduler
//! built on the store must be double-run deterministic.

use cpo_iaas::model::attr::AttrSet;
use cpo_iaas::prelude::*;
use proptest::prelude::*;
use std::sync::Arc;

/// One logical commit transaction: a few VMs with their demands and
/// chosen target servers.
#[derive(Clone, Debug)]
struct Txn {
    /// (target server, demand row) per VM.
    placements: Vec<(usize, Vec<f64>)>,
}

fn infra(m: usize) -> Infrastructure {
    Infrastructure::new(
        AttrSet::standard(),
        vec![("dc".into(), ServerProfile::commodity(3).build_many(m))],
    )
}

/// Strategy: a fleet size plus a set of transactions targeting random
/// servers with random (sometimes deliberately oversized) demands.
fn txn_set() -> impl Strategy<Value = (usize, Vec<Txn>)> {
    (2usize..6).prop_flat_map(|m| {
        let txn = proptest::collection::vec(
            (0..m, 1u64..14).prop_map(|(server, cpu)| {
                let c = cpu as f64;
                (server, vec![c, c * 1024.0, c * 10.0])
            }),
            1..4,
        )
        .prop_map(|placements| Txn { placements });
        (Just(m), proptest::collection::vec(txn, 1..16))
    })
}

/// Commits every transaction from `threads` worker threads, each
/// re-snapshotting after a stale bounce, until it either commits or
/// hits a genuine capacity rejection. Returns the committed subset (in
/// no particular order) and the worst retry depth observed.
fn storm(store: &Arc<PlacementStore>, txns: &[Txn], threads: usize) -> (Vec<Txn>, usize) {
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let store = Arc::clone(store);
                let mine: Vec<(usize, Txn)> = txns
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| i % threads == t)
                    .map(|(i, x)| (i, x.clone()))
                    .collect();
                s.spawn(move || {
                    let mut committed = Vec::new();
                    let mut max_retries = 0usize;
                    for (i, txn) in mine {
                        let mut retries = 0usize;
                        loop {
                            let snap = store.snapshot();
                            let placements: Vec<(ServerId, &[f64])> = txn
                                .placements
                                .iter()
                                .map(|(j, d)| (ServerId(*j), d.as_slice()))
                                .collect();
                            let ctx = CommitCtx {
                                key: i as u64,
                                tenant: i as u64,
                                window: 0,
                                round: retries as u64,
                            };
                            match store.try_commit(&placements, &snap.versions, &ctx) {
                                Ok(()) => {
                                    committed.push(txn);
                                    break;
                                }
                                Err(ConflictReason::Capacity) => break,
                                Err(ConflictReason::Stale) => {
                                    retries += 1;
                                    // Progress bound: a stale bounce off a
                                    // fresh snapshot implies someone else
                                    // committed in between; commits are
                                    // finite, so retries are too.
                                    assert!(
                                        retries <= txns.len() + 1,
                                        "transaction {i} exceeded the retry bound"
                                    );
                                }
                            }
                        }
                        max_retries = max_retries.max(retries);
                    }
                    (committed, max_retries)
                })
            })
            .collect();
        let mut all = Vec::new();
        let mut worst = 0usize;
        for h in handles {
            let (c, r) = h.join().expect("storm worker panicked");
            all.extend(c);
            worst = worst.max(r);
        }
        (all, worst)
    })
}

/// Rebuilds a batch + assignment from the committed transactions and
/// re-checks the paper's hard constraints from scratch.
fn recheck(
    infra: &Infrastructure,
    committed: &[Txn],
) -> cpo_iaas::model::constraints::ViolationReport {
    let mut batch = RequestBatch::new();
    let mut targets: Vec<usize> = Vec::new();
    for txn in committed {
        let specs: Vec<VmSpec> = txn
            .placements
            .iter()
            .map(|(_, d)| VmSpec {
                demand: d.clone(),
                ..vm_spec(0.0, 0.0, 0.0)
            })
            .collect();
        targets.extend(txn.placements.iter().map(|(j, _)| *j));
        batch.push_request(specs, vec![]);
    }
    let mut assignment = Assignment::unassigned(batch.vm_count());
    for (k, &j) in targets.iter().enumerate() {
        assignment.assign(VmId(k), ServerId(j));
    }
    cpo_iaas::model::constraints::check(&assignment, &batch, infra)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// No interleaving of concurrent commits may oversubscribe any
    /// server: the committed set, re-checked from scratch against the
    /// pristine infrastructure, is always feasible.
    #[test]
    fn committed_set_never_oversubscribes((m, txns) in txn_set(), threads in 1usize..5) {
        let fleet = infra(m);
        let store = Arc::new(PlacementStore::new(&fleet));
        let (committed, _) = storm(&store, &txns, threads);
        let report = recheck(&fleet, &committed);
        prop_assert!(
            report.is_feasible(),
            "committed set infeasible: {:?}",
            report.violations()
        );
        // Counter accuracy: every attempt is exactly one commit or one
        // conflict, and commits equal the committed transactions.
        let metrics = store.metrics();
        prop_assert_eq!(metrics.commits as usize, committed.len());
    }

    /// The serial protocol (one thread) never produces a stale bounce:
    /// every rejection is a genuine capacity rejection.
    #[test]
    fn serial_commits_never_go_stale((m, txns) in txn_set()) {
        let fleet = infra(m);
        let store = Arc::new(PlacementStore::new(&fleet));
        let (committed, worst_retry) = storm(&store, &txns, 1);
        prop_assert_eq!(worst_retry, 0, "serial commits cannot lose a race");
        let metrics = store.metrics();
        prop_assert_eq!(metrics.commits as usize, committed.len());
        prop_assert_eq!(metrics.conflicts, metrics.capacity_conflicts);
    }
}

/// Strategy: a one-window sharded workload — fleet size, request sizes,
/// shard count and retry budget.
fn sharded_window() -> impl Strategy<Value = (usize, Vec<usize>, usize, usize, u64)> {
    (
        1usize..6,
        proptest::collection::vec(1usize..3, 1..20),
        1usize..7,
        0usize..4,
        1u64..1_000,
    )
}

fn run_sharded_window(
    servers: usize,
    request_vms: &[usize],
    shards: usize,
    retry_budget: usize,
    seed: u64,
) -> (WindowReport, Vec<u64>, StoreMetrics) {
    let mut sched = ShardedScheduler::new(
        FleetExecutor::new(infra(servers)),
        ShardConfig {
            shards,
            retry_budget,
            // Round-robin keeps contending requests spread across shards,
            // which is exactly the commit-race surface these properties
            // probe.
            partition: PartitionStrategy::RoundRobin,
        },
    );
    let mut arrivals = RequestBatch::new();
    let mut s = seed;
    for &vms in request_vms {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let cpu = 1.0 + (s >> 33) as f64 % 8.0;
        arrivals.push_request(vec![vm_spec(cpu, cpu * 1024.0, cpu * 10.0); vms], vec![]);
    }
    let ids = sched.backend_mut().register_arrivals(&arrivals);
    let (report, admitted) = sched.execute_window(&RoundRobinAllocator, &arrivals, &ids);
    assert!(sched.backend().verify().is_ok(), "fleet books must balance");
    (
        report,
        admitted.iter().map(|t| t.0).collect(),
        sched.backend().store().metrics(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every request terminates within the retry budget — admitted or
    /// rejected, nothing lost, under any (fleet, workload, shards,
    /// budget) combination — and the run reproduces exactly.
    #[test]
    fn sharded_window_terminates_and_reproduces(
        (servers, request_vms, shards, retry_budget, seed) in sharded_window()
    ) {
        let (r1, a1, m1) = run_sharded_window(servers, &request_vms, shards, retry_budget, seed);
        prop_assert_eq!(r1.arrivals, request_vms.len());
        prop_assert_eq!(
            r1.admitted + r1.rejected,
            request_vms.len(),
            "every request must terminate"
        );
        prop_assert_eq!(r1.admitted, a1.len());
        let (r2, a2, m2) = run_sharded_window(servers, &request_vms, shards, retry_budget, seed);
        prop_assert_eq!(r1.admitted, r2.admitted, "double-run determinism: admitted");
        prop_assert_eq!(r1.rejected, r2.rejected, "double-run determinism: rejected");
        prop_assert_eq!(
            r1.provider_cost.to_bits(),
            r2.provider_cost.to_bits(),
            "double-run determinism: provider cost bits"
        );
        prop_assert_eq!(a1, a2, "double-run determinism: admitted ids");
        prop_assert_eq!(m1, m2, "double-run determinism: conflict counters");
    }
}
