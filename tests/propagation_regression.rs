//! Regression guard for the event-driven propagation engine, pinned on the
//! fig8 (many-resources sweep) cell at the canonical seed 42.
//!
//! The batch-level CSP of that cell — one packing constraint over all VMs
//! plus one propagator per affinity rule — is where the watcher lists
//! matter: a branching decision touches one request, yet the full-fixpoint
//! loop re-runs every rule of every request each round. The guard demands
//! the queued engine reach the identical outcome with ≥ 5× fewer
//! propagator invocations, and stay under a pinned absolute budget so a
//! future change silently reverting to full fixpoint fails CI here.

use cpo_iaas::core::cp_alloc::build_batch_csp;
use cpo_iaas::cpsolve::prelude::*;
use cpo_iaas::model::prelude::*;
use cpo_iaas::scenario::prelude::{ScenarioSize, ScenarioSpec};

/// The fig8 seed-42 cell, restricted to admissible requests: batch
/// admission is all-or-nothing, so requests whose rules are structurally
/// unsatisfiable on this infrastructure (a different-datacenter rule
/// spanning more VMs than there are datacenters) are dropped upfront —
/// exactly what an admission check rejects before solving.
fn fig8_problem() -> AllocationProblem {
    let raw = ScenarioSpec::for_size(&ScenarioSize::with_servers(100)).generate(42);
    let g = raw.g();
    let mut batch = RequestBatch::new();
    for req in raw.batch().requests() {
        let admissible = req
            .rules
            .iter()
            .all(|r| r.kind() != AffinityKind::DifferentDatacenter || r.vms().len() <= g);
        if !admissible {
            continue;
        }
        let base = batch.vms().len();
        let vms: Vec<VmSpec> = req.vms.iter().map(|&k| raw.batch().vm(k).clone()).collect();
        let rules: Vec<AffinityRule> = req
            .rules
            .iter()
            .map(|r| {
                let remapped: Vec<VmId> = r
                    .vms()
                    .iter()
                    .map(|k| {
                        let pos = req.vms.iter().position(|v| v == k).expect("rule vm");
                        VmId(base + pos)
                    })
                    .collect();
                AffinityRule::new(r.kind(), remapped)
            })
            .collect();
        batch.push_request(vms, rules);
    }
    AllocationProblem::new(raw.infra().clone(), batch, None)
}

/// Solves the fig8 seed-42 batch CSP with the given engine.
fn run_cell(engine: Engine) -> (Outcome, SearchStats) {
    let problem = fig8_problem();
    let mut csp = build_batch_csp(&problem);
    let config = SearchConfig {
        deadline: None, // wall-clock budgets are nondeterministic
        max_nodes: Some(5_000),
        value_order: ValueOrder::Lex,
        engine,
    };
    solve(&mut csp, &config)
}

#[test]
fn queued_engine_saves_5x_propagations_on_fig8_cell() {
    let (queued_outcome, queued) = run_cell(Engine::Queued);
    let (reference_outcome, reference) = run_cell(Engine::Reference);

    assert_eq!(
        queued_outcome, reference_outcome,
        "engines must solve the fig8 cell identically"
    );
    assert!(
        queued_outcome.solution().is_some(),
        "the fig8 cell must be satisfiable: {queued_outcome:?}"
    );
    assert_eq!(queued.nodes, reference.nodes, "tree shapes diverged");
    assert!(
        reference.propagations >= 5 * queued.propagations,
        "expected ≥5× saving: queued {} vs reference {}",
        queued.propagations,
        reference.propagations
    );

    // Absolute pin, well below the reference count on this fixed seed: a
    // silent revert to full-fixpoint behaviour lands at the reference
    // count and fails. Headroom over the measured value covers benign
    // heuristic tweaks, not an engine regression.
    const PINNED_MAX_QUEUED: u64 = 800; // measured 533 on 2026-08-05
    assert!(
        queued.propagations <= PINNED_MAX_QUEUED,
        "queued propagations regressed past the pin: {} > {}",
        queued.propagations,
        PINNED_MAX_QUEUED
    );
    println!(
        "queued={} reference={} wakeups={}",
        queued.propagations, reference.propagations, queued.wakeups
    );
}
