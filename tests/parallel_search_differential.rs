//! Differential suite for the anytime parallel search engine.
//!
//! The parallel exhaustive scan is a *logical* partitioning of the
//! serial scan: at any `threads` value the trajectory — every committed
//! move, every counter — must be bit-identical to the serial run, and
//! the delta-scored runs must match the `Scoring::Full` recompute
//! oracle. The CI matrix exercises this file at 1/2/4 threads through
//! `CPO_SEARCH_THREADS` (defaulting to 4 here so a bare `cargo test`
//! still crosses the serial/parallel boundary).

use cpo_iaas::model::deadline::Deadline;
use cpo_iaas::prelude::*;
use cpo_iaas::tabu::search::{
    tabu_search, tabu_search_observed, Neighborhood, Score, Scoring, SearchObserver, TabuConfig,
    TabuResult,
};
use proptest::prelude::*;
use std::time::Duration;

/// Threads under test: `CPO_SEARCH_THREADS` (CI matrix), default 4.
fn matrix_threads() -> usize {
    std::env::var("CPO_SEARCH_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4)
}

fn scenario(servers: usize, seed: u64) -> AllocationProblem {
    ScenarioSpec::for_size(&ScenarioSize::with_servers(servers)).generate(seed)
}

/// A deliberately stressed start: everything piled onto the first
/// servers so the search has violations to repair.
fn crowded_start(problem: &AllocationProblem) -> Assignment {
    let mut a = Assignment::unassigned(problem.n());
    let m = problem.m().max(1);
    for k in 0..problem.n() {
        a.assign(VmId(k), ServerId(k % (m / 2).max(1)));
    }
    a
}

fn run(problem: &AllocationProblem, config: &TabuConfig) -> TabuResult {
    tabu_search(problem, crowded_start(problem), config)
}

/// Every observable of two runs that must agree bit-for-bit.
fn fingerprint(r: &TabuResult) -> (Vec<Option<usize>>, u64, u64, usize, usize, usize, usize) {
    let placement: Vec<Option<usize>> = (0..r.best.len())
        .map(|k| r.best.server_of(VmId(k)).map(|j| j.index()))
        .collect();
    (
        placement,
        r.best_score.violation.to_bits(),
        r.best_score.total_cost.to_bits(),
        r.iterations,
        r.accepted_moves,
        r.aspiration_hits,
        r.candidates_scanned,
    )
}

#[test]
fn parallel_exhaustive_trajectory_is_bit_identical_to_serial() {
    for (servers, seed) in [(10, 7), (14, 21), (18, 42)] {
        let problem = scenario(servers, seed);
        let base = TabuConfig {
            max_iterations: 60,
            neighborhood: Neighborhood::Exhaustive,
            scoring: Scoring::Delta,
            ..TabuConfig::default()
        };
        let serial = run(&problem, &base);
        for threads in [2, 3, matrix_threads()] {
            let par = run(&problem, &TabuConfig { threads, ..base });
            assert_eq!(
                fingerprint(&par),
                fingerprint(&serial),
                "threads={threads} diverged on servers={servers} seed={seed}"
            );
            assert_eq!(par.delta_evals, serial.delta_evals, "eval counts drift");
            assert_eq!(par.eval_work, serial.eval_work, "work accounting drifts");
        }
    }
}

#[test]
fn parallel_delta_scan_matches_the_full_scoring_oracle() {
    // Same trajectory whether candidates are scored incrementally
    // (delta, possibly partitioned) or recomputed from scratch: the
    // executable proof that the parallel scan reduction picks the same
    // canonical winner as the text-book full evaluation.
    let problem = scenario(12, 11);
    let base = TabuConfig {
        max_iterations: 40,
        neighborhood: Neighborhood::Exhaustive,
        ..TabuConfig::default()
    };
    let oracle = run(
        &problem,
        &TabuConfig {
            scoring: Scoring::Full,
            ..base
        },
    );
    for threads in [1, matrix_threads()] {
        let delta = run(
            &problem,
            &TabuConfig {
                scoring: Scoring::Delta,
                threads,
                ..base
            },
        );
        assert_eq!(
            fingerprint(&delta),
            fingerprint(&oracle),
            "delta(threads={threads}) diverged from the full-scoring oracle"
        );
    }
}

#[test]
fn candidate_list_search_is_identical_across_scoring_modes_and_threads() {
    let problem = scenario(12, 5);
    let base = TabuConfig {
        max_iterations: 50,
        neighborhood: Neighborhood::Candidates { refresh: 8 },
        ..TabuConfig::default()
    };
    let oracle = run(
        &problem,
        &TabuConfig {
            scoring: Scoring::Full,
            ..base
        },
    );
    for threads in [1, matrix_threads()] {
        let delta = run(
            &problem,
            &TabuConfig {
                scoring: Scoring::Delta,
                threads,
                ..base
            },
        );
        assert_eq!(
            fingerprint(&delta),
            fingerprint(&oracle),
            "candidate-list run (threads={threads}) diverged from Scoring::Full"
        );
    }
}

#[test]
fn expired_deadline_returns_the_start_and_flags_the_cut() {
    let problem = scenario(10, 3);
    let start = crowded_start(&problem);
    let r = tabu_search(
        &problem,
        start.clone(),
        &TabuConfig {
            max_iterations: 200,
            neighborhood: Neighborhood::Exhaustive,
            deadline: Deadline::within(Duration::ZERO),
            ..TabuConfig::default()
        },
    );
    assert!(r.deadline_hit);
    assert_eq!(r.iterations, 0);
    assert_eq!(r.best, start, "anytime contract: best-so-far, never worse");
}

#[test]
fn unbounded_deadline_leaves_the_trajectory_untouched() {
    let problem = scenario(10, 9);
    let config = TabuConfig {
        max_iterations: 50,
        neighborhood: Neighborhood::Exhaustive,
        ..TabuConfig::default()
    };
    let plain = run(&problem, &config);
    let bounded = run(
        &problem,
        &TabuConfig {
            deadline: Deadline::within(Duration::from_secs(3600)),
            ..config
        },
    );
    assert!(!bounded.deadline_hit, "an hour must outlive 50 iterations");
    assert_eq!(fingerprint(&bounded), fingerprint(&plain));
}

#[test]
fn racing_portfolio_acceptance_never_trails_its_members() {
    // Equal generous deadline for the race and each member run alone:
    // the reduction keeps the best member outcome, so the race can only
    // tie or beat every member.
    let problem = scenario(14, 17);
    let budget = Some(Duration::from_secs(60));
    let members = || -> Vec<Box<dyn Allocator>> {
        vec![
            Box::new(FilteringAllocator),
            Box::new(CpAllocator::default()),
            Box::new(TabuSearchAllocator::default()),
        ]
    };
    let race =
        PortfolioAllocator::racing(members(), PortfolioCriterion::AcceptanceThenCost, budget);
    let out = race.allocate(&problem);
    assert!(out.is_clean());
    for member in members() {
        let solo =
            member.allocate_with_deadline(&problem, Deadline::within(Duration::from_secs(60)));
        assert!(
            out.accepted_requests >= solo.accepted_requests,
            "race admitted {} but member {} admitted {}",
            out.accepted_requests,
            member.name(),
            solo.accepted_requests
        );
    }
}

/// Records the incumbent trajectory the search reports.
struct Recorder(Vec<(usize, Score)>);

impl SearchObserver for Recorder {
    fn on_incumbent(&mut self, iteration: usize, score: Score) {
        self.0.push((iteration, score));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Anytime monotonicity: a candidate-list search never reports an
    /// incumbent worse than an earlier one, at any thread count — so
    /// cutting the run at *any* deadline yields the best-so-far.
    #[test]
    fn candidate_list_incumbents_never_regress(
        servers in 8usize..16,
        seed in 0u64..500,
        refresh in 1usize..12,
        threads in 1usize..5,
    ) {
        let problem = scenario(servers, seed);
        let config = TabuConfig {
            max_iterations: 40,
            neighborhood: Neighborhood::Candidates { refresh },
            threads,
            ..TabuConfig::default()
        };
        let mut rec = Recorder(Vec::new());
        let result = tabu_search_observed(&problem, crowded_start(&problem), &config, &mut rec);
        prop_assert!(!rec.0.is_empty(), "the start incumbent is always reported");
        for pair in rec.0.windows(2) {
            prop_assert!(
                pair[1].1.better_than(&pair[0].1),
                "incumbent regressed: {:?} after {:?}",
                pair[1],
                pair[0]
            );
        }
        let last = rec.0.last().unwrap().1;
        prop_assert_eq!(last.violation.to_bits(), result.best_score.violation.to_bits());
        prop_assert_eq!(last.total_cost.to_bits(), result.best_score.total_cost.to_bits());
    }
}
