//! Property-based tests over the model and the repair operators:
//! randomised problems and assignments, with the paper's invariants as
//! properties.

use cpo_iaas::model::attr::AttrSet;
use cpo_iaas::prelude::*;
use cpo_iaas::tabu::repair::{repair, RepairConfig};
use proptest::prelude::*;

/// Strategy: a small random problem (infrastructure + batch, no rules).
fn problem_strategy() -> impl Strategy<Value = AllocationProblem> {
    (2usize..6, 1usize..10, 1u64..1_000).prop_map(|(m, reqs, seed)| {
        let profile = ServerProfile::commodity(3);
        let infra = Infrastructure::new(
            AttrSet::standard(),
            vec![("dc".into(), profile.build_many(m))],
        );
        let mut batch = RequestBatch::new();
        let mut s = seed;
        for _ in 0..reqs {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let cpu = 1.0 + (s >> 33) as f64 % 8.0;
            batch.push_request(vec![vm_spec(cpu, cpu * 1024.0, cpu * 10.0)], vec![]);
        }
        AllocationProblem::new(infra, batch, None)
    })
}

/// Strategy: a problem plus a complete random assignment.
fn problem_and_assignment() -> impl Strategy<Value = (AllocationProblem, Assignment)> {
    problem_strategy().prop_flat_map(|p| {
        let (m, n) = (p.m(), p.n());
        (Just(p), proptest::collection::vec(0usize..m, n))
            .prop_map(|(p, genes)| (p, Assignment::from_genes(&genes)))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Violation degree is zero exactly when the assignment is feasible.
    #[test]
    fn degree_zero_iff_feasible((p, a) in problem_and_assignment()) {
        let report = p.check(&a);
        prop_assert_eq!(report.degree() == 0.0, p.is_feasible(&a));
        prop_assert_eq!(report.count() == 0, p.is_feasible(&a));
    }

    /// The incremental load tracker agrees with a from-scratch rebuild
    /// after any sequence of assigns.
    #[test]
    fn incremental_tracker_matches_rebuild((p, a) in problem_and_assignment()) {
        let mut inc = LoadTracker::new(p.m(), p.h());
        for (k, j) in a.iter_assigned() {
            inc.add(k, j, p.batch());
        }
        let rebuilt = p.tracker(&a);
        for j in p.infra().server_ids() {
            for l in p.infra().attrs().ids() {
                prop_assert!((inc.used(j, l) - rebuilt.used(j, l)).abs() < 1e-9);
            }
            prop_assert_eq!(inc.hosted(j), rebuilt.hosted(j));
        }
    }

    /// Objectives are finite and non-negative for any complete assignment.
    #[test]
    fn objectives_are_finite_and_nonnegative((p, a) in problem_and_assignment()) {
        let z = p.evaluate(&a);
        for v in z.as_array() {
            prop_assert!(v.is_finite());
            prop_assert!(v >= 0.0);
        }
        prop_assert!(z.total() >= z.usage_opex);
    }

    /// The X_ijk tensor view holds exactly one true cell per assigned VM.
    #[test]
    fn xijk_is_a_function_of_vms((p, a) in problem_and_assignment()) {
        for k in p.batch().vm_ids() {
            let count = p
                .infra()
                .datacenter_ids()
                .flat_map(|i| p.infra().server_ids().map(move |j| (i, j)))
                .filter(|&(i, j)| a.xijk(i, j, k, p.infra()))
                .count();
            prop_assert_eq!(count, usize::from(a.server_of(k).is_some()));
        }
    }

    /// Repair never breaks a feasible assignment and never increases the
    /// violation degree of an infeasible one.
    #[test]
    fn repair_is_monotone((p, mut a) in problem_and_assignment()) {
        let before = p.check(&a).degree();
        let _ = repair(&p, &mut a, &RepairConfig::default());
        let after = p.check(&a).degree();
        prop_assert!(after <= before + 1e-9, "repair worsened {before} -> {after}");
    }

    /// Migration cost is zero against itself and symmetric in count.
    #[test]
    fn migrations_are_a_metric_like_diff((p, a) in problem_and_assignment()) {
        prop_assert_eq!(a.migrations_from(&a).len(), 0);
        let mut b = a.clone();
        if p.n() > 0 && p.m() > 1 {
            // Move the first assigned VM somewhere else.
            if let Some((k, j)) = a.iter_assigned().next() {
                let other = ServerId((j.index() + 1) % p.m());
                b.assign(k, other);
                prop_assert_eq!(b.migrations_from(&a).len(), 1);
                prop_assert_eq!(a.migrations_from(&b).len(), 1);
            }
        }
    }

    /// Rejection rate is consistent with accepted_requests.
    #[test]
    fn rejection_rate_matches_acceptance((p, a) in problem_and_assignment()) {
        let accepted = p.accepted_requests(&a).len();
        let total = p.batch().request_count();
        let expected = (total - accepted) as f64 / total as f64;
        prop_assert!((p.rejection_rate(&a) - expected).abs() < 1e-12);
    }

    /// Consolidating two VMs onto one server never increases usage+opex
    /// versus hosting them on two servers with equal parameters.
    #[test]
    fn consolidation_never_costs_more(seed in 0u64..500) {
        let profile = ServerProfile::commodity(3);
        let infra = Infrastructure::new(
            AttrSet::standard(),
            vec![("dc".into(), profile.build_many(2))],
        );
        let mut batch = RequestBatch::new();
        let cpu = 1.0 + (seed % 10) as f64;
        batch.push_request(vec![vm_spec(cpu, 1024.0, 10.0); 2], vec![]);
        let p = AllocationProblem::new(infra, batch, None);
        let packed = Assignment::from_genes(&[0, 0]);
        let spread = Assignment::from_genes(&[0, 1]);
        let zp = p.evaluate(&packed);
        let zs = p.evaluate(&spread);
        prop_assert!(zp.usage_opex <= zs.usage_opex);
    }
}

/// Strategy: a rule-rich problem plus a complete random assignment.
fn ruled_problem_and_assignment() -> impl Strategy<Value = (AllocationProblem, Assignment)> {
    use cpo_iaas::model::prelude::{AffinityKind, AffinityRule};
    (2usize..5, 0usize..4, 1u64..1_000).prop_flat_map(|(m_per_dc, kind_idx, seed)| {
        let profile = ServerProfile::commodity(3);
        let infra = Infrastructure::new(
            AttrSet::standard(),
            vec![
                ("dc0".into(), profile.build_many(m_per_dc)),
                ("dc1".into(), profile.build_many(m_per_dc)),
            ],
        );
        let kinds = [
            AffinityKind::SameServer,
            AffinityKind::SameDatacenter,
            AffinityKind::DifferentServer,
            AffinityKind::DifferentDatacenter,
        ];
        let mut batch = RequestBatch::new();
        let cpu = 1.0 + (seed % 12) as f64;
        batch.push_request(
            vec![vm_spec(cpu, 1024.0, 10.0); 2],
            vec![AffinityRule::new(kinds[kind_idx], vec![VmId(0), VmId(1)])],
        );
        batch.push_request(vec![vm_spec(cpu, 1024.0, 10.0)], vec![]);
        let p = AllocationProblem::new(infra, batch, None);
        let m = p.m();
        (Just(p), proptest::collection::vec(0usize..m, 3))
            .prop_map(|(p, genes)| (p, Assignment::from_genes(&genes)))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The explicit ILP of Section III and the executable model agree on
    /// feasibility and on the linear (usage+opex) objective for every
    /// assignment, across all four rule kinds.
    #[test]
    fn ilp_and_model_agree((p, a) in ruled_problem_and_assignment()) {
        use cpo_iaas::model::ilp::IlpFormulation;
        let ilp = IlpFormulation::from_problem(&p);
        let solution = ilp.solution_of(&a);
        prop_assert_eq!(ilp.is_feasible(&solution), p.is_feasible(&a));
        let model_cost = p.evaluate(&a).usage_opex;
        prop_assert!((ilp.objective_value(&solution) - model_cost).abs() < 1e-9);
    }
}

// Gene encoding round-trips for every complete assignment.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn genome_roundtrip(genes in proptest::collection::vec(0usize..7, 1..30)) {
        let codec = cpo_iaas::core::prelude::GenomeCodec::new(7, genes.len());
        let a = Assignment::from_genes(&genes);
        let encoded = codec.encode(&a);
        let decoded = codec.decode(&encoded);
        prop_assert_eq!(decoded, a);
    }
}
