//! Differential validation of the event-driven propagation engine: on
//! random CSPs over all five constraint shapes, the queued engine must
//! reach bit-identical fixpoint domains and identical `solve`/`optimize`
//! outcomes to the retained reference (full-fixpoint) engine — including
//! across push/pop checkpoint sequences. Any divergence here means the
//! watcher lists or the incremental propagator state dropped a wakeup.

use cpo_iaas::cpsolve::prelude::*;
use proptest::prelude::*;

/// A random instance small enough to search exhaustively, exercising all
/// five propagators: Pack, AllEqual, AllDifferent, GroupAllEqual,
/// GroupAllDifferent.
#[derive(Clone, Debug)]
struct Instance {
    n_vars: usize,
    n_values: usize,
    all_diff: Vec<Vec<usize>>,
    all_equal: Vec<Vec<usize>>,
    group_diff: Vec<Vec<usize>>,
    group_equal: Vec<Vec<usize>>,
    n_groups: usize,
    demand: Vec<f64>,
    capacity: f64,
}

impl Instance {
    /// Value → group mapping (servers striped over datacenters).
    fn value_groups(&self) -> Vec<usize> {
        (0..self.n_values).map(|j| j % self.n_groups).collect()
    }

    fn build(&self) -> Csp {
        let mut csp = Csp::new(self.n_vars, self.n_values);
        let to_vars = |g: &[usize]| -> Vec<VarId> { g.iter().map(|&v| VarId(v)).collect() };
        for g in &self.all_diff {
            csp.add(Box::new(AllDifferent { vars: to_vars(g) }));
        }
        for g in &self.all_equal {
            csp.add(Box::new(AllEqual { vars: to_vars(g) }));
        }
        for g in &self.group_diff {
            csp.add(Box::new(GroupAllDifferent {
                vars: to_vars(g),
                group: self.value_groups(),
            }));
        }
        for g in &self.group_equal {
            csp.add(Box::new(GroupAllEqual {
                vars: to_vars(g),
                group: self.value_groups(),
            }));
        }
        csp.add(Box::new(Pack::new(
            (0..self.n_vars).map(VarId).collect(),
            self.demand.iter().map(|&d| vec![d]).collect(),
            vec![vec![self.capacity]; self.n_values],
        )));
        csp
    }
}

fn groups(n_vars: usize) -> impl Strategy<Value = Vec<Vec<usize>>> {
    proptest::collection::vec(
        proptest::collection::vec(0..n_vars, 2..=n_vars.max(2)),
        0..2,
    )
    .prop_map(|mut gs| {
        for g in gs.iter_mut() {
            g.sort_unstable();
            g.dedup();
        }
        gs.retain(|g| g.len() >= 2);
        gs
    })
}

fn instance_strategy() -> impl Strategy<Value = Instance> {
    (2usize..5, 2usize..5, 2usize..3).prop_flat_map(|(n_vars, n_values, n_groups)| {
        (
            groups(n_vars),
            groups(n_vars),
            groups(n_vars),
            groups(n_vars),
            proptest::collection::vec(1.0_f64..6.0, n_vars),
            4.0_f64..14.0,
        )
            .prop_map(move |(ad, ae, gd, ge, demand, capacity)| Instance {
                n_vars,
                n_values,
                all_diff: ad,
                all_equal: ae,
                group_diff: gd,
                group_equal: ge,
                n_groups,
                demand,
                capacity,
            })
    })
}

/// Bit-identical domain comparison: every variable's packed words match.
fn same_domains(q: &Csp, r: &Csp) -> Result<(), String> {
    for v in 0..q.store.n_vars() {
        let (wq, wr) = (
            q.store.domain_words(VarId(v)),
            r.store.domain_words(VarId(v)),
        );
        if wq != wr {
            return Err(format!("var {v}: queued {wq:?} != reference {wr:?}"));
        }
    }
    Ok(())
}

/// Deterministic per-instance costs for the optimize comparison.
fn costs(inst: &Instance, seed: u64) -> Vec<Vec<f64>> {
    let mut s = seed.wrapping_add(inst.n_vars as u64);
    (0..inst.n_vars)
        .map(|_| {
            (0..inst.n_values)
                .map(|_| {
                    s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
                    ((s >> 33) % 100) as f64 / 10.0
                })
                .collect()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(160))]

    /// Root fixpoints are bit-identical (and agree on infeasibility).
    #[test]
    fn fixpoint_domains_are_bit_identical(inst in instance_strategy()) {
        let mut q = inst.build();
        let mut r = inst.build();
        let ok_q = q.propagate();
        let ok_r = r.propagate_reference();
        prop_assert_eq!(ok_q, ok_r, "engines disagree on root feasibility");
        if ok_q {
            if let Err(e) = same_domains(&q, &r) {
                prop_assert!(false, "root fixpoint diverged: {}", e);
            }
        }
    }

    /// Full searches return the same outcome with the same tree shape.
    #[test]
    fn solve_outcomes_are_identical(inst in instance_strategy()) {
        let mut q = inst.build();
        let mut r = inst.build();
        let queued = SearchConfig::default();
        let reference = SearchConfig { engine: Engine::Reference, ..Default::default() };
        let (oq, sq) = solve(&mut q, &queued);
        let (or, sr) = solve(&mut r, &reference);
        prop_assert_eq!(&oq, &or, "solve outcomes diverged");
        prop_assert_eq!(sq.nodes, sr.nodes, "node counts diverged");
        prop_assert_eq!(sq.backtracks, sr.backtracks, "backtrack counts diverged");
        // No effort assertion here: on tiny CSPs the queued engine may
        // legitimately invoke a propagator more often than the reference
        // round counts (one wake per dirty batch vs one run per round).
        // The ≥5× saving is pinned on a large scenario by
        // tests/propagation_regression.rs.
    }

    /// Branch-and-bound agrees on the optimum, its cost and completeness.
    #[test]
    fn optimize_outcomes_are_identical(inst in instance_strategy(), seed in 0u64..1_000) {
        let cost = costs(&inst, seed);
        let mut q = inst.build();
        let mut r = inst.build();
        let queued = SearchConfig::default();
        let reference = SearchConfig { engine: Engine::Reference, ..Default::default() };
        let (bq, cq, _) = optimize(&mut q, &cost, &queued);
        let (br, cr, _) = optimize(&mut r, &cost, &reference);
        prop_assert_eq!(cq, cr, "completeness flags diverged");
        match (bq, br) {
            (None, None) => {}
            (Some((sq, vq)), Some((sr, vr))) => {
                prop_assert_eq!(sq, sr, "optimal solutions diverged");
                prop_assert!((vq - vr).abs() < 1e-12, "optimal costs diverged: {} vs {}", vq, vr);
            }
            (a, b) => prop_assert!(false, "one engine found an optimum, the other none: {:?} vs {:?}", a, b),
        }
    }

    /// Interleaved push/fix/propagate/pop scripts keep the stores bit-identical
    /// at every checkpoint — the trail interaction is where incremental
    /// propagator state is most likely to go stale.
    #[test]
    fn checkpoint_walks_stay_identical(inst in instance_strategy(), walk_seed in 0u64..1_000) {
        let mut q = inst.build();
        let mut r = inst.build();
        let ok_q = q.propagate();
        let ok_r = r.propagate_reference();
        prop_assert_eq!(ok_q, ok_r);
        if !ok_q {
            return Ok(());
        }
        if let Err(e) = same_domains(&q, &r) {
            prop_assert!(false, "diverged at root: {}", e);
        }
        let mut state = walk_seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        let mut rng = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as usize
        };
        let mut depth = 0usize;
        for step in 0..16 {
            if depth > 0 && rng() % 4 == 0 {
                q.pop();
                r.pop();
                depth -= 1;
                if let Err(e) = same_domains(&q, &r) {
                    prop_assert!(false, "diverged after pop (step {}): {}", step, e);
                }
                continue;
            }
            // Pick an unfixed variable, scanning from a random offset.
            let n = q.store.n_vars();
            let start = rng() % n;
            let Some(var) = (0..n)
                .map(|off| VarId((start + off) % n))
                .find(|&v| q.store.domain_size(v) > 1)
            else {
                break;
            };
            let values: Vec<usize> = q.store.iter_domain(var).collect();
            let value = values[rng() % values.len()];
            q.push();
            r.push();
            depth += 1;
            q.store.fix(var, value);
            r.store.fix(var, value);
            let ok_q = q.propagate_dirty();
            let ok_r = r.propagate_reference();
            prop_assert_eq!(ok_q, ok_r, "feasibility diverged at step {}", step);
            if ok_q {
                if let Err(e) = same_domains(&q, &r) {
                    prop_assert!(false, "diverged after decision (step {}): {}", step, e);
                }
            } else {
                // Both failed mid-propagation: rewind and compare there.
                q.pop();
                r.pop();
                depth -= 1;
                if let Err(e) = same_domains(&q, &r) {
                    prop_assert!(false, "diverged after failure rewind (step {}): {}", step, e);
                }
            }
        }
    }
}

/// Wide domains (> 64 values) span multiple bitset words; the engines must
/// agree across the word boundary too.
#[test]
fn wide_domain_fixpoints_are_bit_identical() {
    for cap in [5.0, 8.0, 30.0] {
        let inst = Instance {
            n_vars: 3,
            n_values: 130, // three u64 words
            all_diff: vec![vec![0, 1]],
            all_equal: vec![],
            group_diff: vec![vec![1, 2]],
            group_equal: vec![],
            n_groups: 2,
            demand: vec![4.0, 5.0, 6.0],
            capacity: cap,
        };
        let mut q = inst.build();
        let mut r = inst.build();
        let ok_q = q.propagate();
        let ok_r = r.propagate_reference();
        assert_eq!(ok_q, ok_r, "cap {cap}");
        if ok_q {
            same_domains(&q, &r).expect("wide-domain fixpoint diverged");
        }
        let queued = SearchConfig::default();
        let reference = SearchConfig {
            engine: Engine::Reference,
            ..Default::default()
        };
        let (oq, _) = solve(&mut inst.build(), &queued);
        let (or, _) = solve(&mut inst.build(), &reference);
        assert_eq!(oq, or, "cap {cap}: wide-domain solve outcomes diverged");
    }
}
