//! Aggregation of allocation outcomes over repeated runs.

use cpo_core::prelude::AllocationOutcome;

/// Mean/min/max/percentile summary of one metric over runs.
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub struct Stat {
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (0 for a single run).
    pub std: f64,
    /// Minimum observed.
    pub min: f64,
    /// Maximum observed.
    pub max: f64,
    /// Median (exact nearest-rank — the samples are ≤ a few dozen runs).
    pub p50: f64,
    /// 95th percentile (exact nearest-rank).
    pub p95: f64,
}

/// Exact nearest-rank quantile of a sorted sample.
fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).max(1);
    sorted[rank.min(sorted.len()) - 1]
}

impl Stat {
    /// Summarises a sample.
    pub fn of(values: &[f64]) -> Self {
        if values.is_empty() {
            return Self::default();
        }
        let n = values.len() as f64;
        let mean = values.iter().sum::<f64>() / n;
        let var = if values.len() > 1 {
            values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (n - 1.0)
        } else {
            0.0
        };
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        Self {
            mean,
            std: var.sqrt(),
            min: sorted[0],
            max: sorted[sorted.len() - 1],
            p50: quantile_sorted(&sorted, 0.50),
            p95: quantile_sorted(&sorted, 0.95),
        }
    }
}

/// The four evaluation metrics of the paper, aggregated over runs.
#[derive(Clone, Debug, Default)]
pub struct AggregateMetrics {
    /// Execution time in milliseconds (Figs. 7–8).
    pub time_ms: Stat,
    /// Rejection rate (Fig. 9).
    pub rejection_rate: Stat,
    /// Violated constraints (Fig. 10).
    pub violations: Stat,
    /// Provider cost = usage + opex (Fig. 11).
    pub provider_cost: Stat,
    /// Provider cost per accepted request (the paper's proposed
    /// normalised future-work metric).
    pub cost_per_request: Stat,
    /// Net revenue (gross revenue of accepted requests − Eq. 15 costs).
    pub net_revenue: Stat,
    /// Number of runs aggregated.
    pub runs: usize,
}

impl AggregateMetrics {
    /// Aggregates a set of outcomes.
    pub fn of(outcomes: &[AllocationOutcome]) -> Self {
        let time: Vec<f64> = outcomes
            .iter()
            .map(|o| o.elapsed.as_secs_f64() * 1_000.0)
            .collect();
        let rejection: Vec<f64> = outcomes.iter().map(|o| o.rejection_rate).collect();
        let violations: Vec<f64> = outcomes
            .iter()
            .map(|o| o.violated_constraints as f64)
            .collect();
        let cost: Vec<f64> = outcomes.iter().map(|o| o.provider_cost()).collect();
        // Runs where nothing was accepted contribute no finite sample.
        let cpr: Vec<f64> = outcomes
            .iter()
            .map(|o| o.cost_per_accepted_request())
            .filter(|c| c.is_finite())
            .collect();
        let net: Vec<f64> = outcomes.iter().map(|o| o.net_revenue()).collect();
        Self {
            time_ms: Stat::of(&time),
            rejection_rate: Stat::of(&rejection),
            violations: Stat::of(&violations),
            provider_cost: Stat::of(&cost),
            cost_per_request: Stat::of(&cpr),
            net_revenue: Stat::of(&net),
            runs: outcomes.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stat_of_known_sample() {
        let s = Stat::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s.mean - 5.0).abs() < 1e-12);
        assert!((s.std - 2.138089935).abs() < 1e-6);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
        // Nearest rank: p50 → rank ceil(0.5·8)=4 → 4.0; p95 → rank 8 → 9.0.
        assert_eq!(s.p50, 4.0);
        assert_eq!(s.p95, 9.0);
    }

    #[test]
    fn percentiles_are_order_independent() {
        let s = Stat::of(&[9.0, 2.0, 5.0, 4.0, 7.0, 4.0, 5.0, 4.0]);
        assert_eq!(s.p50, 4.0);
        assert_eq!(s.p95, 9.0);
    }

    #[test]
    fn single_value_has_zero_std() {
        let s = Stat::of(&[3.5]);
        assert_eq!(s.mean, 3.5);
        assert_eq!(s.std, 0.0);
        assert_eq!(s.p50, 3.5);
        assert_eq!(s.p95, 3.5);
    }

    #[test]
    fn empty_sample_is_default() {
        assert_eq!(Stat::of(&[]), Stat::default());
    }
}
