//! Convergence study: per-generation progress of the evolutionary
//! variants on one scenario — the quantitative face of the paper's claim
//! that the evolutionary algorithms "conduct deeper exploration and
//! exploitation to find multiple feasible solutions".

use cpo_core::prelude::{AllocMoeaProblem, NsgaConfig, Variant};
use cpo_model::prelude::AllocationProblem;
use cpo_moea::engine::GenStats;
use cpo_moea::prelude::{run, RepairMode};
use cpo_tabu::repair::{repair as tabu_repair, RepairConfig, ScanOrder};
use std::fmt::Write as _;

/// One algorithm's convergence trace.
#[derive(Clone, Debug)]
pub struct Trace {
    /// Display name.
    pub name: &'static str,
    /// Per-generation statistics.
    pub history: Vec<GenStats>,
}

impl Trace {
    /// Evaluations at which the population first became ≥ half feasible,
    /// if ever — a "time to usable solutions" proxy.
    pub fn evals_to_half_feasible(&self, population: usize) -> Option<usize> {
        self.history
            .iter()
            .find(|g| g.feasible * 2 >= population)
            .map(|g| g.evaluations)
    }

    /// Best feasible aggregate objective at the end, if any.
    pub fn final_best(&self) -> Option<f64> {
        self.history.last().and_then(|g| g.best_feasible_total)
    }
}

/// Runs NSGA-II, NSGA-III, U-NSGA-III and the tabu hybrid on `problem`
/// with identical budgets and returns their traces.
pub fn convergence_study(problem: &AllocationProblem, config: &NsgaConfig) -> Vec<Trace> {
    let adapter = AllocMoeaProblem::new(problem);
    let codec = adapter.codec();
    let mut traces = Vec::new();

    for (name, variant, repaired) in [
        ("nsga2", Variant::Nsga2, false),
        ("nsga3", Variant::Nsga3, false),
        ("unsga3", Variant::UNsga3, false),
        ("nsga3-tabu", Variant::Nsga3, true),
    ] {
        let cfg = NsgaConfig {
            variant,
            repair_mode: if repaired {
                RepairMode::Both
            } else {
                RepairMode::Off
            },
            ..config.clone()
        };
        let history = if repaired {
            let repair_cfg = RepairConfig {
                scan: ScanOrder::BestCost,
                ..RepairConfig::default()
            };
            let fixer = move |genes: &mut [f64]| -> bool {
                let mut a = codec.decode(genes);
                let outcome = tabu_repair(problem, &mut a, &repair_cfg);
                if outcome.moves > 0 {
                    genes.copy_from_slice(&codec.encode(&a));
                    true
                } else {
                    false
                }
            };
            run(&adapter, &cfg, Some(&fixer)).history
        } else {
            run(&adapter, &cfg, None).history
        };
        traces.push(Trace { name, history });
    }
    traces
}

/// Renders the traces as an evaluations × algorithm table. Each cell
/// shows the best feasible Eq. 15 total when one exists, otherwise the
/// population's minimum violation degree as `v<degree>` — so progress is
/// visible even on workloads whose infeasible requests keep full
/// feasibility out of reach.
pub fn render_convergence(traces: &[Trace], population: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "convergence: best feasible Eq.15 total (or v<min violation>) by evaluation budget"
    );
    let _ = write!(out, "{:>12}", "evals");
    for t in traces {
        let _ = write!(out, " {:>14}", t.name);
    }
    let _ = writeln!(out);
    // Sample up to 12 evenly spaced generations from the longest trace.
    let max_len = traces.iter().map(|t| t.history.len()).max().unwrap_or(0);
    let step = (max_len / 12).max(1);
    for row in (0..max_len).step_by(step) {
        let evals = traces
            .iter()
            .filter_map(|t| t.history.get(row))
            .map(|g| g.evaluations)
            .max()
            .unwrap_or(0);
        let _ = write!(out, "{evals:>12}");
        for t in traces {
            match t.history.get(row) {
                Some(g) => match g.best_feasible_total {
                    Some(v) => {
                        let _ = write!(out, " {v:>14.1}");
                    }
                    None => {
                        let cell = format!("v{:.1}", g.min_violation);
                        let _ = write!(out, " {cell:>14}");
                    }
                },
                None => {
                    let _ = write!(out, " {:>14}", "-");
                }
            }
        }
        let _ = writeln!(out);
    }
    let _ = writeln!(out, "\ntime-to-half-feasible (evaluations):");
    for t in traces {
        match t.evals_to_half_feasible(population) {
            Some(e) => {
                let _ = writeln!(out, "  {:>12}: {e}", t.name);
            }
            None => {
                let _ = writeln!(out, "  {:>12}: never", t.name);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpo_scenario::prelude::{ScenarioSize, ScenarioSpec};

    fn quick() -> NsgaConfig {
        NsgaConfig {
            population_size: 20,
            max_evaluations: 600,
            parallel_eval: false,
            ..NsgaConfig::paper_defaults(Variant::Nsga3)
        }
    }

    #[test]
    fn study_produces_four_traces_with_history() {
        let size = ScenarioSize::with_servers(8);
        let problem = ScenarioSpec::for_size(&size).generate(5);
        let traces = convergence_study(&problem, &quick());
        assert_eq!(traces.len(), 4);
        for t in &traces {
            assert!(!t.history.is_empty(), "{} has no history", t.name);
            assert!(t
                .history
                .windows(2)
                .all(|w| w[0].evaluations <= w[1].evaluations));
        }
    }

    #[test]
    fn repaired_trace_reaches_feasibility_fastest() {
        // Light workload: full feasibility is reachable, so the repair's
        // advantage shows as an earlier half-feasible population.
        let size = ScenarioSize::with_servers(10);
        let problem = ScenarioSpec::for_size(&size).generate(3);
        let traces = convergence_study(&problem, &quick());
        let tabu = traces.iter().find(|t| t.name == "nsga3-tabu").unwrap();
        let plain = traces.iter().find(|t| t.name == "nsga3").unwrap();
        let tabu_first = tabu.evals_to_half_feasible(20);
        let plain_first = plain.evals_to_half_feasible(20);
        match (tabu_first, plain_first) {
            (Some(a), Some(b)) => assert!(a <= b, "repair must not be slower: {a} vs {b}"),
            (Some(_), None) => {} // repaired run feasible, plain never: expected
            (None, _) => panic!("the repaired run must reach half-feasibility"),
        }
    }

    #[test]
    fn repaired_trace_has_lowest_final_violation_on_hard_workload() {
        let size = ScenarioSize::with_servers(10);
        let problem = ScenarioSpec::for_size(&size)
            .with_heavy_affinity()
            .generate(3);
        let traces = convergence_study(&problem, &quick());
        let final_violation = |name: &str| {
            traces
                .iter()
                .find(|t| t.name == name)
                .and_then(|t| t.history.last())
                .map(|g| g.min_violation)
                .unwrap()
        };
        assert!(
            final_violation("nsga3-tabu") <= final_violation("nsga3") + 1e-9,
            "repair must end no more violating than plain NSGA-III"
        );
    }

    #[test]
    fn render_includes_all_columns() {
        let size = ScenarioSize::with_servers(8);
        let problem = ScenarioSpec::for_size(&size).generate(5);
        let traces = convergence_study(&problem, &quick());
        let table = render_convergence(&traces, 20);
        for name in ["nsga2", "nsga3", "unsga3", "nsga3-tabu"] {
            assert!(table.contains(name), "missing column {name}");
        }
        assert!(table.contains("time-to-half-feasible"));
    }
}
