//! The sweep runner: algorithms × problem sizes × seeded runs.

use crate::metrics::AggregateMetrics;
use cpo_core::prelude::*;
use cpo_moea::prelude::NsgaConfig;
use cpo_scenario::prelude::{ScenarioSize, ScenarioSpec};
use std::time::Duration;

/// Evaluation effort: `Paper` reproduces Table III / 100 runs, `Quick`
/// scales budgets down for CI-sized regeneration of the same shapes.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Effort {
    /// Table III: pop 100, 10 000 evaluations, 100 runs, generous CP
    /// budgets.
    Paper,
    /// Reduced budgets (pop 40, 2 000 evaluations, 5 runs, tight CP
    /// budgets) preserving the qualitative shape.
    Quick,
}

impl Effort {
    /// Number of repeated runs per (algorithm, size) cell.
    pub fn runs(self) -> usize {
        match self {
            Effort::Paper => 100,
            Effort::Quick => 5,
        }
    }

    /// Engine configuration at this effort.
    pub fn nsga_config(self) -> NsgaConfig {
        match self {
            Effort::Paper => NsgaConfig::paper_defaults(Variant::Nsga3),
            Effort::Quick => NsgaConfig {
                population_size: 40,
                max_evaluations: 2_000,
                ..NsgaConfig::paper_defaults(Variant::Nsga3)
            },
        }
    }

    /// CP allocator at this effort.
    pub fn cp_allocator(self) -> CpAllocator {
        match self {
            Effort::Paper => CpAllocator::default(),
            Effort::Quick => CpAllocator {
                per_request_deadline: Duration::from_millis(100),
                max_nodes: Some(20_000),
                ..CpAllocator::default()
            },
        }
    }
}

/// The six algorithms of the paper's comparison, in its presentation
/// order.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Algorithm {
    /// Round Robin with server affinity.
    RoundRobin,
    /// Constraint programming (Choco substitute).
    ConstraintProgramming,
    /// Unmodified NSGA-II.
    Nsga2,
    /// Unmodified NSGA-III.
    Nsga3,
    /// NSGA-III with constraint-solver repair.
    Nsga3Cp,
    /// NSGA-III with tabu-search repair (the proposed hybrid).
    Nsga3Tabu,
    /// Table II's "Filtering Algorithm" (BtrPlace-style greedy filters) —
    /// not part of the paper's figures; used by ablations.
    Filtering,
    /// Weighted mono-objective GA (the alternative §III discusses) —
    /// not part of the paper's figures; used by ablations.
    WeightedGa,
    /// Anytime tabu-search admission (greedy seed → deadline-bounded
    /// candidate-list polish), honoring `--search-threads`.
    TabuSearch,
    /// Deadline-racing portfolio (filtering ∥ CP ∥ tabu-search) under
    /// `--solve-deadline`.
    Race,
}

impl Algorithm {
    /// The paper's six, in its presentation order.
    pub fn all() -> [Algorithm; 6] {
        [
            Algorithm::RoundRobin,
            Algorithm::ConstraintProgramming,
            Algorithm::Nsga2,
            Algorithm::Nsga3,
            Algorithm::Nsga3Cp,
            Algorithm::Nsga3Tabu,
        ]
    }

    /// The paper's six plus the extra comparators: Table II filtering,
    /// the weighted mono-objective GA, the anytime tabu-search
    /// allocator, and the deadline-racing portfolio.
    pub fn extended() -> [Algorithm; 10] {
        [
            Algorithm::RoundRobin,
            Algorithm::ConstraintProgramming,
            Algorithm::Nsga2,
            Algorithm::Nsga3,
            Algorithm::Nsga3Cp,
            Algorithm::Nsga3Tabu,
            Algorithm::Filtering,
            Algorithm::WeightedGa,
            Algorithm::TabuSearch,
            Algorithm::Race,
        ]
    }

    /// Stable display name.
    pub fn label(self) -> &'static str {
        match self {
            Algorithm::RoundRobin => "round-robin",
            Algorithm::ConstraintProgramming => "constraint-programming",
            Algorithm::Nsga2 => "nsga2",
            Algorithm::Nsga3 => "nsga3",
            Algorithm::Nsga3Cp => "nsga3-cp",
            Algorithm::Nsga3Tabu => "nsga3-tabu",
            Algorithm::Filtering => "filtering",
            Algorithm::WeightedGa => "weighted-ga",
            Algorithm::TabuSearch => "tabu-search",
            Algorithm::Race => "race",
        }
    }

    /// Instantiates the allocator at the given effort and seed, with the
    /// search tuned: `threads` scan partitions for the tabu engine and an
    /// optional per-call wall-clock `budget` (the racing portfolio's
    /// deadline; other allocators receive it through the driver's
    /// [`DeadlineBound`] wrapping instead).
    pub fn build_tuned(
        self,
        effort: Effort,
        seed: u64,
        threads: usize,
        budget: Option<Duration>,
    ) -> Box<dyn Allocator> {
        match self {
            Algorithm::TabuSearch => {
                let mut a = TabuSearchAllocator::with_threads(threads);
                a.config.seed = seed;
                Box::new(a)
            }
            Algorithm::Race => {
                let mut tabu = TabuSearchAllocator::with_threads(threads);
                tabu.config.seed = seed;
                Box::new(PortfolioAllocator::racing(
                    vec![
                        Box::new(FilteringAllocator),
                        Box::new(effort.cp_allocator()),
                        Box::new(tabu),
                    ],
                    PortfolioCriterion::AcceptanceThenCost,
                    budget,
                ))
            }
            other => other.build(effort, seed),
        }
    }

    /// Instantiates the allocator at the given effort and seed.
    pub fn build(self, effort: Effort, seed: u64) -> Box<dyn Allocator> {
        match self {
            Algorithm::RoundRobin => Box::new(RoundRobinAllocator),
            Algorithm::ConstraintProgramming => Box::new(effort.cp_allocator()),
            Algorithm::Nsga2 => Box::new(EvoAllocator::nsga2(effort.nsga_config()).with_seed(seed)),
            Algorithm::Nsga3 => Box::new(EvoAllocator::nsga3(effort.nsga_config()).with_seed(seed)),
            Algorithm::Nsga3Cp => {
                Box::new(EvoAllocator::nsga3_cp(effort.nsga_config()).with_seed(seed))
            }
            Algorithm::Nsga3Tabu => {
                Box::new(EvoAllocator::nsga3_tabu(effort.nsga_config()).with_seed(seed))
            }
            Algorithm::Filtering => Box::new(FilteringAllocator),
            Algorithm::WeightedGa => {
                let mut alloc = WeightedGaAllocator::equal_weights(effort.nsga_config());
                alloc.config.seed = seed;
                Box::new(alloc)
            }
            Algorithm::TabuSearch | Algorithm::Race => self.build_tuned(effort, seed, 1, None),
        }
    }
}

/// One cell of a sweep: an algorithm at a size, aggregated over runs.
#[derive(Clone, Debug)]
pub struct Cell {
    /// The algorithm.
    pub algorithm: Algorithm,
    /// The problem size.
    pub size: ScenarioSize,
    /// Aggregated metrics.
    pub metrics: AggregateMetrics,
}

/// Runs `algorithms × sizes × runs` and returns the cells in
/// (size-major, algorithm-minor) order. `affinity_heavy` switches the
/// request mix used by the quality figures.
pub fn run_sweep(
    algorithms: &[Algorithm],
    sizes: &[ScenarioSize],
    effort: Effort,
    runs: usize,
    affinity_heavy: bool,
    base_seed: u64,
) -> Vec<Cell> {
    let mut cells = Vec::with_capacity(algorithms.len() * sizes.len());
    for size in sizes {
        // Generate each run's problem once and share it across algorithms
        // so they compete on identical instances (paired comparison).
        let problems: Vec<_> = (0..runs)
            .map(|r| {
                let spec = if affinity_heavy {
                    ScenarioSpec::for_size(size).with_heavy_affinity()
                } else {
                    ScenarioSpec::for_size(size)
                };
                spec.generate(base_seed.wrapping_add(r as u64))
            })
            .collect();
        for &algorithm in algorithms {
            let outcomes: Vec<AllocationOutcome> = problems
                .iter()
                .enumerate()
                .map(|(r, p)| {
                    let _run = cpo_obs::span!(
                        "exper.run",
                        algo = algorithm.label(),
                        servers = size.servers,
                        run = r
                    );
                    algorithm.build(effort, base_seed + r as u64).allocate(p)
                })
                .collect();
            cells.push(Cell {
                algorithm,
                size: size.clone(),
                metrics: AggregateMetrics::of(&outcomes),
            });
        }
    }
    cells
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_algorithms_have_distinct_labels() {
        let labels: Vec<_> = Algorithm::extended().iter().map(|a| a.label()).collect();
        let mut dedup = labels.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), labels.len());
    }

    #[test]
    fn quick_effort_scales_budgets_down() {
        let q = Effort::Quick.nsga_config();
        let p = Effort::Paper.nsga_config();
        assert!(q.max_evaluations < p.max_evaluations);
        assert!(q.population_size < p.population_size);
        assert_eq!(p.population_size, 100);
        assert_eq!(p.max_evaluations, 10_000);
        assert_eq!(Effort::Paper.runs(), 100);
    }

    #[test]
    fn tiny_sweep_produces_expected_cells() {
        let sizes = vec![ScenarioSize::with_servers(6)];
        let algorithms = [Algorithm::RoundRobin, Algorithm::ConstraintProgramming];
        let cells = run_sweep(&algorithms, &sizes, Effort::Quick, 2, false, 1);
        assert_eq!(cells.len(), 2);
        for c in &cells {
            assert_eq!(c.metrics.runs, 2);
            assert!(c.metrics.time_ms.mean >= 0.0);
            assert!(c.metrics.rejection_rate.mean <= 1.0);
        }
    }

    #[test]
    fn baselines_never_violate_constraints() {
        let sizes = vec![ScenarioSize::with_servers(8)];
        let cells = run_sweep(
            &[Algorithm::RoundRobin, Algorithm::ConstraintProgramming],
            &sizes,
            Effort::Quick,
            3,
            true,
            2,
        );
        for c in &cells {
            assert_eq!(
                c.metrics.violations.max,
                0.0,
                "{} must reject, never violate",
                c.algorithm.label()
            );
        }
    }
}
