//! `exper` — regenerate the paper's tables and figures from the command
//! line.
//!
//! ```text
//! exper table3
//! exper fig7 [--runs N] [--paper] [--seed S] [--csv FILE]
//! exper all  [--runs N] [--paper] [--seed S] [--csv-dir DIR]
//! ```
//!
//! Default effort is `--quick` (reduced budgets, same qualitative shape);
//! `--paper` switches to the Table III settings with 100 runs.
//!
//! `--telemetry` records solver/simulator instrumentation and appends a
//! telemetry section (per-solver p95 solve time, propagation totals) to
//! the output; `--trace FILE` additionally writes a `chrome://tracing`
//! compatible span trace.
//!
//! `exper des` runs the continuous-time simulator with the flight
//! recorder on, dumps the ring to `<out-dir>/flight.jsonl`, reconstructs
//! per-request lifecycle timelines into `<out-dir>/timelines.jsonl` and
//! validates every one against the lifecycle state machine;
//! `--timeline ID` prints one request's reconstructed history.
//! `exper trace` replays a production trace the same way; `--telemetry`
//! gives it the same flight/metrics dumps as `des` (metrics JSONL plus
//! `flight.jsonl`/`timelines.jsonl` under `--out-dir`).
//! `--dash FILE` (on `des` and `trace`) collects per-window fleet-health
//! time series and writes a self-contained HTML dashboard, plus an ANSI
//! sparkline summary on stdout.
//! `exper timeline <dump.jsonl>` reconstructs timelines offline from a
//! previously written flight dump (e.g. a panic dump).
//!
//! `--search-threads N` sets the tabu engine's scan partitions for the
//! `tabu-search` and `race` allocators; `--solve-deadline MS` bounds
//! each window solve with a wall-clock deadline (anytime allocators cut
//! and return their best incumbent; the `race` portfolio runs its
//! members concurrently under it). Both also read the environment —
//! `CPO_SEARCH_THREADS` / `CPO_SOLVE_DEADLINE_MS` — with explicit flags
//! taking precedence over the environment, which takes precedence over
//! the defaults (1 thread, no deadline).
//!
//! `--profile` (on `des` and `trace`) turns on the latency-attribution
//! profiler: per-request stage decomposition (queue-wait → solve →
//! commit attempts → bounce rounds → placement), per-window critical
//! paths, conflict hotspot tables and tail exemplars, written to
//! `<out-dir>/profile.json` plus a flamegraph-compatible
//! `<out-dir>/flame.folded`. `exper profile` is trace replay with the
//! profiler forced on — the one-command answer to "where does every
//! microsecond of admission go".

use cpo_exper::chart::{render_chart, ChartOptions};
use cpo_exper::figures::{self, Figure, Metric};
use cpo_exper::markdown::figure_markdown;
use cpo_exper::report::{figure_csv, render_figure, render_table3, shape_summary};
use cpo_exper::runner::Algorithm;
use cpo_exper::runner::Effort;
use cpo_scenario::prelude::{ScenarioFile, ScenarioSize};
use std::env;
use std::fs;
use std::process::ExitCode;

struct Options {
    effort: Effort,
    runs: Option<usize>,
    seed: u64,
    csv: Option<String>,
    csv_dir: Option<String>,
    md: bool,
    chart: bool,
    telemetry: bool,
    trace: Option<String>,
    /// Request uid whose reconstructed timeline `des`/`timeline` print.
    timeline: Option<u64>,
    /// Directory for flight dumps, timeline files, and metrics JSONL.
    out_dir: String,
    /// `des`/`trace`: write an HTML fleet-health dashboard here.
    dash: Option<String>,
    /// `des`: allocator label (see [`Algorithm::label`]).
    algo: Algorithm,
    /// `des`: arrival rate λ.
    rate: f64,
    /// `des`: simulation horizon in sim-time units.
    horizon: f64,
    /// `des`: fleet size.
    servers: usize,
    /// `des`: optional MTBF,MTTR failure injection.
    failures: Option<(f64, f64)>,
    /// Arm fail-fast invariant monitors.
    strict: bool,
    /// `trace`: dataset spec (`azure:path` / `huawei:path`).
    dataset: String,
    /// `trace`: amplification factor (replicas of the seed trace).
    amplify: usize,
    /// `trace`: scheduling window length in sim-time units.
    window: f64,
    /// `des`/`trace`: shard the window solve across N workers over the
    /// optimistic-commit placement store (1 = unsharded seed path).
    shards: Option<usize>,
    /// `des`/`trace`: run the latency-attribution profiler and write
    /// `profile.json` + `flame.folded` under `--out-dir`.
    profile: bool,
    /// Scan partitions for the tabu engine (`tabu-search`/`race`).
    /// Precedence: `--search-threads` > `CPO_SEARCH_THREADS` > 1.
    search_threads: usize,
    /// Per-window solve budget in wall-clock milliseconds; wraps the
    /// allocator in a `DeadlineBound` and races the portfolio under it.
    /// Precedence: `--solve-deadline` > `CPO_SOLVE_DEADLINE_MS` > none.
    solve_deadline_ms: Option<u64>,
}

fn env_parse<T: std::str::FromStr>(name: &str) -> Result<Option<T>, String> {
    match env::var(name) {
        Ok(v) => v
            .parse()
            .map(Some)
            .map_err(|_| format!("{name}: invalid value {v:?}")),
        Err(_) => Ok(None),
    }
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        effort: Effort::Quick,
        runs: None,
        seed: 42,
        csv: None,
        csv_dir: None,
        md: false,
        chart: false,
        telemetry: false,
        trace: None,
        timeline: None,
        out_dir: "target/flight".into(),
        dash: None,
        algo: Algorithm::RoundRobin,
        rate: 3.0,
        horizon: 40.0,
        servers: 12,
        failures: None,
        strict: false,
        dataset: "azure:examples/data/azure_sample.csv".into(),
        amplify: 1,
        window: 60.0,
        shards: None,
        profile: false,
        // Environment supplies the defaults; explicit flags overwrite
        // them below (flag > env > built-in default).
        search_threads: env_parse("CPO_SEARCH_THREADS")?.unwrap_or(1),
        solve_deadline_ms: env_parse("CPO_SOLVE_DEADLINE_MS")?,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--paper" => opts.effort = Effort::Paper,
            "--quick" => opts.effort = Effort::Quick,
            "--runs" => {
                let v = it.next().ok_or("--runs needs a value")?;
                opts.runs = Some(v.parse().map_err(|e| format!("--runs: {e}"))?);
            }
            "--seed" => {
                let v = it.next().ok_or("--seed needs a value")?;
                opts.seed = v.parse().map_err(|e| format!("--seed: {e}"))?;
            }
            "--md" => opts.md = true,
            "--chart" => opts.chart = true,
            "--telemetry" => opts.telemetry = true,
            "--trace" => {
                opts.trace = Some(it.next().ok_or("--trace needs a path")?.clone());
                opts.telemetry = true; // a trace needs recording on
            }
            "--csv" => opts.csv = Some(it.next().ok_or("--csv needs a path")?.clone()),
            "--csv-dir" => opts.csv_dir = Some(it.next().ok_or("--csv-dir needs a path")?.clone()),
            "--timeline" => {
                let v = it.next().ok_or("--timeline needs a request uid")?;
                opts.timeline = Some(v.parse().map_err(|e| format!("--timeline: {e}"))?);
            }
            "--out-dir" => opts.out_dir = it.next().ok_or("--out-dir needs a path")?.clone(),
            "--dash" => opts.dash = Some(it.next().ok_or("--dash needs a path")?.clone()),
            "--algo" => {
                let v = it.next().ok_or("--algo needs a name")?;
                opts.algo = Algorithm::extended()
                    .into_iter()
                    .find(|a| a.label() == v.as_str())
                    .ok_or_else(|| format!("--algo: unknown allocator {v}"))?;
            }
            "--rate" => {
                let v = it.next().ok_or("--rate needs a value")?;
                opts.rate = v.parse().map_err(|e| format!("--rate: {e}"))?;
            }
            "--horizon" => {
                let v = it.next().ok_or("--horizon needs a value")?;
                opts.horizon = v.parse().map_err(|e| format!("--horizon: {e}"))?;
            }
            "--servers" => {
                let v = it.next().ok_or("--servers needs a value")?;
                opts.servers = v.parse().map_err(|e| format!("--servers: {e}"))?;
            }
            "--failures" => {
                let v = it.next().ok_or("--failures needs MTBF,MTTR")?;
                let (mtbf, mttr) = v
                    .split_once(',')
                    .ok_or("--failures needs the form MTBF,MTTR")?;
                opts.failures = Some((
                    mtbf.parse().map_err(|e| format!("--failures mtbf: {e}"))?,
                    mttr.parse().map_err(|e| format!("--failures mttr: {e}"))?,
                ));
            }
            "--strict" => opts.strict = true,
            "--profile" => opts.profile = true,
            "--dataset" => opts.dataset = it.next().ok_or("--dataset needs a spec")?.clone(),
            "--amplify" => {
                let v = it.next().ok_or("--amplify needs a factor")?;
                opts.amplify = v.parse().map_err(|e| format!("--amplify: {e}"))?;
                if opts.amplify < 1 {
                    return Err("--amplify must be >= 1".into());
                }
            }
            "--window" => {
                let v = it.next().ok_or("--window needs a length")?;
                opts.window = v.parse().map_err(|e| format!("--window: {e}"))?;
            }
            "--shards" => {
                let v = it.next().ok_or("--shards needs a count")?;
                let n: usize = v.parse().map_err(|e| format!("--shards: {e}"))?;
                if n < 1 {
                    return Err("--shards must be >= 1".into());
                }
                opts.shards = Some(n);
            }
            "--search-threads" => {
                let v = it.next().ok_or("--search-threads needs a count")?;
                let n: usize = v.parse().map_err(|e| format!("--search-threads: {e}"))?;
                if n < 1 {
                    return Err("--search-threads must be >= 1".into());
                }
                opts.search_threads = n;
            }
            "--solve-deadline" => {
                let v = it.next().ok_or("--solve-deadline needs milliseconds")?;
                opts.solve_deadline_ms =
                    Some(v.parse().map_err(|e| format!("--solve-deadline: {e}"))?);
            }
            other => return Err(format!("unknown option {other}")),
        }
    }
    Ok(opts)
}

/// Prints the telemetry section and writes the chrome trace if requested.
/// When a baseline snapshot was taken at startup, only the *delta* since
/// then is reported — run-scoped numbers even under ambient recording.
fn finish_telemetry(opts: &Options, base: Option<&cpo_obs::Snapshot>) -> Result<(), String> {
    if !opts.telemetry {
        return Ok(());
    }
    let snap = cpo_obs::snapshot();
    let snap = match base {
        Some(b) => snap.delta(b),
        None => snap,
    };
    if opts.md {
        print!("{}", cpo_exper::markdown::telemetry_markdown(&snap));
    } else {
        print!("{}", cpo_exper::report::render_telemetry(&snap));
    }
    // Every telemetry run also leaves a machine-readable record: the
    // run-scoped snapshot as metrics JSONL under --out-dir, the same
    // dump shape for `des` and `trace` alike.
    fs::create_dir_all(&opts.out_dir).map_err(|e| format!("creating {}: {e}", opts.out_dir))?;
    let metrics_path = format!("{}/metrics.jsonl", opts.out_dir);
    fs::write(&metrics_path, cpo_obs::metrics_json_lines(&snap))
        .map_err(|e| format!("writing {metrics_path}: {e}"))?;
    eprintln!("wrote metrics JSONL to {metrics_path}");
    if let Some(path) = &opts.trace {
        fs::write(path, cpo_obs::chrome_trace(&snap))
            .map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("wrote chrome trace to {path} (open in chrome://tracing or ui.perfetto.dev)");
    }
    Ok(())
}

/// Writes the fleet-health dashboard and prints its terminal summary
/// when `--dash` was given (`des`/`trace`; the series bus was enabled
/// before the run).
fn finish_dash(opts: &Options, what: &str) -> Result<(), String> {
    let Some(path) = &opts.dash else {
        return Ok(());
    };
    let bus = cpo_obs::series::snapshot();
    let title = format!(
        "exper {what} — {} servers, allocator {}, seed {}",
        opts.servers,
        opts.algo.label(),
        opts.seed
    );
    cpo_obs::dash::write_html(&bus, path, &title).map_err(|e| format!("writing {path}: {e}"))?;
    println!("  dashboard: {} series -> {path}", bus.series().len());
    print!("{}", cpo_obs::dash::ansi_summary(&bus));
    Ok(())
}

/// Snapshots the latency-attribution profiler, prints the breakdown
/// (stages, critical path, hotspots, tail exemplars) and writes
/// `profile.json` + `flame.folded` under `--out-dir`.
fn finish_profile(opts: &Options) -> Result<(), String> {
    if !cpo_obs::prof::is_enabled() {
        return Ok(());
    }
    let Some(p) = cpo_obs::prof::snapshot() else {
        return Ok(());
    };
    fs::create_dir_all(&opts.out_dir).map_err(|e| format!("creating {}: {e}", opts.out_dir))?;
    let profile_path = format!("{}/profile.json", opts.out_dir);
    fs::write(&profile_path, p.to_json(true))
        .map_err(|e| format!("writing {profile_path}: {e}"))?;
    let flame_path = format!("{}/flame.folded", opts.out_dir);
    fs::write(&flame_path, p.flame_folded()).map_err(|e| format!("writing {flame_path}: {e}"))?;

    println!("latency attribution:");
    println!(
        "  requests: {} tracked, {} admitted, {} rejected, {} in flight",
        p.tracked, p.admitted, p.rejected, p.in_flight
    );
    println!(
        "  accounting: {:.2}% of finalized requests have ≥95% of their latency attributed to stages",
        p.accounted_fraction() * 100.0
    );
    println!("  stage            segments       total µs    mean µs     p95 µs");
    for (stage, agg) in cpo_obs::prof::Stage::ALL.iter().zip(&p.stages) {
        println!(
            "    {:<12} {:>10} {:>14} {:>10.1} {:>10}",
            stage.label(),
            agg.segments,
            agg.total_us,
            agg.summary.mean,
            agg.summary.p95,
        );
    }
    println!(
        "    {:<12} {:>10} {:>14} {:>10.1} {:>10}  (end-to-end)",
        "total", p.total.segments, p.total.total_us, p.total.summary.mean, p.total.summary.p95
    );
    println!(
        "  critical path: {} windows, solve-critical {} µs + commit tail {} µs",
        p.windows.len(),
        p.solve_critical_us(),
        p.commit_tail_us(),
    );
    println!(
        "  commit attempts: {} committed, {} bounced ({} stale / {} capacity)",
        p.commits, p.bounces, p.stale_bounces, p.capacity_bounces
    );
    let hot = p.top_hot_servers(5);
    if hot.is_empty() {
        println!("  conflict hotspots: none (no bounced commit attempt)");
    } else {
        println!(
            "  conflict hotspots (top {}, fingerprint {}):",
            hot.len(),
            p.hot_fingerprint(8)
        );
        for h in hot {
            println!(
                "    server {:>6}  {:>6} bounces ({} stale / {} capacity)",
                h.server, h.conflicts, h.stale, h.capacity
            );
        }
    }
    for e in p.exemplars.iter().take(3) {
        println!(
            "  tail exemplar: request {} — {} µs total ({} bounces), \
             queue {} / solve {} / commit {} / bounce-wait {} / placement {} µs",
            e.key,
            e.total_us,
            e.bounces,
            e.stage_us[0],
            e.stage_us[1],
            e.stage_us[2],
            e.stage_us[3],
            e.stage_us[4],
        );
    }
    if let Some(e) = p.exemplars.first() {
        println!(
            "  inspect a tail request: exper timeline {}/flight.jsonl --timeline {}",
            opts.out_dir, e.key
        );
    }
    println!("  profile: {profile_path}");
    println!("  flame:   {flame_path} (feed to inferno/flamegraph.pl)");
    Ok(())
}

/// Renders one request's timeline from a reconstructed set.
fn print_timeline(set: &cpo_obs::timeline::TimelineSet, uid: u64) -> Result<(), String> {
    let t = set
        .timeline(uid)
        .ok_or_else(|| format!("no timeline for request {uid}"))?;
    print!("{}", t.render());
    Ok(())
}

/// `exper des` — a flight-recorded continuous-time run with per-request
/// timeline reconstruction and lifecycle validation.
fn run_des(opts: &Options) -> Result<(), String> {
    use cpo_des::prelude::*;
    use cpo_model::attr::AttrSet;
    use cpo_model::prelude::{Infrastructure, ServerProfile};
    use cpo_platform::prelude::SimConfig;
    use cpo_scenario::prelude::ArrivalSpec;

    let infra = Infrastructure::new(
        AttrSet::standard(),
        vec![(
            "dc".into(),
            ServerProfile::commodity(3).build_many(opts.servers),
        )],
    );
    let spec = ArrivalSpec {
        rate: opts.rate,
        ..Default::default()
    };
    let des = DesConfig {
        latency: LatencyModel::PerRequest {
            base: 0.02,
            per_request: 0.01,
        },
        failures: opts.failures.map(|(mtbf, mttr)| FailureSpec { mtbf, mttr }),
        seed: opts.seed,
        solve_deadline: opts.solve_deadline_ms.map(std::time::Duration::from_millis),
        ..Default::default()
    };
    let allocator = opts.algo.build_tuned(
        opts.effort,
        opts.seed,
        opts.search_threads,
        opts.solve_deadline_ms.map(std::time::Duration::from_millis),
    );
    let report = match opts.shards {
        Some(shards) => {
            use cpo_platform::prelude::{ShardConfig, ShardedScheduler, WindowExecutor};
            let backend = ShardedScheduler::new(
                WindowExecutor::new(infra, SimConfig::default()),
                ShardConfig {
                    shards,
                    ..ShardConfig::default()
                },
            );
            let mut sched = WindowedScheduler::with_backend(
                backend,
                des,
                PoissonArrivals::new(spec, opts.seed),
            );
            sched.run(allocator.as_ref(), opts.horizon)
        }
        None => {
            let mut sched = WindowedScheduler::new(
                infra,
                SimConfig::default(),
                des,
                PoissonArrivals::new(spec, opts.seed),
            );
            sched.run(allocator.as_ref(), opts.horizon)
        }
    };

    let snap = cpo_obs::flight::snapshot();
    fs::create_dir_all(&opts.out_dir).map_err(|e| format!("creating {}: {e}", opts.out_dir))?;
    let dump_path = format!("{}/flight.jsonl", opts.out_dir);
    fs::write(&dump_path, cpo_obs::flight::dump_json_lines(&snap))
        .map_err(|e| format!("writing {dump_path}: {e}"))?;
    let set = cpo_obs::timeline::reconstruct(&snap.events);
    let tl_path = format!("{}/timelines.jsonl", opts.out_dir);
    fs::write(&tl_path, cpo_obs::timeline::timelines_json_lines(&set))
        .map_err(|e| format!("writing {tl_path}: {e}"))?;

    println!(
        "continuous-time run: {} servers, λ={}, horizon {} ({} windows), allocator {}{}",
        opts.servers,
        opts.rate,
        opts.horizon,
        report.windows.len(),
        opts.algo.label(),
        match opts.shards {
            Some(s) => format!(", {s} shards"),
            None => String::new(),
        },
    );
    println!(
        "  admitted {}  rejected {}  mean wait {:.3}  max wait {:.3}",
        report.total_admitted(),
        report.total_rejected(),
        report.waiting.mean(),
        report.waiting.max,
    );
    println!(
        "  flight: {} events recorded ({} overwritten) -> {}",
        snap.recorded, snap.overwritten, dump_path
    );
    println!(
        "  timelines: {} requests, {} orphan events -> {}",
        set.timelines.len(),
        set.orphans.len(),
        tl_path
    );
    let errors = set.all_errors();
    if errors.is_empty() {
        println!("  lifecycle check: every timeline complete and ordered");
    } else {
        println!("  lifecycle check: {} defects", errors.len());
        for e in errors.iter().take(10) {
            println!("    {e}");
        }
    }
    finish_profile(opts)?;
    finish_dash(opts, "des")?;
    if let Some(uid) = opts.timeline {
        println!();
        print_timeline(&set, uid)?;
    }
    Ok(())
}

/// `exper trace` — replay a (possibly amplified) production trace
/// through the continuous-time scheduler over the memory-lean
/// [`cpo_platform::prelude::FleetExecutor`].
fn run_trace(opts: &Options) -> Result<(), String> {
    use cpo_des::prelude::*;
    use cpo_model::attr::AttrSet;
    use cpo_model::prelude::{Infrastructure, ServerProfile};
    use cpo_platform::prelude::FleetExecutor;
    use cpo_scenario::prelude::ArrivalSpec;
    use cpo_traces::prelude::*;

    let reader = open_dataset(&opts.dataset, MalformedPolicy::Skip)
        .map_err(|e| format!("{}: {e}", opts.dataset))?;
    let amp = Amplifier::new(
        reader,
        AmplifyConfig {
            factor: opts.amplify,
            time_jitter: if opts.amplify > 1 { 30.0 } else { 0.0 },
            demand_jitter: if opts.amplify > 1 { 0.2 } else { 0.0 },
            seed: opts.seed,
        },
    )
    .map_err(|e| format!("{}: {e}", opts.dataset))?;
    let total = amp.len();
    let horizon = amp.horizon() + 2.0 * opts.window;
    println!(
        "trace replay: {} ({} events = {}-row seed × {}), {} servers, {}s windows, allocator {}",
        opts.dataset,
        total,
        amp.base_len(),
        opts.amplify,
        opts.servers,
        opts.window,
        opts.algo.label(),
    );

    let infra = Infrastructure::new(
        AttrSet::standard(),
        vec![(
            "dc".into(),
            ServerProfile::commodity(3).build_many(opts.servers),
        )],
    );
    let source = TraceArrivalSource::new(amp, ArrivalSpec::default(), opts.seed);
    let des = DesConfig {
        window_length: opts.window,
        latency: LatencyModel::Fixed(0.0),
        failures: opts.failures.map(|(mtbf, mttr)| FailureSpec { mtbf, mttr }),
        seed: opts.seed,
        solve_deadline: opts.solve_deadline_ms.map(std::time::Duration::from_millis),
    };
    let allocator = opts.algo.build_tuned(
        opts.effort,
        opts.seed,
        opts.search_threads,
        opts.solve_deadline_ms.map(std::time::Duration::from_millis),
    );
    let start = std::time::Instant::now();
    let (report, wall, emitted, skipped, store_metrics) = match opts.shards {
        Some(shards) => {
            use cpo_platform::prelude::{ShardConfig, ShardedScheduler};
            let backend = ShardedScheduler::new(
                FleetExecutor::new(infra),
                ShardConfig {
                    shards,
                    ..ShardConfig::default()
                },
            );
            let mut sched = WindowedScheduler::with_backend(backend, des, source);
            let report = sched.run(allocator.as_ref(), horizon);
            let wall = start.elapsed();
            if let Some(err) = sched.source().error() {
                return Err(format!("trace stream failed: {err}"));
            }
            let metrics = sched.backend().backend().store().metrics();
            (
                report,
                wall,
                sched.source().emitted(),
                sched.source().skipped_rows(),
                Some(metrics),
            )
        }
        None => {
            let mut sched = WindowedScheduler::with_backend(FleetExecutor::new(infra), des, source);
            let report = sched.run(allocator.as_ref(), horizon);
            let wall = start.elapsed();
            if let Some(err) = sched.source().error() {
                return Err(format!("trace stream failed: {err}"));
            }
            (
                report,
                wall,
                sched.source().emitted(),
                sched.source().skipped_rows(),
                None,
            )
        }
    };
    let peak_active = report
        .windows
        .iter()
        .map(|w| w.active_servers)
        .max()
        .unwrap_or(0);
    let peak_vms = report
        .windows
        .iter()
        .map(|w| w.running_vms)
        .max()
        .unwrap_or(0);
    println!(
        "  replayed {emitted} arrivals in {} windows ({:.0} events/s wall){}",
        report.windows.len(),
        emitted as f64 / wall.as_secs_f64().max(1e-9),
        if skipped > 0 {
            format!(", {skipped} malformed rows skipped")
        } else {
            String::new()
        }
    );
    println!(
        "  admitted {}  rejected {}  peak {} active servers / {} running VMs",
        report.total_admitted(),
        report.total_rejected(),
        peak_active,
        peak_vms,
    );
    if let Some(m) = store_metrics {
        let attempts = m.commits + m.conflicts;
        println!(
            "  sharded admission: {} shards, {} commits, {} conflicts (rate {:.4})",
            opts.shards.unwrap_or(1),
            m.commits,
            m.conflicts,
            if attempts > 0 {
                m.conflicts as f64 / attempts as f64
            } else {
                0.0
            },
        );
    }
    if opts.strict {
        println!("  strict monitors: clean (no invariant violation aborted the run)");
    }
    // Parity with `des`: when the flight recorder is on (--strict or
    // --telemetry), dump the ring and the reconstructed timelines under
    // --out-dir so trace replays are post-mortem debuggable too.
    if cpo_obs::flight::is_enabled() {
        let snap = cpo_obs::flight::snapshot();
        fs::create_dir_all(&opts.out_dir).map_err(|e| format!("creating {}: {e}", opts.out_dir))?;
        let dump_path = format!("{}/flight.jsonl", opts.out_dir);
        fs::write(&dump_path, cpo_obs::flight::dump_json_lines(&snap))
            .map_err(|e| format!("writing {dump_path}: {e}"))?;
        let set = cpo_obs::timeline::reconstruct(&snap.events);
        let tl_path = format!("{}/timelines.jsonl", opts.out_dir);
        fs::write(&tl_path, cpo_obs::timeline::timelines_json_lines(&set))
            .map_err(|e| format!("writing {tl_path}: {e}"))?;
        println!(
            "  flight: {} events recorded ({} overwritten) -> {dump_path}",
            snap.recorded, snap.overwritten
        );
        println!(
            "  timelines: {} requests, {} orphan events -> {tl_path}",
            set.timelines.len(),
            set.orphans.len()
        );
    }
    finish_profile(opts)?;
    finish_dash(opts, "trace")?;
    Ok(())
}

/// `exper timeline <dump.jsonl>` — offline timeline reconstruction from
/// a flight dump (a run's `flight.jsonl` or a panic hook's dump).
fn run_timeline(path: &str, opts: &Options) -> Result<(), String> {
    let text = fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let snap = cpo_obs::flight::dump_from_json_lines(&text)?;
    let set = cpo_obs::timeline::reconstruct(&snap.events);
    match opts.timeline {
        Some(uid) => print_timeline(&set, uid)?,
        None => {
            println!(
                "{}: {} events, {} request timelines, {} orphan events",
                path,
                snap.events.len(),
                set.timelines.len(),
                set.orphans.len()
            );
            for t in &set.timelines {
                let state = if t.departed() {
                    "departed"
                } else if t.admitted() {
                    "running"
                } else if t.rejected() {
                    "rejected"
                } else {
                    "undecided"
                };
                let defects = t.lifecycle_errors().len();
                println!(
                    "  request {:>4}  tenant {:>4}  {:>2} events  {state}{}",
                    t.key,
                    t.tenant.map_or("-".into(), |x| x.to_string()),
                    t.events.len(),
                    if defects == 0 {
                        String::new()
                    } else {
                        format!("  [{defects} defects]")
                    }
                );
            }
        }
    }
    Ok(())
}

fn emit(fig: &Figure, opts: &Options) -> Result<(), String> {
    if opts.md {
        print!("{}", figure_markdown(fig));
    } else {
        print!("{}", render_figure(fig));
        print!("{}", shape_summary(fig));
    }
    if opts.chart {
        let options = ChartOptions {
            log_y: fig.metric == Metric::TimeMs, // time spans decades
            ..ChartOptions::default()
        };
        print!("{}", render_chart(fig, &options));
    }
    println!();
    if let Some(path) = &opts.csv {
        fs::write(path, figure_csv(fig)).map_err(|e| format!("writing {path}: {e}"))?;
    }
    if let Some(dir) = &opts.csv_dir {
        fs::create_dir_all(dir).map_err(|e| format!("creating {dir}: {e}"))?;
        let path = format!("{dir}/{}.csv", fig.id);
        fs::write(&path, figure_csv(fig)).map_err(|e| format!("writing {path}: {e}"))?;
    }
    Ok(())
}

/// Runs every algorithm on a saved scenario file and prints one row per
/// algorithm with all metrics.
fn run_scenario_file(path: &str, opts: &Options, runs: usize) -> Result<(), String> {
    let json = fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let file = ScenarioFile::from_json(&json)?;
    let spec = file.to_spec();
    let size = ScenarioSize {
        servers: spec.infra.servers,
        vms: spec.requests.total_vms,
        datacenters: spec.infra.datacenters,
    };
    println!(
        "scenario {:?} (seed {}, {} runs): {}",
        file.name,
        file.seed,
        runs,
        size.label()
    );
    let cells = {
        // Reuse the sweep machinery on a single custom size by generating
        // the problems from the loaded spec directly.
        let problems: Vec<_> = (0..runs)
            .map(|r| spec.generate(file.seed.wrapping_add(r as u64)))
            .collect();
        let mut cells = Vec::new();
        for algorithm in Algorithm::extended() {
            let outcomes: Vec<_> = problems
                .iter()
                .enumerate()
                .map(|(r, p)| {
                    algorithm
                        .build(opts.effort, file.seed + r as u64)
                        .allocate(p)
                })
                .collect();
            cells.push(cpo_exper::runner::Cell {
                algorithm,
                size: size.clone(),
                metrics: cpo_exper::metrics::AggregateMetrics::of(&outcomes),
            });
        }
        cells
    };
    print!("{}", cpo_exper::report::render_cells("results:", &cells));
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprintln!(
            "usage: exper <table3|fig7|fig8|fig9|fig10|fig11|ext-cpr|ext-rev|ext-conv|scenario <file>|des|trace|profile|timeline <dump>|all> \
             [--runs N] [--paper|--quick] [--seed S] [--csv FILE] [--csv-dir DIR] [--md] [--chart] \
             [--telemetry] [--trace FILE] [--timeline ID] [--out-dir DIR] [--dash FILE] \
             [--algo NAME] [--rate R] [--horizon T] [--servers N] [--failures MTBF,MTTR] \
             [--strict] [--dataset SPEC] [--amplify N] [--window W] [--shards N] [--profile] \
             [--search-threads N] [--solve-deadline MS]"
        );
        return ExitCode::FAILURE;
    };
    // `scenario` and `timeline` take a positional file path before the
    // options.
    let (positional_path, option_args): (Option<String>, &[String]) =
        if command == "scenario" || command == "timeline" {
            match args.get(1) {
                Some(path) if !path.starts_with("--") => (Some(path.clone()), &args[2..]),
                _ => {
                    eprintln!("usage: exper {command} <file> [options]");
                    return ExitCode::FAILURE;
                }
            }
        } else {
            (None, &args[1..])
        };
    let opts = match parse_options(option_args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let runs = opts.runs.unwrap_or_else(|| opts.effort.runs());
    if opts.telemetry {
        cpo_obs::enable();
    }
    // Telemetry reports are deltas from this point, so ambient counters
    // (e.g. flight-recorder setup) don't pollute run-scoped numbers.
    let telemetry_base = opts.telemetry.then(cpo_obs::snapshot);
    if command == "des" {
        // The flight recorder is always on for continuous-time runs; a
        // panic anywhere below dumps the ring for post-mortem timelines.
        cpo_obs::flight::enable();
        let _ = fs::create_dir_all(&opts.out_dir);
        cpo_obs::flight::install_panic_hook(std::path::Path::new(&opts.out_dir));
        if opts.strict {
            cpo_obs::flight::set_strict(true);
        }
    }
    // Trace replay keeps the recorder off by default (throughput);
    // --telemetry turns it on for the post-run flight dump and --strict
    // additionally arms the full fail-fast monitor set.
    if (command == "trace" || command == "profile") && (opts.strict || opts.telemetry) {
        cpo_obs::flight::enable();
        let _ = fs::create_dir_all(&opts.out_dir);
        cpo_obs::flight::install_panic_hook(std::path::Path::new(&opts.out_dir));
        if opts.strict {
            cpo_obs::flight::set_strict(true);
        }
    }
    // The latency-attribution profiler needs the flight hook for its
    // correlation keys; `exper profile` is trace replay with it forced
    // on, `--profile` opts `des`/`trace` in.
    if command == "profile" || (opts.profile && (command == "des" || command == "trace")) {
        cpo_obs::flight::enable();
        cpo_obs::prof::enable();
    }
    // --dash collects per-window fleet-health series through the run.
    if opts.dash.is_some() && (command == "des" || command == "trace") {
        cpo_obs::series::enable();
    }

    let result: Result<(), String> = match command.as_str() {
        "table3" => {
            print!("{}", render_table3(&figures::table3()));
            Ok(())
        }
        "fig7" => emit(&figures::fig7(opts.effort, runs, opts.seed), &opts),
        "fig8" => emit(&figures::fig8(opts.effort, runs, opts.seed), &opts),
        "fig9" => emit(&figures::fig9(opts.effort, runs, opts.seed), &opts),
        "fig10" => emit(&figures::fig10(opts.effort, runs, opts.seed), &opts),
        "fig11" => emit(&figures::fig11(opts.effort, runs, opts.seed), &opts),
        "ext-cpr" => emit(
            &figures::fig_ext_cost_per_request(opts.effort, runs, opts.seed),
            &opts,
        ),
        "ext-rev" => emit(
            &figures::fig_ext_net_revenue(opts.effort, runs, opts.seed),
            &opts,
        ),
        "ext-conv" => {
            // Convergence study on one representative scenario.
            use cpo_exper::convergence::{convergence_study, render_convergence};
            use cpo_scenario::prelude::ScenarioSpec;
            // Light workload: full feasibility is reachable, so the
            // best-feasible column is informative for every variant.
            let size = ScenarioSize::with_servers(25);
            let problem = ScenarioSpec::for_size(&size).generate(opts.seed);
            let config = opts.effort.nsga_config();
            println!("scenario: {} (seed {})", size.label(), opts.seed);
            let traces = convergence_study(&problem, &config);
            print!("{}", render_convergence(&traces, config.population_size));
            Ok(())
        }
        "scenario" => {
            // exper scenario <file.json>: run all algorithms (paper six +
            // the two extras) on the scenario described by the JSON file.
            let path = positional_path.expect("checked above");
            run_scenario_file(&path, &opts, runs)
        }
        "des" => run_des(&opts),
        "trace" => run_trace(&opts),
        "profile" => run_trace(&opts),
        "timeline" => {
            let path = positional_path.expect("checked above");
            run_timeline(&path, &opts)
        }
        "all" => {
            print!("{}", render_table3(&figures::table3()));
            println!();
            let mut result = emit(&figures::fig7(opts.effort, runs, opts.seed), &opts);
            result =
                result.and_then(|()| emit(&figures::fig8(opts.effort, runs, opts.seed), &opts));
            result.and_then(|()| {
                // Figs. 9–11 share one sweep; run it once.
                figures::quality_figures(opts.effort, runs, opts.seed)
                    .iter()
                    .try_for_each(|f| emit(f, &opts))
            })
        }
        other => Err(format!("unknown command {other}")),
    };
    let result = result.and_then(|()| finish_telemetry(&opts, telemetry_base.as_ref()));
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            // Preserve the flight context of a failed run for post-mortem
            // timeline reconstruction (`exper timeline <dump>`).
            if cpo_obs::flight::is_enabled() {
                let snap = cpo_obs::flight::snapshot();
                let path = format!("{}/exper-failure.jsonl", opts.out_dir);
                if fs::create_dir_all(&opts.out_dir).is_ok()
                    && fs::write(&path, cpo_obs::flight::dump_json_lines(&snap)).is_ok()
                {
                    eprintln!("flight dump written to {path}");
                }
            }
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
