//! `exper` — regenerate the paper's tables and figures from the command
//! line.
//!
//! ```text
//! exper table3
//! exper fig7 [--runs N] [--paper] [--seed S] [--csv FILE]
//! exper all  [--runs N] [--paper] [--seed S] [--csv-dir DIR]
//! ```
//!
//! Default effort is `--quick` (reduced budgets, same qualitative shape);
//! `--paper` switches to the Table III settings with 100 runs.
//!
//! `--telemetry` records solver/simulator instrumentation and appends a
//! telemetry section (per-solver p95 solve time, propagation totals) to
//! the output; `--trace FILE` additionally writes a `chrome://tracing`
//! compatible span trace.

use cpo_exper::chart::{render_chart, ChartOptions};
use cpo_exper::figures::{self, Figure, Metric};
use cpo_exper::markdown::figure_markdown;
use cpo_exper::report::{figure_csv, render_figure, render_table3, shape_summary};
use cpo_exper::runner::Algorithm;
use cpo_exper::runner::Effort;
use cpo_scenario::prelude::{ScenarioFile, ScenarioSize};
use std::env;
use std::fs;
use std::process::ExitCode;

struct Options {
    effort: Effort,
    runs: Option<usize>,
    seed: u64,
    csv: Option<String>,
    csv_dir: Option<String>,
    md: bool,
    chart: bool,
    telemetry: bool,
    trace: Option<String>,
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        effort: Effort::Quick,
        runs: None,
        seed: 42,
        csv: None,
        csv_dir: None,
        md: false,
        chart: false,
        telemetry: false,
        trace: None,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--paper" => opts.effort = Effort::Paper,
            "--quick" => opts.effort = Effort::Quick,
            "--runs" => {
                let v = it.next().ok_or("--runs needs a value")?;
                opts.runs = Some(v.parse().map_err(|e| format!("--runs: {e}"))?);
            }
            "--seed" => {
                let v = it.next().ok_or("--seed needs a value")?;
                opts.seed = v.parse().map_err(|e| format!("--seed: {e}"))?;
            }
            "--md" => opts.md = true,
            "--chart" => opts.chart = true,
            "--telemetry" => opts.telemetry = true,
            "--trace" => {
                opts.trace = Some(it.next().ok_or("--trace needs a path")?.clone());
                opts.telemetry = true; // a trace needs recording on
            }
            "--csv" => opts.csv = Some(it.next().ok_or("--csv needs a path")?.clone()),
            "--csv-dir" => opts.csv_dir = Some(it.next().ok_or("--csv-dir needs a path")?.clone()),
            other => return Err(format!("unknown option {other}")),
        }
    }
    Ok(opts)
}

/// Prints the telemetry section and writes the chrome trace if requested.
fn finish_telemetry(opts: &Options) -> Result<(), String> {
    if !opts.telemetry {
        return Ok(());
    }
    let snap = cpo_obs::snapshot();
    if opts.md {
        print!("{}", cpo_exper::markdown::telemetry_markdown(&snap));
    } else {
        print!("{}", cpo_exper::report::render_telemetry(&snap));
    }
    if let Some(path) = &opts.trace {
        fs::write(path, cpo_obs::chrome_trace(&snap))
            .map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("wrote chrome trace to {path} (open in chrome://tracing or ui.perfetto.dev)");
    }
    Ok(())
}

fn emit(fig: &Figure, opts: &Options) -> Result<(), String> {
    if opts.md {
        print!("{}", figure_markdown(fig));
    } else {
        print!("{}", render_figure(fig));
        print!("{}", shape_summary(fig));
    }
    if opts.chart {
        let options = ChartOptions {
            log_y: fig.metric == Metric::TimeMs, // time spans decades
            ..ChartOptions::default()
        };
        print!("{}", render_chart(fig, &options));
    }
    println!();
    if let Some(path) = &opts.csv {
        fs::write(path, figure_csv(fig)).map_err(|e| format!("writing {path}: {e}"))?;
    }
    if let Some(dir) = &opts.csv_dir {
        fs::create_dir_all(dir).map_err(|e| format!("creating {dir}: {e}"))?;
        let path = format!("{dir}/{}.csv", fig.id);
        fs::write(&path, figure_csv(fig)).map_err(|e| format!("writing {path}: {e}"))?;
    }
    Ok(())
}

/// Runs every algorithm on a saved scenario file and prints one row per
/// algorithm with all metrics.
fn run_scenario_file(path: &str, opts: &Options, runs: usize) -> Result<(), String> {
    let json = fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let file = ScenarioFile::from_json(&json)?;
    let spec = file.to_spec();
    let size = ScenarioSize {
        servers: spec.infra.servers,
        vms: spec.requests.total_vms,
        datacenters: spec.infra.datacenters,
    };
    println!(
        "scenario {:?} (seed {}, {} runs): {}",
        file.name,
        file.seed,
        runs,
        size.label()
    );
    let cells = {
        // Reuse the sweep machinery on a single custom size by generating
        // the problems from the loaded spec directly.
        let problems: Vec<_> = (0..runs)
            .map(|r| spec.generate(file.seed.wrapping_add(r as u64)))
            .collect();
        let mut cells = Vec::new();
        for algorithm in Algorithm::extended() {
            let outcomes: Vec<_> = problems
                .iter()
                .enumerate()
                .map(|(r, p)| {
                    algorithm
                        .build(opts.effort, file.seed + r as u64)
                        .allocate(p)
                })
                .collect();
            cells.push(cpo_exper::runner::Cell {
                algorithm,
                size: size.clone(),
                metrics: cpo_exper::metrics::AggregateMetrics::of(&outcomes),
            });
        }
        cells
    };
    print!("{}", cpo_exper::report::render_cells("results:", &cells));
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprintln!(
            "usage: exper <table3|fig7|fig8|fig9|fig10|fig11|ext-cpr|ext-rev|ext-conv|scenario <file>|all> \
             [--runs N] [--paper|--quick] [--seed S] [--csv FILE] [--csv-dir DIR] [--md] [--chart] \
             [--telemetry] [--trace FILE]"
        );
        return ExitCode::FAILURE;
    };
    // `scenario` takes a positional file path before the options.
    let (scenario_path, option_args): (Option<String>, &[String]) = if command == "scenario" {
        match args.get(1) {
            Some(path) if !path.starts_with("--") => (Some(path.clone()), &args[2..]),
            _ => {
                eprintln!("usage: exper scenario <file.json> [options]");
                return ExitCode::FAILURE;
            }
        }
    } else {
        (None, &args[1..])
    };
    let opts = match parse_options(option_args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let runs = opts.runs.unwrap_or_else(|| opts.effort.runs());
    if opts.telemetry {
        cpo_obs::enable();
    }

    let result: Result<(), String> = match command.as_str() {
        "table3" => {
            print!("{}", render_table3(&figures::table3()));
            Ok(())
        }
        "fig7" => emit(&figures::fig7(opts.effort, runs, opts.seed), &opts),
        "fig8" => emit(&figures::fig8(opts.effort, runs, opts.seed), &opts),
        "fig9" => emit(&figures::fig9(opts.effort, runs, opts.seed), &opts),
        "fig10" => emit(&figures::fig10(opts.effort, runs, opts.seed), &opts),
        "fig11" => emit(&figures::fig11(opts.effort, runs, opts.seed), &opts),
        "ext-cpr" => emit(
            &figures::fig_ext_cost_per_request(opts.effort, runs, opts.seed),
            &opts,
        ),
        "ext-rev" => emit(
            &figures::fig_ext_net_revenue(opts.effort, runs, opts.seed),
            &opts,
        ),
        "ext-conv" => {
            // Convergence study on one representative scenario.
            use cpo_exper::convergence::{convergence_study, render_convergence};
            use cpo_scenario::prelude::ScenarioSpec;
            // Light workload: full feasibility is reachable, so the
            // best-feasible column is informative for every variant.
            let size = ScenarioSize::with_servers(25);
            let problem = ScenarioSpec::for_size(&size).generate(opts.seed);
            let config = opts.effort.nsga_config();
            println!("scenario: {} (seed {})", size.label(), opts.seed);
            let traces = convergence_study(&problem, &config);
            print!("{}", render_convergence(&traces, config.population_size));
            Ok(())
        }
        "scenario" => {
            // exper scenario <file.json>: run all algorithms (paper six +
            // the two extras) on the scenario described by the JSON file.
            let path = scenario_path.expect("checked above");
            run_scenario_file(&path, &opts, runs)
        }
        "all" => {
            print!("{}", render_table3(&figures::table3()));
            println!();
            let mut result = emit(&figures::fig7(opts.effort, runs, opts.seed), &opts);
            result =
                result.and_then(|()| emit(&figures::fig8(opts.effort, runs, opts.seed), &opts));
            result.and_then(|()| {
                // Figs. 9–11 share one sweep; run it once.
                figures::quality_figures(opts.effort, runs, opts.seed)
                    .iter()
                    .try_for_each(|f| emit(f, &opts))
            })
        }
        other => Err(format!("unknown command {other}")),
    };
    let result = result.and_then(|()| finish_telemetry(&opts));
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
