//! # cpo-exper — the experiment harness
//!
//! Regenerates every table and figure of the paper's evaluation section:
//!
//! | artefact | function | metric |
//! |---|---|---|
//! | Table III | [`figures::table3`] | NSGA settings |
//! | Fig. 7 | [`figures::fig7`] | execution time, few resources |
//! | Fig. 8 | [`figures::fig8`] | execution time, many resources |
//! | Fig. 9 | [`figures::fig9`] | rejection rate |
//! | Fig. 10 | [`figures::fig10`] | violated constraints |
//! | Fig. 11 | [`figures::fig11`] | provider cost |
//!
//! All six algorithms run on *identical* seeded problem instances per run
//! (paired comparison), aggregated with mean/std/min/max. The `exper`
//! binary renders ASCII tables and CSV; [`runner::Effort::Paper`] uses the
//! paper's Table III budgets and 100 runs, [`runner::Effort::Quick`]
//! scales down for CI while preserving the qualitative shapes.

#![warn(missing_docs)]

pub mod chart;
pub mod convergence;
pub mod figures;
pub mod markdown;
pub mod metrics;
pub mod report;
pub mod runner;
