//! Per-figure experiment definitions. Each function regenerates the data
//! behind one figure of the paper's evaluation section.

use crate::metrics::Stat;
use crate::runner::{run_sweep, Algorithm, Cell, Effort};
use cpo_scenario::prelude::{
    few_resources_sweep, many_resources_sweep, quality_sweep, ScenarioSize,
};

/// Which metric a figure plots.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Metric {
    /// Mean execution time in milliseconds.
    TimeMs,
    /// Mean rejection rate.
    RejectionRate,
    /// Mean violated-constraint count.
    Violations,
    /// Mean provider cost.
    ProviderCost,
    /// Mean provider cost per accepted request (extension: the paper's
    /// proposed future-work normalisation).
    CostPerRequest,
    /// Mean net revenue (extension: the conclusion's revenue argument).
    NetRevenue,
}

impl Metric {
    /// Extracts the metric's mean from a cell.
    pub fn mean_of(self, cell: &Cell) -> f64 {
        self.stat_of(cell).mean
    }

    /// Extracts the metric's full summary from a cell.
    pub fn stat_of(self, cell: &Cell) -> Stat {
        match self {
            Metric::TimeMs => cell.metrics.time_ms,
            Metric::RejectionRate => cell.metrics.rejection_rate,
            Metric::Violations => cell.metrics.violations,
            Metric::ProviderCost => cell.metrics.provider_cost,
            Metric::CostPerRequest => cell.metrics.cost_per_request,
            Metric::NetRevenue => cell.metrics.net_revenue,
        }
    }

    /// Axis label.
    pub fn label(self) -> &'static str {
        match self {
            Metric::TimeMs => "time [ms]",
            Metric::RejectionRate => "rejection rate",
            Metric::Violations => "violated constraints",
            Metric::ProviderCost => "provider cost",
            Metric::CostPerRequest => "cost / accepted request",
            Metric::NetRevenue => "net revenue",
        }
    }
}

/// The data behind one figure: series per algorithm over the size axis.
#[derive(Clone, Debug)]
pub struct Figure {
    /// Figure id ("fig7" … "fig11").
    pub id: &'static str,
    /// Human title (mirrors the paper's caption).
    pub title: &'static str,
    /// The metric plotted.
    pub metric: Metric,
    /// X axis: problem sizes.
    pub sizes: Vec<ScenarioSize>,
    /// The raw sweep cells (size-major).
    pub cells: Vec<Cell>,
}

impl Figure {
    /// The series of `(servers, metric-mean)` points for one algorithm.
    pub fn series(&self, algorithm: Algorithm) -> Vec<(usize, f64)> {
        self.cells
            .iter()
            .filter(|c| c.algorithm == algorithm)
            .map(|c| (c.size.servers, self.metric.mean_of(c)))
            .collect()
    }

    /// Algorithms present in the figure, in the paper's order.
    pub fn algorithms(&self) -> Vec<Algorithm> {
        Algorithm::all()
            .into_iter()
            .filter(|a| self.cells.iter().any(|c| c.algorithm == *a))
            .collect()
    }
}

fn scaled(sweep: Vec<ScenarioSize>, effort: Effort) -> Vec<ScenarioSize> {
    // Quick effort trims the largest sizes so the full suite stays
    // CI-sized; the shape (ordering, crossover) is preserved.
    match effort {
        Effort::Paper => sweep,
        Effort::Quick => sweep
            .into_iter()
            .map(|s| ScenarioSize::with_servers((s.servers / 2).max(6)))
            .collect(),
    }
}

/// Fig. 7 — average execution time with **few** resources. Expected
/// shape: Round Robin and CP fastest; evolutionary algorithms 2–3×
/// slower (deeper exploration).
pub fn fig7(effort: Effort, runs: usize, seed: u64) -> Figure {
    let sizes = scaled(few_resources_sweep(), effort);
    let cells = run_sweep(&Algorithm::all(), &sizes, effort, runs, false, seed);
    Figure {
        id: "fig7",
        title: "Average execution time, few resources",
        metric: Metric::TimeMs,
        sizes,
        cells,
    }
}

/// Fig. 8 — average execution time with **many** resources (up to 800
/// servers / 1600 VMs). Expected shape: CP and the CP hybrid blow up;
/// NSGA-III + tabu stays scalable.
pub fn fig8(effort: Effort, runs: usize, seed: u64) -> Figure {
    let sizes = scaled(many_resources_sweep(), effort);
    let cells = run_sweep(&Algorithm::all(), &sizes, effort, runs, false, seed);
    Figure {
        id: "fig8",
        title: "Average execution time, many resources",
        metric: Metric::TimeMs,
        sizes,
        cells,
    }
}

/// Fig. 9 — rejection rate vs problem size under affinity-heavy demand.
/// Expected shape: the tabu hybrid lowest; Round Robin and unmodified
/// NSGA highest.
pub fn fig9(effort: Effort, runs: usize, seed: u64) -> Figure {
    let sizes = scaled(quality_sweep(), effort);
    let cells = run_sweep(&Algorithm::all(), &sizes, effort, runs, true, seed);
    Figure {
        id: "fig9",
        title: "Rejection rate vs problem size",
        metric: Metric::RejectionRate,
        sizes,
        cells,
    }
}

/// Fig. 10 — violated constraints vs problem size. Expected shape: only
/// unmodified NSGA-II / NSGA-III violate; every other algorithm is zero.
pub fn fig10(effort: Effort, runs: usize, seed: u64) -> Figure {
    let sizes = scaled(quality_sweep(), effort);
    let cells = run_sweep(&Algorithm::all(), &sizes, effort, runs, true, seed);
    Figure {
        id: "fig10",
        title: "Violated constraints vs problem size",
        metric: Metric::Violations,
        sizes,
        cells,
    }
}

/// Fig. 11 — provider cost per algorithm. Expected shape: CP, NSGA-III+CP
/// and the tabu hybrid lowest (with the hybrid slightly above CP while
/// accepting more requests); unmodified NSGA highest.
pub fn fig11(effort: Effort, runs: usize, seed: u64) -> Figure {
    let sizes = scaled(quality_sweep(), effort);
    let cells = run_sweep(&Algorithm::all(), &sizes, effort, runs, true, seed);
    Figure {
        id: "fig11",
        title: "Average provider cost per algorithm",
        metric: Metric::ProviderCost,
        sizes,
        cells,
    }
}

/// Figs. 9, 10 and 11 share one sweep (same workload, three metrics);
/// this runs it once and returns all three figures — the fast path the
/// `exper all` command uses.
pub fn quality_figures(effort: Effort, runs: usize, seed: u64) -> [Figure; 3] {
    let sizes = scaled(quality_sweep(), effort);
    let cells = run_sweep(&Algorithm::all(), &sizes, effort, runs, true, seed);
    [
        Figure {
            id: "fig9",
            title: "Rejection rate vs problem size",
            metric: Metric::RejectionRate,
            sizes: sizes.clone(),
            cells: cells.clone(),
        },
        Figure {
            id: "fig10",
            title: "Violated constraints vs problem size",
            metric: Metric::Violations,
            sizes: sizes.clone(),
            cells: cells.clone(),
        },
        Figure {
            id: "fig11",
            title: "Average provider cost per algorithm",
            metric: Metric::ProviderCost,
            sizes,
            cells,
        },
    ]
}

/// Extension figure — the normalised cost-per-accepted-request metric
/// the paper's conclusion proposes as future work. Same sweep as
/// Figs. 9–11; removes the cost advantage of rejecting.
pub fn fig_ext_cost_per_request(effort: Effort, runs: usize, seed: u64) -> Figure {
    let sizes = scaled(quality_sweep(), effort);
    let cells = run_sweep(&Algorithm::all(), &sizes, effort, runs, true, seed);
    Figure {
        id: "ext-cpr",
        title: "Provider cost per accepted request (future-work metric)",
        metric: Metric::CostPerRequest,
        sizes,
        cells,
    }
}

/// Extension figure — net provider revenue, the conclusion's argument
/// made quantitative: acceptance earns, rejection doesn't, violations
/// cost.
pub fn fig_ext_net_revenue(effort: Effort, runs: usize, seed: u64) -> Figure {
    let sizes = scaled(quality_sweep(), effort);
    let cells = run_sweep(&Algorithm::all(), &sizes, effort, runs, true, seed);
    Figure {
        id: "ext-rev",
        title: "Net provider revenue (extension metric)",
        metric: Metric::NetRevenue,
        sizes,
        cells,
    }
}

/// Table III — the NSGA settings. Returns `(parameter, value)` rows.
pub fn table3() -> Vec<(&'static str, String)> {
    let c = Effort::Paper.nsga_config();
    vec![
        ("populationSize", format!("{}", c.population_size)),
        ("Number of evaluations", format!("{}", c.max_evaluations)),
        ("sbx.rate", format!("{:.2}", c.sbx.rate)),
        (
            "sbx.distributionIndex",
            format!("{:.2}", c.sbx.distribution_index),
        ),
        ("pm.rate", format!("{:.2}", c.pm.rate)),
        (
            "pm.distributionIndex",
            format!("{:.2}", c.pm.distribution_index),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_matches_the_paper() {
        let rows = table3();
        assert_eq!(rows[0], ("populationSize", "100".to_string()));
        assert_eq!(rows[1].1, "10000");
        assert_eq!(rows[2].1, "0.70");
        assert_eq!(rows[3].1, "15.00");
        assert_eq!(rows[4].1, "0.20");
        assert_eq!(rows[5].1, "15.00");
    }

    #[test]
    fn quick_scaling_preserves_order_and_caps_size() {
        let sizes = scaled(many_resources_sweep(), Effort::Quick);
        assert!(sizes.iter().all(|s| s.servers <= 400));
        assert!(sizes.windows(2).all(|w| w[0].servers <= w[1].servers));
    }

    #[test]
    fn metric_extracts_the_right_field() {
        use crate::metrics::{AggregateMetrics, Stat};
        let cell = Cell {
            algorithm: Algorithm::RoundRobin,
            size: ScenarioSize::with_servers(10),
            metrics: AggregateMetrics {
                time_ms: Stat {
                    mean: 1.0,
                    ..Default::default()
                },
                rejection_rate: Stat {
                    mean: 2.0,
                    ..Default::default()
                },
                violations: Stat {
                    mean: 3.0,
                    ..Default::default()
                },
                provider_cost: Stat {
                    mean: 4.0,
                    ..Default::default()
                },
                cost_per_request: Stat {
                    mean: 5.0,
                    ..Default::default()
                },
                net_revenue: Stat {
                    mean: 6.0,
                    ..Default::default()
                },
                runs: 1,
            },
        };
        assert_eq!(Metric::TimeMs.mean_of(&cell), 1.0);
        assert_eq!(Metric::TimeMs.stat_of(&cell).mean, 1.0);
        assert_eq!(Metric::RejectionRate.mean_of(&cell), 2.0);
        assert_eq!(Metric::Violations.mean_of(&cell), 3.0);
        assert_eq!(Metric::ProviderCost.mean_of(&cell), 4.0);
        assert_eq!(Metric::CostPerRequest.mean_of(&cell), 5.0);
        assert_eq!(Metric::NetRevenue.mean_of(&cell), 6.0);
    }
}
