//! Terminal line charts: render a figure's series as an ASCII plot, the
//! visual analogue of the paper's Figs. 7–11 for people reading
//! `exper`/`cargo bench` logs.

use crate::figures::Figure;
use crate::runner::Algorithm;
use std::fmt::Write as _;

/// Plot dimensions and scaling options.
#[derive(Clone, Copy, Debug)]
pub struct ChartOptions {
    /// Plot width in character cells (x axis resolution).
    pub width: usize,
    /// Plot height in character cells (y axis resolution).
    pub height: usize,
    /// Use log10 scaling on the y axis (for the execution-time figures,
    /// whose series span orders of magnitude).
    pub log_y: bool,
}

impl Default for ChartOptions {
    fn default() -> Self {
        Self {
            width: 64,
            height: 16,
            log_y: false,
        }
    }
}

/// Marker glyph per algorithm (stable across charts).
fn glyph(a: Algorithm) -> char {
    match a {
        Algorithm::RoundRobin => 'r',
        Algorithm::ConstraintProgramming => 'c',
        Algorithm::Nsga2 => '2',
        Algorithm::Nsga3 => '3',
        Algorithm::Nsga3Cp => 'p',
        Algorithm::Nsga3Tabu => 'T',
        Algorithm::Filtering => 'f',
        Algorithm::WeightedGa => 'w',
        Algorithm::TabuSearch => 't',
        Algorithm::Race => 'R',
    }
}

fn transform(v: f64, log_y: bool) -> f64 {
    if log_y {
        (v.max(1e-9)).log10()
    } else {
        v
    }
}

/// Renders the figure as an ASCII chart with one marker series per
/// algorithm and a legend. Series points are positioned by the size index
/// on x and the (optionally log-scaled) metric mean on y.
pub fn render_chart(fig: &Figure, options: &ChartOptions) -> String {
    let algorithms = fig.algorithms();
    let n_sizes = fig.sizes.len();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} — {} [{}{}]",
        fig.id,
        fig.title,
        fig.metric.label(),
        if options.log_y { ", log scale" } else { "" }
    );
    if n_sizes == 0 || algorithms.is_empty() {
        let _ = writeln!(out, "(no data)");
        return out;
    }

    // Gather all transformed values to fix the y range.
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    let mut series: Vec<(Algorithm, Vec<f64>)> = Vec::new();
    for &a in &algorithms {
        let values: Vec<f64> = fig
            .series(a)
            .iter()
            .map(|&(_, v)| transform(v, options.log_y))
            .collect();
        for &v in &values {
            if v.is_finite() {
                lo = lo.min(v);
                hi = hi.max(v);
            }
        }
        series.push((a, values));
    }
    if !lo.is_finite() || !hi.is_finite() {
        let _ = writeln!(out, "(no finite data)");
        return out;
    }
    if hi - lo < 1e-12 {
        hi = lo + 1.0;
    }

    let (w, h) = (options.width.max(n_sizes), options.height.max(4));
    let mut grid = vec![vec![' '; w]; h];
    let x_of = |idx: usize| {
        if n_sizes == 1 {
            0
        } else {
            idx * (w - 1) / (n_sizes - 1)
        }
    };
    let y_of = |v: f64| {
        let frac = (v - lo) / (hi - lo);
        let row = ((1.0 - frac) * (h - 1) as f64).round() as usize;
        row.min(h - 1)
    };
    for (a, values) in &series {
        for (idx, &v) in values.iter().enumerate() {
            if v.is_finite() {
                let (x, y) = (x_of(idx), y_of(v));
                let cell = &mut grid[y][x];
                // Overlapping markers become '*'.
                *cell = if *cell == ' ' { glyph(*a) } else { '*' };
            }
        }
    }

    let label_hi = if options.log_y {
        format!("1e{hi:.1}")
    } else {
        format!("{hi:.2}")
    };
    let label_lo = if options.log_y {
        format!("1e{lo:.1}")
    } else {
        format!("{lo:.2}")
    };
    for (row, line) in grid.iter().enumerate() {
        let margin = if row == 0 {
            format!("{label_hi:>10} ")
        } else if row == h - 1 {
            format!("{label_lo:>10} ")
        } else {
            " ".repeat(11)
        };
        let _ = writeln!(out, "{margin}|{}", line.iter().collect::<String>());
    }
    let _ = writeln!(out, "{}+{}", " ".repeat(11), "-".repeat(w));
    let _ = writeln!(
        out,
        "{} {}  ->  {}",
        " ".repeat(11),
        fig.sizes.first().map(|s| s.label()).unwrap_or_default(),
        fig.sizes.last().map(|s| s.label()).unwrap_or_default()
    );
    let _ = write!(out, "{}legend: ", " ".repeat(11));
    for &a in &algorithms {
        let _ = write!(out, "{}={} ", glyph(a), a.label());
    }
    let _ = writeln!(out, "(*=overlap)");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::Metric;
    use crate::metrics::{AggregateMetrics, Stat};
    use crate::runner::Cell;
    use cpo_scenario::prelude::ScenarioSize;

    fn figure(values: &[(Algorithm, f64)]) -> Figure {
        let size = ScenarioSize::with_servers(10);
        let cells = values
            .iter()
            .map(|&(algorithm, mean)| Cell {
                algorithm,
                size: size.clone(),
                metrics: AggregateMetrics {
                    time_ms: Stat {
                        mean,
                        ..Default::default()
                    },
                    runs: 1,
                    ..Default::default()
                },
            })
            .collect();
        Figure {
            id: "fig7",
            title: "test",
            metric: Metric::TimeMs,
            sizes: vec![size],
            cells,
        }
    }

    #[test]
    fn chart_places_extremes_on_top_and_bottom_rows() {
        let fig = figure(&[(Algorithm::RoundRobin, 0.0), (Algorithm::Nsga3Tabu, 100.0)]);
        let chart = render_chart(&fig, &ChartOptions::default());
        let lines: Vec<&str> = chart.lines().collect();
        // Row 1 (first grid row) holds the max marker 'T'; the last grid
        // row holds 'r'.
        assert!(lines[1].contains('T'), "{chart}");
        let last_grid = lines[1 + ChartOptions::default().height - 1];
        assert!(last_grid.contains('r'), "{chart}");
    }

    #[test]
    fn chart_contains_legend_and_axis() {
        let fig = figure(&[(Algorithm::ConstraintProgramming, 5.0)]);
        let chart = render_chart(&fig, &ChartOptions::default());
        assert!(chart.contains("legend: c=constraint-programming"));
        assert!(chart.contains("m=10 n=20"));
        assert!(chart.contains('+'));
    }

    #[test]
    fn log_scale_compresses_magnitudes() {
        let fig = figure(&[
            (Algorithm::RoundRobin, 0.001),
            (Algorithm::Nsga3Tabu, 10_000.0),
        ]);
        let linear = render_chart(
            &fig,
            &ChartOptions {
                log_y: false,
                ..Default::default()
            },
        );
        let log = render_chart(
            &fig,
            &ChartOptions {
                log_y: true,
                ..Default::default()
            },
        );
        assert!(log.contains("log scale"));
        assert!(!linear.contains("log scale"));
        assert!(log.contains("1e4.0"));
    }

    #[test]
    fn overlapping_markers_become_stars() {
        let fig = figure(&[
            (Algorithm::RoundRobin, 5.0),
            (Algorithm::ConstraintProgramming, 5.0),
        ]);
        let chart = render_chart(&fig, &ChartOptions::default());
        assert!(chart.contains('*'), "{chart}");
    }

    #[test]
    fn empty_figure_degrades_gracefully() {
        let fig = Figure {
            id: "figX",
            title: "empty",
            metric: Metric::TimeMs,
            sizes: vec![],
            cells: vec![],
        };
        let chart = render_chart(&fig, &ChartOptions::default());
        assert!(chart.contains("(no data)"));
    }
}
