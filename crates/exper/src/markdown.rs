//! Markdown rendering of figures — the format EXPERIMENTS.md uses, so
//! the document can be regenerated from fresh runs.

use crate::figures::Figure;
use std::fmt::Write as _;

/// Renders a figure as a GitHub-flavoured markdown table.
pub fn figure_markdown(fig: &Figure) -> String {
    let algorithms = fig.algorithms();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "### {} — {} [{}]\n",
        fig.id,
        fig.title,
        fig.metric.label()
    );
    let _ = write!(out, "| size |");
    for a in &algorithms {
        let _ = write!(out, " {} |", a.label());
    }
    let _ = writeln!(out);
    let _ = write!(out, "|---|");
    for _ in &algorithms {
        let _ = write!(out, "---|");
    }
    let _ = writeln!(out);
    for size in &fig.sizes {
        let _ = write!(out, "| {} |", size.label());
        for a in &algorithms {
            match fig
                .cells
                .iter()
                .find(|c| c.algorithm == *a && c.size == *size)
            {
                Some(c) => {
                    let _ = write!(out, " {:.3} |", fig.metric.mean_of(c));
                }
                None => {
                    let _ = write!(out, " – |");
                }
            }
        }
        let _ = writeln!(out);
    }
    out
}

/// Renders a whole experiment run (several figures) as one markdown
/// document with a provenance header.
pub fn report_markdown(figures: &[Figure], runs: usize, seed: u64) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# Regenerated evaluation figures\n\n\
         Produced by `cpo-exper` — {runs} run(s) per cell, base seed {seed}.\n"
    );
    for fig in figures {
        out.push_str(&figure_markdown(fig));
        let _ = writeln!(out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::Metric;
    use crate::metrics::{AggregateMetrics, Stat};
    use crate::runner::{Algorithm, Cell};
    use cpo_scenario::prelude::ScenarioSize;

    fn fig() -> Figure {
        let size = ScenarioSize::with_servers(10);
        Figure {
            id: "fig9",
            title: "Rejection rate",
            metric: Metric::RejectionRate,
            sizes: vec![size.clone()],
            cells: vec![Cell {
                algorithm: Algorithm::Nsga3Tabu,
                size,
                metrics: AggregateMetrics {
                    rejection_rate: Stat {
                        mean: 0.125,
                        ..Default::default()
                    },
                    runs: 2,
                    ..Default::default()
                },
            }],
        }
    }

    #[test]
    fn markdown_table_shape() {
        let md = figure_markdown(&fig());
        assert!(md.contains("### fig9"));
        assert!(md.contains("| size | nsga3-tabu |"));
        assert!(md.contains("| m=10 n=20 | 0.125 |"));
        // Header separator row present.
        assert!(md.contains("|---|---|"));
    }

    #[test]
    fn report_bundles_figures_with_provenance() {
        let md = report_markdown(&[fig(), fig()], 3, 42);
        assert!(md.contains("3 run(s) per cell, base seed 42"));
        assert_eq!(md.matches("### fig9").count(), 2);
    }
}
