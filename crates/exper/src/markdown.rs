//! Markdown rendering of figures — the format EXPERIMENTS.md uses, so
//! the document can be regenerated from fresh runs.

use crate::figures::Figure;
use std::fmt::Write as _;

/// Renders a figure as a GitHub-flavoured markdown table.
pub fn figure_markdown(fig: &Figure) -> String {
    let algorithms = fig.algorithms();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "### {} — {} [{}]\n",
        fig.id,
        fig.title,
        fig.metric.label()
    );
    let _ = write!(out, "| size |");
    for a in &algorithms {
        let _ = write!(out, " {} |", a.label());
    }
    let _ = writeln!(out);
    let _ = write!(out, "|---|");
    for _ in &algorithms {
        let _ = write!(out, "---|");
    }
    let _ = writeln!(out);
    for size in &fig.sizes {
        let _ = write!(out, "| {} |", size.label());
        for a in &algorithms {
            match fig
                .cells
                .iter()
                .find(|c| c.algorithm == *a && c.size == *size)
            {
                Some(c) => {
                    let s = fig.metric.stat_of(c);
                    let _ = write!(out, " {:.3} (p50 {:.3}, p95 {:.3}) |", s.mean, s.p50, s.p95);
                }
                None => {
                    let _ = write!(out, " – |");
                }
            }
        }
        let _ = writeln!(out);
    }
    out
}

/// Renders a whole experiment run (several figures) as one markdown
/// document with a provenance header.
pub fn report_markdown(figures: &[Figure], runs: usize, seed: u64) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# Regenerated evaluation figures\n\n\
         Produced by `cpo-exper` — {runs} run(s) per cell, base seed {seed}.\n"
    );
    for fig in figures {
        out.push_str(&figure_markdown(fig));
        let _ = writeln!(out);
    }
    out
}

/// Renders a telemetry snapshot as a markdown section: per-solver p95
/// solve times, propagation/iteration totals and simulator gauges. The
/// `exper` report appends this when telemetry is enabled.
pub fn telemetry_markdown(snap: &cpo_obs::Snapshot) -> String {
    let mut out = String::from("## Telemetry\n\n");
    if snap.histograms.is_empty() && snap.counters.is_empty() && snap.gauges.is_empty() {
        out.push_str("_No telemetry recorded (run with `--telemetry`)._\n");
        return out;
    }
    if !snap.histograms.is_empty() {
        // Histogram names carry their unit (`span.*.us`, `*.solve_ns`).
        out.push_str("| timing | count | mean | p50 | p95 | max |\n");
        out.push_str("|---|---|---|---|---|---|\n");
        for (name, h) in &snap.histograms {
            let _ = writeln!(
                out,
                "| {} | {} | {:.1} | {} | {} | {} |",
                name, h.count, h.mean, h.p50, h.p95, h.max
            );
        }
        out.push('\n');
    }
    if !snap.counters.is_empty() {
        out.push_str("| counter | total |\n|---|---|\n");
        for (name, v) in &snap.counters {
            let _ = writeln!(out, "| {name} | {v} |");
        }
        out.push('\n');
    }
    if !snap.gauges.is_empty() {
        out.push_str("| gauge | last |\n|---|---|\n");
        for (name, v) in &snap.gauges {
            let _ = writeln!(out, "| {name} | {v:.3} |");
        }
        out.push('\n');
    }
    if snap.dropped > 0 {
        let _ = writeln!(
            out,
            "_{} trace events dropped at the buffer cap._",
            snap.dropped
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::Metric;
    use crate::metrics::{AggregateMetrics, Stat};
    use crate::runner::{Algorithm, Cell};
    use cpo_scenario::prelude::ScenarioSize;

    fn fig() -> Figure {
        let size = ScenarioSize::with_servers(10);
        Figure {
            id: "fig9",
            title: "Rejection rate",
            metric: Metric::RejectionRate,
            sizes: vec![size.clone()],
            cells: vec![Cell {
                algorithm: Algorithm::Nsga3Tabu,
                size,
                metrics: AggregateMetrics {
                    rejection_rate: Stat {
                        mean: 0.125,
                        p50: 0.1,
                        p95: 0.15,
                        ..Default::default()
                    },
                    runs: 2,
                    ..Default::default()
                },
            }],
        }
    }

    #[test]
    fn markdown_table_shape() {
        let md = figure_markdown(&fig());
        assert!(md.contains("### fig9"));
        assert!(md.contains("| size | nsga3-tabu |"));
        assert!(md.contains("| m=10 n=20 | 0.125 (p50 0.100, p95 0.150) |"));
        // Header separator row present.
        assert!(md.contains("|---|---|"));
    }

    #[test]
    fn telemetry_section_lists_metrics() {
        cpo_obs::reset();
        cpo_obs::enable();
        cpo_obs::counter_add("cp.propagations", 7);
        cpo_obs::gauge_set("des.queue_depth", 3.0);
        cpo_obs::record_value("allocator.solve_ns.round-robin", 1_000);
        let snap = cpo_obs::snapshot();
        cpo_obs::disable();
        cpo_obs::reset();
        let md = telemetry_markdown(&snap);
        assert!(md.starts_with("## Telemetry"));
        assert!(md.contains("| cp.propagations | 7 |"));
        assert!(md.contains("| des.queue_depth | 3.000 |"));
        assert!(md.contains("allocator.solve_ns.round-robin"));
    }

    #[test]
    fn empty_telemetry_points_at_the_flag() {
        let md = telemetry_markdown(&cpo_obs::Snapshot::default());
        assert!(md.contains("--telemetry"));
    }

    #[test]
    fn report_bundles_figures_with_provenance() {
        let md = report_markdown(&[fig(), fig()], 3, 42);
        assert!(md.contains("3 run(s) per cell, base seed 42"));
        assert_eq!(md.matches("### fig9").count(), 2);
    }
}
