//! Rendering: ASCII tables for the terminal, CSV for plotting.

use crate::figures::Figure;
use crate::runner::Cell;
use std::fmt::Write as _;

/// Renders a figure as an ASCII table: one row per size, one column per
/// algorithm.
pub fn render_figure(fig: &Figure) -> String {
    let algorithms = fig.algorithms();
    let mut out = String::new();
    let _ = writeln!(out, "{} — {} [{}]", fig.id, fig.title, fig.metric.label());
    let _ = write!(out, "{:>14}", "size");
    for a in &algorithms {
        let _ = write!(out, " {:>22}", a.label());
    }
    let _ = writeln!(out);
    for size in &fig.sizes {
        let _ = write!(out, "{:>14}", size.label());
        for a in &algorithms {
            let cell = fig
                .cells
                .iter()
                .find(|c| c.algorithm == *a && c.size == *size);
            match cell {
                Some(c) => {
                    let _ = write!(out, " {:>22.4}", fig.metric.mean_of(c));
                }
                None => {
                    let _ = write!(out, " {:>22}", "-");
                }
            }
        }
        let _ = writeln!(out);
    }
    out
}

/// Renders a figure as CSV with full statistics per cell.
pub fn figure_csv(fig: &Figure) -> String {
    let mut out = String::from(
        "figure,algorithm,servers,vms,runs,time_ms_mean,time_ms_std,rejection_mean,\
         rejection_std,violations_mean,violations_std,provider_cost_mean,provider_cost_std,\
         cost_per_request_mean,net_revenue_mean\n",
    );
    for c in &fig.cells {
        let _ = writeln!(
            out,
            "{},{},{},{},{},{:.6},{:.6},{:.6},{:.6},{:.6},{:.6},{:.6},{:.6},{:.6},{:.6}",
            fig.id,
            c.algorithm.label(),
            c.size.servers,
            c.size.vms,
            c.metrics.runs,
            c.metrics.time_ms.mean,
            c.metrics.time_ms.std,
            c.metrics.rejection_rate.mean,
            c.metrics.rejection_rate.std,
            c.metrics.violations.mean,
            c.metrics.violations.std,
            c.metrics.provider_cost.mean,
            c.metrics.provider_cost.std,
            c.metrics.cost_per_request.mean,
            c.metrics.net_revenue.mean,
        );
    }
    out
}

/// Renders Table III.
pub fn render_table3(rows: &[(&'static str, String)]) -> String {
    let mut out = String::from("Table III — NSGA-II and NSGA-III settings\n");
    for (k, v) in rows {
        let _ = writeln!(out, "{k:>24}  {v}");
    }
    out
}

/// One-paragraph textual comparison of a figure against the paper's
/// qualitative claim — used by EXPERIMENTS.md generation.
pub fn shape_summary(fig: &Figure) -> String {
    use crate::runner::Algorithm::*;
    let last_of = |a| fig.series(a).last().map(|&(_, v)| v).unwrap_or(f64::NAN);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{}: at the largest size, round-robin={:.3}, cp={:.3}, nsga2={:.3}, nsga3={:.3}, \
         nsga3-cp={:.3}, nsga3-tabu={:.3}",
        fig.id,
        last_of(RoundRobin),
        last_of(ConstraintProgramming),
        last_of(Nsga2),
        last_of(Nsga3),
        last_of(Nsga3Cp),
        last_of(Nsga3Tabu),
    );
    out
}

/// Renders a telemetry snapshot as an ASCII table for the terminal:
/// span/solve timings, counter totals and gauge values. Histogram names
/// carry their unit (`span.*.us` in microseconds, `*.solve_ns` in
/// nanoseconds).
pub fn render_telemetry(snap: &cpo_obs::Snapshot) -> String {
    let mut out = String::from("Telemetry\n");
    if snap.histograms.is_empty() && snap.counters.is_empty() && snap.gauges.is_empty() {
        let _ = writeln!(out, "  (nothing recorded — run with --telemetry)");
        return out;
    }
    if !snap.histograms.is_empty() {
        let _ = writeln!(
            out,
            "{:>40} {:>10} {:>12} {:>10} {:>10} {:>10}",
            "timing", "count", "mean", "p50", "p95", "max"
        );
        for (name, h) in &snap.histograms {
            let _ = writeln!(
                out,
                "{:>40} {:>10} {:>12.1} {:>10} {:>10} {:>10}",
                name, h.count, h.mean, h.p50, h.p95, h.max
            );
        }
    }
    if !snap.counters.is_empty() {
        let _ = writeln!(out, "{:>40} {:>10}", "counter", "total");
        for (name, v) in &snap.counters {
            let _ = writeln!(out, "{name:>40} {v:>10}");
        }
    }
    if !snap.gauges.is_empty() {
        let _ = writeln!(out, "{:>40} {:>10}", "gauge", "last");
        for (name, v) in &snap.gauges {
            let _ = writeln!(out, "{name:>40} {v:>10.3}");
        }
    }
    if snap.dropped > 0 {
        let _ = writeln!(
            out,
            "  {} trace events dropped at the buffer cap",
            snap.dropped
        );
    }
    out
}

/// Renders any cell list (used by ablation benches' summaries).
pub fn render_cells(title: &str, cells: &[Cell]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    let _ = writeln!(
        out,
        "{:>24} {:>14} {:>12} {:>12} {:>12} {:>14}",
        "algorithm", "size", "time[ms]", "reject", "violations", "cost"
    );
    for c in cells {
        let _ = writeln!(
            out,
            "{:>24} {:>14} {:>12.3} {:>12.4} {:>12.2} {:>14.2}",
            c.algorithm.label(),
            c.size.label(),
            c.metrics.time_ms.mean,
            c.metrics.rejection_rate.mean,
            c.metrics.violations.mean,
            c.metrics.provider_cost.mean,
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::{table3, Metric};
    use crate::metrics::{AggregateMetrics, Stat};
    use crate::runner::Algorithm;
    use cpo_scenario::prelude::ScenarioSize;

    fn tiny_figure() -> Figure {
        let size = ScenarioSize::with_servers(10);
        let cell = Cell {
            algorithm: Algorithm::RoundRobin,
            size: size.clone(),
            metrics: AggregateMetrics {
                time_ms: Stat {
                    mean: 1.5,
                    ..Default::default()
                },
                runs: 2,
                ..Default::default()
            },
        };
        Figure {
            id: "fig7",
            title: "test",
            metric: Metric::TimeMs,
            sizes: vec![size],
            cells: vec![cell],
        }
    }

    #[test]
    fn ascii_table_contains_all_parts() {
        let s = render_figure(&tiny_figure());
        assert!(s.contains("fig7"));
        assert!(s.contains("round-robin"));
        assert!(s.contains("m=10 n=20"));
        assert!(s.contains("1.5"));
    }

    #[test]
    fn csv_has_header_and_rows() {
        let s = figure_csv(&tiny_figure());
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("figure,algorithm"));
        assert!(lines[1].starts_with("fig7,round-robin,10,20,2"));
        assert_eq!(lines[0].split(',').count(), lines[1].split(',').count());
    }

    #[test]
    fn table3_renders() {
        let s = render_table3(&table3());
        assert!(s.contains("populationSize"));
        assert!(s.contains("100"));
        assert!(s.contains("0.70"));
    }

    #[test]
    fn telemetry_table_renders_summaries() {
        let mut snap = cpo_obs::Snapshot::default();
        snap.counters.insert("tabu.iterations".into(), 42);
        snap.gauges.insert("platform.active_servers".into(), 5.0);
        let s = render_telemetry(&snap);
        assert!(s.contains("tabu.iterations"));
        assert!(s.contains("42"));
        assert!(s.contains("platform.active_servers"));
    }

    #[test]
    fn empty_telemetry_mentions_the_flag() {
        let s = render_telemetry(&cpo_obs::Snapshot::default());
        assert!(s.contains("--telemetry"));
    }

    #[test]
    fn shape_summary_mentions_all_algorithms() {
        let s = shape_summary(&tiny_figure());
        assert!(s.contains("round-robin=1.500"));
        assert!(s.contains("nsga3-tabu=NaN"));
    }
}
