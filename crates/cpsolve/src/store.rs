//! Variable store: finite integer domains with trail-based backtracking.
//!
//! Every variable ranges over `0..n_values` (for the allocation problem:
//! server indices). Removals are recorded on a trail so the DFS can undo
//! them in O(#removals) instead of copying domains — the standard CP
//! design, and the reason the solver can explore deep trees over
//! 800-server domains without blowing memory.

/// Index of a decision variable.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct VarId(pub usize);

impl VarId {
    /// Raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

/// The store of all variable domains plus the backtracking trail.
#[derive(Clone, Debug)]
pub struct Store {
    /// `mask[var][value]` — is `value` still in `var`'s domain?
    mask: Vec<Vec<bool>>,
    /// Domain cardinalities.
    size: Vec<usize>,
    /// Trail of performed removals `(var, value)`.
    trail: Vec<(usize, usize)>,
    /// Checkpoint stack: trail lengths.
    marks: Vec<usize>,
    n_values: usize,
}

impl Store {
    /// Creates `n_vars` variables each with full domain `0..n_values`.
    pub fn new(n_vars: usize, n_values: usize) -> Self {
        assert!(n_values > 0, "domains must be non-empty");
        Self {
            mask: vec![vec![true; n_values]; n_vars],
            size: vec![n_values; n_vars],
            trail: Vec::new(),
            marks: Vec::new(),
            n_values,
        }
    }

    /// Number of variables.
    pub fn n_vars(&self) -> usize {
        self.mask.len()
    }

    /// Number of potential values per variable.
    pub fn n_values(&self) -> usize {
        self.n_values
    }

    /// Is `value` still in `var`'s domain?
    #[inline]
    pub fn contains(&self, var: VarId, value: usize) -> bool {
        self.mask[var.index()][value]
    }

    /// Domain cardinality of `var`.
    #[inline]
    pub fn domain_size(&self, var: VarId) -> usize {
        self.size[var.index()]
    }

    /// `true` when `var` has exactly one value left.
    #[inline]
    pub fn is_fixed(&self, var: VarId) -> bool {
        self.size[var.index()] == 1
    }

    /// `true` when `var` has no value left (failure).
    #[inline]
    pub fn is_empty(&self, var: VarId) -> bool {
        self.size[var.index()] == 0
    }

    /// The single value of a fixed variable.
    ///
    /// # Panics
    /// Panics if the variable is not fixed.
    pub fn value(&self, var: VarId) -> usize {
        assert!(self.is_fixed(var), "variable {var:?} is not fixed");
        self.iter_domain(var)
            .next()
            .expect("fixed domain has one value")
    }

    /// Iterator over the remaining values of `var`, ascending.
    pub fn iter_domain(&self, var: VarId) -> impl Iterator<Item = usize> + '_ {
        self.mask[var.index()]
            .iter()
            .enumerate()
            .filter_map(|(v, &in_dom)| in_dom.then_some(v))
    }

    /// Removes `value` from `var`'s domain (recorded on the trail).
    /// Returns `true` when the domain actually changed.
    pub fn remove(&mut self, var: VarId, value: usize) -> bool {
        let m = &mut self.mask[var.index()];
        if !m[value] {
            return false;
        }
        m[value] = false;
        self.size[var.index()] -= 1;
        self.trail.push((var.index(), value));
        true
    }

    /// Fixes `var` to `value` by removing every other value.
    /// Returns `true` when the domain changed.
    ///
    /// # Panics
    /// Panics if `value` is not in the domain.
    pub fn fix(&mut self, var: VarId, value: usize) -> bool {
        assert!(
            self.contains(var, value),
            "fixing {var:?} to removed value {value}"
        );
        let mut changed = false;
        for v in 0..self.n_values {
            if v != value && self.mask[var.index()][v] {
                self.remove(var, v);
                changed = true;
            }
        }
        changed
    }

    /// Pushes a backtracking checkpoint.
    pub fn push(&mut self) {
        self.marks.push(self.trail.len());
    }

    /// Pops to the last checkpoint, restoring all removals since.
    ///
    /// # Panics
    /// Panics when no checkpoint exists.
    pub fn pop(&mut self) {
        let mark = self.marks.pop().expect("pop without matching push");
        while self.trail.len() > mark {
            let (var, value) = self.trail.pop().expect("trail length checked");
            self.mask[var][value] = true;
            self.size[var] += 1;
        }
    }

    /// Extracts a full solution when every variable is fixed.
    pub fn solution(&self) -> Option<Vec<usize>> {
        (0..self.n_vars())
            .map(|v| {
                let var = VarId(v);
                self.is_fixed(var).then(|| self.value(var))
            })
            .collect()
    }

    /// The unfixed variable with the smallest domain (first-fail), if any.
    pub fn first_fail_var(&self) -> Option<VarId> {
        (0..self.n_vars())
            .filter(|&v| self.size[v] > 1)
            .min_by_key(|&v| self.size[v])
            .map(VarId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_store_has_full_domains() {
        let s = Store::new(3, 5);
        assert_eq!(s.n_vars(), 3);
        assert_eq!(s.domain_size(VarId(0)), 5);
        assert!(s.contains(VarId(2), 4));
        assert!(!s.is_fixed(VarId(0)));
    }

    #[test]
    fn remove_and_fix_shrink_domains() {
        let mut s = Store::new(2, 4);
        assert!(s.remove(VarId(0), 2));
        assert!(!s.remove(VarId(0), 2), "second removal is a no-op");
        assert_eq!(s.domain_size(VarId(0)), 3);
        s.fix(VarId(1), 3);
        assert!(s.is_fixed(VarId(1)));
        assert_eq!(s.value(VarId(1)), 3);
    }

    #[test]
    fn push_pop_restores_exactly() {
        let mut s = Store::new(2, 4);
        s.remove(VarId(0), 0); // pre-checkpoint removal must survive pop
        s.push();
        s.fix(VarId(0), 2);
        s.remove(VarId(1), 1);
        assert!(s.is_fixed(VarId(0)));
        s.pop();
        assert_eq!(s.domain_size(VarId(0)), 3);
        assert!(!s.contains(VarId(0), 0), "pre-checkpoint state preserved");
        assert!(s.contains(VarId(1), 1));
    }

    #[test]
    fn nested_checkpoints() {
        let mut s = Store::new(1, 5);
        s.push();
        s.remove(VarId(0), 0);
        s.push();
        s.remove(VarId(0), 1);
        s.pop();
        assert!(s.contains(VarId(0), 1));
        assert!(!s.contains(VarId(0), 0));
        s.pop();
        assert!(s.contains(VarId(0), 0));
    }

    #[test]
    fn first_fail_picks_smallest_open_domain() {
        let mut s = Store::new(3, 4);
        s.remove(VarId(1), 0);
        s.remove(VarId(1), 1); // var1 has 2 values
        s.fix(VarId(2), 0); // fixed: excluded
        assert_eq!(s.first_fail_var(), Some(VarId(1)));
        s.fix(VarId(1), 3);
        s.fix(VarId(0), 0);
        assert_eq!(s.first_fail_var(), None);
    }

    #[test]
    fn solution_requires_all_fixed() {
        let mut s = Store::new(2, 3);
        s.fix(VarId(0), 1);
        assert_eq!(s.solution(), None);
        s.fix(VarId(1), 2);
        assert_eq!(s.solution(), Some(vec![1, 2]));
    }

    #[test]
    fn iter_domain_ascends() {
        let mut s = Store::new(1, 5);
        s.remove(VarId(0), 1);
        s.remove(VarId(0), 3);
        let vals: Vec<_> = s.iter_domain(VarId(0)).collect();
        assert_eq!(vals, vec![0, 2, 4]);
    }

    #[test]
    #[should_panic(expected = "not fixed")]
    fn value_of_open_variable_panics() {
        let s = Store::new(1, 3);
        let _ = s.value(VarId(0));
    }

    #[test]
    #[should_panic(expected = "pop without matching push")]
    fn unmatched_pop_panics() {
        let mut s = Store::new(1, 3);
        s.pop();
    }
}
