//! Variable store: finite integer domains with trail-based backtracking.
//!
//! Every variable ranges over `0..n_values` (for the allocation problem:
//! server indices). Domains are packed `u64` bitset words — `contains` /
//! `remove` are O(1) bit operations and iteration walks whole words with
//! `trailing_zeros`, so an 800-server domain is 13 words, not 800 bools.
//! Removals are recorded on a trail so the DFS can undo them in
//! O(#trail entries) instead of copying domains — the standard CP design.
//! The trail is word-granular: one entry records *all* bits cleared in one
//! word by one operation, which makes `fix` on a wide domain O(words)
//! instead of O(values). The trail doubles as the propagation engine's
//! change log: everything after a cursor position is "dirty since last
//! seen" (see [`crate::search::Csp`]).

/// Index of a decision variable.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct VarId(pub usize);

impl VarId {
    /// Raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

/// One trail record: the bits of one word of one variable's domain that a
/// single operation cleared. `pop` ORs them back.
#[derive(Clone, Copy, Debug)]
struct TrailEntry {
    var: u32,
    word: u32,
    cleared: u64,
}

/// The store of all variable domains plus the backtracking trail.
#[derive(Clone, Debug)]
pub struct Store {
    /// Packed domains: `words[var * wpv + w]` holds values
    /// `64w..64(w+1)` of `var`'s domain.
    words: Vec<u64>,
    /// Words per variable.
    wpv: usize,
    /// Domain cardinalities.
    size: Vec<usize>,
    /// Trail of performed removals, word-granular.
    trail: Vec<TrailEntry>,
    /// Checkpoint stack: trail lengths.
    marks: Vec<usize>,
    /// Monotone count of pops ever performed — lets incremental
    /// propagators detect that the store rewound since their last call
    /// (a regrown trail can mask a pop from length comparisons alone).
    pops: u64,
    n_values: usize,
}

impl Store {
    /// Creates `n_vars` variables each with full domain `0..n_values`.
    pub fn new(n_vars: usize, n_values: usize) -> Self {
        assert!(n_values > 0, "domains must be non-empty");
        let wpv = n_values.div_ceil(64);
        let mut full = vec![u64::MAX; wpv];
        let tail = n_values % 64;
        if tail != 0 {
            full[wpv - 1] = (1u64 << tail) - 1;
        }
        let mut words = Vec::with_capacity(n_vars * wpv);
        for _ in 0..n_vars {
            words.extend_from_slice(&full);
        }
        Self {
            words,
            wpv,
            size: vec![n_values; n_vars],
            trail: Vec::new(),
            marks: Vec::new(),
            pops: 0,
            n_values,
        }
    }

    /// Number of variables.
    pub fn n_vars(&self) -> usize {
        self.size.len()
    }

    /// Number of potential values per variable.
    pub fn n_values(&self) -> usize {
        self.n_values
    }

    /// Is `value` still in `var`'s domain?
    #[inline]
    pub fn contains(&self, var: VarId, value: usize) -> bool {
        debug_assert!(value < self.n_values);
        let w = self.words[var.index() * self.wpv + (value >> 6)];
        (w >> (value & 63)) & 1 == 1
    }

    /// Domain cardinality of `var`.
    #[inline]
    pub fn domain_size(&self, var: VarId) -> usize {
        self.size[var.index()]
    }

    /// `true` when `var` has exactly one value left.
    #[inline]
    pub fn is_fixed(&self, var: VarId) -> bool {
        self.size[var.index()] == 1
    }

    /// `true` when `var` has no value left (failure).
    #[inline]
    pub fn is_empty(&self, var: VarId) -> bool {
        self.size[var.index()] == 0
    }

    /// The single value of a fixed variable.
    ///
    /// # Panics
    /// Panics if the variable is not fixed.
    pub fn value(&self, var: VarId) -> usize {
        assert!(self.is_fixed(var), "variable {var:?} is not fixed");
        let base = var.index() * self.wpv;
        for w in 0..self.wpv {
            let word = self.words[base + w];
            if word != 0 {
                return (w << 6) + word.trailing_zeros() as usize;
            }
        }
        unreachable!("fixed domain has one value")
    }

    /// Iterator over the remaining values of `var`, ascending.
    pub fn iter_domain(&self, var: VarId) -> DomainIter<'_> {
        let base = var.index() * self.wpv;
        let words = &self.words[base..base + self.wpv];
        DomainIter {
            words,
            word_idx: 0,
            current: words[0],
        }
    }

    /// The raw bitset words of `var`'s domain — `value v` is bit `v % 64`
    /// of word `v / 64`. Exposed for word-wise propagator loops and for
    /// bit-identical domain comparisons in the differential tests.
    #[inline]
    pub fn domain_words(&self, var: VarId) -> &[u64] {
        let base = var.index() * self.wpv;
        &self.words[base..base + self.wpv]
    }

    /// Removes `value` from `var`'s domain (recorded on the trail).
    /// Returns `true` when the domain actually changed.
    pub fn remove(&mut self, var: VarId, value: usize) -> bool {
        debug_assert!(value < self.n_values);
        let word = value >> 6;
        let bit = 1u64 << (value & 63);
        let w = &mut self.words[var.index() * self.wpv + word];
        if *w & bit == 0 {
            return false;
        }
        *w &= !bit;
        self.size[var.index()] -= 1;
        self.trail.push(TrailEntry {
            var: var.index() as u32,
            word: word as u32,
            cleared: bit,
        });
        true
    }

    /// Fixes `var` to `value` by removing every other value, word-wise:
    /// one trail entry per touched word instead of one per removed value.
    /// Returns `true` when the domain changed.
    ///
    /// # Panics
    /// Panics if `value` is not in the domain.
    pub fn fix(&mut self, var: VarId, value: usize) -> bool {
        assert!(
            self.contains(var, value),
            "fixing {var:?} to removed value {value}"
        );
        let base = var.index() * self.wpv;
        let keep_word = value >> 6;
        let keep_bit = 1u64 << (value & 63);
        let mut changed = false;
        for w in 0..self.wpv {
            let keep = if w == keep_word { keep_bit } else { 0 };
            let old = self.words[base + w];
            let cleared = old & !keep;
            if cleared != 0 {
                self.words[base + w] = old & keep;
                self.size[var.index()] -= cleared.count_ones() as usize;
                self.trail.push(TrailEntry {
                    var: var.index() as u32,
                    word: w as u32,
                    cleared,
                });
                changed = true;
            }
        }
        changed
    }

    /// Removes from `var` every value whose bit is *not* set in `allowed`
    /// (a word mask shaped like [`Store::domain_words`]), word-wise: one
    /// trail entry per touched word. Returns `true` when the domain
    /// changed.
    pub fn retain_words(&mut self, var: VarId, allowed: &[u64]) -> bool {
        assert_eq!(allowed.len(), self.wpv, "mask must span the domain");
        let base = var.index() * self.wpv;
        let mut changed = false;
        for (w, &keep) in allowed.iter().enumerate() {
            let old = self.words[base + w];
            let cleared = old & !keep;
            if cleared != 0 {
                self.words[base + w] = old & keep;
                self.size[var.index()] -= cleared.count_ones() as usize;
                self.trail.push(TrailEntry {
                    var: var.index() as u32,
                    word: w as u32,
                    cleared,
                });
                changed = true;
            }
        }
        changed
    }

    /// Pushes a backtracking checkpoint.
    pub fn push(&mut self) {
        self.marks.push(self.trail.len());
    }

    /// Pops to the last checkpoint, restoring all removals since.
    ///
    /// # Panics
    /// Panics when no checkpoint exists.
    pub fn pop(&mut self) {
        let mark = self.marks.pop().expect("pop without matching push");
        while self.trail.len() > mark {
            let e = self.trail.pop().expect("trail length checked");
            self.words[e.var as usize * self.wpv + e.word as usize] |= e.cleared;
            self.size[e.var as usize] += e.cleared.count_ones() as usize;
        }
        self.pops += 1;
    }

    /// Total pops ever performed (monotone). Incremental propagators
    /// compare this against the value seen at their last call: unchanged
    /// means the store only deepened since, so deltas are trustworthy.
    #[inline]
    pub fn pop_count(&self) -> u64 {
        self.pops
    }

    /// Number of active checkpoints.
    #[inline]
    pub fn depth(&self) -> usize {
        self.marks.len()
    }

    /// Current trail length — a monotone-within-a-level change cursor:
    /// every domain change since a recorded position appears in
    /// `trail[pos..]`. Shrinks only on [`Store::pop`].
    #[inline]
    pub fn trail_len(&self) -> usize {
        self.trail.len()
    }

    /// The variable touched by trail entry `i` (used by the propagation
    /// engine to wake watchers of dirty variables).
    #[inline]
    pub(crate) fn trail_var(&self, i: usize) -> usize {
        self.trail[i].var as usize
    }

    /// Extracts a full solution when every variable is fixed.
    pub fn solution(&self) -> Option<Vec<usize>> {
        (0..self.n_vars())
            .map(|v| {
                let var = VarId(v);
                self.is_fixed(var).then(|| self.value(var))
            })
            .collect()
    }

    /// The unfixed variable with the smallest domain (first-fail), if any.
    pub fn first_fail_var(&self) -> Option<VarId> {
        (0..self.n_vars())
            .filter(|&v| self.size[v] > 1)
            .min_by_key(|&v| self.size[v])
            .map(VarId)
    }
}

/// Word-wise ascending iterator over a domain (see [`Store::iter_domain`]).
pub struct DomainIter<'a> {
    words: &'a [u64],
    word_idx: usize,
    current: u64,
}

impl Iterator for DomainIter<'_> {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some((self.word_idx << 6) + bit);
            }
            self.word_idx += 1;
            if self.word_idx >= self.words.len() {
                return None;
            }
            self.current = self.words[self.word_idx];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_store_has_full_domains() {
        let s = Store::new(3, 5);
        assert_eq!(s.n_vars(), 3);
        assert_eq!(s.domain_size(VarId(0)), 5);
        assert!(s.contains(VarId(2), 4));
        assert!(!s.is_fixed(VarId(0)));
    }

    #[test]
    fn remove_and_fix_shrink_domains() {
        let mut s = Store::new(2, 4);
        assert!(s.remove(VarId(0), 2));
        assert!(!s.remove(VarId(0), 2), "second removal is a no-op");
        assert_eq!(s.domain_size(VarId(0)), 3);
        s.fix(VarId(1), 3);
        assert!(s.is_fixed(VarId(1)));
        assert_eq!(s.value(VarId(1)), 3);
    }

    #[test]
    fn push_pop_restores_exactly() {
        let mut s = Store::new(2, 4);
        s.remove(VarId(0), 0); // pre-checkpoint removal must survive pop
        s.push();
        s.fix(VarId(0), 2);
        s.remove(VarId(1), 1);
        assert!(s.is_fixed(VarId(0)));
        s.pop();
        assert_eq!(s.domain_size(VarId(0)), 3);
        assert!(!s.contains(VarId(0), 0), "pre-checkpoint state preserved");
        assert!(s.contains(VarId(1), 1));
    }

    #[test]
    fn nested_checkpoints() {
        let mut s = Store::new(1, 5);
        s.push();
        s.remove(VarId(0), 0);
        s.push();
        s.remove(VarId(0), 1);
        s.pop();
        assert!(s.contains(VarId(0), 1));
        assert!(!s.contains(VarId(0), 0));
        s.pop();
        assert!(s.contains(VarId(0), 0));
    }

    #[test]
    fn first_fail_picks_smallest_open_domain() {
        let mut s = Store::new(3, 4);
        s.remove(VarId(1), 0);
        s.remove(VarId(1), 1); // var1 has 2 values
        s.fix(VarId(2), 0); // fixed: excluded
        assert_eq!(s.first_fail_var(), Some(VarId(1)));
        s.fix(VarId(1), 3);
        s.fix(VarId(0), 0);
        assert_eq!(s.first_fail_var(), None);
    }

    #[test]
    fn solution_requires_all_fixed() {
        let mut s = Store::new(2, 3);
        s.fix(VarId(0), 1);
        assert_eq!(s.solution(), None);
        s.fix(VarId(1), 2);
        assert_eq!(s.solution(), Some(vec![1, 2]));
    }

    #[test]
    fn iter_domain_ascends() {
        let mut s = Store::new(1, 5);
        s.remove(VarId(0), 1);
        s.remove(VarId(0), 3);
        let vals: Vec<_> = s.iter_domain(VarId(0)).collect();
        assert_eq!(vals, vec![0, 2, 4]);
    }

    #[test]
    fn wide_domains_cross_word_boundaries() {
        // 130 values = 3 words; exercise removal, fix and pop across all.
        let mut s = Store::new(2, 130);
        assert_eq!(s.domain_size(VarId(0)), 130);
        assert!(s.contains(VarId(0), 129));
        assert!(s.remove(VarId(0), 64));
        assert!(s.remove(VarId(0), 128));
        assert_eq!(s.domain_size(VarId(0)), 128);
        let vals: Vec<_> = s.iter_domain(VarId(0)).collect();
        assert_eq!(vals.len(), 128);
        assert!(!vals.contains(&64) && !vals.contains(&128));

        s.push();
        s.fix(VarId(0), 100);
        assert_eq!(s.value(VarId(0)), 100);
        assert_eq!(s.domain_size(VarId(0)), 1);
        s.pop();
        assert_eq!(s.domain_size(VarId(0)), 128);
        assert!(s.contains(VarId(0), 0) && s.contains(VarId(0), 129));
        assert!(!s.contains(VarId(0), 64), "pre-checkpoint removal kept");
    }

    #[test]
    fn exact_word_multiple_domain() {
        let mut s = Store::new(1, 64);
        assert_eq!(s.domain_size(VarId(0)), 64);
        assert_eq!(s.iter_domain(VarId(0)).count(), 64);
        s.fix(VarId(0), 63);
        assert_eq!(s.value(VarId(0)), 63);
    }

    #[test]
    fn trail_len_tracks_changes_word_wise() {
        let mut s = Store::new(1, 100);
        assert_eq!(s.trail_len(), 0);
        s.remove(VarId(0), 3);
        assert_eq!(s.trail_len(), 1);
        // fix on a 2-word domain: at most one entry per word.
        s.fix(VarId(0), 70);
        assert!(s.trail_len() <= 3);
        assert_eq!(s.trail_var(0), 0);
    }

    #[test]
    #[should_panic(expected = "not fixed")]
    fn value_of_open_variable_panics() {
        let s = Store::new(1, 3);
        let _ = s.value(VarId(0));
    }

    #[test]
    #[should_panic(expected = "pop without matching push")]
    fn unmatched_pop_panics() {
        let mut s = Store::new(1, 3);
        s.pop();
    }
}
