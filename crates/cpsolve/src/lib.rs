//! # cpo-cpsolve — a constraint-programming solver
//!
//! The paper first solves its model "with the help of a Java-based
//! constraint solver, Choco" and keeps a CP baseline ("Constraint
//! Programming") plus a hybrid ("NSGA-III with constraint solver") in its
//! evaluation. This crate is the Choco substitute: a small but complete
//! integer-domain CP solver with
//!
//! * trail-based backtracking over packed `u64` bitset domains
//!   [`store::Store`],
//! * propagators for every constraint shape of the allocation model
//!   ([`propagator`]): multi-dimensional vector packing (capacity,
//!   Eq. 16), all-equal / group-all-equal (co-location, Eqs. 9–10),
//!   all-different / group-all-different (separation, Eqs. 11–12),
//! * an event-driven propagation engine — per-variable watcher lists and
//!   a deduplicated wake queue — with the original full-fixpoint loop
//!   retained as [`search::Engine::Reference`] for differential testing,
//! * first-fail DFS with lexicographic or cost-ordered value selection,
//!   branch-and-bound optimisation on separable costs, node and wall-clock
//!   budgets ([`search`]).
//!
//! ```
//! use cpo_cpsolve::prelude::*;
//!
//! // Three VMs on two servers of capacity 10, demands 6/6/3:
//! let mut csp = Csp::new(3, 2);
//! csp.add(Box::new(Pack::new(
//!     vec![VarId(0), VarId(1), VarId(2)],
//!     vec![vec![6.0], vec![6.0], vec![3.0]],
//!     vec![vec![10.0], vec![10.0]],
//! )));
//! let (outcome, _) = solve(&mut csp, &SearchConfig::default());
//! let placement = outcome.solution().expect("fits");
//! assert_ne!(placement[0], placement[1], "the two 6s cannot share a bin");
//! ```

#![warn(missing_docs)]

pub mod propagator;
pub mod search;
pub mod store;

/// The most-used solver types.
pub mod prelude {
    pub use crate::propagator::{
        AllDifferent, AllEqual, GroupAllDifferent, GroupAllEqual, Pack, Propagation, Propagator,
        WakeOn,
    };
    pub use crate::search::{
        optimize, solve, solve_with_restarts, Csp, Engine, Outcome, SearchConfig, SearchStats,
        ValueOrder,
    };
    pub use crate::store::{Store, VarId};
}
