//! Depth-first search with event-driven constraint propagation: per-variable
//! watcher lists, a deduplicated propagation queue drained to fixpoint,
//! first-fail variable order, configurable value order, optional
//! branch-and-bound optimisation and a wall-clock deadline (the paper
//! aborts CP past its response-time budget).
//!
//! Two interchangeable engines drive propagation:
//!
//! * [`Engine::Queued`] (default) — only propagators watching a variable
//!   that actually changed are (re-)queued, with an in-queue bitmask
//!   deduplicating wakeups and per-propagator event filters
//!   ([`crate::propagator::WakeOn`]) skipping wakeups that provably
//!   cannot prune. After a branching decision, the queue is seeded from
//!   the trail delta, so a node costs work proportional to what the
//!   decision disturbed.
//! * [`Engine::Reference`] — the original full-fixpoint loop: every
//!   propagator re-runs in every round until a whole round changes
//!   nothing. Kept verbatim so the differential test suite can prove the
//!   queued engine reaches bit-identical fixpoints and solve outcomes.

use crate::propagator::{Propagation, Propagator, WakeOn};
use crate::store::{Store, VarId};
use std::collections::VecDeque;
use std::time::{Duration, Instant};

/// Value-ordering heuristic for branching.
#[derive(Clone, Debug)]
pub enum ValueOrder {
    /// Ascending value index.
    Lex,
    /// Ascending per-(var,value) cost; `cost[var][value]`.
    ByCost(Vec<Vec<f64>>),
    /// Deterministic pseudo-random order per (variable, restart) — the
    /// diversification used by [`solve_with_restarts`].
    Shuffled {
        /// Base seed; combined with the variable index per decision.
        seed: u64,
    },
}

/// Which propagation engine drives the search.
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub enum Engine {
    /// Event-driven: watcher lists + deduplicated propagation queue.
    #[default]
    Queued,
    /// The pre-event full-fixpoint loop (every propagator, every round).
    /// Exists for the differential test layer; not for production use.
    Reference,
}

/// Search configuration.
#[derive(Clone, Debug)]
pub struct SearchConfig {
    /// Wall-clock budget; `None` = unlimited.
    pub deadline: Option<Duration>,
    /// Value ordering.
    pub value_order: ValueOrder,
    /// Node expansion budget; `None` = unlimited.
    pub max_nodes: Option<usize>,
    /// Propagation engine.
    pub engine: Engine,
}

impl Default for SearchConfig {
    fn default() -> Self {
        Self {
            deadline: None,
            value_order: ValueOrder::Lex,
            max_nodes: None,
            engine: Engine::Queued,
        }
    }
}

/// Outcome of a search.
#[derive(Clone, Debug, PartialEq)]
pub enum Outcome {
    /// A (first or best) solution was found: values per variable.
    Solution(Vec<usize>),
    /// The problem was proven infeasible.
    Infeasible,
    /// Deadline or node budget hit before an answer.
    Timeout,
}

impl Outcome {
    /// The solution values, if any.
    pub fn solution(&self) -> Option<&[usize]> {
        match self {
            Outcome::Solution(s) => Some(s),
            _ => None,
        }
    }
}

/// A CSP: a store, its propagators and the event-driven propagation state
/// (watcher lists, wake queue, trail cursor).
pub struct Csp {
    /// The variable store.
    pub store: Store,
    /// The constraint propagators.
    propagators: Vec<Box<dyn Propagator>>,
    /// `watchers[var]` — indices of propagators watching `var`.
    watchers: Vec<Vec<u32>>,
    /// `wake_on[p]` — cached event filter of propagator `p`: propagators
    /// subscribed to [`WakeOn::Fix`] are only woken by a trail entry whose
    /// variable is (now) fixed.
    wake_on: Vec<WakeOn>,
    /// Pending wakeups (propagator indices), deduplicated by `in_queue`.
    queue: VecDeque<u32>,
    /// In-queue bitmask: `in_queue[p]` ⇔ `p` is already enqueued.
    in_queue: Vec<bool>,
    /// Trail cursor: everything in `store.trail[seen..]` is dirty.
    seen: usize,
    /// Individual propagator invocations performed so far.
    propagations: u64,
    /// Propagator enqueue events (queued engine).
    wakeups: u64,
    /// Fixpoint computations started (queue drains / reference rounds).
    rounds: u64,
}

impl Csp {
    /// Creates a CSP over `n_vars` variables with domains `0..n_values`.
    pub fn new(n_vars: usize, n_values: usize) -> Self {
        Self {
            store: Store::new(n_vars, n_values),
            propagators: Vec::new(),
            watchers: vec![Vec::new(); n_vars],
            wake_on: Vec::new(),
            queue: VecDeque::new(),
            in_queue: Vec::new(),
            seen: 0,
            propagations: 0,
            wakeups: 0,
            rounds: 0,
        }
    }

    /// Adds a propagator and registers it on the watcher list of every
    /// variable it constrains.
    pub fn add(&mut self, p: Box<dyn Propagator>) {
        let idx = self.propagators.len() as u32;
        for &v in p.vars() {
            self.watchers[v.index()].push(idx);
        }
        self.wake_on.push(p.wake_on());
        self.propagators.push(p);
        self.in_queue.push(false);
    }

    /// Number of registered propagators.
    pub fn n_propagators(&self) -> usize {
        self.propagators.len()
    }

    /// Total propagator invocations performed on this CSP so far (across
    /// all searches run on it).
    pub fn propagations(&self) -> u64 {
        self.propagations
    }

    /// Total propagator enqueue events (queued engine only).
    pub fn wakeups(&self) -> u64 {
        self.wakeups
    }

    /// Total fixpoint computations started (queue drains and reference
    /// rounds both count once per `propagate*` call).
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Pushes a backtracking checkpoint (store checkpoint + engine sync).
    pub fn push(&mut self) {
        self.store.push();
    }

    /// Pops to the last checkpoint: restores the store and resets the
    /// engine's queue and trail cursor (undone changes need no wakeups).
    pub fn pop(&mut self) {
        self.store.pop();
        self.clear_queue();
        self.seen = self.store.trail_len();
    }

    fn clear_queue(&mut self) {
        for idx in self.queue.drain(..) {
            self.in_queue[idx as usize] = false;
        }
    }

    fn enqueue(&mut self, idx: u32) {
        if !self.in_queue[idx as usize] {
            self.in_queue[idx as usize] = true;
            self.queue.push_back(idx);
            self.wakeups += 1;
        }
    }

    /// Wakes every propagator watching a variable touched on the trail
    /// since the cursor.
    fn seed_from_trail(&mut self) {
        let from = self.seen.min(self.store.trail_len());
        self.seed_from_trail_from(from);
    }

    /// Drains the wake queue to fixpoint. Returns `false` on failure.
    fn drain(&mut self) -> bool {
        self.rounds += 1;
        while let Some(idx) = self.queue.pop_front() {
            self.in_queue[idx as usize] = false;
            self.propagations += 1;
            let before = self.store.trail_len();
            let result = self.propagators[idx as usize].propagate(&mut self.store);
            match result {
                Propagation::Infeasible => {
                    self.clear_queue();
                    self.seen = self.store.trail_len();
                    return false;
                }
                Propagation::Changed | Propagation::Stable => {
                    // Wake watchers of everything that changed — including
                    // this propagator itself, so a single call need not
                    // reach its own fixpoint.
                    if self.store.trail_len() > before {
                        self.seed_from_trail_from(before);
                    }
                }
            }
        }
        self.seen = self.store.trail_len();
        true
    }

    fn seed_from_trail_from(&mut self, from: usize) {
        let len = self.store.trail_len();
        for t in from..len {
            let var = self.store.trail_var(t);
            // Domains only shrink between checkpoints, so "fixed now" is
            // exactly "became fixed by (or before) this entry's removal" —
            // the fix event [`WakeOn::Fix`] subscribers wait for.
            let fixed = self.store.is_fixed(VarId(var));
            for w in 0..self.watchers[var].len() {
                let idx = self.watchers[var][w];
                if self.wake_on[idx as usize] == WakeOn::Fix && !fixed {
                    continue;
                }
                self.enqueue(idx);
            }
        }
        self.seen = len;
    }

    /// Runs propagation to fixpoint with a full wake of every propagator
    /// (correct regardless of how the store was manipulated). Returns
    /// `false` on failure.
    pub fn propagate(&mut self) -> bool {
        for idx in 0..self.propagators.len() as u32 {
            self.enqueue(idx);
        }
        self.seen = self.store.trail_len();
        self.drain()
    }

    /// Runs propagation to fixpoint waking only propagators whose watched
    /// variables changed since the last propagation (the per-node hot
    /// path after a branching decision). Returns `false` on failure.
    pub fn propagate_dirty(&mut self) -> bool {
        self.seed_from_trail();
        self.drain()
    }

    /// The original full-fixpoint loop: every propagator re-runs in every
    /// round until a whole round changes nothing. Reference semantics for
    /// the differential tests. Returns `false` on failure.
    pub fn propagate_reference(&mut self) -> bool {
        self.rounds += 1;
        loop {
            let mut any_change = false;
            for p in &self.propagators {
                self.propagations += 1;
                match p.propagate_reference(&mut self.store) {
                    Propagation::Infeasible => {
                        self.seen = self.store.trail_len();
                        return false;
                    }
                    Propagation::Changed => any_change = true,
                    Propagation::Stable => {}
                }
            }
            if !any_change {
                self.seen = self.store.trail_len();
                return true;
            }
        }
    }

    /// Fixpoint propagation under the given engine, seeding from the
    /// trail delta when `dirty` (only meaningful for the queued engine —
    /// the reference engine always re-runs everything).
    fn propagate_with(&mut self, engine: Engine, dirty: bool) -> bool {
        match engine {
            Engine::Queued if dirty => self.propagate_dirty(),
            Engine::Queued => self.propagate(),
            Engine::Reference => self.propagate_reference(),
        }
    }
}

/// Search statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Nodes expanded.
    pub nodes: usize,
    /// Backtracks performed.
    pub backtracks: usize,
    /// Solutions encountered (B&B may pass several).
    pub solutions: usize,
    /// Propagator invocations during this search.
    pub propagations: u64,
    /// Propagator enqueue events during this search (queued engine).
    pub wakeups: u64,
}

fn ordered_values(store: &Store, var: VarId, order: &ValueOrder) -> Vec<usize> {
    let mut values: Vec<usize> = store.iter_domain(var).collect();
    match order {
        ValueOrder::Lex => {}
        ValueOrder::ByCost(cost) => {
            values.sort_by(|&a, &b| {
                cost[var.index()][a]
                    .partial_cmp(&cost[var.index()][b])
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
        }
        ValueOrder::Shuffled { seed } => {
            // SplitMix-style keyed shuffle: sort by a hash of
            // (seed, var, value). Deterministic, allocation-free ordering
            // key, different per restart seed.
            let key = |v: usize| {
                let mut z = seed
                    .wrapping_add(var.index() as u64)
                    .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                    .wrapping_add(v as u64 + 1);
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            values.sort_by_key(|&v| key(v));
        }
    }
    values
}

/// Restarted search: run [`solve`] up to `restarts` times with shuffled
/// value orders and a per-attempt node budget (Luby-free geometric
/// schedule: the budget doubles each restart). Diversification rescues
/// instances where one unlucky ordering thrashes — the classic
/// heavy-tailed-runtime remedy.
pub fn solve_with_restarts(
    csp: &mut Csp,
    restarts: usize,
    base_nodes: usize,
    deadline: Option<Duration>,
    base_seed: u64,
) -> (Outcome, SearchStats) {
    let start = Instant::now();
    let mut total = SearchStats::default();
    let mut nodes = base_nodes.max(1);
    for attempt in 0..restarts.max(1) {
        let remaining = deadline.map(|d| d.saturating_sub(start.elapsed()));
        if remaining == Some(Duration::ZERO) {
            return (Outcome::Timeout, total);
        }
        let config = SearchConfig {
            deadline: remaining,
            max_nodes: Some(nodes),
            value_order: ValueOrder::Shuffled {
                seed: base_seed.wrapping_add(attempt as u64),
            },
            ..Default::default()
        };
        let (outcome, stats) = solve(csp, &config);
        total.nodes += stats.nodes;
        total.backtracks += stats.backtracks;
        total.solutions += stats.solutions;
        total.propagations += stats.propagations;
        total.wakeups += stats.wakeups;
        match outcome {
            Outcome::Timeout => {
                nodes = nodes.saturating_mul(2);
                continue;
            }
            decided => return (decided, total),
        }
    }
    (Outcome::Timeout, total)
}

/// Finds the first feasible solution.
pub fn solve(csp: &mut Csp, config: &SearchConfig) -> (Outcome, SearchStats) {
    let mut sp = cpo_obs::span!("cp.solve", mode = "satisfy");
    let start = Instant::now();
    let mut stats = SearchStats::default();
    let before = csp.propagations;
    let before_wake = csp.wakeups;
    let outcome = if !csp.propagate_with(config.engine, false) {
        Outcome::Infeasible
    } else {
        dfs_first(csp, config, start, &mut stats)
    };
    stats.propagations = csp.propagations - before;
    stats.wakeups = csp.wakeups - before_wake;
    report_search(&mut sp, outcome_label(&outcome), &stats);
    (outcome, stats)
}

fn outcome_label(outcome: &Outcome) -> &'static str {
    match outcome {
        Outcome::Solution(_) => "solution",
        Outcome::Infeasible => "infeasible",
        Outcome::Timeout => "timeout",
    }
}

fn report_search(sp: &mut cpo_obs::SpanGuard, outcome: &str, stats: &SearchStats) {
    sp.field("outcome", outcome)
        .field("nodes", stats.nodes)
        .field("backtracks", stats.backtracks)
        .field("propagations", stats.propagations)
        .field("wakeups", stats.wakeups);
    cpo_obs::counter_add("cp.propagations", stats.propagations);
    cpo_obs::counter_add("cp.wakeups", stats.wakeups);
    cpo_obs::counter_add("cp.backtracks", stats.backtracks as u64);
    cpo_obs::counter_add("cp.decisions", stats.nodes as u64);
}

fn budget_exceeded(config: &SearchConfig, start: Instant, stats: &SearchStats) -> bool {
    if let Some(d) = config.deadline {
        if start.elapsed() >= d {
            return true;
        }
    }
    if let Some(n) = config.max_nodes {
        if stats.nodes >= n {
            return true;
        }
    }
    false
}

fn dfs_first(
    csp: &mut Csp,
    config: &SearchConfig,
    start: Instant,
    stats: &mut SearchStats,
) -> Outcome {
    if budget_exceeded(config, start, stats) {
        return Outcome::Timeout;
    }
    let Some(var) = csp.store.first_fail_var() else {
        stats.solutions += 1;
        return Outcome::Solution(csp.store.solution().expect("all fixed"));
    };
    stats.nodes += 1;
    let values = ordered_values(&csp.store, var, &config.value_order);
    let mut timed_out = false;
    for value in values {
        csp.push();
        csp.store.fix(var, value);
        if csp.propagate_with(config.engine, true) {
            match dfs_first(csp, config, start, stats) {
                Outcome::Solution(s) => {
                    csp.pop();
                    return Outcome::Solution(s);
                }
                Outcome::Timeout => timed_out = true,
                Outcome::Infeasible => {}
            }
        }
        csp.pop();
        stats.backtracks += 1;
        if timed_out || budget_exceeded(config, start, stats) {
            return Outcome::Timeout;
        }
    }
    Outcome::Infeasible
}

/// Branch-and-bound minimisation of a separable cost `Σ cost[var][value]`.
///
/// The lower bound at a node is the cost of fixed variables plus each open
/// variable's cheapest remaining value — admissible for non-negative
/// costs. Returns the best solution found within the budget and whether
/// optimality was proven.
pub fn optimize(
    csp: &mut Csp,
    cost: &[Vec<f64>],
    config: &SearchConfig,
) -> (Option<(Vec<usize>, f64)>, bool, SearchStats) {
    let mut sp = cpo_obs::span!("cp.solve", mode = "optimize");
    let start = Instant::now();
    let mut stats = SearchStats::default();
    let before = csp.propagations;
    let before_wake = csp.wakeups;
    if !csp.propagate_with(config.engine, false) {
        stats.propagations = csp.propagations - before;
        stats.wakeups = csp.wakeups - before_wake;
        report_search(&mut sp, "infeasible", &stats);
        return (None, true, stats); // proven infeasible
    }
    let mut best: Option<(Vec<usize>, f64)> = None;
    let complete = bnb(csp, cost, config, start, &mut stats, &mut best);
    stats.propagations = csp.propagations - before;
    stats.wakeups = csp.wakeups - before_wake;
    let label = match (&best, complete) {
        (Some(_), true) => "optimal",
        (Some(_), false) => "feasible",
        (None, true) => "infeasible",
        (None, false) => "timeout",
    };
    report_search(&mut sp, label, &stats);
    (best, complete, stats)
}

fn lower_bound(store: &Store, cost: &[Vec<f64>]) -> f64 {
    (0..store.n_vars())
        .map(|v| {
            store
                .iter_domain(VarId(v))
                .map(|val| cost[v][val])
                .fold(f64::INFINITY, f64::min)
        })
        .sum()
}

/// Returns `true` when the subtree was fully explored (no budget cut).
fn bnb(
    csp: &mut Csp,
    cost: &[Vec<f64>],
    config: &SearchConfig,
    start: Instant,
    stats: &mut SearchStats,
    best: &mut Option<(Vec<usize>, f64)>,
) -> bool {
    if budget_exceeded(config, start, stats) {
        return false;
    }
    let lb = lower_bound(&csp.store, cost);
    if let Some((_, ub)) = best {
        if lb >= *ub - 1e-12 {
            return true; // pruned: cannot improve
        }
    }
    let Some(var) = csp.store.first_fail_var() else {
        let solution = csp.store.solution().expect("all fixed");
        let c: f64 = solution
            .iter()
            .enumerate()
            .map(|(v, &val)| cost[v][val])
            .sum();
        stats.solutions += 1;
        if best.as_ref().is_none_or(|(_, ub)| c < *ub) {
            *best = Some((solution, c));
        }
        return true;
    };
    stats.nodes += 1;
    let values = ordered_values(&csp.store, var, &config.value_order);
    let mut complete = true;
    for value in values {
        csp.push();
        csp.store.fix(var, value);
        if csp.propagate_with(config.engine, true) {
            complete &= bnb(csp, cost, config, start, stats, best);
        }
        csp.pop();
        stats.backtracks += 1;
        if budget_exceeded(config, start, stats) {
            return false;
        }
    }
    complete
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::propagator::{AllDifferent, AllEqual, Pack};

    #[test]
    fn trivial_problem_solves() {
        let mut csp = Csp::new(2, 3);
        let (outcome, stats) = solve(&mut csp, &SearchConfig::default());
        let s = outcome.solution().expect("feasible");
        assert_eq!(s.len(), 2);
        assert!(stats.solutions == 1);
    }

    #[test]
    fn all_different_permutation() {
        let mut csp = Csp::new(3, 3);
        csp.add(Box::new(AllDifferent {
            vars: vec![VarId(0), VarId(1), VarId(2)],
        }));
        let (outcome, _) = solve(&mut csp, &SearchConfig::default());
        let s = outcome.solution().expect("3-perm exists").to_vec();
        let mut sorted = s.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2]);
    }

    #[test]
    fn infeasible_is_proven() {
        let mut csp = Csp::new(3, 2);
        csp.add(Box::new(AllDifferent {
            vars: vec![VarId(0), VarId(1), VarId(2)],
        }));
        let (outcome, _) = solve(&mut csp, &SearchConfig::default());
        assert_eq!(outcome, Outcome::Infeasible);
    }

    #[test]
    fn combined_constraints() {
        // vars 0,1 equal; vars 1,2 different; 2 values.
        let mut csp = Csp::new(3, 2);
        csp.add(Box::new(AllEqual {
            vars: vec![VarId(0), VarId(1)],
        }));
        csp.add(Box::new(AllDifferent {
            vars: vec![VarId(1), VarId(2)],
        }));
        let (outcome, _) = solve(&mut csp, &SearchConfig::default());
        let s = outcome.solution().unwrap();
        assert_eq!(s[0], s[1]);
        assert_ne!(s[1], s[2]);
    }

    #[test]
    fn packing_respects_capacity() {
        // Three items of demand 6 on two bins of capacity 10: one bin gets
        // one item, the other two → but 12 > 10, so actually infeasible?
        // 6+6=12 > 10 → at most one item per bin → 3 items need 3 bins.
        let mut csp = Csp::new(3, 2);
        csp.add(Box::new(Pack::new(
            vec![VarId(0), VarId(1), VarId(2)],
            vec![vec![6.0]; 3],
            vec![vec![10.0]; 2],
        )));
        let (outcome, _) = solve(&mut csp, &SearchConfig::default());
        assert_eq!(outcome, Outcome::Infeasible);
        // With capacity 12, two fit in one bin.
        let mut csp = Csp::new(3, 2);
        csp.add(Box::new(Pack::new(
            vec![VarId(0), VarId(1), VarId(2)],
            vec![vec![6.0]; 3],
            vec![vec![12.0]; 2],
        )));
        let (outcome, _) = solve(&mut csp, &SearchConfig::default());
        assert!(outcome.solution().is_some());
    }

    #[test]
    fn node_budget_times_out() {
        let mut csp = Csp::new(8, 8);
        csp.add(Box::new(AllDifferent {
            vars: (0..8).map(VarId).collect(),
        }));
        // Force exploration with an impossible extra constraint? Instead
        // cap nodes below what the first solution needs.
        let cfg = SearchConfig {
            max_nodes: Some(0),
            ..Default::default()
        };
        let (outcome, _) = solve(&mut csp, &cfg);
        // With zero node budget we either got lucky (all fixed by
        // propagation — impossible here) or timed out.
        assert_eq!(outcome, Outcome::Timeout);
    }

    #[test]
    fn bycost_value_order_prefers_cheap() {
        let mut csp = Csp::new(1, 3);
        let cost = vec![vec![5.0, 1.0, 3.0]];
        let cfg = SearchConfig {
            value_order: ValueOrder::ByCost(cost),
            ..Default::default()
        };
        let (outcome, _) = solve(&mut csp, &cfg);
        assert_eq!(outcome.solution().unwrap(), &[1], "cheapest value first");
    }

    #[test]
    fn optimize_finds_minimum() {
        // 2 vars, 3 values, all-different; costs chosen so optimum is
        // var0=2 (1.0), var1=0 (0.5) → 1.5.
        let mut csp = Csp::new(2, 3);
        csp.add(Box::new(AllDifferent {
            vars: vec![VarId(0), VarId(1)],
        }));
        let cost = vec![vec![9.0, 4.0, 1.0], vec![0.5, 2.0, 8.0]];
        let (best, complete, _) = optimize(&mut csp, &cost, &SearchConfig::default());
        let (solution, c) = best.expect("feasible");
        assert!(complete, "small tree must be fully explored");
        assert_eq!(solution, vec![2, 0]);
        assert!((c - 1.5).abs() < 1e-12);
    }

    #[test]
    fn optimize_proves_infeasible() {
        let mut csp = Csp::new(3, 2);
        csp.add(Box::new(AllDifferent {
            vars: vec![VarId(0), VarId(1), VarId(2)],
        }));
        let cost = vec![vec![1.0, 1.0]; 3];
        let (best, complete, _) = optimize(&mut csp, &cost, &SearchConfig::default());
        assert!(best.is_none());
        assert!(complete);
    }

    #[test]
    fn optimize_respects_deadline() {
        // A large all-different tree with uniform costs explores a lot;
        // a zero deadline must cut immediately but may keep a first answer.
        let mut csp = Csp::new(9, 9);
        csp.add(Box::new(AllDifferent {
            vars: (0..9).map(VarId).collect(),
        }));
        let cost = vec![vec![1.0; 9]; 9];
        let cfg = SearchConfig {
            deadline: Some(Duration::from_millis(0)),
            ..Default::default()
        };
        let (_, complete, stats) = optimize(&mut csp, &cost, &cfg);
        assert!(!complete);
        assert_eq!(stats.nodes, 0);
    }

    #[test]
    fn shuffled_order_is_deterministic_and_complete() {
        let run = |seed: u64| {
            let mut csp = Csp::new(3, 4);
            csp.add(Box::new(AllDifferent {
                vars: (0..3).map(VarId).collect(),
            }));
            let cfg = SearchConfig {
                value_order: ValueOrder::Shuffled { seed },
                ..Default::default()
            };
            let (outcome, _) = solve(&mut csp, &cfg);
            outcome.solution().map(<[usize]>::to_vec)
        };
        let a = run(1).expect("feasible");
        let b = run(1).expect("feasible");
        assert_eq!(a, b, "same seed, same branching");
        // Different seeds may land on different (valid) solutions.
        let c = run(7).expect("feasible");
        let mut sc = c.clone();
        sc.sort_unstable();
        sc.dedup();
        assert_eq!(sc.len(), 3, "all-different must hold: {c:?}");
    }

    #[test]
    fn restarts_eventually_solve_with_growing_budget() {
        // base budget 0 nodes: attempt 1 times out instantly; the doubled
        // budgets must eventually finish this small tree.
        let mut csp = Csp::new(4, 4);
        csp.add(Box::new(AllDifferent {
            vars: (0..4).map(VarId).collect(),
        }));
        let (outcome, stats) = solve_with_restarts(&mut csp, 12, 1, None, 3);
        assert!(
            outcome.solution().is_some(),
            "restarts must converge: {outcome:?}"
        );
        assert!(stats.nodes > 0);
    }

    #[test]
    fn restarts_report_infeasible_immediately() {
        let mut csp = Csp::new(3, 2);
        csp.add(Box::new(AllDifferent {
            vars: (0..3).map(VarId).collect(),
        }));
        let (outcome, _) = solve_with_restarts(&mut csp, 5, 100, None, 0);
        assert_eq!(outcome, Outcome::Infeasible);
    }

    #[test]
    fn first_solution_lex_is_smallest() {
        let mut csp = Csp::new(2, 3);
        let (outcome, _) = solve(&mut csp, &SearchConfig::default());
        assert_eq!(outcome.solution().unwrap(), &[0, 0]);
    }

    #[test]
    fn reference_engine_agrees_on_every_small_outcome() {
        // Same problems as above under Engine::Reference: identical
        // solutions, node counts and backtracks (only propagation effort
        // may differ).
        let build = || {
            let mut csp = Csp::new(4, 4);
            csp.add(Box::new(AllDifferent {
                vars: (0..3).map(VarId).collect(),
            }));
            csp.add(Box::new(Pack::new(
                (0..4).map(VarId).collect(),
                vec![vec![2.0]; 4],
                vec![vec![5.0]; 4],
            )));
            csp
        };
        let queued_cfg = SearchConfig::default();
        let reference_cfg = SearchConfig {
            engine: Engine::Reference,
            ..Default::default()
        };
        let (oq, sq) = solve(&mut build(), &queued_cfg);
        let (orf, sr) = solve(&mut build(), &reference_cfg);
        assert_eq!(oq, orf);
        assert_eq!(sq.nodes, sr.nodes);
        assert_eq!(sq.backtracks, sr.backtracks);
        assert!(
            sq.propagations <= sr.propagations,
            "queued ({}) must not exceed reference ({})",
            sq.propagations,
            sr.propagations
        );
    }

    #[test]
    fn queued_engine_skips_unrelated_propagators() {
        // Two disjoint constraints: branching on vars of one must not wake
        // the other after the root fixpoint.
        let mut csp = Csp::new(6, 6);
        csp.add(Box::new(AllDifferent {
            vars: (0..3).map(VarId).collect(),
        }));
        csp.add(Box::new(AllDifferent {
            vars: (3..6).map(VarId).collect(),
        }));
        assert!(csp.propagate());
        let after_root = csp.propagations();
        csp.push();
        csp.store.fix(VarId(0), 0);
        assert!(csp.propagate_dirty());
        // Only the first all-different (+ its self-wakes) may run: the
        // second watches none of the dirty vars.
        let per_node = csp.propagations() - after_root;
        assert!(
            per_node <= 3,
            "disjoint propagator was woken: {per_node} invocations"
        );
        csp.pop();
    }
}
