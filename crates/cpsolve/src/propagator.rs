//! Propagators: the constraint-specific pruning rules.
//!
//! Each propagator inspects the [`Store`] and removes inconsistent values.
//! All five constraint shapes of the paper's model are covered: vector
//! packing (capacity, Eq. 16), all-equal over servers / datacenter groups
//! (co-location, Eqs. 9–10) and all-different over servers / groups
//! (separation, Eqs. 11–12).
//!
//! Every propagator carries **two** pruning entry points:
//!
//! * [`Propagator::propagate`] — the production path. May keep
//!   incremental state between calls (the [`Pack`] propagator maintains
//!   running committed-load sums) and may use word-wise bitset operations
//!   ([`AllEqual`] intersects whole domain words). Driven by the
//!   event-driven engine in [`crate::search::Csp`], which only wakes a
//!   propagator when one of its watched [`Propagator::vars`] changed.
//! * [`Propagator::propagate_reference`] — the stateless from-scratch
//!   rule, exactly the pre-event-engine implementation. The reference
//!   engine ([`crate::search::Engine::Reference`]) runs *only* this path;
//!   the differential test suite proves both reach bit-identical
//!   fixpoints.

use crate::store::{Store, VarId};

/// Result of one propagation step.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Propagation {
    /// Nothing removed.
    Stable,
    /// At least one value removed; re-run the fixpoint loop.
    Changed,
    /// A domain was wiped out: the current node is infeasible.
    Infeasible,
}

/// Which domain events on a watched variable require re-running a
/// propagator. Sound filtering needs a simple property: re-running the
/// propagator after an ignored event must be a no-op (no pruning, same
/// verdict).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum WakeOn {
    /// Any value removal from a watched variable.
    Removal,
    /// Only when a watched variable becomes fixed (domain size 1).
    /// Correct for propagators whose pruning and verdicts depend solely
    /// on which variables are fixed to what — like capacity forward
    /// checking, where plain removals never change committed loads.
    Fix,
}

/// A constraint with a pruning rule.
pub trait Propagator: Send + Sync {
    /// Stateless from-scratch pruning — the reference semantics every
    /// production path must agree with.
    fn propagate_reference(&self, store: &mut Store) -> Propagation;

    /// Production pruning; may exploit incremental state. The engine
    /// guarantees it is re-invoked whenever one of [`Propagator::vars`]
    /// sees an event matching [`Propagator::wake_on`] (including changes
    /// the propagator itself made, so a single call need not reach its
    /// own fixpoint). Defaults to the reference rule for stateless
    /// propagators.
    fn propagate(&mut self, store: &mut Store) -> Propagation {
        self.propagate_reference(store)
    }

    /// The variables this propagator watches: the event-driven engine
    /// wakes it exactly when one of these loses a value (filtered by
    /// [`Propagator::wake_on`]).
    fn vars(&self) -> &[VarId];

    /// Event filter for wakeups. Defaults to [`WakeOn::Removal`] (always
    /// sound); override with [`WakeOn::Fix`] only when ignored removals
    /// provably make re-running a no-op.
    fn wake_on(&self) -> WakeOn {
        WakeOn::Removal
    }

    /// Constraint name for debugging.
    fn name(&self) -> &str;
}

fn check_empty(store: &Store, vars: &[VarId]) -> bool {
    vars.iter().any(|&v| store.is_empty(v))
}

/// All variables take the same value (linearised co-location on same
/// server, Eq. 10/13–14): each value must survive in *every* domain.
pub struct AllEqual {
    /// The constrained variables.
    pub vars: Vec<VarId>,
}

impl Propagator for AllEqual {
    fn propagate_reference(&self, store: &mut Store) -> Propagation {
        let mut changed = false;
        // Intersect: remove from each var any value missing from another.
        for value in 0..store.n_values() {
            let everywhere = self.vars.iter().all(|&v| store.contains(v, value));
            if !everywhere {
                for &v in &self.vars {
                    if store.remove(v, value) {
                        changed = true;
                    }
                }
            }
        }
        if check_empty(store, &self.vars) {
            Propagation::Infeasible
        } else if changed {
            Propagation::Changed
        } else {
            Propagation::Stable
        }
    }

    /// Word-wise production path: AND all domains into an intersection
    /// mask, then retain it in each domain — O(vars × words) instead of
    /// O(vars × values).
    fn propagate(&mut self, store: &mut Store) -> Propagation {
        let Some(&first) = self.vars.first() else {
            return Propagation::Stable;
        };
        let mut inter: Vec<u64> = store.domain_words(first).to_vec();
        for &v in &self.vars[1..] {
            for (a, &b) in inter.iter_mut().zip(store.domain_words(v)) {
                *a &= b;
            }
        }
        let mut changed = false;
        for &v in &self.vars {
            if store.retain_words(v, &inter) {
                changed = true;
            }
        }
        if check_empty(store, &self.vars) {
            Propagation::Infeasible
        } else if changed {
            Propagation::Changed
        } else {
            Propagation::Stable
        }
    }

    fn vars(&self) -> &[VarId] {
        &self.vars
    }

    fn name(&self) -> &str {
        "all-equal"
    }
}

/// All variables take pairwise different values (separation on servers,
/// Eq. 12): forward checking — a fixed value is pruned from siblings.
pub struct AllDifferent {
    /// The constrained variables.
    pub vars: Vec<VarId>,
}

impl Propagator for AllDifferent {
    fn propagate_reference(&self, store: &mut Store) -> Propagation {
        let mut changed = false;
        for (i, &v) in self.vars.iter().enumerate() {
            if !store.is_fixed(v) {
                continue;
            }
            let value = store.value(v);
            for (j, &w) in self.vars.iter().enumerate() {
                if i != j && store.remove(w, value) {
                    changed = true;
                }
            }
        }
        // Pigeonhole: more vars than remaining distinct values → fail.
        let mut union = vec![false; store.n_values()];
        let mut distinct = 0usize;
        for &v in &self.vars {
            for value in store.iter_domain(v) {
                if !union[value] {
                    union[value] = true;
                    distinct += 1;
                }
            }
        }
        if distinct < self.vars.len() || check_empty(store, &self.vars) {
            return Propagation::Infeasible;
        }
        if changed {
            Propagation::Changed
        } else {
            Propagation::Stable
        }
    }

    fn vars(&self) -> &[VarId] {
        &self.vars
    }

    fn name(&self) -> &str {
        "all-different"
    }
}

/// All variables' values map to the same *group* (co-location in the same
/// datacenter, Eq. 9: values are servers, groups are datacenters).
pub struct GroupAllEqual {
    /// The constrained variables.
    pub vars: Vec<VarId>,
    /// `group[value]` — the group of each value.
    pub group: Vec<usize>,
}

impl Propagator for GroupAllEqual {
    fn propagate_reference(&self, store: &mut Store) -> Propagation {
        let n_groups = self.group.iter().copied().max().map_or(0, |g| g + 1);
        // Groups reachable by every variable.
        let mut allowed = vec![true; n_groups];
        for &v in &self.vars {
            let mut reach = vec![false; n_groups];
            for value in store.iter_domain(v) {
                reach[self.group[value]] = true;
            }
            for g in 0..n_groups {
                allowed[g] &= reach[g];
            }
        }
        let mut changed = false;
        for &v in &self.vars {
            let to_remove: Vec<usize> = store
                .iter_domain(v)
                .filter(|&value| !allowed[self.group[value]])
                .collect();
            for value in to_remove {
                if store.remove(v, value) {
                    changed = true;
                }
            }
        }
        if check_empty(store, &self.vars) {
            Propagation::Infeasible
        } else if changed {
            Propagation::Changed
        } else {
            Propagation::Stable
        }
    }

    fn vars(&self) -> &[VarId] {
        &self.vars
    }

    fn name(&self) -> &str {
        "group-all-equal"
    }
}

/// All variables' values map to pairwise different groups (separation in
/// different datacenters, Eq. 11).
pub struct GroupAllDifferent {
    /// The constrained variables.
    pub vars: Vec<VarId>,
    /// `group[value]` — the group of each value.
    pub group: Vec<usize>,
}

impl Propagator for GroupAllDifferent {
    fn propagate_reference(&self, store: &mut Store) -> Propagation {
        let n_groups = self.group.iter().copied().max().map_or(0, |g| g + 1);
        let mut changed = false;
        // A variable whose whole domain sits in one group fixes that group.
        for (i, &v) in self.vars.iter().enumerate() {
            let mut the_group: Option<usize> = None;
            let mut single = true;
            for value in store.iter_domain(v) {
                match the_group {
                    None => the_group = Some(self.group[value]),
                    Some(g) if g != self.group[value] => {
                        single = false;
                        break;
                    }
                    _ => {}
                }
            }
            if !single {
                continue;
            }
            let Some(g) = the_group else {
                return Propagation::Infeasible;
            };
            for (j, &w) in self.vars.iter().enumerate() {
                if i == j {
                    continue;
                }
                let to_remove: Vec<usize> = store
                    .iter_domain(w)
                    .filter(|&value| self.group[value] == g)
                    .collect();
                for value in to_remove {
                    if store.remove(w, value) {
                        changed = true;
                    }
                }
            }
        }
        // Pigeonhole on groups.
        let mut union = vec![false; n_groups];
        let mut distinct = 0;
        for &v in &self.vars {
            for value in store.iter_domain(v) {
                let g = self.group[value];
                if !union[g] {
                    union[g] = true;
                    distinct += 1;
                }
            }
        }
        if distinct < self.vars.len() || check_empty(store, &self.vars) {
            return Propagation::Infeasible;
        }
        if changed {
            Propagation::Changed
        } else {
            Propagation::Stable
        }
    }

    fn vars(&self) -> &[VarId] {
        &self.vars
    }

    fn name(&self) -> &str {
        "group-all-different"
    }
}

/// Multi-dimensional vector packing (the capacity constraint, Eq. 16):
/// items (variables) with `h`-dimensional demands placed onto values
/// (servers) with `h`-dimensional capacities.
///
/// Forward checking: for each value, sum the demands of items fixed to it;
/// prune the value from any unfixed item that would overflow a dimension.
///
/// The production path is **incremental**: committed-load sums are cached
/// between calls and reconciled against the store each wake-up, so a call
/// costs O(items) plus work proportional to what actually changed — not
/// O(values × dims) from scratch. Reconciliation compares the cached
/// commitment of every item with its current fixed value, which makes the
/// cache self-healing across arbitrary push/pop backtracking without any
/// trail hooks. Touched sums are recomputed by the same ascending-item
/// summation the reference path uses, so cached and from-scratch loads are
/// bit-identical (no floating-point drift).
pub struct Pack {
    vars: Vec<VarId>,
    demand: Vec<Vec<f64>>,
    capacity: Vec<Vec<f64>>,
    h: usize,
    /// `committed[i]` — value item `i` was last seen fixed to.
    committed: Vec<Option<usize>>,
    /// `used[value * h + l]` — cached committed load.
    used: Vec<f64>,
    /// Whether a successful full sweep established the fits-invariant.
    primed: bool,
    /// [`Store::pop_count`] at the last successful call. A pop since then
    /// invalidates delta reasoning: the current branch may re-fix the same
    /// items to the same values the stale cache already recorded, hiding
    /// genuine load growth relative to this branch's last fixpoint.
    synced_pops: u64,
    /// Set when the previous call returned `Infeasible`: its early return
    /// skipped pruning, so the next call must sweep fully even if no pop
    /// intervened.
    poisoned: bool,
}

impl Pack {
    /// Creates the packing constraint: `demand[i]` is the demand vector of
    /// `vars[i]`, `capacity[value]` the capacity vector of each value.
    pub fn new(vars: Vec<VarId>, demand: Vec<Vec<f64>>, capacity: Vec<Vec<f64>>) -> Self {
        let h = capacity.first().map_or(0, Vec::len);
        assert_eq!(vars.len(), demand.len(), "one demand row per variable");
        assert!(
            demand.iter().all(|d| d.len() == h),
            "demand rows must match capacity dimensionality"
        );
        let n_items = vars.len();
        let n_values = capacity.len();
        Self {
            vars,
            demand,
            capacity,
            h,
            committed: vec![None; n_items],
            used: vec![0.0; n_values * h],
            primed: false,
            synced_pops: 0,
            poisoned: false,
        }
    }

    /// The item variables.
    pub fn item_vars(&self) -> &[VarId] {
        &self.vars
    }

    /// Recomputes the cached load of `value` exactly as the reference path
    /// would: ascending-item summation over committed items.
    fn recompute_used(&mut self, value: usize) {
        let h = self.h;
        self.used[value * h..(value + 1) * h].fill(0.0);
        for (i, committed) in self.committed.iter().enumerate() {
            if *committed == Some(value) {
                for l in 0..h {
                    self.used[value * h + l] += self.demand[i][l];
                }
            }
        }
    }

    /// Does `value` overflow on some dimension if item `i` is added on top
    /// of the cached committed load?
    #[inline]
    fn overflows(&self, i: usize, value: usize) -> bool {
        let h = self.h;
        (0..h)
            .any(|l| self.used[value * h + l] + self.demand[i][l] > self.capacity[value][l] + 1e-9)
    }
}

impl Propagator for Pack {
    fn propagate_reference(&self, store: &mut Store) -> Propagation {
        let h = self.h;
        let n_values = store.n_values();
        // Committed usage per value.
        let mut used = vec![vec![0.0_f64; h]; n_values];
        for (i, &v) in self.vars.iter().enumerate() {
            if store.is_fixed(v) {
                let value = store.value(v);
                for (l, u) in used[value].iter_mut().enumerate() {
                    *u += self.demand[i][l];
                }
            }
        }
        // Committed overflow → infeasible.
        for (value, u) in used.iter().enumerate() {
            for (ul, cl) in u.iter().zip(&self.capacity[value]) {
                if *ul > cl + 1e-9 {
                    return Propagation::Infeasible;
                }
            }
        }
        // Prune values that cannot take an unfixed item.
        let mut changed = false;
        for (i, &v) in self.vars.iter().enumerate() {
            if store.is_fixed(v) {
                continue;
            }
            let to_remove: Vec<usize> = store
                .iter_domain(v)
                .filter(|&value| {
                    (0..h).any(|l| {
                        used[value][l] + self.demand[i][l] > self.capacity[value][l] + 1e-9
                    })
                })
                .collect();
            for value in to_remove {
                if store.remove(v, value) {
                    changed = true;
                }
            }
            if store.is_empty(v) {
                return Propagation::Infeasible;
            }
        }
        if changed {
            Propagation::Changed
        } else {
            Propagation::Stable
        }
    }

    fn propagate(&mut self, store: &mut Store) -> Propagation {
        // 1. Reconcile the cache with the store. Exact in both directions:
        //    newly fixed items are added, unfixed (backtracked) or re-fixed
        //    items are corrected.
        let mut touched: Vec<usize> = Vec::new();
        let mut grew: Vec<usize> = Vec::new();
        for (i, &v) in self.vars.iter().enumerate() {
            let now = store.is_fixed(v).then(|| store.value(v));
            if now != self.committed[i] {
                if let Some(old) = self.committed[i] {
                    touched.push(old);
                }
                if let Some(new) = now {
                    touched.push(new);
                    grew.push(new);
                }
                self.committed[i] = now;
            }
        }
        touched.sort_unstable();
        touched.dedup();
        for &value in &touched {
            self.recompute_used(value);
        }
        grew.sort_unstable();
        grew.dedup();
        // 2. Delta reasoning is only sound while the store has strictly
        //    deepened since the last *successful* call: `grew` is computed
        //    against the cached commitments, and after a rewind the
        //    current branch can re-fix the same items to the same values,
        //    hiding growth relative to this branch's last fixpoint.
        let full = !self.primed || self.poisoned || store.pop_count() != self.synced_pops;
        // 3. Committed overflow: everywhere on a full sweep, else only
        //    where load grew since the (trustworthy) previous call.
        let h = self.h;
        let overflow_candidates: Box<dyn Iterator<Item = usize>> = if full {
            Box::new(0..self.capacity.len())
        } else {
            Box::new(grew.iter().copied())
        };
        for value in overflow_candidates {
            for l in 0..h {
                if self.used[value * h + l] > self.capacity[value][l] + 1e-9 {
                    self.poisoned = true;
                    return Propagation::Infeasible;
                }
            }
        }
        // 4. Prune unfixed items: every domain value on a full sweep,
        //    grown values only otherwise.
        let mut changed = false;
        for (i, &v) in self.vars.iter().enumerate() {
            if store.is_fixed(v) {
                continue;
            }
            if full {
                let to_remove: Vec<usize> = store
                    .iter_domain(v)
                    .filter(|&value| self.overflows(i, value))
                    .collect();
                for value in to_remove {
                    if store.remove(v, value) {
                        changed = true;
                    }
                }
            } else {
                for &value in &grew {
                    if store.contains(v, value) && self.overflows(i, value) {
                        store.remove(v, value);
                        changed = true;
                    }
                }
            }
            if store.is_empty(v) {
                self.poisoned = true;
                return Propagation::Infeasible;
            }
        }
        // The fits-invariant now holds for this exact store state.
        self.primed = true;
        self.poisoned = false;
        self.synced_pops = store.pop_count();
        if changed {
            Propagation::Changed
        } else {
            Propagation::Stable
        }
    }

    fn vars(&self) -> &[VarId] {
        &self.vars
    }

    /// Packing only reacts to fixedness: committed loads — the sole input
    /// to both the overflow verdict and the prune rule — change exactly
    /// when an item becomes fixed. After a non-fixing removal the
    /// fits-invariant from the last run still covers the (smaller)
    /// domains, so a re-run would prune nothing.
    fn wake_on(&self) -> WakeOn {
        WakeOn::Fix
    }

    fn name(&self) -> &str {
        "pack"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_equal_intersects_domains() {
        let mut s = Store::new(2, 4);
        s.remove(VarId(0), 0);
        s.remove(VarId(1), 3);
        let mut p = AllEqual {
            vars: vec![VarId(0), VarId(1)],
        };
        assert_eq!(p.propagate(&mut s), Propagation::Changed);
        for v in [VarId(0), VarId(1)] {
            let vals: Vec<_> = s.iter_domain(v).collect();
            assert_eq!(vals, vec![1, 2]);
        }
        assert_eq!(p.propagate(&mut s), Propagation::Stable);
    }

    #[test]
    fn all_equal_detects_disjoint_domains() {
        let mut s = Store::new(2, 2);
        s.fix(VarId(0), 0);
        s.fix(VarId(1), 1);
        let mut p = AllEqual {
            vars: vec![VarId(0), VarId(1)],
        };
        assert_eq!(p.propagate(&mut s), Propagation::Infeasible);
    }

    #[test]
    fn all_different_forward_checks() {
        let mut s = Store::new(3, 3);
        s.fix(VarId(0), 1);
        let mut p = AllDifferent {
            vars: vec![VarId(0), VarId(1), VarId(2)],
        };
        assert_eq!(p.propagate(&mut s), Propagation::Changed);
        assert!(!s.contains(VarId(1), 1));
        assert!(!s.contains(VarId(2), 1));
    }

    #[test]
    fn all_different_pigeonhole() {
        let mut s = Store::new(3, 2); // 3 vars, 2 values: impossible
        let mut p = AllDifferent {
            vars: vec![VarId(0), VarId(1), VarId(2)],
        };
        assert_eq!(p.propagate(&mut s), Propagation::Infeasible);
    }

    #[test]
    fn group_all_equal_prunes_unreachable_groups() {
        // Values 0,1 → group 0; values 2,3 → group 1.
        let group = vec![0, 0, 1, 1];
        let mut s = Store::new(2, 4);
        // Var 0 can only reach group 0.
        s.remove(VarId(0), 2);
        s.remove(VarId(0), 3);
        let mut p = GroupAllEqual {
            vars: vec![VarId(0), VarId(1)],
            group,
        };
        assert_eq!(p.propagate(&mut s), Propagation::Changed);
        let vals: Vec<_> = s.iter_domain(VarId(1)).collect();
        assert_eq!(vals, vec![0, 1], "var 1 must shed group-1 values");
    }

    #[test]
    fn group_all_different_excludes_fixed_group() {
        let group = vec![0, 0, 1, 1];
        let mut s = Store::new(2, 4);
        s.fix(VarId(0), 1); // group 0
        let mut p = GroupAllDifferent {
            vars: vec![VarId(0), VarId(1)],
            group,
        };
        assert_eq!(p.propagate(&mut s), Propagation::Changed);
        let vals: Vec<_> = s.iter_domain(VarId(1)).collect();
        assert_eq!(vals, vec![2, 3]);
    }

    #[test]
    fn group_all_different_pigeonhole_on_groups() {
        let group = vec![0, 0, 0, 0]; // one group only
        let mut s = Store::new(2, 4);
        let mut p = GroupAllDifferent {
            vars: vec![VarId(0), VarId(1)],
            group,
        };
        assert_eq!(p.propagate(&mut s), Propagation::Infeasible);
    }

    #[test]
    fn pack_prunes_overflowing_values() {
        // Two servers with capacity [10]; item0 fixed to server0 with
        // demand [8]; item1 demand [5] no longer fits server0.
        let mut s = Store::new(2, 2);
        s.fix(VarId(0), 0);
        let mut p = Pack::new(
            vec![VarId(0), VarId(1)],
            vec![vec![8.0], vec![5.0]],
            vec![vec![10.0], vec![10.0]],
        );
        assert_eq!(p.propagate(&mut s), Propagation::Changed);
        let vals: Vec<_> = s.iter_domain(VarId(1)).collect();
        assert_eq!(vals, vec![1]);
    }

    #[test]
    fn pack_detects_committed_overflow() {
        let mut s = Store::new(2, 1);
        s.fix(VarId(0), 0);
        s.fix(VarId(1), 0);
        let mut p = Pack::new(
            vec![VarId(0), VarId(1)],
            vec![vec![8.0], vec![5.0]],
            vec![vec![10.0]],
        );
        assert_eq!(p.propagate(&mut s), Propagation::Infeasible);
    }

    #[test]
    fn pack_multidimensional() {
        // Item fits on CPU but not RAM → pruned.
        let mut s = Store::new(2, 2);
        s.fix(VarId(0), 0);
        let mut p = Pack::new(
            vec![VarId(0), VarId(1)],
            vec![vec![1.0, 9.0], vec![1.0, 2.0]],
            vec![vec![10.0, 10.0], vec![10.0, 10.0]],
        );
        assert_eq!(p.propagate(&mut s), Propagation::Changed);
        let vals: Vec<_> = s.iter_domain(VarId(1)).collect();
        assert_eq!(vals, vec![1]);
    }

    #[test]
    fn pack_incremental_cache_survives_backtracking() {
        // Fix, propagate, pop, re-fix elsewhere: the reconciled cache must
        // agree with the reference path at every step.
        let mk = || {
            Pack::new(
                vec![VarId(0), VarId(1), VarId(2)],
                vec![vec![6.0], vec![6.0], vec![3.0]],
                vec![vec![10.0], vec![10.0], vec![10.0]],
            )
        };
        let mut inc = mk();
        let mut s = Store::new(3, 3);
        assert_eq!(inc.propagate(&mut s), Propagation::Stable); // primes at root

        s.push();
        s.fix(VarId(0), 0);
        assert_eq!(inc.propagate(&mut s), Propagation::Changed);
        assert!(!s.contains(VarId(1), 0), "6+6 > 10 must prune");
        s.pop();
        assert!(s.contains(VarId(1), 0), "pop restores the pruned value");

        s.push();
        s.fix(VarId(0), 1);
        assert_eq!(inc.propagate(&mut s), Propagation::Changed);
        assert!(!s.contains(VarId(1), 1));
        assert!(s.contains(VarId(1), 0), "server 0 is free again");

        // Cross-check the final domains against a fresh reference run.
        let reference = mk();
        let mut s2 = Store::new(3, 3);
        s2.fix(VarId(0), 1);
        while reference.propagate_reference(&mut s2) == Propagation::Changed {}
        for v in 0..3 {
            let a: Vec<_> = s.iter_domain(VarId(v)).collect();
            let b: Vec<_> = s2.iter_domain(VarId(v)).collect();
            assert_eq!(a, b, "var {v} diverged from reference");
        }
    }

    #[test]
    fn production_paths_match_reference_fixpoints() {
        // Run each stateless propagator's production and reference paths
        // on identical stores; domains must match exactly.
        let scenarios: Vec<(Box<dyn Propagator>, Box<dyn Propagator>)> = vec![
            (
                Box::new(AllEqual {
                    vars: vec![VarId(0), VarId(1)],
                }),
                Box::new(AllEqual {
                    vars: vec![VarId(0), VarId(1)],
                }),
            ),
            (
                Box::new(GroupAllEqual {
                    vars: vec![VarId(0), VarId(1)],
                    group: vec![0, 0, 1, 1, 1],
                }),
                Box::new(GroupAllEqual {
                    vars: vec![VarId(0), VarId(1)],
                    group: vec![0, 0, 1, 1, 1],
                }),
            ),
        ];
        for (mut prod, reference) in scenarios {
            let mut a = Store::new(2, 5);
            let mut b = Store::new(2, 5);
            for s in [&mut a, &mut b] {
                s.remove(VarId(0), 0);
                s.remove(VarId(1), 4);
            }
            while prod.propagate(&mut a) == Propagation::Changed {}
            while reference.propagate_reference(&mut b) == Propagation::Changed {}
            for v in 0..2 {
                let da: Vec<_> = a.iter_domain(VarId(v)).collect();
                let db: Vec<_> = b.iter_domain(VarId(v)).collect();
                assert_eq!(da, db, "{} var {v}", prod.name());
            }
        }
    }
}
