//! Propagators: the constraint-specific pruning rules.
//!
//! Each propagator inspects the [`Store`] and removes inconsistent values.
//! The engine runs all propagators to fixpoint. All five constraint shapes
//! of the paper's model are covered: vector packing (capacity, Eq. 16),
//! all-equal over servers / datacenter groups (co-location, Eqs. 9–10) and
//! all-different over servers / groups (separation, Eqs. 11–12).

use crate::store::{Store, VarId};

/// Result of one propagation step.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Propagation {
    /// Nothing removed.
    Stable,
    /// At least one value removed; re-run the fixpoint loop.
    Changed,
    /// A domain was wiped out: the current node is infeasible.
    Infeasible,
}

/// A constraint with a pruning rule.
pub trait Propagator: Send + Sync {
    /// Prunes the store; reports whether anything changed or failed.
    fn propagate(&self, store: &mut Store) -> Propagation;

    /// Constraint name for debugging.
    fn name(&self) -> &str;
}

fn check_empty(store: &Store, vars: &[VarId]) -> bool {
    vars.iter().any(|&v| store.is_empty(v))
}

/// All variables take the same value (linearised co-location on same
/// server, Eq. 10/13–14): each value must survive in *every* domain.
pub struct AllEqual {
    /// The constrained variables.
    pub vars: Vec<VarId>,
}

impl Propagator for AllEqual {
    fn propagate(&self, store: &mut Store) -> Propagation {
        let mut changed = false;
        // Intersect: remove from each var any value missing from another.
        for value in 0..store.n_values() {
            let everywhere = self.vars.iter().all(|&v| store.contains(v, value));
            if !everywhere {
                for &v in &self.vars {
                    if store.remove(v, value) {
                        changed = true;
                    }
                }
            }
        }
        if check_empty(store, &self.vars) {
            Propagation::Infeasible
        } else if changed {
            Propagation::Changed
        } else {
            Propagation::Stable
        }
    }

    fn name(&self) -> &str {
        "all-equal"
    }
}

/// All variables take pairwise different values (separation on servers,
/// Eq. 12): forward checking — a fixed value is pruned from siblings.
pub struct AllDifferent {
    /// The constrained variables.
    pub vars: Vec<VarId>,
}

impl Propagator for AllDifferent {
    fn propagate(&self, store: &mut Store) -> Propagation {
        let mut changed = false;
        for (i, &v) in self.vars.iter().enumerate() {
            if !store.is_fixed(v) {
                continue;
            }
            let value = store.value(v);
            for (j, &w) in self.vars.iter().enumerate() {
                if i != j && store.remove(w, value) {
                    changed = true;
                }
            }
        }
        // Pigeonhole: more vars than remaining distinct values → fail.
        let mut union = vec![false; store.n_values()];
        let mut distinct = 0usize;
        for &v in &self.vars {
            for value in store.iter_domain(v) {
                if !union[value] {
                    union[value] = true;
                    distinct += 1;
                }
            }
        }
        if distinct < self.vars.len() || check_empty(store, &self.vars) {
            return Propagation::Infeasible;
        }
        if changed {
            Propagation::Changed
        } else {
            Propagation::Stable
        }
    }

    fn name(&self) -> &str {
        "all-different"
    }
}

/// All variables' values map to the same *group* (co-location in the same
/// datacenter, Eq. 9: values are servers, groups are datacenters).
pub struct GroupAllEqual {
    /// The constrained variables.
    pub vars: Vec<VarId>,
    /// `group[value]` — the group of each value.
    pub group: Vec<usize>,
}

impl Propagator for GroupAllEqual {
    fn propagate(&self, store: &mut Store) -> Propagation {
        let n_groups = self.group.iter().copied().max().map_or(0, |g| g + 1);
        // Groups reachable by every variable.
        let mut allowed = vec![true; n_groups];
        for &v in &self.vars {
            let mut reach = vec![false; n_groups];
            for value in store.iter_domain(v) {
                reach[self.group[value]] = true;
            }
            for g in 0..n_groups {
                allowed[g] &= reach[g];
            }
        }
        let mut changed = false;
        for &v in &self.vars {
            let to_remove: Vec<usize> = store
                .iter_domain(v)
                .filter(|&value| !allowed[self.group[value]])
                .collect();
            for value in to_remove {
                if store.remove(v, value) {
                    changed = true;
                }
            }
        }
        if check_empty(store, &self.vars) {
            Propagation::Infeasible
        } else if changed {
            Propagation::Changed
        } else {
            Propagation::Stable
        }
    }

    fn name(&self) -> &str {
        "group-all-equal"
    }
}

/// All variables' values map to pairwise different groups (separation in
/// different datacenters, Eq. 11).
pub struct GroupAllDifferent {
    /// The constrained variables.
    pub vars: Vec<VarId>,
    /// `group[value]` — the group of each value.
    pub group: Vec<usize>,
}

impl Propagator for GroupAllDifferent {
    fn propagate(&self, store: &mut Store) -> Propagation {
        let n_groups = self.group.iter().copied().max().map_or(0, |g| g + 1);
        let mut changed = false;
        // A variable whose whole domain sits in one group fixes that group.
        for (i, &v) in self.vars.iter().enumerate() {
            let mut the_group: Option<usize> = None;
            let mut single = true;
            for value in store.iter_domain(v) {
                match the_group {
                    None => the_group = Some(self.group[value]),
                    Some(g) if g != self.group[value] => {
                        single = false;
                        break;
                    }
                    _ => {}
                }
            }
            if !single {
                continue;
            }
            let Some(g) = the_group else {
                return Propagation::Infeasible;
            };
            for (j, &w) in self.vars.iter().enumerate() {
                if i == j {
                    continue;
                }
                let to_remove: Vec<usize> = store
                    .iter_domain(w)
                    .filter(|&value| self.group[value] == g)
                    .collect();
                for value in to_remove {
                    if store.remove(w, value) {
                        changed = true;
                    }
                }
            }
        }
        // Pigeonhole on groups.
        let mut union = vec![false; n_groups];
        let mut distinct = 0;
        for &v in &self.vars {
            for value in store.iter_domain(v) {
                let g = self.group[value];
                if !union[g] {
                    union[g] = true;
                    distinct += 1;
                }
            }
        }
        if distinct < self.vars.len() || check_empty(store, &self.vars) {
            return Propagation::Infeasible;
        }
        if changed {
            Propagation::Changed
        } else {
            Propagation::Stable
        }
    }

    fn name(&self) -> &str {
        "group-all-different"
    }
}

/// Multi-dimensional vector packing (the capacity constraint, Eq. 16):
/// items (variables) with `h`-dimensional demands placed onto values
/// (servers) with `h`-dimensional capacities.
///
/// Forward checking: for each value, sum the demands of items fixed to it;
/// prune the value from any unfixed item that would overflow a dimension.
pub struct Pack {
    /// The item variables.
    pub vars: Vec<VarId>,
    /// `demand[i]` — demand vector of item `i` (position in `vars`).
    pub demand: Vec<Vec<f64>>,
    /// `capacity[value]` — capacity vector of each value.
    pub capacity: Vec<Vec<f64>>,
}

impl Propagator for Pack {
    fn propagate(&self, store: &mut Store) -> Propagation {
        let h = self.capacity.first().map_or(0, Vec::len);
        let n_values = store.n_values();
        // Committed usage per value.
        let mut used = vec![vec![0.0_f64; h]; n_values];
        for (i, &v) in self.vars.iter().enumerate() {
            if store.is_fixed(v) {
                let value = store.value(v);
                for (l, u) in used[value].iter_mut().enumerate() {
                    *u += self.demand[i][l];
                }
            }
        }
        // Committed overflow → infeasible.
        for (value, u) in used.iter().enumerate() {
            for (ul, cl) in u.iter().zip(&self.capacity[value]) {
                if *ul > cl + 1e-9 {
                    return Propagation::Infeasible;
                }
            }
        }
        // Prune values that cannot take an unfixed item.
        let mut changed = false;
        for (i, &v) in self.vars.iter().enumerate() {
            if store.is_fixed(v) {
                continue;
            }
            let to_remove: Vec<usize> = store
                .iter_domain(v)
                .filter(|&value| {
                    (0..h).any(|l| {
                        used[value][l] + self.demand[i][l] > self.capacity[value][l] + 1e-9
                    })
                })
                .collect();
            for value in to_remove {
                if store.remove(v, value) {
                    changed = true;
                }
            }
            if store.is_empty(v) {
                return Propagation::Infeasible;
            }
        }
        if changed {
            Propagation::Changed
        } else {
            Propagation::Stable
        }
    }

    fn name(&self) -> &str {
        "pack"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_equal_intersects_domains() {
        let mut s = Store::new(2, 4);
        s.remove(VarId(0), 0);
        s.remove(VarId(1), 3);
        let p = AllEqual {
            vars: vec![VarId(0), VarId(1)],
        };
        assert_eq!(p.propagate(&mut s), Propagation::Changed);
        for v in [VarId(0), VarId(1)] {
            let vals: Vec<_> = s.iter_domain(v).collect();
            assert_eq!(vals, vec![1, 2]);
        }
        assert_eq!(p.propagate(&mut s), Propagation::Stable);
    }

    #[test]
    fn all_equal_detects_disjoint_domains() {
        let mut s = Store::new(2, 2);
        s.fix(VarId(0), 0);
        s.fix(VarId(1), 1);
        let p = AllEqual {
            vars: vec![VarId(0), VarId(1)],
        };
        assert_eq!(p.propagate(&mut s), Propagation::Infeasible);
    }

    #[test]
    fn all_different_forward_checks() {
        let mut s = Store::new(3, 3);
        s.fix(VarId(0), 1);
        let p = AllDifferent {
            vars: vec![VarId(0), VarId(1), VarId(2)],
        };
        assert_eq!(p.propagate(&mut s), Propagation::Changed);
        assert!(!s.contains(VarId(1), 1));
        assert!(!s.contains(VarId(2), 1));
    }

    #[test]
    fn all_different_pigeonhole() {
        let mut s = Store::new(3, 2); // 3 vars, 2 values: impossible
        let p = AllDifferent {
            vars: vec![VarId(0), VarId(1), VarId(2)],
        };
        assert_eq!(p.propagate(&mut s), Propagation::Infeasible);
    }

    #[test]
    fn group_all_equal_prunes_unreachable_groups() {
        // Values 0,1 → group 0; values 2,3 → group 1.
        let group = vec![0, 0, 1, 1];
        let mut s = Store::new(2, 4);
        // Var 0 can only reach group 0.
        s.remove(VarId(0), 2);
        s.remove(VarId(0), 3);
        let p = GroupAllEqual {
            vars: vec![VarId(0), VarId(1)],
            group,
        };
        assert_eq!(p.propagate(&mut s), Propagation::Changed);
        let vals: Vec<_> = s.iter_domain(VarId(1)).collect();
        assert_eq!(vals, vec![0, 1], "var 1 must shed group-1 values");
    }

    #[test]
    fn group_all_different_excludes_fixed_group() {
        let group = vec![0, 0, 1, 1];
        let mut s = Store::new(2, 4);
        s.fix(VarId(0), 1); // group 0
        let p = GroupAllDifferent {
            vars: vec![VarId(0), VarId(1)],
            group,
        };
        assert_eq!(p.propagate(&mut s), Propagation::Changed);
        let vals: Vec<_> = s.iter_domain(VarId(1)).collect();
        assert_eq!(vals, vec![2, 3]);
    }

    #[test]
    fn group_all_different_pigeonhole_on_groups() {
        let group = vec![0, 0, 0, 0]; // one group only
        let mut s = Store::new(2, 4);
        let p = GroupAllDifferent {
            vars: vec![VarId(0), VarId(1)],
            group,
        };
        assert_eq!(p.propagate(&mut s), Propagation::Infeasible);
    }

    #[test]
    fn pack_prunes_overflowing_values() {
        // Two servers with capacity [10]; item0 fixed to server0 with
        // demand [8]; item1 demand [5] no longer fits server0.
        let mut s = Store::new(2, 2);
        s.fix(VarId(0), 0);
        let p = Pack {
            vars: vec![VarId(0), VarId(1)],
            demand: vec![vec![8.0], vec![5.0]],
            capacity: vec![vec![10.0], vec![10.0]],
        };
        assert_eq!(p.propagate(&mut s), Propagation::Changed);
        let vals: Vec<_> = s.iter_domain(VarId(1)).collect();
        assert_eq!(vals, vec![1]);
    }

    #[test]
    fn pack_detects_committed_overflow() {
        let mut s = Store::new(2, 1);
        s.fix(VarId(0), 0);
        s.fix(VarId(1), 0);
        let p = Pack {
            vars: vec![VarId(0), VarId(1)],
            demand: vec![vec![8.0], vec![5.0]],
            capacity: vec![vec![10.0]],
        };
        assert_eq!(p.propagate(&mut s), Propagation::Infeasible);
    }

    #[test]
    fn pack_multidimensional() {
        // Item fits on CPU but not RAM → pruned.
        let mut s = Store::new(2, 2);
        s.fix(VarId(0), 0);
        let p = Pack {
            vars: vec![VarId(0), VarId(1)],
            demand: vec![vec![1.0, 9.0], vec![1.0, 2.0]],
            capacity: vec![vec![10.0, 10.0], vec![10.0, 10.0]],
        };
        assert_eq!(p.propagate(&mut s), Propagation::Changed);
        let vals: Vec<_> = s.iter_domain(VarId(1)).collect();
        assert_eq!(vals, vec![1]);
    }
}
