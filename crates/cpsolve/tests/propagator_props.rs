//! Per-propagator properties, checked on random stores for each of the
//! five constraint shapes:
//!
//! * **monotone** — a call never re-adds a value (domains only shrink),
//! * **idempotent** — once a call returns `Stable`, both the production
//!   and the reference path return `Stable` again on the fixpoint,
//! * **sound vs brute force** — every value removed has no support among
//!   the pre-propagation domains, and an `Infeasible` verdict means the
//!   brute-force filter finds no satisfying assignment at all.
//!
//! Completeness (GAC) is deliberately *not* asserted: the packing
//! propagator forward-checks only fixed items, which is the semantics the
//! differential suite pins down.

use cpo_cpsolve::prelude::*;
use proptest::prelude::*;

#[derive(Clone, Copy, Debug)]
enum Shape {
    AllEq,
    AllDiff,
    GroupEq,
    GroupDiff,
    Pack,
}

/// A random single-propagator case: a store with some values pre-removed
/// plus one constraint over all variables.
#[derive(Clone, Debug)]
struct Case {
    shape: Shape,
    n_vars: usize,
    n_values: usize,
    n_groups: usize,
    removals: Vec<(usize, usize)>,
    demand: Vec<f64>,
    capacity: f64,
}

impl Case {
    fn groups(&self) -> Vec<usize> {
        (0..self.n_values).map(|j| j % self.n_groups).collect()
    }

    fn store(&self) -> Store {
        let mut store = Store::new(self.n_vars, self.n_values);
        for &(var, value) in &self.removals {
            let (var, value) = (VarId(var % self.n_vars), value % self.n_values);
            if store.domain_size(var) > 1 && store.contains(var, value) {
                store.remove(var, value);
            }
        }
        store
    }

    fn propagator(&self) -> Box<dyn Propagator> {
        let vars: Vec<VarId> = (0..self.n_vars).map(VarId).collect();
        match self.shape {
            Shape::AllEq => Box::new(AllEqual { vars }),
            Shape::AllDiff => Box::new(AllDifferent { vars }),
            Shape::GroupEq => Box::new(GroupAllEqual {
                vars,
                group: self.groups(),
            }),
            Shape::GroupDiff => Box::new(GroupAllDifferent {
                vars,
                group: self.groups(),
            }),
            Shape::Pack => Box::new(Pack::new(
                vars,
                self.demand.iter().map(|&d| vec![d]).collect(),
                vec![vec![self.capacity]; self.n_values],
            )),
        }
    }

    /// Does a complete assignment satisfy this constraint?
    fn satisfied(&self, assignment: &[usize]) -> bool {
        match self.shape {
            Shape::AllEq => assignment.windows(2).all(|w| w[0] == w[1]),
            Shape::AllDiff => {
                let mut seen = vec![false; self.n_values];
                assignment
                    .iter()
                    .all(|&v| !std::mem::replace(&mut seen[v], true))
            }
            Shape::GroupEq => {
                let g = self.groups();
                assignment.windows(2).all(|w| g[w[0]] == g[w[1]])
            }
            Shape::GroupDiff => {
                let g = self.groups();
                let mut seen = vec![false; self.n_groups];
                assignment
                    .iter()
                    .all(|&v| !std::mem::replace(&mut seen[g[v]], true))
            }
            Shape::Pack => {
                let mut load = vec![0.0_f64; self.n_values];
                for (i, &v) in assignment.iter().enumerate() {
                    load[v] += self.demand[i];
                }
                load.iter().all(|&l| l <= self.capacity + 1e-9)
            }
        }
    }
}

fn domains(store: &Store, n_vars: usize) -> Vec<Vec<usize>> {
    (0..n_vars)
        .map(|v| store.iter_domain(VarId(v)).collect())
        .collect()
}

/// All complete assignments drawn from the given domains.
fn assignments(domains: &[Vec<usize>]) -> Vec<Vec<usize>> {
    let mut out = vec![Vec::new()];
    for d in domains {
        let mut next = Vec::with_capacity(out.len() * d.len());
        for prefix in &out {
            for &v in d {
                let mut a = prefix.clone();
                a.push(v);
                next.push(a);
            }
        }
        out = next;
    }
    out
}

fn case_strategy(shape: Shape) -> impl Strategy<Value = Case> {
    (2usize..5, 2usize..5, 2usize..3).prop_flat_map(move |(n_vars, n_values, n_groups)| {
        (
            proptest::collection::vec((0..n_vars, 0..n_values), 0..6),
            proptest::collection::vec(1.0_f64..6.0, n_vars),
            4.0_f64..14.0,
        )
            .prop_map(move |(removals, demand, capacity)| Case {
                shape,
                n_vars,
                n_values,
                n_groups,
                removals,
                demand,
                capacity,
            })
    })
}

/// The shared property: monotone, idempotent (both paths) and sound
/// against the brute-force filter over the initial domains.
fn check(case: &Case) -> Result<(), String> {
    let mut store = case.store();
    let initial = domains(&store, case.n_vars);
    let mut p = case.propagator();

    // Run the production path to this propagator's local fixpoint,
    // checking monotonicity at every call.
    let mut verdict = Propagation::Changed;
    for round in 0..(case.n_vars * case.n_values + 2) {
        let before = domains(&store, case.n_vars);
        verdict = p.propagate(&mut store);
        let after = domains(&store, case.n_vars);
        for (v, (b, a)) in before.iter().zip(&after).enumerate() {
            if !a.iter().all(|x| b.contains(x)) {
                return Err(format!(
                    "round {round}: var {v} re-added a value: {b:?} -> {a:?}"
                ));
            }
        }
        match verdict {
            Propagation::Changed => continue,
            Propagation::Stable | Propagation::Infeasible => break,
        }
    }

    match verdict {
        Propagation::Changed => return Err("no fixpoint within the round budget".into()),
        Propagation::Infeasible => {
            // Soundness of failure: brute force must agree nothing satisfies.
            if assignments(&initial).iter().any(|a| case.satisfied(a)) {
                return Err("propagator reported Infeasible on a satisfiable store".into());
            }
            return Ok(());
        }
        Propagation::Stable => {}
    }

    // Idempotence on the fixpoint — production and reference path alike.
    let at_fixpoint = domains(&store, case.n_vars);
    if p.propagate(&mut store) != Propagation::Stable {
        return Err("second production call on a fixpoint was not Stable".into());
    }
    if p.propagate_reference(&mut store) != Propagation::Stable {
        return Err("reference call on a fixpoint was not Stable".into());
    }
    if domains(&store, case.n_vars) != at_fixpoint {
        return Err("a Stable call still changed domains".into());
    }

    // Soundness of every removal: a removed value must have no support
    // among the initial domains.
    for (v, (init, fixp)) in initial.iter().zip(&at_fixpoint).enumerate() {
        for &value in init.iter().filter(|x| !fixp.contains(x)) {
            let supported = assignments(&initial)
                .iter()
                .any(|a| a[v] == value && case.satisfied(a));
            if supported {
                return Err(format!(
                    "removed supported value {value} from var {v} (initial {init:?})"
                ));
            }
        }
    }
    Ok(())
}

macro_rules! shape_property {
    ($name:ident, $shape:expr) => {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(128))]
            #[test]
            fn $name(case in case_strategy($shape)) {
                if let Err(e) = check(&case) {
                    prop_assert!(false, "{:?}: {}", case, e);
                }
            }
        }
    };
}

shape_property!(all_equal_is_monotone_idempotent_sound, Shape::AllEq);
shape_property!(all_different_is_monotone_idempotent_sound, Shape::AllDiff);
shape_property!(group_all_equal_is_monotone_idempotent_sound, Shape::GroupEq);
shape_property!(
    group_all_different_is_monotone_idempotent_sound,
    Shape::GroupDiff
);
shape_property!(pack_is_monotone_idempotent_sound, Shape::Pack);
