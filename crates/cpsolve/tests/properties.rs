//! Property-based validation of the CP solver against brute-force
//! enumeration on random small instances — completeness (never misses a
//! solution) and soundness (never invents one).

use cpo_cpsolve::prelude::*;
use proptest::prelude::*;

/// A random instance description small enough to brute-force.
#[derive(Clone, Debug)]
struct Instance {
    n_vars: usize,
    n_values: usize,
    all_diff: Vec<Vec<usize>>,  // groups of vars
    all_equal: Vec<Vec<usize>>, // groups of vars
    demand: Vec<f64>,
    capacity: f64,
}

fn instance_strategy() -> impl Strategy<Value = Instance> {
    (2usize..5, 2usize..4).prop_flat_map(|(n_vars, n_values)| {
        let groups = proptest::collection::vec(
            proptest::collection::vec(0..n_vars, 2..=n_vars.max(2)),
            0..2,
        );
        (
            Just(n_vars),
            Just(n_values),
            groups.clone(),
            groups,
            proptest::collection::vec(1.0_f64..6.0, n_vars),
            4.0_f64..14.0,
        )
            .prop_map(|(n_vars, n_values, mut ad, mut ae, demand, capacity)| {
                // De-duplicate group members.
                for g in ad.iter_mut().chain(ae.iter_mut()) {
                    g.sort_unstable();
                    g.dedup();
                }
                ad.retain(|g| g.len() >= 2);
                ae.retain(|g| g.len() >= 2);
                Instance {
                    n_vars,
                    n_values,
                    all_diff: ad,
                    all_equal: ae,
                    demand,
                    capacity,
                }
            })
    })
}

fn build_csp(inst: &Instance) -> Csp {
    let mut csp = Csp::new(inst.n_vars, inst.n_values);
    for g in &inst.all_diff {
        csp.add(Box::new(AllDifferent {
            vars: g.iter().map(|&v| VarId(v)).collect(),
        }));
    }
    for g in &inst.all_equal {
        csp.add(Box::new(AllEqual {
            vars: g.iter().map(|&v| VarId(v)).collect(),
        }));
    }
    csp.add(Box::new(Pack::new(
        (0..inst.n_vars).map(VarId).collect(),
        inst.demand.iter().map(|&d| vec![d]).collect(),
        vec![vec![inst.capacity]; inst.n_values],
    )));
    csp
}

fn valid(inst: &Instance, assignment: &[usize]) -> bool {
    for g in &inst.all_diff {
        for (i, &a) in g.iter().enumerate() {
            for &b in &g[i + 1..] {
                if assignment[a] == assignment[b] {
                    return false;
                }
            }
        }
    }
    for g in &inst.all_equal {
        for &v in &g[1..] {
            if assignment[v] != assignment[g[0]] {
                return false;
            }
        }
    }
    let mut load = vec![0.0; inst.n_values];
    for (v, &val) in assignment.iter().enumerate() {
        load[val] += inst.demand[v];
    }
    load.iter().all(|&l| l <= inst.capacity + 1e-9)
}

fn brute_force_any(inst: &Instance) -> bool {
    let total = inst.n_values.pow(inst.n_vars as u32);
    for code in 0..total {
        let mut c = code;
        let mut assignment = Vec::with_capacity(inst.n_vars);
        for _ in 0..inst.n_vars {
            assignment.push(c % inst.n_values);
            c /= inst.n_values;
        }
        if valid(inst, &assignment) {
            return true;
        }
    }
    false
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// The solver finds a solution iff brute force does, and any solution
    /// it returns satisfies every constraint.
    #[test]
    fn solver_is_sound_and_complete(inst in instance_strategy()) {
        let mut csp = build_csp(&inst);
        let (outcome, _) = solve(&mut csp, &SearchConfig::default());
        let exists = brute_force_any(&inst);
        match outcome {
            Outcome::Solution(s) => {
                prop_assert!(exists, "solver invented a solution for an infeasible instance");
                prop_assert!(valid(&inst, &s), "returned solution violates constraints: {s:?}");
            }
            Outcome::Infeasible => prop_assert!(!exists, "solver missed a solution"),
            Outcome::Timeout => prop_assert!(false, "no budget set, timeout impossible"),
        }
    }

    /// Branch-and-bound returns the true separable-cost optimum whenever
    /// the instance is feasible.
    #[test]
    fn bnb_is_optimal(inst in instance_strategy(), cost_seed in 0u64..1_000) {
        // Deterministic pseudo-random separable costs.
        let mut s = cost_seed;
        let cost: Vec<Vec<f64>> = (0..inst.n_vars)
            .map(|_| {
                (0..inst.n_values)
                    .map(|_| {
                        s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
                        ((s >> 33) % 100) as f64 / 10.0
                    })
                    .collect()
            })
            .collect();
        let mut csp = build_csp(&inst);
        let (best, complete, _) = optimize(&mut csp, &cost, &SearchConfig::default());
        prop_assert!(complete, "tiny instances must be fully explored");
        // Brute-force optimum.
        let total = inst.n_values.pow(inst.n_vars as u32);
        let mut bf_best: Option<f64> = None;
        for code in 0..total {
            let mut c = code;
            let mut assignment = Vec::with_capacity(inst.n_vars);
            for _ in 0..inst.n_vars {
                assignment.push(c % inst.n_values);
                c /= inst.n_values;
            }
            if valid(&inst, &assignment) {
                let value: f64 =
                    assignment.iter().enumerate().map(|(v, &val)| cost[v][val]).sum();
                bf_best = Some(bf_best.map_or(value, |b: f64| b.min(value)));
            }
        }
        match (best, bf_best) {
            (Some((s, c)), Some(bf)) => {
                prop_assert!(valid(&inst, &s));
                prop_assert!((c - bf).abs() < 1e-9, "B&B {c} != brute force {bf}");
            }
            (None, None) => {}
            (a, b) => prop_assert!(false, "feasibility disagreement: {a:?} vs {b:?}"),
        }
    }

    /// Propagation never removes a value that appears in some solution
    /// (it only prunes provably dead values).
    #[test]
    fn propagation_preserves_all_solutions(inst in instance_strategy()) {
        let mut csp = build_csp(&inst);
        let ok = csp.propagate();
        // Enumerate solutions of the ORIGINAL instance.
        let total = inst.n_values.pow(inst.n_vars as u32);
        let mut any = false;
        for code in 0..total {
            let mut c = code;
            let mut assignment = Vec::with_capacity(inst.n_vars);
            for _ in 0..inst.n_vars {
                assignment.push(c % inst.n_values);
                c /= inst.n_values;
            }
            if valid(&inst, &assignment) {
                any = true;
                if ok {
                    for (v, &val) in assignment.iter().enumerate() {
                        prop_assert!(
                            csp.store.contains(VarId(v), val),
                            "propagation pruned value {val} of var {v} used by a solution"
                        );
                    }
                }
            }
        }
        if !ok {
            prop_assert!(!any, "propagation failed a feasible instance");
        }
    }
}
