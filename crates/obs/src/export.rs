//! Exporters: metrics JSON-lines (same tagged-line shape as the
//! platform `EventLog`) and the Chrome trace-event format
//! (`chrome://tracing` / Perfetto "Open trace file").

use crate::event::{FieldValue, TraceEvent, TraceKind};
use crate::json::{self, Value};
use crate::registry::Snapshot;

/// Schema version stamped on the first line of every JSONL export.
pub const TRACE_SCHEMA_VERSION: u64 = 1;

fn write_fields(fields: &[(String, FieldValue)], out: &mut String) {
    out.push('{');
    for (i, (k, v)) in fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        json::write_escaped(k, out);
        out.push(':');
        write_value(&v.to_json(), out);
    }
    out.push('}');
}

fn write_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::Float(n) => json::write_f64(*n, out),
        Value::Str(s) => json::write_escaped(s, out),
        Value::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Obj(fields) => {
            out.push('{');
            for (i, (k, v)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                json::write_escaped(k, out);
                out.push(':');
                write_value(v, out);
            }
            out.push('}');
        }
    }
}

fn write_event_line(ev: &TraceEvent, out: &mut String) {
    out.push_str("{\"event\":\"");
    out.push_str(ev.kind.tag());
    out.push_str("\",\"name\":");
    json::write_escaped(&ev.name, out);
    out.push_str(&format!(",\"ts_us\":{}", ev.ts_us));
    if ev.kind == TraceKind::Span {
        out.push_str(&format!(",\"dur_us\":{}", ev.dur_us));
    }
    if let Some(v) = ev.value {
        out.push_str(",\"value\":");
        json::write_f64(v, out);
    }
    out.push_str(&format!(",\"tid\":{},\"depth\":{}", ev.tid, ev.depth));
    if !ev.fields.is_empty() {
        out.push_str(",\"fields\":");
        write_fields(&ev.fields, out);
    }
    out.push_str("}\n");
}

/// Serialises trace events as JSON lines, prefixed by a
/// `{"event":"meta","schema_version":N}` header line.
pub fn events_to_json_lines(events: &[TraceEvent]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{{\"event\":\"meta\",\"schema_version\":{TRACE_SCHEMA_VERSION}}}\n"
    ));
    for ev in events {
        write_event_line(ev, &mut out);
    }
    out
}

/// Serialises a full snapshot as JSON lines: the meta header, every
/// buffered trace event, then one summary line per counter
/// (`counter_total`), gauge (`gauge_last`), and histogram
/// (`histogram_summary`).
pub fn metrics_json_lines(snapshot: &Snapshot) -> String {
    let mut out = events_to_json_lines(&snapshot.events);
    for (name, total) in &snapshot.counters {
        out.push_str("{\"event\":\"counter_total\",\"name\":");
        json::write_escaped(name, &mut out);
        out.push_str(&format!(",\"value\":{total}}}\n"));
    }
    for (name, value) in &snapshot.gauges {
        out.push_str("{\"event\":\"gauge_last\",\"name\":");
        json::write_escaped(name, &mut out);
        out.push_str(",\"value\":");
        json::write_f64(*value, &mut out);
        out.push_str("}\n");
    }
    for (name, h) in &snapshot.histograms {
        out.push_str("{\"event\":\"histogram_summary\",\"name\":");
        json::write_escaped(name, &mut out);
        out.push_str(&format!(
            ",\"count\":{},\"min\":{},\"max\":{},\"mean\":",
            h.count, h.min, h.max
        ));
        json::write_f64(h.mean, &mut out);
        out.push_str(&format!(
            ",\"p50\":{},\"p95\":{},\"p99\":{}}}\n",
            h.p50, h.p95, h.p99
        ));
    }
    if snapshot.dropped > 0 {
        out.push_str(&format!(
            "{{\"event\":\"dropped_events\",\"value\":{}}}\n",
            snapshot.dropped
        ));
    }
    out
}

/// Parses JSON lines produced by [`events_to_json_lines`] (or
/// [`metrics_json_lines`]; summary lines are skipped) back into trace
/// events. Rejects unknown schema versions with a clear error; a missing
/// meta header is accepted for forward compatibility with hand-built
/// traces.
pub fn events_from_json_lines(text: &str) -> Result<Vec<TraceEvent>, String> {
    let mut events = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let v = json::parse(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        let tag = v
            .get("event")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("line {}: missing \"event\" tag", lineno + 1))?;
        if tag == "meta" {
            let version = v
                .get("schema_version")
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("line {}: meta without schema_version", lineno + 1))?;
            if version != TRACE_SCHEMA_VERSION {
                return Err(format!(
                    "line {}: unsupported trace schema version {version} \
                     (this build reads version {TRACE_SCHEMA_VERSION})",
                    lineno + 1
                ));
            }
            continue;
        }
        let Some(kind) = TraceKind::from_tag(tag) else {
            // Summary lines (counter_total, gauge_last, histogram_summary,
            // dropped_events) are derived data; skip them on replay.
            continue;
        };
        let name = v
            .get("name")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("line {}: missing name", lineno + 1))?
            .to_string();
        let ts_us = v.get("ts_us").and_then(Value::as_u64).unwrap_or(0);
        let dur_us = v.get("dur_us").and_then(Value::as_u64).unwrap_or(0);
        let value = v.get("value").and_then(Value::as_f64);
        let tid = v.get("tid").and_then(Value::as_u64).unwrap_or(0);
        let depth = v.get("depth").and_then(Value::as_u64).unwrap_or(0) as u32;
        let mut fields = Vec::new();
        if let Some(Value::Obj(kvs)) = v.get("fields") {
            for (k, fv) in kvs {
                let parsed = FieldValue::from_json(fv)
                    .ok_or_else(|| format!("line {}: bad field value for {k:?}", lineno + 1))?;
                fields.push((k.clone(), parsed));
            }
        }
        events.push(TraceEvent {
            kind,
            name,
            ts_us,
            dur_us,
            value,
            tid,
            depth,
            fields,
        });
    }
    Ok(events)
}

/// Renders a snapshot in the Chrome trace-event JSON format. Open the
/// file in `chrome://tracing` or <https://ui.perfetto.dev> to get a
/// flame-style timeline: spans become complete (`"ph":"X"`) events,
/// counters and gauges become counter (`"ph":"C"`) tracks.
pub fn chrome_trace(snapshot: &Snapshot) -> String {
    let mut running: std::collections::BTreeMap<&str, f64> = std::collections::BTreeMap::new();
    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    for ev in &snapshot.events {
        if !first {
            out.push(',');
        }
        first = false;
        match ev.kind {
            TraceKind::Span => {
                out.push_str("{\"name\":");
                json::write_escaped(&ev.name, &mut out);
                out.push_str(&format!(
                    ",\"cat\":\"span\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{}",
                    ev.ts_us, ev.dur_us, ev.tid
                ));
                if !ev.fields.is_empty() {
                    out.push_str(",\"args\":");
                    write_fields(&ev.fields, &mut out);
                }
                out.push('}');
            }
            TraceKind::Counter | TraceKind::Gauge => {
                let level = if ev.kind == TraceKind::Counter {
                    let slot = running.entry(ev.name.as_str()).or_insert(0.0);
                    *slot += ev.value.unwrap_or(0.0);
                    *slot
                } else {
                    ev.value.unwrap_or(0.0)
                };
                out.push_str("{\"name\":");
                json::write_escaped(&ev.name, &mut out);
                out.push_str(&format!(
                    ",\"cat\":\"metric\",\"ph\":\"C\",\"ts\":{},\"pid\":1,\"args\":{{\"value\":",
                    ev.ts_us
                ));
                json::write_f64(level, &mut out);
                out.push_str("}}");
            }
        }
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::FieldValue;

    fn sample_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent {
                kind: TraceKind::Span,
                name: "nsga3.generation".into(),
                ts_us: 10,
                dur_us: 250,
                value: None,
                tid: 0,
                depth: 1,
                fields: vec![
                    ("gen".into(), FieldValue::U64(3)),
                    ("algo".into(), FieldValue::Str("nsga3/tabu".into())),
                ],
            },
            TraceEvent {
                kind: TraceKind::Counter,
                name: "cp.propagations".into(),
                ts_us: 300,
                dur_us: 0,
                value: Some(42.0),
                tid: 1,
                depth: 0,
                fields: Vec::new(),
            },
            TraceEvent {
                kind: TraceKind::Gauge,
                name: "des.queue_depth".into(),
                ts_us: 400,
                dur_us: 0,
                value: Some(17.0),
                tid: 0,
                depth: 0,
                fields: Vec::new(),
            },
        ]
    }

    #[test]
    fn jsonl_round_trip_preserves_events() {
        let events = sample_events();
        let text = events_to_json_lines(&events);
        assert!(text.starts_with("{\"event\":\"meta\",\"schema_version\":1}\n"));
        assert_eq!(events_from_json_lines(&text).unwrap(), events);
    }

    #[test]
    fn unknown_schema_version_is_rejected_with_clear_error() {
        let err =
            events_from_json_lines("{\"event\":\"meta\",\"schema_version\":99}\n").unwrap_err();
        assert!(err.contains("unsupported trace schema version 99"), "{err}");
        assert!(err.contains("version 1"), "{err}");
    }

    #[test]
    fn headerless_trace_is_accepted() {
        let events = sample_events();
        let text = events_to_json_lines(&events);
        let body: String = text.lines().skip(1).map(|l| format!("{l}\n")).collect();
        assert_eq!(events_from_json_lines(&body).unwrap(), events);
    }

    #[test]
    fn summary_lines_are_skipped_on_replay() {
        let mut snap = Snapshot {
            events: sample_events(),
            ..Snapshot::default()
        };
        snap.counters.insert("cp.propagations".into(), 42);
        snap.gauges.insert("des.queue_depth".into(), 17.0);
        let text = metrics_json_lines(&snap);
        assert!(text.contains("counter_total"));
        assert!(text.contains("gauge_last"));
        assert_eq!(events_from_json_lines(&text).unwrap(), snap.events);
    }

    #[test]
    fn chrome_trace_is_valid_json_with_expected_phases() {
        let snap = Snapshot {
            events: sample_events(),
            ..Snapshot::default()
        };
        let trace = chrome_trace(&snap);
        let v = json::parse(&trace).unwrap();
        let Some(Value::Arr(items)) = v.get("traceEvents") else {
            panic!("missing traceEvents array");
        };
        assert_eq!(items.len(), 3);
        assert_eq!(items[0].get("ph").and_then(Value::as_str), Some("X"));
        assert_eq!(items[0].get("dur").and_then(Value::as_u64), Some(250));
        assert_eq!(items[1].get("ph").and_then(Value::as_str), Some("C"));
        assert_eq!(
            items[0]
                .get("args")
                .and_then(|a| a.get("gen"))
                .and_then(Value::as_u64),
            Some(3)
        );
    }

    #[test]
    fn counters_accumulate_into_running_totals_in_chrome_trace() {
        let mut snap = Snapshot::default();
        for ts in [1u64, 2, 3] {
            snap.events.push(TraceEvent {
                kind: TraceKind::Counter,
                name: "c".into(),
                ts_us: ts,
                dur_us: 0,
                value: Some(5.0),
                tid: 0,
                depth: 0,
                fields: Vec::new(),
            });
        }
        let v = json::parse(&chrome_trace(&snap)).unwrap();
        let Some(Value::Arr(items)) = v.get("traceEvents") else {
            panic!("missing traceEvents");
        };
        let levels: Vec<f64> = items
            .iter()
            .map(|i| {
                i.get("args")
                    .and_then(|a| a.get("value"))
                    .and_then(Value::as_f64)
                    .unwrap()
            })
            .collect();
        assert_eq!(levels, vec![5.0, 10.0, 15.0]);
    }

    #[test]
    fn malformed_lines_report_position() {
        let err = events_from_json_lines("{\"event\":\"span\"}\n{not json}\n").unwrap_err();
        assert!(
            err.starts_with("line 1") || err.starts_with("line 2"),
            "{err}"
        );
    }
}
