//! Scoped timing spans. A span measures from [`span`] (or the [`span!`]
//! macro) until the guard drops, records the duration into a histogram
//! named `span.<name>.us`, and emits one trace event carrying its fields.
//!
//! [`span!`]: crate::span!

use crate::event::FieldValue;
use crate::registry;

/// Starts a span. Returns a guard that records on drop. When the
/// registry is disabled this touches nothing — no clock read, no
/// allocation — and [`SpanGuard::field`] is a no-op too.
pub fn span(name: &str) -> SpanGuard {
    if !registry::is_enabled() {
        return SpanGuard(None);
    }
    SpanGuard(Some(ActiveSpan {
        name: name.to_string(),
        ts_us: registry::now_us(),
        depth: registry::push_depth(),
        fields: Vec::new(),
    }))
}

struct ActiveSpan {
    name: String,
    ts_us: u64,
    depth: u32,
    fields: Vec<(String, FieldValue)>,
}

/// RAII guard for one span; records the event when dropped.
#[must_use = "a span measures until the guard drops; binding it to _ ends it immediately"]
pub struct SpanGuard(Option<ActiveSpan>);

impl SpanGuard {
    /// Attaches a structured field. The value conversion only happens
    /// when the span is live, so disabled-mode callers pay nothing.
    pub fn field(&mut self, key: &str, value: impl Into<FieldValue>) -> &mut Self {
        if let Some(active) = self.0.as_mut() {
            active.fields.push((key.to_string(), value.into()));
        }
        self
    }

    /// Whether this guard is actually recording.
    pub fn is_live(&self) -> bool {
        self.0.is_some()
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(active) = self.0.take() {
            registry::pop_depth();
            registry::record_span(active.name, active.ts_us, active.depth, active.fields);
        }
    }
}

/// Opens a span with optional structured fields:
///
/// ```
/// let _sp = cpo_obs::span!("nsga3.generation", gen = 7u64);
/// ```
///
/// Field values can be any type convertible to
/// [`FieldValue`](crate::FieldValue) (integers, floats, `&str`, `bool`).
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span($name)
    };
    ($name:expr, $($key:ident = $value:expr),+ $(,)?) => {{
        let mut guard = $crate::span($name);
        $(guard.field(stringify!($key), $value);)+
        guard
    }};
}
