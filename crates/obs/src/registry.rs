//! The global metrics registry.
//!
//! All instrumentation funnels through free functions here
//! ([`counter_add`], [`gauge_set`], [`record_value`], and the span
//! machinery in [`crate::span`]). When the registry is disabled — the
//! default — every entry point returns after one relaxed atomic load and
//! performs no allocation. When enabled, state lives behind a single
//! `Mutex`; the hot paths instrumented in this workspace record at
//! per-window / per-generation granularity, so contention is negligible.

use crate::event::{FieldValue, TraceEvent, TraceKind};
use crate::histogram::{Histogram, HistogramSummary};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Flipped by [`enable`]/[`disable`]; lives outside the `OnceLock` so the
/// disabled fast path never initialises anything.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Maximum buffered trace events before new ones are dropped (counted).
const DEFAULT_EVENT_CAP: usize = 1 << 20;

static NEXT_TID: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
    static DEPTH: std::cell::Cell<u32> = const { std::cell::Cell::new(0) };
}

struct Inner {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
    events: Vec<TraceEvent>,
    dropped: u64,
}

struct Registry {
    epoch: Instant,
    inner: Mutex<Inner>,
}

static REGISTRY: OnceLock<Registry> = OnceLock::new();

fn registry() -> &'static Registry {
    REGISTRY.get_or_init(|| Registry {
        epoch: Instant::now(),
        inner: Mutex::new(Inner {
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            histograms: BTreeMap::new(),
            events: Vec::new(),
            dropped: 0,
        }),
    })
}

/// Turns instrumentation on. Idempotent.
pub fn enable() {
    registry(); // pin the epoch before the first measurement
    ENABLED.store(true, Ordering::Release);
}

/// Turns instrumentation off. Recorded data is kept until [`reset`].
pub fn disable() {
    ENABLED.store(false, Ordering::Release);
}

/// Whether instrumentation is currently recording.
#[inline]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Clears all recorded counters, gauges, histograms, and events. The
/// enabled flag and the time epoch are left untouched.
pub fn reset() {
    if let Some(r) = REGISTRY.get() {
        let mut inner = r.inner.lock().unwrap();
        inner.counters.clear();
        inner.gauges.clear();
        inner.histograms.clear();
        inner.events.clear();
        inner.dropped = 0;
    }
}

/// Microseconds since the registry epoch (first enable/use).
pub fn now_us() -> u64 {
    registry().epoch.elapsed().as_micros() as u64
}

/// The dense id of the calling thread.
pub(crate) fn thread_id() -> u64 {
    TID.with(|t| *t)
}

/// Current span nesting depth on this thread.
pub(crate) fn depth() -> u32 {
    DEPTH.with(|d| d.get())
}

pub(crate) fn push_depth() -> u32 {
    DEPTH.with(|d| {
        let v = d.get();
        d.set(v + 1);
        v
    })
}

pub(crate) fn pop_depth() {
    DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
}

/// Adds `delta` to the named monotonic counter. No-op when disabled.
pub fn counter_add(name: &str, delta: u64) {
    if !is_enabled() {
        return;
    }
    let ts_us = now_us();
    let mut inner = registry().inner.lock().unwrap();
    *inner.counters.entry(name.to_string()).or_insert(0) += delta;
    push_event(
        &mut inner,
        TraceEvent {
            kind: TraceKind::Counter,
            name: name.to_string(),
            ts_us,
            dur_us: 0,
            value: Some(delta as f64),
            tid: thread_id(),
            depth: depth(),
            fields: Vec::new(),
        },
    );
}

/// Sets the named gauge to `value`. No-op when disabled.
pub fn gauge_set(name: &str, value: f64) {
    if !is_enabled() {
        return;
    }
    let ts_us = now_us();
    let mut inner = registry().inner.lock().unwrap();
    inner.gauges.insert(name.to_string(), value);
    push_event(
        &mut inner,
        TraceEvent {
            kind: TraceKind::Gauge,
            name: name.to_string(),
            ts_us,
            dur_us: 0,
            value: Some(value),
            tid: thread_id(),
            depth: depth(),
            fields: Vec::new(),
        },
    );
}

/// Records `value` into the named log-linear histogram. No-op when
/// disabled. Histogram samples do not emit trace events — only the
/// summary appears in snapshots/exports — so this is cheap enough for
/// per-solve latencies.
pub fn record_value(name: &str, value: u64) {
    if !is_enabled() {
        return;
    }
    let mut inner = registry().inner.lock().unwrap();
    inner
        .histograms
        .entry(name.to_string())
        .or_default()
        .record(value);
}

pub(crate) fn record_span(name: String, ts_us: u64, depth: u32, fields: Vec<(String, FieldValue)>) {
    let dur_us = now_us().saturating_sub(ts_us);
    let tid = thread_id();
    let mut inner = registry().inner.lock().unwrap();
    inner
        .histograms
        .entry(format!("span.{name}.us"))
        .or_default()
        .record(dur_us);
    push_event(
        &mut inner,
        TraceEvent {
            kind: TraceKind::Span,
            name,
            ts_us,
            dur_us,
            value: None,
            tid,
            depth,
            fields,
        },
    );
}

fn push_event(inner: &mut Inner, ev: TraceEvent) {
    if inner.events.len() < DEFAULT_EVENT_CAP {
        inner.events.push(ev);
    } else {
        inner.dropped += 1;
    }
}

/// A point-in-time copy of everything the registry has recorded.
#[derive(Clone, Debug, Default)]
pub struct Snapshot {
    /// Monotonic counter totals by name.
    pub counters: BTreeMap<String, u64>,
    /// Last-set gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram summaries by name (spans appear as `span.<name>.us`).
    pub histograms: BTreeMap<String, HistogramSummary>,
    /// The buffered trace events, in recording order.
    pub events: Vec<TraceEvent>,
    /// Events dropped because the buffer cap was reached.
    pub dropped: u64,
}

impl Snapshot {
    /// The change between an `earlier` snapshot and this one, for
    /// per-phase / per-window rates without resetting the registry.
    /// Both snapshots must come from the same registry epoch with
    /// `earlier` taken first (its event list a prefix of this one's).
    ///
    /// * counters — pairwise differences; zero-change entries dropped;
    /// * gauges — the later value (gauges are instantaneous);
    /// * histograms — count and mean are exact differences (the sum is
    ///   recovered as `mean × count`); `min`/`max`/percentiles are copied
    ///   from the later summary, an approximation since bucket counts are
    ///   not kept in summaries — unchanged histograms are dropped;
    /// * events — the suffix recorded after `earlier`.
    pub fn delta(&self, earlier: &Snapshot) -> Snapshot {
        let counters = self
            .counters
            .iter()
            .filter_map(|(k, &v)| {
                let d = v.saturating_sub(earlier.counters.get(k).copied().unwrap_or(0));
                (d > 0).then(|| (k.clone(), d))
            })
            .collect();
        let histograms = self
            .histograms
            .iter()
            .filter_map(|(k, h)| {
                let e = earlier.histograms.get(k).copied().unwrap_or_default();
                let count = h.count.saturating_sub(e.count);
                if count == 0 {
                    return None;
                }
                let mean = (h.mean * h.count as f64 - e.mean * e.count as f64) / count as f64;
                Some((k.clone(), HistogramSummary { count, mean, ..*h }))
            })
            .collect();
        Snapshot {
            counters,
            gauges: self.gauges.clone(),
            histograms,
            events: self
                .events
                .get(earlier.events.len().min(self.events.len())..)
                .unwrap_or_default()
                .to_vec(),
            dropped: self.dropped.saturating_sub(earlier.dropped),
        }
    }
}

/// Copies out just the gauges — cheap enough for per-window sampling
/// (unlike [`snapshot`], which clones the full buffered event stream).
pub fn gauge_values() -> Vec<(String, f64)> {
    match REGISTRY.get() {
        None => Vec::new(),
        Some(r) => {
            let inner = r.inner.lock().unwrap();
            inner.gauges.iter().map(|(k, &v)| (k.clone(), v)).collect()
        }
    }
}

/// Copies out just the counter totals — cheap enough for per-window
/// sampling (unlike [`snapshot`]).
pub fn counter_values() -> Vec<(String, u64)> {
    match REGISTRY.get() {
        None => Vec::new(),
        Some(r) => {
            let inner = r.inner.lock().unwrap();
            inner
                .counters
                .iter()
                .map(|(k, &v)| (k.clone(), v))
                .collect()
        }
    }
}

/// Copies out the current registry contents.
pub fn snapshot() -> Snapshot {
    match REGISTRY.get() {
        None => Snapshot::default(),
        Some(r) => {
            let inner = r.inner.lock().unwrap();
            Snapshot {
                counters: inner.counters.clone(),
                gauges: inner.gauges.clone(),
                histograms: inner
                    .histograms
                    .iter()
                    .map(|(k, h)| (k.clone(), h.summary()))
                    .collect(),
                events: inner.events.clone(),
                dropped: inner.dropped,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_subtracts_counters_and_histograms() {
        let mut earlier = Snapshot::default();
        earlier.counters.insert("runs".into(), 10);
        earlier.counters.insert("steady".into(), 5);
        earlier.histograms.insert(
            "solve".into(),
            HistogramSummary {
                count: 2,
                mean: 100.0,
                min: 50,
                max: 150,
                p50: 100,
                p95: 150,
                p99: 150,
            },
        );
        let mut later = earlier.clone();
        later.counters.insert("runs".into(), 25);
        later.counters.insert("fresh".into(), 3);
        later.histograms.insert(
            "solve".into(),
            HistogramSummary {
                count: 6,
                mean: 200.0,
                min: 50,
                max: 500,
                p50: 180,
                p95: 490,
                p99: 500,
            },
        );
        later.gauges.insert("depth".into(), 4.0);
        let d = later.delta(&earlier);
        assert_eq!(d.counters.get("runs"), Some(&15));
        assert_eq!(d.counters.get("fresh"), Some(&3));
        assert!(!d.counters.contains_key("steady"), "zero deltas dropped");
        let h = &d.histograms["solve"];
        assert_eq!(h.count, 4);
        // sum went 200 → 1200, so the 4 new samples average 250.
        assert!((h.mean - 250.0).abs() < 1e-9, "{}", h.mean);
        assert_eq!(h.max, 500, "extremes copied from the later summary");
        assert_eq!(d.gauges.get("depth"), Some(&4.0));
    }

    /// Pins the semantic split at the heart of `delta`: counters are
    /// rates (pairwise subtraction), gauges are levels (the later value
    /// verbatim — never subtracted, never dropped, and an entry present
    /// only in the earlier snapshot does not leak in).
    #[test]
    fn delta_counters_are_rates_but_gauges_are_levels() {
        let mut earlier = Snapshot::default();
        earlier.counters.insert("events".into(), 100);
        earlier.gauges.insert("queue_depth".into(), 50.0);
        earlier.gauges.insert("stale".into(), 9.0);
        let mut later = Snapshot::default();
        later.counters.insert("events".into(), 130);
        later.gauges.insert("queue_depth".into(), 20.0);
        later.gauges.insert("fresh".into(), 7.0);
        let d = later.delta(&earlier);
        // Counter: the change over the interval.
        assert_eq!(d.counters.get("events"), Some(&30));
        // Gauge: the instantaneous later value, NOT 20 − 50 = −30.
        assert_eq!(d.gauges.get("queue_depth"), Some(&20.0));
        // A gauge that fell is still reported at its level, and an
        // unchanged-counter-style "drop zero deltas" rule never applies
        // to gauges.
        assert_eq!(d.gauges.get("fresh"), Some(&7.0));
        // A gauge last set before `earlier` and never since is absent
        // from the later snapshot, so it does not reappear in the delta.
        assert!(!d.gauges.contains_key("stale"));
    }

    #[test]
    fn delta_keeps_only_the_event_suffix() {
        let mk = |name: &str| TraceEvent {
            kind: TraceKind::Counter,
            name: name.into(),
            ts_us: 0,
            dur_us: 0,
            value: Some(1.0),
            tid: 0,
            depth: 0,
            fields: Vec::new(),
        };
        let mut earlier = Snapshot::default();
        earlier.events.push(mk("a"));
        let mut later = earlier.clone();
        later.events.push(mk("b"));
        later.events.push(mk("c"));
        let d = later.delta(&earlier);
        assert_eq!(d.events.len(), 2);
        assert_eq!(d.events[0].name, "b");
        // Degenerate call order (earlier longer than later) stays safe.
        assert!(earlier.delta(&later).events.is_empty());
    }
}
