//! Streaming time-series telemetry: constant-memory series rings fed by
//! per-window fleet-health probes and registry samples.
//!
//! The paper's evaluation is about *shapes over time* — acceptance rate,
//! utilization and cost trajectories across windows — but counters and
//! gauges only capture point-in-time totals. This module records named
//! `(t, value)` series with a hard memory bound:
//!
//! * [`SeriesRing`] — a fixed-capacity (power-of-two) buffer that halves
//!   its resolution whenever it fills: stored points merge pairwise and
//!   the aggregation stride doubles, so a replay of *any* length fits in
//!   at most `capacity` points while still covering the full time span;
//! * [`FleetProbe`] — the per-window fleet-health sample both window
//!   engines (`WindowExecutor`, `FleetExecutor`) emit at window close:
//!   per-resource utilization, residual-capacity fragmentation,
//!   acceptance rate, queue depth, solve latency, active VM/server
//!   counts;
//! * [`TelemetryBus`] — the named collection of rings a probe or a
//!   registry sample fans out into, with a schema-versioned JSON
//!   serialisation the dashboards embed.
//!
//! Series carry a [`SeriesKind`]: `Deterministic` series depend only on
//! the simulation seed (safe to fingerprint and diff across runs), while
//! `Timing` series carry wall-clock measurements (solve latency, ambient
//! registry samples) that legitimately vary between machines. The
//! deterministic subset serialises byte-identically across replays of
//! the same seed — `bench_trace` asserts exactly that.
//!
//! Like the metrics registry and the flight recorder, the global bus is
//! disabled by default: every entry point returns after one relaxed
//! atomic load until [`enable`] is called.

use crate::json::{write_escaped, write_f64};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};

/// Schema version of the embedded series JSON.
pub const SERIES_SCHEMA_VERSION: u32 = 1;

/// Default per-series point capacity (must be a power of two).
pub const DEFAULT_CAPACITY: usize = 512;

/// One stored point: the aggregate of `stride` raw samples.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Point {
    /// Time of the *first* raw sample folded into this point. The unit
    /// is the producer's: window index for probes, sim-time µs for
    /// drivers that sample on a clock.
    pub t: u64,
    /// Mean of the folded raw values.
    pub mean: f64,
    /// Smallest folded raw value.
    pub min: f64,
    /// Largest folded raw value.
    pub max: f64,
}

/// A fixed-capacity downsampling series ring.
///
/// Invariants (asserted by tests and by `bench_trace`):
/// * at most `capacity` points are ever stored;
/// * every stored point aggregates exactly `stride` raw samples (the
///   in-progress group is kept aside until complete);
/// * `stride` is a power of two that doubles on each overflow, so after
///   `n` pushes the ring holds `ceil(n / stride) ≤ capacity` points and
///   `stride` is the smallest power of two with `n / stride ≤ capacity`.
#[derive(Clone, Debug)]
pub struct SeriesRing {
    capacity: usize,
    stride: u64,
    points: Vec<Point>,
    /// In-progress aggregation group (fewer than `stride` samples so far).
    acc: Option<Point>,
    acc_n: u64,
    total: u64,
}

impl SeriesRing {
    /// An empty ring holding at most `capacity` points.
    ///
    /// # Panics
    /// Panics unless `capacity` is a power of two ≥ 2.
    pub fn new(capacity: usize) -> Self {
        assert!(
            capacity.is_power_of_two() && capacity >= 2,
            "capacity must be a power of two >= 2, got {capacity}"
        );
        Self {
            capacity,
            stride: 1,
            points: Vec::new(),
            acc: None,
            acc_n: 0,
            total: 0,
        }
    }

    /// Point capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Raw samples aggregated per stored point.
    pub fn stride(&self) -> u64 {
        self.stride
    }

    /// Raw samples pushed over the ring's lifetime.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Stored (complete) points, oldest first.
    pub fn points(&self) -> &[Point] {
        &self.points
    }

    /// Stored points plus the in-progress partial group, oldest first —
    /// what renderers should draw so the freshest sample is visible.
    pub fn collect(&self) -> Vec<Point> {
        let mut out = self.points.clone();
        if let Some(acc) = self.acc {
            out.push(acc);
        }
        out
    }

    /// Records one raw sample. Amortised O(1); worst case O(capacity)
    /// when an overflow compacts the ring.
    pub fn push(&mut self, t: u64, value: f64) {
        self.total += 1;
        match &mut self.acc {
            None => {
                self.acc = Some(Point {
                    t,
                    mean: value,
                    min: value,
                    max: value,
                });
                self.acc_n = 1;
            }
            Some(acc) => {
                // Running mean over the group keeps f64 error tiny for
                // the small strides this layer sees.
                self.acc_n += 1;
                acc.mean += (value - acc.mean) / self.acc_n as f64;
                acc.min = acc.min.min(value);
                acc.max = acc.max.max(value);
            }
        }
        if self.acc_n == self.stride {
            if self.points.len() == self.capacity {
                // Halving doubles the stride, which demotes the
                // just-completed group back to in-progress — so every
                // stored point always aggregates exactly `stride` raw
                // samples and pairwise merges stay equal-weight.
                self.halve();
            } else {
                let done = self.acc.take().expect("group in progress");
                self.acc_n = 0;
                self.points.push(done);
            }
        }
    }

    /// Pairwise-merges the stored points and doubles the stride. All
    /// stored points aggregate the same number of raw samples, so the
    /// merged mean is the plain average of the pair.
    fn halve(&mut self) {
        let merged: Vec<Point> = self
            .points
            .chunks_exact(2)
            .map(|p| Point {
                t: p[0].t,
                mean: (p[0].mean + p[1].mean) / 2.0,
                min: p[0].min.min(p[1].min),
                max: p[0].max.max(p[1].max),
            })
            .collect();
        self.points = merged;
        self.stride *= 2;
    }

    /// Last raw value folded in (the freshest sample), if any.
    pub fn last_value(&self) -> Option<f64> {
        // The in-progress group saw the freshest sample; its mean is the
        // best constant-memory stand-in. Fall back to the last complete
        // point.
        self.acc
            .map(|a| a.mean)
            .or_else(|| self.points.last().map(|p| p.mean))
    }
}

/// Whether a series is safe to fingerprint across runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SeriesKind {
    /// Depends only on the simulation seed: byte-identical across
    /// replays of the same configuration.
    Deterministic,
    /// Carries wall-clock measurements (solve latency, ambient registry
    /// samples); varies between machines and runs.
    Timing,
}

impl SeriesKind {
    fn tag(self) -> &'static str {
        match self {
            SeriesKind::Deterministic => "det",
            SeriesKind::Timing => "timing",
        }
    }
}

/// One named series: a ring plus its determinism class.
#[derive(Clone, Debug)]
pub struct Series {
    /// The ring of points.
    pub ring: SeriesRing,
    /// Determinism class.
    pub kind: SeriesKind,
}

/// The per-window fleet-health sample both window engines emit on every
/// window close. All fields except `solve_latency_us` are functions of
/// the simulation state alone, so their series are deterministic.
#[derive(Clone, Debug, Default)]
pub struct FleetProbe {
    /// Window index (the probe's time axis).
    pub window: u64,
    /// Attribute labels, parallel to `utilization` (e.g. `cpu`, `ram`).
    pub attrs: Vec<String>,
    /// Per-resource fleet utilization in `[0, 1]`: Σ used / Σ effective
    /// capacity over online servers.
    pub utilization: Vec<f64>,
    /// Residual-capacity fragmentation index in `[0, 1]`, averaged over
    /// attributes: `1 − max_j residual_j / Σ_j residual_j`. 0 means all
    /// free capacity sits on one server (a whole-server request could
    /// still be placed); values near 1 mean the headroom is shredded
    /// into slivers no large request fits.
    pub fragmentation: f64,
    /// Requests admitted this window / requests decided this window
    /// (1.0 for an idle window, so the series stays plottable).
    pub acceptance_rate: f64,
    /// Requests decided this window (the admission queue depth at the
    /// window boundary).
    pub queue_depth: u64,
    /// Resident VMs at window close.
    pub active_vms: u64,
    /// Active (non-empty) servers at window close.
    pub active_servers: u64,
    /// Wall-clock solve latency of the window, µs (a timing series).
    pub solve_latency_us: u64,
}

impl FleetProbe {
    /// The fragmentation index over per-server residual rows (servers ×
    /// attrs), averaged across attributes. Offline servers must already
    /// be excluded (their residual is definitionally zero).
    pub fn fragmentation_of(residuals: &[&[f64]], attr_count: usize) -> f64 {
        if attr_count == 0 {
            return 0.0;
        }
        let mut sum = 0.0;
        for l in 0..attr_count {
            let mut total = 0.0f64;
            let mut largest = 0.0f64;
            for row in residuals {
                let r = row[l].max(0.0);
                total += r;
                largest = largest.max(r);
            }
            if total > 0.0 {
                sum += 1.0 - largest / total;
            }
        }
        sum / attr_count as f64
    }
}

/// A named collection of series rings with one shared point capacity.
#[derive(Clone, Debug)]
pub struct TelemetryBus {
    capacity: usize,
    series: BTreeMap<String, Series>,
}

impl Default for TelemetryBus {
    fn default() -> Self {
        Self::new(DEFAULT_CAPACITY)
    }
}

impl TelemetryBus {
    /// An empty bus whose rings hold at most `capacity` points each.
    pub fn new(capacity: usize) -> Self {
        assert!(
            capacity.is_power_of_two() && capacity >= 2,
            "capacity must be a power of two >= 2, got {capacity}"
        );
        Self {
            capacity,
            series: BTreeMap::new(),
        }
    }

    /// Per-ring point capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The recorded series, name-ordered.
    pub fn series(&self) -> &BTreeMap<String, Series> {
        &self.series
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }

    fn ring_mut(&mut self, name: &str, kind: SeriesKind) -> &mut SeriesRing {
        &mut self
            .series
            .entry(name.to_string())
            .or_insert_with(|| Series {
                ring: SeriesRing::new(self.capacity),
                kind,
            })
            .ring
    }

    /// Records one deterministic sample.
    pub fn record(&mut self, name: &str, t: u64, value: f64) {
        self.ring_mut(name, SeriesKind::Deterministic)
            .push(t, value);
    }

    /// Records one wall-clock-dependent sample.
    pub fn record_timing(&mut self, name: &str, t: u64, value: f64) {
        self.ring_mut(name, SeriesKind::Timing).push(t, value);
    }

    /// Fans one fleet probe out into the `fleet.*` series family.
    pub fn observe_probe(&mut self, probe: &FleetProbe) {
        let w = probe.window;
        for (label, &u) in probe.attrs.iter().zip(&probe.utilization) {
            self.record(&format!("fleet.util.{label}"), w, u);
        }
        self.record("fleet.fragmentation", w, probe.fragmentation);
        self.record("fleet.acceptance_rate", w, probe.acceptance_rate);
        self.record("fleet.queue_depth", w, probe.queue_depth as f64);
        self.record("fleet.active_vms", w, probe.active_vms as f64);
        self.record("fleet.active_servers", w, probe.active_servers as f64);
        self.record_timing(
            "fleet.solve_latency_ms",
            w,
            probe.solve_latency_us as f64 / 1e3,
        );
    }

    /// Samples every registry gauge and counter into `gauge.*` /
    /// `counter.*` series at time `t`. Registry values mix simulation
    /// state with wall-clock measurements, so these series are all
    /// classed as timing. No-op while the registry is disabled.
    pub fn sample_registry(&mut self, t: u64) {
        if !crate::registry::is_enabled() {
            return;
        }
        for (name, value) in crate::registry::gauge_values() {
            self.record_timing(&format!("gauge.{name}"), t, value);
        }
        for (name, value) in crate::registry::counter_values() {
            self.record_timing(&format!("counter.{name}"), t, value as f64);
        }
    }

    /// Serialises the bus as schema-versioned JSON. With
    /// `include_timing == false` only the deterministic series are
    /// written — that subset is byte-identical across replays of the
    /// same seed, which `bench_trace` asserts on every invocation.
    pub fn to_json(&self, include_timing: bool) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\"schema\":\"cpo-series\",\"schema_version\":");
        out.push_str(&SERIES_SCHEMA_VERSION.to_string());
        out.push_str(",\"series\":[");
        let mut first = true;
        for (name, s) in &self.series {
            if s.kind == SeriesKind::Timing && !include_timing {
                continue;
            }
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str("{\"name\":");
            write_escaped(name, &mut out);
            out.push_str(",\"kind\":\"");
            out.push_str(s.kind.tag());
            out.push_str("\",\"stride\":");
            out.push_str(&s.ring.stride().to_string());
            out.push_str(",\"total\":");
            out.push_str(&s.ring.total().to_string());
            out.push_str(",\"points\":[");
            for (i, p) in s.ring.collect().iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('[');
                out.push_str(&p.t.to_string());
                out.push(',');
                write_f64(p.mean, &mut out);
                out.push(',');
                write_f64(p.min, &mut out);
                out.push(',');
                write_f64(p.max, &mut out);
                out.push(']');
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }
}

// --- the global bus ---------------------------------------------------

static ENABLED: AtomicBool = AtomicBool::new(false);
static BUS: OnceLock<Mutex<TelemetryBus>> = OnceLock::new();

fn bus() -> &'static Mutex<TelemetryBus> {
    BUS.get_or_init(|| Mutex::new(TelemetryBus::default()))
}

/// Turns series collection on with the default per-ring capacity.
pub fn enable() {
    bus();
    ENABLED.store(true, Ordering::Release);
}

/// Turns series collection on and (re)sets the per-ring point capacity.
/// Existing series are cleared — capacity is a construction-time
/// property of the rings.
pub fn enable_with_capacity(capacity: usize) {
    *bus().lock().unwrap() = TelemetryBus::new(capacity);
    ENABLED.store(true, Ordering::Release);
}

/// Turns series collection off. Recorded series are kept until
/// [`reset`].
pub fn disable() {
    ENABLED.store(false, Ordering::Release);
}

/// Whether series collection is recording.
#[inline]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Clears every recorded series (capacity is kept).
pub fn reset() {
    if let Some(b) = BUS.get() {
        let mut b = b.lock().unwrap();
        let capacity = b.capacity();
        *b = TelemetryBus::new(capacity);
    }
}

/// Records one deterministic sample on the global bus. No-op when
/// disabled.
pub fn record(name: &str, t: u64, value: f64) {
    if !is_enabled() {
        return;
    }
    bus().lock().unwrap().record(name, t, value);
}

/// Records one wall-clock-dependent sample on the global bus. No-op when
/// disabled.
pub fn record_timing(name: &str, t: u64, value: f64) {
    if !is_enabled() {
        return;
    }
    bus().lock().unwrap().record_timing(name, t, value);
}

/// Fans one fleet probe into the global bus. No-op when disabled.
pub fn probe(p: &FleetProbe) {
    if !is_enabled() {
        return;
    }
    bus().lock().unwrap().observe_probe(p);
}

/// Samples the metrics registry into the global bus at time `t`. No-op
/// when the bus (or the registry) is disabled.
pub fn sample_registry(t: u64) {
    if !is_enabled() {
        return;
    }
    bus().lock().unwrap().sample_registry(t);
}

/// A point-in-time copy of the global bus.
pub fn snapshot() -> TelemetryBus {
    match BUS.get() {
        None => TelemetryBus::default(),
        Some(b) => b.lock().unwrap().clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_stores_raw_points_until_full() {
        let mut r = SeriesRing::new(8);
        for i in 0..8u64 {
            r.push(i, i as f64);
        }
        assert_eq!(r.points().len(), 8);
        assert_eq!(r.stride(), 1);
        assert_eq!(
            r.points()[3],
            Point {
                t: 3,
                mean: 3.0,
                min: 3.0,
                max: 3.0
            }
        );
    }

    #[test]
    fn overflow_halves_resolution_and_doubles_stride() {
        let mut r = SeriesRing::new(4);
        for i in 0..5u64 {
            r.push(i, i as f64);
        }
        // The 5th complete group forced one compaction: 4 points → 2,
        // stride 1 → 2, then the new point joined as a group of 2... but
        // sample 4 alone is still a partial group under stride 2.
        assert_eq!(r.stride(), 2);
        assert_eq!(r.points().len(), 2);
        assert_eq!(
            r.points()[0],
            Point {
                t: 0,
                mean: 0.5,
                min: 0.0,
                max: 1.0
            }
        );
        assert_eq!(
            r.points()[1],
            Point {
                t: 2,
                mean: 2.5,
                min: 2.0,
                max: 3.0
            }
        );
        // The partial group is visible in collect().
        let all = r.collect();
        assert_eq!(all.len(), 3);
        assert_eq!(
            all[2],
            Point {
                t: 4,
                mean: 4.0,
                min: 4.0,
                max: 4.0
            }
        );
    }

    #[test]
    fn capacity_bound_holds_for_any_length() {
        let mut r = SeriesRing::new(16);
        for i in 0..100_000u64 {
            r.push(i, (i % 7) as f64);
            assert!(r.points().len() <= 16, "at sample {i}");
        }
        assert_eq!(r.total(), 100_000);
        assert!(r.stride().is_power_of_two());
        // Stride is the smallest power of two fitting the ring.
        assert!(r.total() / r.stride() <= 16);
        assert!(r.total() / (r.stride() / 2) > 16);
        // The mean of means is the global mean (equal-weight groups).
        let exact: f64 = (0..100_000u64).map(|i| (i % 7) as f64).sum::<f64>() / 1e5;
        let stored: f64 = r.points().iter().map(|p| p.mean).sum::<f64>() / r.points().len() as f64;
        assert!((stored - exact).abs() < 1e-2, "{stored} vs {exact}");
    }

    #[test]
    fn compaction_keeps_time_span_and_extremes() {
        let mut r = SeriesRing::new(4);
        for i in 0..64u64 {
            r.push(i * 10, if i == 37 { 1000.0 } else { 1.0 });
        }
        let pts = r.collect();
        assert_eq!(pts[0].t, 0, "oldest sample's time survives");
        assert_eq!(r.stride(), 16);
        // The spike is preserved in some point's max.
        assert!(pts.iter().any(|p| p.max == 1000.0));
        assert!(pts.iter().all(|p| p.min >= 1.0));
    }

    #[test]
    fn probe_fans_out_to_fleet_series() {
        let mut bus = TelemetryBus::new(16);
        bus.observe_probe(&FleetProbe {
            window: 3,
            attrs: vec!["cpu".into(), "ram".into()],
            utilization: vec![0.5, 0.25],
            fragmentation: 0.1,
            acceptance_rate: 0.9,
            queue_depth: 7,
            active_vms: 42,
            active_servers: 5,
            solve_latency_us: 1500,
        });
        let names: Vec<&str> = bus.series().keys().map(String::as_str).collect();
        assert_eq!(
            names,
            [
                "fleet.acceptance_rate",
                "fleet.active_servers",
                "fleet.active_vms",
                "fleet.fragmentation",
                "fleet.queue_depth",
                "fleet.solve_latency_ms",
                "fleet.util.cpu",
                "fleet.util.ram",
            ]
        );
        assert_eq!(
            bus.series()["fleet.solve_latency_ms"].kind,
            SeriesKind::Timing
        );
        assert_eq!(
            bus.series()["fleet.acceptance_rate"].kind,
            SeriesKind::Deterministic
        );
        assert_eq!(bus.series()["fleet.util.cpu"].ring.points()[0].mean, 0.5);
    }

    #[test]
    fn deterministic_json_excludes_timing_series() {
        let mut bus = TelemetryBus::new(4);
        bus.record("a", 0, 1.0);
        bus.record_timing("b", 0, 2.0);
        let det = bus.to_json(false);
        let full = bus.to_json(true);
        assert!(det.contains("\"a\"") && !det.contains("\"b\""));
        assert!(full.contains("\"a\"") && full.contains("\"b\""));
        assert!(det.contains("\"schema\":\"cpo-series\""));
        // Valid JSON round trip through the crate's own parser.
        let v = crate::json::parse(&full).expect("valid JSON");
        assert_eq!(
            v.get("schema_version").and_then(|x| x.as_u64()),
            Some(u64::from(SERIES_SCHEMA_VERSION))
        );
    }

    #[test]
    fn fragmentation_index_behaves() {
        // All free capacity on one server → 0 (no fragmentation).
        let a: &[f64] = &[8.0];
        let b: &[f64] = &[0.0];
        assert_eq!(FleetProbe::fragmentation_of(&[a, b], 1), 0.0);
        // Evenly shredded across 4 servers → 1 − 1/4.
        let rows: Vec<&[f64]> = vec![&[2.0], &[2.0], &[2.0], &[2.0]];
        let f = FleetProbe::fragmentation_of(&rows, 1);
        assert!((f - 0.75).abs() < 1e-12, "{f}");
        // No free capacity at all → 0 by convention.
        let z: Vec<&[f64]> = vec![&[0.0], &[0.0]];
        assert_eq!(FleetProbe::fragmentation_of(&z, 1), 0.0);
    }
}
