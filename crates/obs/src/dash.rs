//! Dashboard rendering for [`crate::series`] — zero new dependencies.
//!
//! Two renderers over the same [`TelemetryBus`] snapshot:
//!
//! * [`html_report`] — one self-contained HTML file: a summary table and
//!   an inline-SVG sparkline per series, with the full schema-versioned
//!   series JSON embedded in a `<script type="application/json">` block
//!   so the same file is both human- and machine-readable;
//! * [`ansi_summary`] — a terminal block using the Unicode eighth-block
//!   ramp (`▁▂▃▄▅▆▇█`) for sparklines, suitable for CI logs.
//!
//! Neither renderer mutates the bus; both draw [`SeriesRing::collect`]
//! output so the freshest (partial-stride) sample is visible.

use crate::series::{Point, SeriesKind, TelemetryBus};
use std::fmt::Write as _;
use std::path::Path;

/// SVG sparkline width in px.
const SVG_W: f64 = 560.0;
/// SVG sparkline height in px.
const SVG_H: f64 = 64.0;
/// ANSI sparkline width in columns (points are re-bucketed to fit).
const ANSI_W: usize = 48;

const RAMP: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

fn min_max(points: &[Point]) -> (f64, f64) {
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for p in points {
        lo = lo.min(p.min);
        hi = hi.max(p.max);
    }
    if !lo.is_finite() || !hi.is_finite() {
        (0.0, 0.0)
    } else {
        (lo, hi)
    }
}

/// Compact human formatting: trims trailing zeros, switches to integer
/// style for large magnitudes.
fn fmt_value(v: f64) -> String {
    if !v.is_finite() {
        return "—".into();
    }
    let a = v.abs();
    if a >= 1e6 {
        format!("{:.2e}", v)
    } else if a >= 100.0 || (v.fract() == 0.0 && a < 1e6) {
        format!("{v:.0}")
    } else if a >= 1.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.4}")
    }
}

/// Re-buckets `points` into exactly `width` columns by mean, for the
/// terminal sparkline.
fn rebucket(points: &[Point], width: usize) -> Vec<f64> {
    if points.is_empty() {
        return Vec::new();
    }
    let width = width.min(points.len());
    let mut out = Vec::with_capacity(width);
    for c in 0..width {
        let lo = c * points.len() / width;
        let hi = ((c + 1) * points.len() / width).max(lo + 1);
        let slice = &points[lo..hi];
        out.push(slice.iter().map(|p| p.mean).sum::<f64>() / slice.len() as f64);
    }
    out
}

/// One sparkline row of `▁▂▃▄▅▆▇█` characters.
pub fn sparkline(points: &[Point], width: usize) -> String {
    let means = rebucket(points, width);
    if means.is_empty() {
        return String::new();
    }
    let lo = means.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = means.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let span = (hi - lo).max(f64::MIN_POSITIVE);
    means
        .iter()
        .map(|&m| {
            let idx = (((m - lo) / span) * (RAMP.len() - 1) as f64).round() as usize;
            RAMP[idx.min(RAMP.len() - 1)]
        })
        .collect()
}

/// ANSI terminal summary: one sparkline row per series with min / mean /
/// last / max columns. Timing series are tagged so CI diff-readers know
/// which rows are machine-dependent.
pub fn ansi_summary(bus: &TelemetryBus) -> String {
    let mut out = String::new();
    if bus.is_empty() {
        out.push_str("series: (none recorded)\n");
        return out;
    }
    let name_w = bus
        .series()
        .keys()
        .map(String::len)
        .max()
        .unwrap_or(0)
        .max(6);
    let _ = writeln!(
        out,
        "\x1b[1m{:<name_w$}  {:<ANSI_W$}  {:>10} {:>10} {:>10}  n\x1b[0m",
        "series", "trend", "min", "last", "max"
    );
    for (name, s) in bus.series() {
        let points = s.ring.collect();
        let (lo, hi) = min_max(&points);
        let last = s.ring.last_value().unwrap_or(f64::NAN);
        let tag = match s.kind {
            SeriesKind::Deterministic => "",
            SeriesKind::Timing => " \x1b[33m(timing)\x1b[0m",
        };
        let _ = writeln!(
            out,
            "\x1b[36m{:<name_w$}\x1b[0m  {:<ANSI_W$}  {:>10} {:>10} {:>10}  {}{}",
            name,
            sparkline(&points, ANSI_W),
            fmt_value(lo),
            fmt_value(last),
            fmt_value(hi),
            s.ring.total(),
            tag,
        );
    }
    out
}

fn svg_sparkline(points: &[Point], out: &mut String) {
    let _ = write!(
        out,
        "<svg viewBox=\"0 0 {SVG_W} {SVG_H}\" width=\"{SVG_W}\" height=\"{SVG_H}\" \
         preserveAspectRatio=\"none\">"
    );
    if points.len() >= 2 {
        let (lo, hi) = min_max(points);
        let span = (hi - lo).max(f64::MIN_POSITIVE);
        let x = |i: usize| i as f64 / (points.len() - 1) as f64 * (SVG_W - 2.0) + 1.0;
        let y = |v: f64| SVG_H - 3.0 - (v - lo) / span * (SVG_H - 6.0);
        // min..max envelope as a filled band behind the mean line.
        let mut band = String::from("<polygon class=\"band\" points=\"");
        for (i, p) in points.iter().enumerate() {
            let _ = write!(band, "{:.1},{:.1} ", x(i), y(p.max));
        }
        for (i, p) in points.iter().enumerate().rev() {
            let _ = write!(band, "{:.1},{:.1} ", x(i), y(p.min));
        }
        band.push_str("\"/>");
        out.push_str(&band);
        let mut line = String::from("<polyline class=\"mean\" points=\"");
        for (i, p) in points.iter().enumerate() {
            let _ = write!(line, "{:.1},{:.1} ", x(i), y(p.mean));
        }
        line.push_str("\"/>");
        out.push_str(&line);
    }
    out.push_str("</svg>");
}

fn html_escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

/// Renders the bus as one self-contained HTML document. The full series
/// JSON (including timing series) is embedded under
/// `<script type="application/json" id="cpo-series-data">` for machine
/// consumption; `</` is escaped to `<\/` so the payload can never
/// terminate the script block early.
pub fn html_report(bus: &TelemetryBus, title: &str) -> String {
    let mut out = String::with_capacity(1 << 16);
    out.push_str("<!DOCTYPE html>\n<html lang=\"en\"><head><meta charset=\"utf-8\">\n");
    let _ = writeln!(out, "<title>{}</title>", html_escape(title));
    out.push_str(
        "<style>\n\
         body{font:14px/1.45 system-ui,sans-serif;margin:2rem auto;max-width:72rem;\
         color:#1a1a2e;background:#fafafa}\n\
         h1{font-size:1.4rem}\n\
         table{border-collapse:collapse;width:100%;margin-bottom:2rem}\n\
         th,td{padding:.3rem .6rem;text-align:right;border-bottom:1px solid #ddd}\n\
         th:first-child,td:first-child{text-align:left;font-family:ui-monospace,monospace}\n\
         .card{background:#fff;border:1px solid #e2e2e8;border-radius:6px;\
         padding:.8rem 1rem;margin:.6rem 0}\n\
         .card h2{font:600 .95rem ui-monospace,monospace;margin:0 0 .4rem}\n\
         .card .stats{color:#666;font-size:.8rem;margin-left:.6rem;font-weight:400}\n\
         .timing{color:#b36b00}\n\
         svg{display:block;width:100%}\n\
         .band{fill:#cfd8ff;stroke:none}\n\
         .mean{fill:none;stroke:#3949ab;stroke-width:1.5}\n\
         </style></head><body>\n",
    );
    let _ = writeln!(out, "<h1>{}</h1>", html_escape(title));
    if bus.is_empty() {
        out.push_str("<p>No series recorded.</p>\n");
    } else {
        // Summary table.
        out.push_str(
            "<table><thead><tr><th>series</th><th>kind</th><th>samples</th>\
             <th>stride</th><th>min</th><th>last</th><th>max</th></tr></thead><tbody>\n",
        );
        for (name, s) in bus.series() {
            let points = s.ring.collect();
            let (lo, hi) = min_max(&points);
            let kind = match s.kind {
                SeriesKind::Deterministic => "det",
                SeriesKind::Timing => "<span class=\"timing\">timing</span>",
            };
            let _ = writeln!(
                out,
                "<tr><td>{}</td><td>{kind}</td><td>{}</td><td>{}</td>\
                 <td>{}</td><td>{}</td><td>{}</td></tr>",
                html_escape(name),
                s.ring.total(),
                s.ring.stride(),
                fmt_value(lo),
                fmt_value(s.ring.last_value().unwrap_or(f64::NAN)),
                fmt_value(hi),
            );
        }
        out.push_str("</tbody></table>\n");
        // One sparkline card per series.
        for (name, s) in bus.series() {
            let points = s.ring.collect();
            let (lo, hi) = min_max(&points);
            let _ = write!(
                out,
                "<div class=\"card\"><h2>{}<span class=\"stats\">min {} · last {} · max {} \
                 · {} samples @ stride {}</span></h2>",
                html_escape(name),
                fmt_value(lo),
                fmt_value(s.ring.last_value().unwrap_or(f64::NAN)),
                fmt_value(hi),
                s.ring.total(),
                s.ring.stride(),
            );
            svg_sparkline(&points, &mut out);
            out.push_str("</div>\n");
        }
    }
    // Machine-readable payload: the complete series JSON.
    out.push_str("<script type=\"application/json\" id=\"cpo-series-data\">\n");
    out.push_str(&bus.to_json(true).replace("</", "<\\/"));
    out.push_str("\n</script>\n</body></html>\n");
    out
}

/// Writes [`html_report`] to `path`, creating parent directories.
pub fn write_html(bus: &TelemetryBus, path: impl AsRef<Path>, title: &str) -> std::io::Result<()> {
    let path = path.as_ref();
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    std::fs::write(path, html_report(bus, title))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::series::TelemetryBus;

    fn demo_bus() -> TelemetryBus {
        let mut bus = TelemetryBus::new(64);
        for w in 0..200u64 {
            bus.record("fleet.acceptance_rate", w, 1.0 - (w as f64 / 400.0));
            bus.record("fleet.active_vms", w, (w * 3) as f64);
            bus.record_timing("fleet.solve_latency_ms", w, 0.5 + (w % 7) as f64);
        }
        bus
    }

    #[test]
    fn sparkline_spans_the_ramp() {
        let points: Vec<Point> = (0..16)
            .map(|i| Point {
                t: i,
                mean: i as f64,
                min: i as f64,
                max: i as f64,
            })
            .collect();
        let line = sparkline(&points, 16);
        assert_eq!(line.chars().count(), 16);
        assert!(line.starts_with('▁'));
        assert!(line.ends_with('█'));
    }

    #[test]
    fn ansi_summary_lists_every_series() {
        let text = ansi_summary(&demo_bus());
        assert!(text.contains("fleet.acceptance_rate"));
        assert!(text.contains("fleet.active_vms"));
        assert!(text.contains("fleet.solve_latency_ms"));
        assert!(text.contains("(timing)"));
    }

    #[test]
    fn html_report_is_self_contained_and_machine_readable() {
        let bus = demo_bus();
        let html = html_report(&bus, "demo");
        assert!(html.starts_with("<!DOCTYPE html>"));
        assert!(html.contains("id=\"cpo-series-data\""));
        assert!(html.contains("<svg"));
        // No external references of any kind.
        assert!(!html.contains("http://") && !html.contains("https://"));
        // The embedded payload parses back and carries every series.
        let start = html.find("id=\"cpo-series-data\">").unwrap() + "id=\"cpo-series-data\">".len();
        let end = html[start..].find("</script>").unwrap() + start;
        let payload = html[start..end].trim().replace("<\\/", "</");
        let v = crate::json::parse(&payload).expect("embedded JSON parses");
        assert_eq!(v.get("schema").and_then(|s| s.as_str()), Some("cpo-series"));
        let n = v.get("series").and_then(|s| s.as_array()).unwrap().len();
        assert_eq!(n, 3);
    }

    #[test]
    fn empty_bus_renders_without_panicking() {
        let bus = TelemetryBus::new(4);
        assert!(ansi_summary(&bus).contains("none recorded"));
        assert!(html_report(&bus, "t").contains("No series recorded"));
    }
}
