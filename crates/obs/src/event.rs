//! Trace-event model: the typed field values attached to spans and the
//! flat event record every exporter consumes.

use crate::json::Value;
use std::fmt;

/// A typed field value attached to a span, counter, or gauge.
///
/// The integer variants are normalised so that a JSONL round-trip is
/// exact: non-negative integers are always `U64`, `I64` is only used for
/// negative values. The `From` impls enforce this — construct fields
/// through them.
#[derive(Clone, Debug, PartialEq)]
pub enum FieldValue {
    /// Non-negative integer.
    U64(u64),
    /// Negative integer (normalised: never holds values ≥ 0).
    I64(i64),
    /// Floating-point value.
    F64(f64),
    /// String label.
    Str(String),
    /// Boolean flag.
    Bool(bool),
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}

impl From<u32> for FieldValue {
    fn from(v: u32) -> Self {
        FieldValue::U64(u64::from(v))
    }
}

impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}

impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        if v < 0 {
            FieldValue::I64(v)
        } else {
            FieldValue::U64(v as u64)
        }
    }
}

impl From<i32> for FieldValue {
    fn from(v: i32) -> Self {
        FieldValue::from(i64::from(v))
    }
}

impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}

impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}

impl fmt::Display for FieldValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FieldValue::U64(v) => write!(f, "{v}"),
            FieldValue::I64(v) => write!(f, "{v}"),
            FieldValue::F64(v) => write!(f, "{v}"),
            FieldValue::Str(v) => write!(f, "{v}"),
            FieldValue::Bool(v) => write!(f, "{v}"),
        }
    }
}

impl FieldValue {
    /// Converts to a JSON value for the exporters.
    pub fn to_json(&self) -> Value {
        match self {
            FieldValue::U64(v) => Value::UInt(*v),
            FieldValue::I64(v) => Value::Int(*v),
            FieldValue::F64(v) => Value::Float(*v),
            FieldValue::Str(v) => Value::Str(v.clone()),
            FieldValue::Bool(v) => Value::Bool(*v),
        }
    }

    /// Parses a JSON value back to a field value (inverse of [`to_json`]
    /// for every value the exporter can write).
    ///
    /// [`to_json`]: FieldValue::to_json
    pub fn from_json(v: &Value) -> Option<FieldValue> {
        match v {
            Value::UInt(n) => Some(FieldValue::U64(*n)),
            Value::Int(n) => Some(FieldValue::from(*n)),
            Value::Float(n) => Some(FieldValue::F64(*n)),
            Value::Str(s) => Some(FieldValue::Str(s.clone())),
            Value::Bool(b) => Some(FieldValue::Bool(*b)),
            _ => None,
        }
    }
}

/// What one [`TraceEvent`] records.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceKind {
    /// A completed span: `ts_us` is the start, `dur_us` the duration.
    Span,
    /// A counter increment at `ts_us`; `value` is the delta.
    Counter,
    /// A gauge sample at `ts_us`; `value` is the level.
    Gauge,
}

impl TraceKind {
    /// The tag written in the JSONL `"event"` field.
    pub fn tag(self) -> &'static str {
        match self {
            TraceKind::Span => "span",
            TraceKind::Counter => "counter",
            TraceKind::Gauge => "gauge",
        }
    }

    /// Parses a JSONL `"event"` tag.
    pub fn from_tag(tag: &str) -> Option<TraceKind> {
        match tag {
            "span" => Some(TraceKind::Span),
            "counter" => Some(TraceKind::Counter),
            "gauge" => Some(TraceKind::Gauge),
            _ => None,
        }
    }
}

/// One recorded event, the unit every exporter consumes.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceEvent {
    /// What this event records.
    pub kind: TraceKind,
    /// Span/counter/gauge name (dotted, e.g. `nsga3.generation`).
    pub name: String,
    /// Microseconds since the registry was created (span start for spans).
    pub ts_us: u64,
    /// Span duration in microseconds (0 for counters/gauges).
    pub dur_us: u64,
    /// Counter delta or gauge level (`None` for spans).
    pub value: Option<f64>,
    /// Small dense thread id assigned on first use per thread.
    pub tid: u64,
    /// Span nesting depth on the recording thread (0 = root).
    pub depth: u32,
    /// Structured fields, in attachment order.
    pub fields: Vec<(String, FieldValue)>,
}

impl TraceEvent {
    /// Looks up a field by name.
    pub fn field(&self, name: &str) -> Option<&FieldValue> {
        self.fields.iter().find(|(k, _)| k == name).map(|(_, v)| v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signed_conversion_normalises_to_unsigned() {
        assert_eq!(FieldValue::from(3i64), FieldValue::U64(3));
        assert_eq!(FieldValue::from(0i64), FieldValue::U64(0));
        assert_eq!(FieldValue::from(-3i64), FieldValue::I64(-3));
        assert_eq!(FieldValue::from(-1i32), FieldValue::I64(-1));
    }

    #[test]
    fn json_round_trip_is_identity() {
        let values = [
            FieldValue::U64(u64::MAX),
            FieldValue::I64(i64::MIN),
            FieldValue::F64(0.125),
            FieldValue::Str("tabu/nsga3".into()),
            FieldValue::Bool(true),
        ];
        for v in values {
            assert_eq!(FieldValue::from_json(&v.to_json()), Some(v));
        }
    }

    #[test]
    fn kind_tags_round_trip() {
        for k in [TraceKind::Span, TraceKind::Counter, TraceKind::Gauge] {
            assert_eq!(TraceKind::from_tag(k.tag()), Some(k));
        }
        assert_eq!(TraceKind::from_tag("meta"), None);
    }

    #[test]
    fn field_lookup_finds_first_match() {
        let ev = TraceEvent {
            kind: TraceKind::Span,
            name: "x".into(),
            ts_us: 0,
            dur_us: 1,
            value: None,
            tid: 0,
            depth: 0,
            fields: vec![("gen".into(), FieldValue::U64(7))],
        };
        assert_eq!(ev.field("gen"), Some(&FieldValue::U64(7)));
        assert_eq!(ev.field("missing"), None);
    }
}
