//! A log-linear histogram (HDR-style): exact below 16, then 16 linear
//! sub-buckets per power of two, so any recorded value is off by at most
//! 1/16 ≈ 6.25% of itself. Covers the whole `u64` range in 976 fixed
//! buckets — no resizing, no allocation after construction.

/// Sub-bucket bits per octave (2⁴ = 16 sub-buckets).
const SUB_BITS: u32 = 4;
/// Sub-buckets per octave.
const SUB: usize = 1 << SUB_BITS;
/// Total buckets: 16 exact + 60 octaves (exponents 4..=63) × 16.
const N_BUCKETS: usize = SUB + (64 - SUB_BITS as usize) * SUB;

/// A fixed-layout log-linear histogram over `u64` values.
#[derive(Clone, Debug)]
pub struct Histogram {
    counts: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Summary statistics of one histogram, cheap to copy into reports.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct HistogramSummary {
    /// Number of recorded values.
    pub count: u64,
    /// Smallest recorded value (0 when empty).
    pub min: u64,
    /// Largest recorded value (0 when empty).
    pub max: u64,
    /// Arithmetic mean (0 when empty).
    pub mean: f64,
    /// Median (nearest-rank over buckets; ≤ 6.25% relative error).
    pub p50: u64,
    /// 95th percentile.
    pub p95: u64,
    /// 99th percentile.
    pub p99: u64,
}

/// The bucket index a value lands in.
pub fn bucket_index(v: u64) -> usize {
    if v < SUB as u64 {
        return v as usize;
    }
    let e = 63 - v.leading_zeros();
    let sub = ((v >> (e - SUB_BITS)) as usize) & (SUB - 1);
    SUB + (e - SUB_BITS) as usize * SUB + sub
}

/// The smallest value mapping to bucket `idx`.
pub fn bucket_lower_bound(idx: usize) -> u64 {
    if idx < SUB {
        return idx as u64;
    }
    let octave = (idx - SUB) / SUB;
    let sub = ((idx - SUB) % SUB) as u64;
    let e = octave as u32 + SUB_BITS;
    (1u64 << e) + sub * (1u64 << (e - SUB_BITS))
}

/// The width of bucket `idx` (1 for the exact range).
pub fn bucket_width(idx: usize) -> u64 {
    if idx < 2 * SUB {
        return 1;
    }
    let octave = (idx - SUB) / SUB;
    1u64 << (octave as u32)
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            counts: vec![0; N_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one value.
    pub fn record(&mut self, v: u64) {
        self.counts[bucket_index(v)] += 1;
        self.count += 1;
        self.sum += u128::from(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The `q`-quantile (`0.0..=1.0`) by nearest rank over buckets. The
    /// returned value is the containing bucket's midpoint clamped to the
    /// observed `[min, max]`, so it is within one sub-bucket (≤ 6.25%
    /// relative error) of the exact order statistic. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let mid = bucket_lower_bound(idx) + bucket_width(idx) / 2;
                return mid.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Snapshot of the summary statistics.
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count,
            min: if self.count == 0 { 0 } else { self.min },
            max: self.max,
            mean: if self.count == 0 {
                0.0
            } else {
                self.sum as f64 / self.count as f64
            },
            p50: self.quantile(0.50),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_below_sixteen_are_exact_buckets() {
        for v in 0..16u64 {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_lower_bound(v as usize), v);
            assert_eq!(bucket_width(v as usize), 1);
        }
    }

    #[test]
    fn octave_boundaries_map_to_fresh_subbucket_rows() {
        // Each power of two starts a new octave at sub-bucket 0.
        assert_eq!(bucket_index(16), 16);
        assert_eq!(bucket_index(31), 31);
        assert_eq!(bucket_index(32), 32);
        assert_eq!(bucket_index(33), 32); // width-2 bucket [32,34)
        assert_eq!(bucket_index(34), 33);
        assert_eq!(bucket_index(63), 47);
        assert_eq!(bucket_index(64), 48);
        assert_eq!(bucket_index(u64::MAX), N_BUCKETS - 1);
    }

    #[test]
    fn lower_bounds_invert_the_index() {
        for idx in 0..N_BUCKETS {
            let lo = bucket_lower_bound(idx);
            assert_eq!(bucket_index(lo), idx, "lower bound of bucket {idx}");
            let hi = lo + (bucket_width(idx) - 1);
            assert_eq!(bucket_index(hi), idx, "upper edge of bucket {idx}");
            if idx + 1 < N_BUCKETS {
                assert_eq!(
                    bucket_index(hi + 1),
                    idx + 1,
                    "first value past bucket {idx}"
                );
            }
        }
    }

    #[test]
    fn relative_error_is_bounded_by_one_sixteenth() {
        let mut h = Histogram::new();
        for v in 1..=100_000u64 {
            h.record(v);
        }
        for (q, exact) in [(0.5, 50_000.0), (0.95, 95_000.0), (0.99, 99_000.0)] {
            let got = h.quantile(q) as f64;
            let err = (got - exact).abs() / exact;
            assert!(err <= 1.0 / 16.0 + 1e-9, "q={q}: {got} vs {exact} ({err})");
        }
    }

    #[test]
    fn summary_tracks_extremes_and_mean() {
        let mut h = Histogram::new();
        for v in [10u64, 20, 30] {
            h.record(v);
        }
        let s = h.summary();
        assert_eq!(s.count, 3);
        assert_eq!(s.min, 10);
        assert_eq!(s.max, 30);
        assert!((s.mean - 20.0).abs() < 1e-12);
        assert_eq!(s.p50, 20);
    }

    #[test]
    fn empty_summary_is_all_zero() {
        assert_eq!(Histogram::new().summary(), HistogramSummary::default());
    }

    #[test]
    fn quantile_edges_on_empty_histogram() {
        let h = Histogram::new();
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(h.quantile(q), 0, "empty histogram at q={q}");
        }
    }

    #[test]
    fn single_sample_in_the_exact_range_pins_every_quantile() {
        // Values below 16 land in width-1 buckets, so one sample fixes
        // every quantile exactly — no midpoint approximation.
        let mut h = Histogram::new();
        h.record(7);
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(h.quantile(q), 7, "single-sample histogram at q={q}");
        }
    }

    #[test]
    fn boundary_saturated_bucket_keeps_quantiles_in_band() {
        // 99 samples exactly on an octave boundary (1024 opens a fresh
        // octave at sub-bucket 0) plus one outlier an octave up: p50/p95/
        // p99 all resolve inside the saturated bucket (within one
        // sub-bucket of the boundary) and only q=1.0 reaches the outlier.
        let mut h = Histogram::new();
        for _ in 0..99 {
            h.record(1024);
        }
        h.record(2048);
        let s = h.summary();
        for (q, got) in [(0.50, s.p50), (0.95, s.p95), (0.99, s.p99)] {
            let err = (got as f64 - 1024.0).abs() / 1024.0;
            assert!(err <= 1.0 / 16.0, "q={q}: {got} strays from 1024 ({err})");
        }
        assert!(h.quantile(1.0) >= 2048 - 2048 / 16);
        assert_eq!((s.min, s.max), (1024, 2048));
    }

    #[test]
    fn single_value_quantiles_collapse() {
        let mut h = Histogram::new();
        h.record(1_000_000);
        let s = h.summary();
        assert_eq!(s.p50, s.p99);
        assert!(s.p50 >= 1_000_000 - 1_000_000 / 16);
        assert!(s.p50 <= 1_000_000 + 1_000_000 / 16);
    }
}
