//! A deliberately tiny JSON reader/writer so the crate stays
//! dependency-free. The writer emits the compact form (`{"k":v}`, no
//! spaces) matching the rest of the workspace's traces; the reader is a
//! plain recursive-descent parser over the subset the exporters emit
//! (which is all of JSON except non-finite numbers).

/// A parsed JSON value. Integers keep their exact 64-bit representation
/// (a plain `f64` tree would corrupt large counter values and nanosecond
/// timestamps), so round trips are lossless.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer literal (no `.`, `e` or sign).
    UInt(u64),
    /// A negative integer literal.
    Int(i64),
    /// A literal with a fraction or exponent.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; insertion order preserved.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a `u64`, if numeric and representable.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::UInt(v) => Some(v),
            Value::Int(v) => u64::try_from(v).ok(),
            Value::Float(v) if v >= 0.0 && v.fract() == 0.0 => Some(v as u64),
            _ => None,
        }
    }

    /// The value as an `f64`, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::UInt(v) => Some(v as f64),
            Value::Int(v) => Some(v as f64),
            Value::Float(v) => Some(v),
            _ => None,
        }
    }

    /// The value as a string slice, if a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value's elements, if an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value's fields in insertion order, if an object.
    pub fn entries(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(fields) => Some(fields),
            _ => None,
        }
    }
}

/// Appends `s` as a JSON string literal (quoted, escaped).
pub fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends `v` as a JSON number; non-finite values (invalid JSON) are
/// written as `null`.
pub fn write_f64(v: f64, out: &mut String) {
    if v.is_finite() {
        // `{:?}` is Rust's shortest round-trip representation and always
        // contains a `.` or an exponent, so the reader can tell floats
        // from integers.
        out.push_str(&format!("{v:?}"));
    } else {
        out.push_str("null");
    }
}

/// Parses one JSON document.
pub fn parse(s: &str) -> Result<Value, String> {
    let bytes = s.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(s, bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing characters at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < bytes.len() && bytes[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", c as char, *pos))
    }
}

fn parse_value(s: &str, bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_object(s, bytes, pos),
        Some(b'[') => parse_array(s, bytes, pos),
        Some(b'"') => parse_string(s, bytes, pos).map(Value::Str),
        Some(b't') => parse_keyword(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_keyword(bytes, pos, "null", Value::Null),
        Some(_) => parse_number(s, bytes, pos),
    }
}

fn parse_keyword(bytes: &[u8], pos: &mut usize, word: &str, v: Value) -> Result<Value, String> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(v)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_number(s: &str, bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let token = &s[start..*pos];
    if token.is_empty() {
        return Err(format!("expected a value at byte {start}"));
    }
    let is_float = token.contains(['.', 'e', 'E']);
    if !is_float {
        if let Some(stripped) = token.strip_prefix('-') {
            // `-0` parses as UInt 0 via the float fallback below; exact
            // negative integers keep i64.
            if let Ok(v) = stripped.parse::<u64>() {
                if v == 0 {
                    return Ok(Value::UInt(0));
                }
            }
            if let Ok(v) = token.parse::<i64>() {
                return Ok(Value::Int(v));
            }
        } else if let Ok(v) = token.parse::<u64>() {
            return Ok(Value::UInt(v));
        }
    }
    token
        .parse::<f64>()
        .map(Value::Float)
        .map_err(|e| format!("bad number {token:?} at byte {start}: {e}"))
}

fn parse_string(s: &str, bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        let Some(&b) = bytes.get(*pos) else {
            return Err("unterminated string".into());
        };
        match b {
            b'"' => {
                *pos += 1;
                return Ok(out);
            }
            b'\\' => {
                *pos += 1;
                let Some(&esc) = bytes.get(*pos) else {
                    return Err("unterminated escape".into());
                };
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b't' => out.push('\t'),
                    b'r' => out.push('\r'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hi = parse_hex4(s, pos)?;
                        let code = if (0xd800..0xdc00).contains(&hi) {
                            // Surrogate pair.
                            if !bytes[*pos..].starts_with(b"\\u") {
                                return Err("unpaired surrogate".into());
                            }
                            *pos += 2;
                            let lo = parse_hex4(s, pos)?;
                            0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00)
                        } else {
                            hi
                        };
                        out.push(char::from_u32(code).ok_or_else(|| "bad \\u escape".to_string())?);
                    }
                    other => return Err(format!("bad escape '\\{}'", other as char)),
                }
            }
            _ => {
                // Consume one full UTF-8 character.
                let rest = &s[*pos..];
                let c = rest.chars().next().expect("in-bounds");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_hex4(s: &str, pos: &mut usize) -> Result<u32, String> {
    let hex = s
        .get(*pos..*pos + 4)
        .ok_or_else(|| "truncated \\u escape".to_string())?;
    *pos += 4;
    u32::from_str_radix(hex, 16).map_err(|e| format!("bad \\u escape: {e}"))
}

fn parse_array(s: &str, bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Arr(items));
    }
    loop {
        items.push(parse_value(s, bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_object(s: &str, bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(bytes, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Obj(fields));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(s, bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(s, bytes, pos)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Obj(fields));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse("true").unwrap(), Value::Bool(true));
        assert_eq!(parse("42").unwrap(), Value::UInt(42));
        assert_eq!(parse("-7").unwrap(), Value::Int(-7));
        assert_eq!(parse("1.5").unwrap(), Value::Float(1.5));
        assert_eq!(parse("1e3").unwrap(), Value::Float(1000.0));
        assert_eq!(parse("\"hi\"").unwrap(), Value::Str("hi".into()));
    }

    #[test]
    fn big_integers_are_exact() {
        assert_eq!(parse(&u64::MAX.to_string()).unwrap(), Value::UInt(u64::MAX));
        assert_eq!(parse(&i64::MIN.to_string()).unwrap(), Value::Int(i64::MIN));
    }

    #[test]
    fn objects_and_arrays_nest() {
        let v = parse(r#"{"a":[1,{"b":"c"}],"d":null}"#).unwrap();
        assert_eq!(v.get("d"), Some(&Value::Null));
        match v.get("a").unwrap() {
            Value::Arr(items) => {
                assert_eq!(items[0], Value::UInt(1));
                assert_eq!(items[1].get("b").unwrap().as_str(), Some("c"));
            }
            other => panic!("expected array, got {other:?}"),
        }
    }

    #[test]
    fn string_escapes_roundtrip() {
        for s in [
            "plain",
            "q\"uote",
            "back\\slash",
            "new\nline",
            "tab\there",
            "nul\u{1}ctl",
            "uni→中",
        ] {
            let mut out = String::new();
            write_escaped(s, &mut out);
            let back = parse(&out).unwrap();
            assert_eq!(back.as_str(), Some(s), "escaping {s:?}");
        }
    }

    #[test]
    fn surrogate_pairs_decode() {
        assert_eq!(
            parse(r#""\ud83d\ude00""#).unwrap().as_str(),
            Some("\u{1f600}")
        );
        // Raw (unescaped) UTF-8 passes through untouched too.
        assert_eq!(parse(r#""😀""#).unwrap().as_str(), Some("\u{1f600}"));
        assert!(parse(r#""\ud83d""#).is_err());
    }

    #[test]
    fn float_writer_roundtrips() {
        for v in [0.0, 1.5, -2.25, 1e-10, 1e300, f64::MIN_POSITIVE] {
            let mut out = String::new();
            write_f64(v, &mut out);
            assert_eq!(parse(&out).unwrap().as_f64(), Some(v));
        }
        let mut out = String::new();
        write_f64(f64::INFINITY, &mut out);
        assert_eq!(out, "null");
    }

    #[test]
    fn garbage_is_rejected() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("tru").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse("\"unterminated").is_err());
    }
}
