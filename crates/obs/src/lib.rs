//! `cpo-obs` — zero-dependency observability for the CPO workspace.
//!
//! Structured spans with nested timing, monotonic counters, gauges, and
//! log-linear histograms behind one thread-safe global registry that is
//! a no-op when disabled (the default): every instrumentation entry
//! point costs a single relaxed atomic load and performs no allocation
//! until [`enable`] is called. Two exporters turn the recorded data into
//! files: [`metrics_json_lines`] writes the same tagged JSON-lines shape
//! as the platform `EventLog`, and [`chrome_trace`] writes the Chrome
//! trace-event format for flame-style inspection in `chrome://tracing`
//! or Perfetto. On top of the point-in-time registry, [`series`] records
//! constant-memory time series (per-window fleet-health probes,
//! downsampling rings) and [`dash`] renders them as a self-contained
//! HTML dashboard or an ANSI terminal summary.
//!
//! # Quickstart
//!
//! ```
//! cpo_obs::enable();
//! {
//!     let mut sp = cpo_obs::span!("nsga3.generation", gen = 7u64);
//!     sp.field("feasible", 12u64);
//!     cpo_obs::counter_add("cp.propagations", 42);
//!     cpo_obs::gauge_set("des.queue_depth", 17.0);
//! } // span records here
//! let snap = cpo_obs::snapshot();
//! assert_eq!(snap.counters["cp.propagations"], 42);
//! let _trace_json = cpo_obs::chrome_trace(&snap);
//! let _metrics_jsonl = cpo_obs::metrics_json_lines(&snap);
//! # cpo_obs::disable();
//! # cpo_obs::reset();
//! ```
//!
//! # Naming convention
//!
//! Dotted lower-case names, `<subsystem>.<what>`: `nsga3.generation`,
//! `cp.propagations`, `tabu.iterations`, `allocator.allocate`,
//! `des.queue_depth`. Span durations are additionally folded into a
//! histogram named `span.<name>.us`.

#![warn(missing_docs)]

pub mod dash;
mod event;
mod export;
pub mod flight;
mod histogram;
pub mod json;
pub mod prof;
mod registry;
pub mod series;
mod span;
pub mod timeline;

pub use event::{FieldValue, TraceEvent, TraceKind};
pub use export::{
    chrome_trace, events_from_json_lines, events_to_json_lines, metrics_json_lines,
    TRACE_SCHEMA_VERSION,
};
pub use histogram::{Histogram, HistogramSummary};
pub use registry::{
    counter_add, disable, enable, gauge_set, is_enabled, now_us, record_value, reset, snapshot,
    Snapshot,
};
pub use span::{span, SpanGuard};
