//! Per-request lifecycle reconstruction from flight-recorder events.
//!
//! Every request drawn from an arrival stream carries a correlation key
//! (its uid) from generation onwards; admission binds the key to a
//! tenant id, and from then on platform events (placement, migration,
//! SLA breaches, departure) are attributed to the tenant. This module
//! joins the two views back into one [`Timeline`] per request —
//! `generated → arrived → admitted/rejected → placed → migrated* →
//! departed` — and validates the sequence against that state machine so
//! tests can demand gap-free, orphan-free coverage of a whole run.

use crate::flight::{FlightEvent, FlightKind, NONE};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Timeline JSONL schema version.
pub const TIMELINE_SCHEMA_VERSION: u64 = 1;

/// The reconstructed lifecycle of one request.
#[derive(Clone, Debug, PartialEq)]
pub struct Timeline {
    /// The request's correlation key (generation-time uid).
    pub key: u64,
    /// The tenant id admission bound the request to, if admitted.
    pub tenant: Option<u64>,
    /// The request's events in ticket order.
    pub events: Vec<FlightEvent>,
}

impl Timeline {
    /// Whether the request was admitted.
    pub fn admitted(&self) -> bool {
        self.events.iter().any(|e| e.kind == FlightKind::Admitted)
    }

    /// Whether the request was rejected.
    pub fn rejected(&self) -> bool {
        self.events.iter().any(|e| e.kind == FlightKind::Rejected)
    }

    /// Whether the tenant departed (released its resources).
    pub fn departed(&self) -> bool {
        self.events.iter().any(|e| e.kind == FlightKind::Departed)
    }

    /// Validates the event sequence against the lifecycle state machine.
    /// Returns one message per defect; empty means the timeline is
    /// complete and ordered: it starts with `generated`, proceeds through
    /// at most one `arrived` and at most one admission decision, carries
    /// placements only when admitted, and ends with at most one
    /// `departed`. Requests cut short by the end of a run — still
    /// running, still waiting for a window boundary, or generated but not
    /// yet arrived — are complete; what is never legitimate is a *later*
    /// stage without its earlier ones.
    pub fn lifecycle_errors(&self) -> Vec<String> {
        let mut errors = Vec::new();
        let count = |k: FlightKind| self.events.iter().filter(|e| e.kind == k).count();
        let pos = |k: FlightKind| self.events.iter().position(|e| e.kind == k);

        if self.events.first().map(|e| e.kind) != Some(FlightKind::Generated) {
            errors.push(format!(
                "request {}: does not start with generated",
                self.key
            ));
        }
        for (k, label) in [
            (FlightKind::Generated, "generated"),
            (FlightKind::Arrived, "arrived"),
        ] {
            if count(k) > 1 {
                errors.push(format!(
                    "request {}: expected at most one {label} event, got {}",
                    self.key,
                    count(k)
                ));
            }
        }
        let admissions = count(FlightKind::Admitted) + count(FlightKind::Rejected);
        if admissions > 1 {
            errors.push(format!(
                "request {}: expected at most one admission decision, got {admissions}",
                self.key
            ));
        }
        // Stage skipping: each later stage requires the earlier ones.
        if admissions == 1 && count(FlightKind::Arrived) == 0 {
            errors.push(format!(
                "request {}: decided without an arrived event",
                self.key
            ));
        }
        if count(FlightKind::Arrived) == 1 && count(FlightKind::Generated) == 0 {
            errors.push(format!("request {}: arrived without generation", self.key));
        }
        // Store commit traffic (committed / conflicted / per-attempt
        // bounces) legally precedes the admission decision: a sharded
        // scheduler may bounce a request several times before it is
        // admitted or rejected.
        if admissions == 0
            && self.events.iter().any(|e| {
                !matches!(
                    e.kind,
                    FlightKind::Generated
                        | FlightKind::Arrived
                        | FlightKind::Committed
                        | FlightKind::Conflicted
                        | FlightKind::CommitAttempt
                )
            })
        {
            errors.push(format!(
                "request {}: lifecycle events before an admission decision",
                self.key
            ));
        }
        if let (Some(g), Some(a)) = (pos(FlightKind::Generated), pos(FlightKind::Arrived)) {
            if a < g {
                errors.push(format!("request {}: arrived before generated", self.key));
            }
        }
        if let Some(d) = pos(FlightKind::Arrived) {
            if let Some(dec) = self
                .events
                .iter()
                .position(|e| matches!(e.kind, FlightKind::Admitted | FlightKind::Rejected))
            {
                if dec < d {
                    errors.push(format!("request {}: decided before it arrived", self.key));
                }
            }
        }
        if self.rejected() {
            // `conflicted` is fine on a rejected timeline (the retry
            // budget ran out); a surviving `committed` is not — a commit
            // reserves capacity, so its request must end up admitted.
            for k in [
                FlightKind::Placed,
                FlightKind::Migrated,
                FlightKind::Departed,
                FlightKind::SlaViolated,
                FlightKind::Committed,
            ] {
                if count(k) > 0 {
                    errors.push(format!(
                        "request {}: rejected yet has {} events",
                        self.key,
                        k.name()
                    ));
                }
            }
        }
        if self.admitted() && count(FlightKind::Placed) == 0 {
            errors.push(format!("request {}: admitted but never placed", self.key));
        }
        match count(FlightKind::Departed) {
            0 | 1 => {}
            n => errors.push(format!("request {}: departed {n} times", self.key)),
        }
        if let Some(d) = pos(FlightKind::Departed) {
            if d + 1 != self.events.len() {
                errors.push(format!(
                    "request {}: events recorded after departure",
                    self.key
                ));
            }
        }
        let mut last_ticket = 0u64;
        for e in &self.events {
            if e.ticket < last_ticket {
                errors.push(format!("request {}: tickets out of order", self.key));
                break;
            }
            last_ticket = e.ticket;
        }
        errors
    }

    /// Renders the timeline as a human-readable multi-line string.
    pub fn render(&self) -> String {
        let mut out = format!(
            "request {} — {}{}\n",
            self.key,
            match (self.admitted(), self.rejected()) {
                (true, _) => "admitted",
                (_, true) => "rejected",
                _ => "undecided",
            },
            self.tenant
                .map(|t| format!(" (tenant {t})"))
                .unwrap_or_default()
        );
        for e in &self.events {
            let what = match e.kind {
                FlightKind::Generated => format!("generated ({} vms)", e.a),
                FlightKind::Arrived => format!("arrived at sim t={}µ ({} vms)", e.a, e.b),
                FlightKind::Admitted => format!("admitted in window {} ({} vms)", e.a, e.b),
                FlightKind::Rejected => format!("rejected in window {}", e.a),
                FlightKind::Placed => format!("vm {} placed on server {}", e.b, e.a),
                FlightKind::Migrated => format!("migrated from server {} to server {}", e.a, e.b),
                FlightKind::Departed => format!("departed in window {}", e.a),
                FlightKind::SlaViolated => {
                    format!("SLA breach in window {} (credit {}µ)", e.a, e.b)
                }
                FlightKind::Committed => {
                    format!("commit accepted in window {} (round {})", e.a, e.b)
                }
                FlightKind::Conflicted => {
                    format!("commit bounced in window {} (round {})", e.a, e.b)
                }
                FlightKind::CommitAttempt => {
                    let reason = if e.b == 0 { "stale" } else { "capacity" };
                    format!("commit attempt bounced off server {} ({reason})", e.a)
                }
                _ => format!("{} a={} b={}", e.kind.name(), e.a, e.b),
            };
            let _ = writeln!(out, "  [{:>8}] t={:>10}us  {}", e.ticket, e.ts_us, what);
        }
        out
    }
}

/// The full reconstruction of one run.
#[derive(Clone, Debug, Default)]
pub struct TimelineSet {
    /// One timeline per request key, sorted by key.
    pub timelines: Vec<Timeline>,
    /// Tenant-scoped events whose tenant was never bound to a request
    /// key (e.g. fixed-step tenants admitted outside a traced stream).
    pub orphans: Vec<FlightEvent>,
}

impl TimelineSet {
    /// The timeline of one request, if present.
    pub fn timeline(&self, key: u64) -> Option<&Timeline> {
        self.timelines.iter().find(|t| t.key == key)
    }

    /// Every lifecycle defect across all timelines.
    pub fn all_errors(&self) -> Vec<String> {
        self.timelines
            .iter()
            .flat_map(Timeline::lifecycle_errors)
            .collect()
    }
}

/// Joins flight events into per-request timelines. Events carrying a
/// key are attributed directly; events carrying only a tenant id are
/// joined through the key↔tenant binding established by admission
/// events. Infrastructure-scoped events (server failures/repairs,
/// window markers, monitor violations) belong to no request and are
/// ignored here.
pub fn reconstruct(events: &[FlightEvent]) -> TimelineSet {
    // Infrastructure-scoped kinds never belong to a request; `violation`
    // and `marker` reuse the key slot for other payloads, so they must be
    // excluded *before* key attribution.
    let request_scoped = |e: &FlightEvent| {
        !matches!(
            e.kind,
            FlightKind::ServerFailed
                | FlightKind::ServerRepaired
                | FlightKind::WindowClosed
                | FlightKind::Violation
                | FlightKind::Marker
        )
    };
    // Pass 1: tenant → key bindings from any event carrying both.
    let mut binding: BTreeMap<u64, u64> = BTreeMap::new();
    for e in events.iter().filter(|e| request_scoped(e)) {
        if e.key != NONE && e.tenant != NONE {
            binding.insert(e.tenant, e.key);
        }
    }
    // Pass 2: attribute every request-scoped event.
    let mut by_key: BTreeMap<u64, Timeline> = BTreeMap::new();
    let mut orphans = Vec::new();
    for e in events.iter().filter(|e| request_scoped(e)) {
        let key = if e.key != NONE {
            Some(e.key)
        } else if e.tenant != NONE {
            binding.get(&e.tenant).copied()
        } else {
            None
        };
        match key {
            Some(k) => {
                let t = by_key.entry(k).or_insert_with(|| Timeline {
                    key: k,
                    tenant: None,
                    events: Vec::new(),
                });
                if e.tenant != NONE {
                    t.tenant = Some(e.tenant);
                }
                t.events.push(*e);
            }
            None if e.tenant != NONE => orphans.push(*e),
            None => {} // infrastructure-scoped
        }
    }
    let mut timelines: Vec<Timeline> = by_key.into_values().collect();
    for t in &mut timelines {
        t.events.sort_by_key(|e| e.ticket);
    }
    TimelineSet { timelines, orphans }
}

/// Serialises timelines as JSON lines: a meta header, then one object
/// per request with its full event list.
pub fn timelines_json_lines(set: &TimelineSet) -> String {
    let mut out = format!(
        "{{\"event\":\"meta\",\"schema\":\"cpo-timelines\",\"schema_version\":{},\"requests\":{},\"orphans\":{}}}\n",
        TIMELINE_SCHEMA_VERSION,
        set.timelines.len(),
        set.orphans.len()
    );
    for t in &set.timelines {
        let _ = write!(out, "{{\"request\":{},\"tenant\":", t.key);
        match t.tenant {
            Some(id) => {
                let _ = write!(out, "{id}");
            }
            None => out.push_str("null"),
        }
        out.push_str(",\"events\":[");
        for (i, e) in t.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            crate::flight::write_event_json(e, &mut out);
        }
        out.push_str("]}\n");
    }
    out
}

/// Parses a [`timelines_json_lines`] document back. Orphans are not
/// serialised, so the parsed set has none.
pub fn timelines_from_json_lines(text: &str) -> Result<TimelineSet, String> {
    let mut set = TimelineSet::default();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let v = crate::json::parse(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        if v.get("event").and_then(crate::json::Value::as_str) == Some("meta") {
            let version = v
                .get("schema_version")
                .and_then(crate::json::Value::as_u64)
                .ok_or("meta line without schema_version")?;
            if version != TIMELINE_SCHEMA_VERSION {
                return Err(format!(
                    "unsupported timeline schema version {version} (expected {TIMELINE_SCHEMA_VERSION})"
                ));
            }
            continue;
        }
        let key = v
            .get("request")
            .and_then(crate::json::Value::as_u64)
            .ok_or_else(|| format!("line {}: missing request", lineno + 1))?;
        let tenant = match v.get("tenant") {
            None | Some(crate::json::Value::Null) => None,
            Some(x) => Some(
                x.as_u64()
                    .ok_or_else(|| format!("line {}: tenant not numeric", lineno + 1))?,
            ),
        };
        let events = match v.get("events") {
            Some(crate::json::Value::Arr(items)) => items
                .iter()
                .map(crate::flight::event_from_value)
                .collect::<Result<Vec<_>, _>>()
                .map_err(|e| format!("line {}: {e}", lineno + 1))?,
            _ => return Err(format!("line {}: missing events array", lineno + 1)),
        };
        set.timelines.push(Timeline {
            key,
            tenant,
            events,
        });
    }
    set.timelines.sort_by_key(|t| t.key);
    Ok(set)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(ticket: u64, kind: FlightKind, key: u64, tenant: u64, a: u64, b: u64) -> FlightEvent {
        FlightEvent {
            ticket,
            ts_us: ticket * 10,
            kind,
            key,
            tenant,
            a,
            b,
        }
    }

    fn lifecycle() -> Vec<FlightEvent> {
        vec![
            ev(0, FlightKind::Generated, 7, NONE, 2, 0),
            ev(1, FlightKind::Arrived, 7, NONE, 1500, 2),
            ev(2, FlightKind::Admitted, 7, 3, 1, 2),
            ev(3, FlightKind::Placed, 7, 3, 0, 0),
            ev(4, FlightKind::Placed, 7, 3, 1, 1),
            ev(5, FlightKind::Migrated, NONE, 3, 0, 4), // tenant-only: joined
            ev(6, FlightKind::Departed, NONE, 3, 5, 0),
        ]
    }

    #[test]
    fn complete_lifecycle_reconstructs_without_errors() {
        let set = reconstruct(&lifecycle());
        assert_eq!(set.timelines.len(), 1);
        assert!(set.orphans.is_empty());
        let t = &set.timelines[0];
        assert_eq!(t.key, 7);
        assert_eq!(t.tenant, Some(3));
        assert_eq!(t.events.len(), 7);
        assert!(t.admitted() && !t.rejected() && t.departed());
        assert_eq!(t.lifecycle_errors(), Vec::<String>::new());
        let text = t.render();
        assert!(text.contains("request 7"));
        assert!(text.contains("migrated from server 0 to server 4"));
    }

    #[test]
    fn unbound_tenant_events_are_orphans() {
        let events = vec![ev(0, FlightKind::Placed, NONE, 99, 0, 0)];
        let set = reconstruct(&events);
        assert!(set.timelines.is_empty());
        assert_eq!(set.orphans.len(), 1);
    }

    #[test]
    fn infrastructure_events_are_ignored() {
        let events = vec![
            ev(0, FlightKind::ServerFailed, NONE, NONE, 4, 1),
            ev(1, FlightKind::WindowClosed, NONE, NONE, 1, 0),
        ];
        let set = reconstruct(&events);
        assert!(set.timelines.is_empty() && set.orphans.is_empty());
    }

    #[test]
    fn missing_arrival_is_a_lifecycle_error() {
        let events = vec![
            ev(0, FlightKind::Generated, 1, NONE, 1, 0),
            ev(1, FlightKind::Admitted, 1, 8, 0, 1),
            ev(2, FlightKind::Placed, 1, 8, 0, 0),
        ];
        let set = reconstruct(&events);
        let errors = set.all_errors();
        assert!(errors.iter().any(|e| e.contains("arrived")), "{errors:?}");
    }

    #[test]
    fn rejected_request_with_placement_is_flagged() {
        let events = vec![
            ev(0, FlightKind::Generated, 1, NONE, 1, 0),
            ev(1, FlightKind::Arrived, 1, NONE, 10, 1),
            ev(2, FlightKind::Rejected, 1, 8, 0, 0),
            ev(3, FlightKind::Placed, 1, 8, 0, 0),
        ];
        let errors = reconstruct(&events).all_errors();
        assert!(errors.iter().any(|e| e.contains("rejected yet has placed")));
    }

    #[test]
    fn bounced_then_admitted_request_is_a_legal_lifecycle() {
        let events = vec![
            ev(0, FlightKind::Generated, 4, NONE, 1, 0),
            ev(1, FlightKind::Arrived, 4, NONE, 900, 1),
            ev(2, FlightKind::CommitAttempt, 4, NONE, 17, 1),
            ev(3, FlightKind::Conflicted, 4, NONE, 0, 0),
            ev(4, FlightKind::CommitAttempt, 4, NONE, 23, 0),
            ev(5, FlightKind::Conflicted, 4, NONE, 0, 1),
            ev(6, FlightKind::Committed, 4, NONE, 0, 2),
            ev(7, FlightKind::Admitted, 4, 11, 0, 1),
            ev(8, FlightKind::Placed, 4, 11, 23, 0),
        ];
        let set = reconstruct(&events);
        let t = set.timeline(4).unwrap();
        assert!(t.admitted());
        assert_eq!(t.lifecycle_errors(), Vec::<String>::new());
        let text = t.render();
        assert!(text.contains("commit attempt bounced off server 17 (capacity)"));
        assert!(text.contains("commit attempt bounced off server 23 (stale)"));
    }

    #[test]
    fn bounced_then_rejected_request_is_a_legal_lifecycle() {
        // Retry-budget exhaustion: every round bounces, the last round
        // force-rejects. No commit may survive on a rejected timeline,
        // but per-attempt bounces and round-level conflicts must.
        let events = vec![
            ev(0, FlightKind::Generated, 5, NONE, 1, 0),
            ev(1, FlightKind::Arrived, 5, NONE, 950, 1),
            ev(2, FlightKind::CommitAttempt, 5, NONE, 8, 1),
            ev(3, FlightKind::Conflicted, 5, NONE, 0, 0),
            ev(4, FlightKind::CommitAttempt, 5, NONE, 8, 1),
            ev(5, FlightKind::Conflicted, 5, NONE, 0, 1),
            ev(6, FlightKind::Rejected, 5, NONE, 0, 0),
        ];
        let set = reconstruct(&events);
        let t = set.timeline(5).unwrap();
        assert!(t.rejected() && !t.admitted());
        assert_eq!(t.lifecycle_errors(), Vec::<String>::new());
    }

    #[test]
    fn undecided_request_with_commit_attempts_is_not_stage_skipping() {
        // A run cut off mid-window may leave a request bounced but not
        // yet decided; that must not trip the "lifecycle events before
        // an admission decision" check.
        let events = vec![
            ev(0, FlightKind::Generated, 6, NONE, 1, 0),
            ev(1, FlightKind::Arrived, 6, NONE, 10, 1),
            ev(2, FlightKind::CommitAttempt, 6, NONE, 3, 0),
            ev(3, FlightKind::Conflicted, 6, NONE, 0, 0),
        ];
        let errors = reconstruct(&events).all_errors();
        assert_eq!(errors, Vec::<String>::new());
    }

    #[test]
    fn timelines_round_trip_through_json_lines() {
        let set = reconstruct(&lifecycle());
        let text = timelines_json_lines(&set);
        assert!(text.starts_with("{\"event\":\"meta\""));
        let back = timelines_from_json_lines(&text).unwrap();
        assert_eq!(back.timelines, set.timelines);
    }

    #[test]
    fn unknown_timeline_schema_is_rejected() {
        let text = "{\"event\":\"meta\",\"schema\":\"cpo-timelines\",\"schema_version\":42}\n";
        assert!(timelines_from_json_lines(text).is_err());
    }
}
