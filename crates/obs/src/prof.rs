//! Deterministic latency attribution and critical-path profiling.
//!
//! The flight recorder says *what* happened to a request; this module
//! says *where its microseconds went*. While enabled, every flight
//! event is fanned into an online per-request state machine (see
//! [`crate::flight::record`]) that decomposes each request's
//! end-to-end admission latency — `arrived` to its last `placed` (or
//! to `rejected`) — into five exhaustive, non-overlapping stages:
//!
//! | stage        | covers                                                    |
//! |--------------|-----------------------------------------------------------|
//! | `queue_wait` | arrival → start of the first solve round that saw it      |
//! | `solve`      | the wall duration of every solve round the request rode   |
//! | `commit`     | solve end → its commit/bounce/reject decision, per round  |
//! | `bounce_wait`| a bounced attempt → the start of its retry round's solve  |
//! | `placement`  | commit accepted → `admitted` → last per-VM `placed`       |
//!
//! Stage boundaries are *consecutive timestamps of the same request*,
//! so the stage sums equal the end-to-end latency **exactly** — the
//! accounting invariant ([`Profile::accounted_fraction`]) is checked
//! per request at finalization rather than assumed. Aggregation is
//! online and O(in-flight requests): finalized requests fold into
//! fixed-size histograms immediately, so profiling a million-arrival
//! replay does not depend on the flight ring's bounded capacity.
//!
//! On top of the per-request view the profiler keeps:
//!
//! * **per-window critical paths** ([`WindowPath`]): per solve round,
//!   the slowest shard's solve time (the modeled critical path), the
//!   summed solve work (parallelism efficiency), and the sequential
//!   commit tail — fed directly by the sharded scheduler through
//!   [`solve_phase`] / [`commit_phase`];
//! * **conflict hotspot tables** ([`ServerHeat`]): per-server
//!   stale/capacity bounce counts from `commit_attempt` events, with
//!   a deterministic top-K ranking and FNV fingerprint, plus
//!   per-window `prof.hot_server` / `prof.hot_server_conflicts`
//!   series when the series layer is enabled;
//! * **tail exemplars**: the top-K slowest finalized requests with
//!   their full stage breakdown, linkable back to ring timelines by
//!   correlation key;
//! * **flame export** ([`Profile::flame_folded`]): aggregated stage
//!   totals in collapsed-stack format for flamegraph tooling.
//!
//! [`Profile::to_json`] splits the report into a `deterministic`
//! section (pure event counts — byte-identical across same-seed runs)
//! and a `timing` section (microsecond measurements), mirroring the
//! series layer's deterministic/timing split so CI can pin the former
//! exactly.
//!
//! The profiler needs correlation keys on events, so drivers enable
//! the flight recorder alongside it ([`crate::flight::enable`]).

use crate::flight::{FlightKind, NONE};
use crate::histogram::{Histogram, HistogramSummary};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// Profile JSON schema version.
pub const PROFILE_SCHEMA_VERSION: u64 = 1;

/// Number of attribution stages.
pub const STAGE_COUNT: usize = 5;

/// Hot servers carried in the deterministic JSON section.
const HOT_JSON_CAP: usize = 64;

/// One latency-attribution stage.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum Stage {
    /// Arrival → the start of the first solve round that saw the
    /// request.
    QueueWait = 0,
    /// Wall duration of every solve round the request rode (the round
    /// is a barrier: a request waits for the whole round even when its
    /// own shard finished early).
    Solve = 1,
    /// Solve end → the request's commit/bounce/reject decision, one
    /// segment per round.
    Commit = 2,
    /// A bounced attempt → the start of the retry round's solve.
    BounceWait = 3,
    /// Commit accepted → `admitted` → the last per-VM `placed`.
    Placement = 4,
}

impl Stage {
    /// All stages, in attribution order.
    pub const ALL: [Stage; STAGE_COUNT] = [
        Stage::QueueWait,
        Stage::Solve,
        Stage::Commit,
        Stage::BounceWait,
        Stage::Placement,
    ];

    /// Stable lower-case label used in JSON and flame output.
    pub fn label(self) -> &'static str {
        match self {
            Stage::QueueWait => "queue_wait",
            Stage::Solve => "solve",
            Stage::Commit => "commit",
            Stage::BounceWait => "bounce_wait",
            Stage::Placement => "placement",
        }
    }
}

/// Profiler parameters.
#[derive(Clone, Copy, Debug)]
pub struct ProfConfig {
    /// Slowest finalized requests kept as tail exemplars.
    pub exemplars: usize,
    /// Keep every finalized request's stage breakdown (tests and small
    /// runs only — memory grows with the run).
    pub keep_requests: bool,
}

impl Default for ProfConfig {
    fn default() -> Self {
        Self {
            exemplars: 10,
            keep_requests: false,
        }
    }
}

/// One finalized request's stage decomposition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RequestProfile {
    /// Flight correlation key.
    pub key: u64,
    /// Tenant id admission bound the request to ([`NONE`] if never
    /// admitted).
    pub tenant: u64,
    /// Whether the request was admitted.
    pub admitted: bool,
    /// End-to-end latency, arrival to final event, in µs.
    pub total_us: u64,
    /// Per-stage µs, indexed by [`Stage`] discriminant.
    pub stage_us: [u64; STAGE_COUNT],
    /// Per-stage segment counts (how many boundary intervals folded
    /// into each stage) — deterministic per seed.
    pub segments: [u64; STAGE_COUNT],
    /// Rejected commit attempts this request survived.
    pub bounces: u64,
}

impl RequestProfile {
    /// Sum of the stage decomposition, which the accounting invariant
    /// compares against [`RequestProfile::total_us`].
    pub fn stage_sum_us(&self) -> u64 {
        self.stage_us.iter().sum()
    }
}

/// Per-server conflict heat from `commit_attempt` events.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ServerHeat {
    /// Server index.
    pub server: u64,
    /// Total rejected commit attempts that hit this server first.
    pub conflicts: u64,
    /// Bounces with the stale reason (lost a capacity race).
    pub stale: u64,
    /// Bounces with the capacity reason (infeasible on own snapshot).
    pub capacity: u64,
}

/// Per-window critical-path decomposition, fed by the schedulers.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WindowPath {
    /// Window index.
    pub window: u64,
    /// Solve rounds the window took (1 = no retries).
    pub rounds: u64,
    /// Largest shard fan-out of any round.
    pub shards: u64,
    /// Critical path of the solves: Σ over rounds of the slowest
    /// shard's µs.
    pub solve_critical_us: u64,
    /// Total solve work: Σ over rounds and shards.
    pub solve_total_us: u64,
    /// Wall µs of the (coordinator-observed) solve phases, barrier to
    /// barrier.
    pub solve_wall_us: u64,
    /// Sequential commit tail: Σ over rounds of the commit loop µs.
    pub commit_us: u64,
}

/// Aggregated per-stage statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct StageAgg {
    /// Segments folded into this stage (deterministic per seed).
    pub segments: u64,
    /// Total µs across all finalized requests.
    pub total_us: u64,
    /// Distribution of per-request stage µs.
    pub summary: HistogramSummary,
}

/// A point-in-time snapshot of everything the profiler aggregated.
#[derive(Clone, Debug, Default)]
pub struct Profile {
    /// Requests that produced an `arrived` event while profiling.
    pub tracked: u64,
    /// Finalized as admitted (all VMs placed).
    pub admitted: u64,
    /// Finalized as rejected.
    pub rejected: u64,
    /// Still in flight at snapshot time (no decision yet).
    pub in_flight: u64,
    /// Finalized requests whose stage sum covered ≥95% of their
    /// end-to-end latency (by construction this equals `finalized`
    /// unless events were lost).
    pub accounted: u64,
    /// Store commits observed (`committed` events).
    pub commits: u64,
    /// Rejected commit attempts observed (`commit_attempt` events).
    pub bounces: u64,
    /// Bounces with the stale reason.
    pub stale_bounces: u64,
    /// Bounces with the capacity reason.
    pub capacity_bounces: u64,
    /// Requests per bounce count: `retry_depth[i] = (bounces, count)`.
    pub retry_depth: Vec<(u64, u64)>,
    /// Per-stage aggregates, indexed by [`Stage`] discriminant.
    pub stages: [StageAgg; STAGE_COUNT],
    /// End-to-end latency distribution over finalized requests.
    pub total: StageAgg,
    /// Commit-stage µs split by attempt outcome (flame sub-frames).
    pub commit_by_outcome: Vec<(&'static str, u64)>,
    /// Per-server conflict heat, sorted by conflicts desc then server
    /// asc. Complete table — rankings cap it for display.
    pub hot_servers: Vec<ServerHeat>,
    /// Per-window critical paths in window order.
    pub windows: Vec<WindowPath>,
    /// Slowest finalized requests, slowest first.
    pub exemplars: Vec<RequestProfile>,
    /// Every finalized request (only under
    /// [`ProfConfig::keep_requests`]).
    pub requests: Vec<RequestProfile>,
}

impl Profile {
    /// Finalized requests (admitted + rejected).
    pub fn finalized(&self) -> u64 {
        self.admitted + self.rejected
    }

    /// Fraction of finalized requests whose stage sums covered ≥95% of
    /// their end-to-end latency. 1.0 on an empty profile (vacuously
    /// accounted).
    pub fn accounted_fraction(&self) -> f64 {
        let f = self.finalized();
        if f == 0 {
            1.0
        } else {
            self.accounted as f64 / f as f64
        }
    }

    /// Number of stages that folded at least one segment — 5 when the
    /// full sharded pipeline (queue, solve, commit, bounce, placement)
    /// was exercised.
    pub fn stage_coverage(&self) -> u64 {
        self.stages.iter().filter(|s| s.segments > 0).count() as u64
    }

    /// Top-`k` hot servers (already sorted).
    pub fn top_hot_servers(&self, k: usize) -> &[ServerHeat] {
        &self.hot_servers[..self.hot_servers.len().min(k)]
    }

    /// FNV-1a fingerprint of the top-`k` hot-server ranking — a
    /// deterministic, diffable digest of (server, conflicts, stale,
    /// capacity) tuples in rank order.
    pub fn hot_fingerprint(&self, k: usize) -> String {
        let mut h = Fnv::new();
        for s in self.top_hot_servers(k) {
            h.fold(s.server);
            h.fold(s.conflicts);
            h.fold(s.stale);
            h.fold(s.capacity);
        }
        format!("{:016x}", h.0)
    }

    /// Critical solve path summed over windows, µs.
    pub fn solve_critical_us(&self) -> u64 {
        self.windows.iter().map(|w| w.solve_critical_us).sum()
    }

    /// Sequential commit tail summed over windows, µs.
    pub fn commit_tail_us(&self) -> u64 {
        self.windows.iter().map(|w| w.commit_us).sum()
    }

    /// Collapsed-stack (flamegraph `.folded`) export of the aggregated
    /// stage tree: one `frame;frame value` line per leaf, values in
    /// µs. Request stages nest under `admission;`, scheduler critical
    /// paths under `window;`.
    pub fn flame_folded(&self) -> String {
        let mut out = String::new();
        for stage in Stage::ALL {
            let agg = &self.stages[stage as usize];
            if stage == Stage::Commit {
                for &(outcome, us) in &self.commit_by_outcome {
                    if us > 0 {
                        let _ = writeln!(out, "admission;commit;{outcome} {us}");
                    }
                }
                // Sub-frames may not cover the whole stage (zero-µs
                // outcomes are folded up); emit the remainder so the
                // flame totals match the stage totals.
                let covered: u64 = self.commit_by_outcome.iter().map(|&(_, us)| us).sum();
                if agg.total_us > covered {
                    let _ = writeln!(out, "admission;commit {}", agg.total_us - covered);
                }
            } else if agg.total_us > 0 {
                let _ = writeln!(out, "admission;{} {}", stage.label(), agg.total_us);
            }
        }
        let solve = self.solve_critical_us();
        let commit = self.commit_tail_us();
        if solve > 0 {
            let _ = writeln!(out, "window;solve_critical {solve}");
        }
        if commit > 0 {
            let _ = writeln!(out, "window;commit_tail {commit}");
        }
        out
    }

    /// Renders the profile as one JSON object. The `deterministic`
    /// section holds only event counts and rankings (byte-identical
    /// across same-seed runs); `include_timing` adds the `timing`
    /// section with every microsecond measurement.
    pub fn to_json(&self, include_timing: bool) -> String {
        let mut out = format!(
            "{{\"schema\":\"cpo-profile\",\"schema_version\":{PROFILE_SCHEMA_VERSION},\"deterministic\":{{"
        );
        let _ = write!(
            out,
            "\"requests\":{{\"tracked\":{},\"admitted\":{},\"rejected\":{},\"in_flight\":{},\"finalized\":{},\"accounted\":{},\"accounted_fraction\":{:.6}}}",
            self.tracked,
            self.admitted,
            self.rejected,
            self.in_flight,
            self.finalized(),
            self.accounted,
            self.accounted_fraction()
        );
        let _ = write!(
            out,
            ",\"attempts\":{{\"committed\":{},\"bounced\":{},\"stale\":{},\"capacity\":{}}}",
            self.commits, self.bounces, self.stale_bounces, self.capacity_bounces
        );
        out.push_str(",\"retry_depth\":[");
        for (i, (depth, count)) in self.retry_depth.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "[{depth},{count}]");
        }
        out.push_str("],\"stages\":[");
        for (i, stage) in Stage::ALL.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"stage\":\"{}\",\"segments\":{}}}",
                stage.label(),
                self.stages[*stage as usize].segments
            );
        }
        let _ = write!(out, "],\"stage_coverage\":{}", self.stage_coverage());
        out.push_str(",\"hot_servers\":[");
        for (i, s) in self.top_hot_servers(HOT_JSON_CAP).iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"server\":{},\"conflicts\":{},\"stale\":{},\"capacity\":{}}}",
                s.server, s.conflicts, s.stale, s.capacity
            );
        }
        let _ = write!(
            out,
            "],\"hot_fingerprint\":\"{}\"",
            self.hot_fingerprint(16)
        );
        out.push_str(",\"windows\":[");
        for (i, w) in self.windows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"window\":{},\"rounds\":{},\"shards\":{}}}",
                w.window, w.rounds, w.shards
            );
        }
        out.push_str("]}");
        if include_timing {
            out.push_str(",\"timing\":{\"stages\":[");
            for (i, stage) in Stage::ALL.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_stage_timing(&mut out, stage.label(), &self.stages[*stage as usize]);
            }
            out.push_str("],\"total\":");
            write_stage_timing(&mut out, "total", &self.total);
            let _ = write!(
                out,
                ",\"critical_path\":{{\"solve_critical_us\":{},\"commit_tail_us\":{},\"windows\":[",
                self.solve_critical_us(),
                self.commit_tail_us()
            );
            for (i, w) in self.windows.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "{{\"window\":{},\"solve_critical_us\":{},\"solve_total_us\":{},\"solve_wall_us\":{},\"commit_us\":{}}}",
                    w.window, w.solve_critical_us, w.solve_total_us, w.solve_wall_us, w.commit_us
                );
            }
            out.push_str("]},\"exemplars\":[");
            for (i, r) in self.exemplars.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_request_json(&mut out, r);
            }
            out.push_str("]}");
        }
        out.push_str("}\n");
        out
    }
}

fn write_stage_timing(out: &mut String, label: &str, agg: &StageAgg) {
    let s = agg.summary;
    let _ = write!(
        out,
        "{{\"stage\":\"{label}\",\"count\":{},\"total_us\":{},\"mean_us\":{:.2},\"p50_us\":{},\"p95_us\":{},\"p99_us\":{},\"max_us\":{}}}",
        s.count, agg.total_us, s.mean, s.p50, s.p95, s.p99, s.max
    );
}

fn write_request_json(out: &mut String, r: &RequestProfile) {
    let _ = write!(
        out,
        "{{\"key\":{},\"tenant\":{},\"admitted\":{},\"total_us\":{},\"bounces\":{},\"stages\":{{",
        r.key,
        if r.tenant == NONE {
            -1i64
        } else {
            r.tenant as i64
        },
        r.admitted,
        r.total_us,
        r.bounces
    );
    for (i, stage) in Stage::ALL.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\":{}", stage.label(), r.stage_us[*stage as usize]);
    }
    out.push_str("}}");
}

struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn fold(&mut self, word: u64) {
        for byte in word.to_le_bytes() {
            self.0 ^= u64::from(byte);
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }
}

// --- online state -------------------------------------------------------

/// One in-flight request.
struct ReqRec {
    arrived_ts: u64,
    last_ts: u64,
    /// Last solve phase (by sequence number) folded into this request.
    phase_seq: u64,
    tenant: u64,
    stage_us: [u64; STAGE_COUNT],
    segments: [u64; STAGE_COUNT],
    bounces: u64,
    /// VMs expected (from `admitted`) and placed so far.
    vms: u64,
    placed: u64,
}

impl ReqRec {
    fn new(ts: u64) -> Self {
        Self {
            arrived_ts: ts,
            last_ts: ts,
            phase_seq: 0,
            tenant: NONE,
            stage_us: [0; STAGE_COUNT],
            segments: [0; STAGE_COUNT],
            bounces: 0,
            vms: 0,
            placed: 0,
        }
    }

    fn fold(&mut self, stage: Stage, us: u64) {
        self.stage_us[stage as usize] += us;
        self.segments[stage as usize] += 1;
    }

    /// Advances the request's clock to `ts`, folding the elapsed gap
    /// into `stage`.
    fn advance(&mut self, stage: Stage, ts: u64) {
        self.fold(stage, ts.saturating_sub(self.last_ts));
        self.last_ts = self.last_ts.max(ts);
    }
}

/// The coordinator's current solve phase (one per round).
#[derive(Clone, Copy)]
struct SolvePhase {
    seq: u64,
    start_us: u64,
    end_us: u64,
}

#[derive(Default)]
struct CommitOutcomes {
    committed: u64,
    bounce_stale: u64,
    bounce_capacity: u64,
    rejected: u64,
}

struct ProfState {
    config: ProfConfig,
    live: BTreeMap<u64, ReqRec>,
    phase: Option<SolvePhase>,
    phase_seq: u64,
    tracked: u64,
    admitted: u64,
    rejected: u64,
    accounted: u64,
    commits: u64,
    stale_bounces: u64,
    capacity_bounces: u64,
    retry_depth: BTreeMap<u64, u64>,
    stage_us: [u64; STAGE_COUNT],
    stage_segments: [u64; STAGE_COUNT],
    stage_hist: [Histogram; STAGE_COUNT],
    total_hist: Histogram,
    total_us: u64,
    commit_by: CommitOutcomes,
    servers: BTreeMap<u64, ServerHeat>,
    /// Per-server bounce counts of the window in progress, flushed to
    /// series on `window_closed`.
    window_heat: BTreeMap<u64, u64>,
    windows: BTreeMap<u64, WindowPath>,
    exemplars: Vec<RequestProfile>,
    requests: Vec<RequestProfile>,
}

impl ProfState {
    fn new(config: ProfConfig) -> Self {
        Self {
            config,
            live: BTreeMap::new(),
            phase: None,
            phase_seq: 0,
            tracked: 0,
            admitted: 0,
            rejected: 0,
            accounted: 0,
            commits: 0,
            stale_bounces: 0,
            capacity_bounces: 0,
            retry_depth: BTreeMap::new(),
            stage_us: [0; STAGE_COUNT],
            stage_segments: [0; STAGE_COUNT],
            stage_hist: std::array::from_fn(|_| Histogram::new()),
            total_hist: Histogram::new(),
            total_us: 0,
            commit_by: CommitOutcomes::default(),
            servers: BTreeMap::new(),
            window_heat: BTreeMap::new(),
            windows: BTreeMap::new(),
            exemplars: Vec::new(),
            requests: Vec::new(),
        }
    }

    /// Folds the current solve phase into the request, if it has not
    /// ridden it yet: the wait up to the phase start goes to
    /// `queue_wait` (first attempt) or `bounce_wait` (retries), the
    /// phase itself to `solve`.
    fn ride_phase(&mut self, key: u64) {
        let Some(phase) = self.phase else { return };
        let Some(rec) = self.live.get_mut(&key) else {
            return;
        };
        if phase.seq <= rec.phase_seq || phase.start_us < rec.last_ts {
            return;
        }
        let wait_stage = if rec.bounces == 0 {
            Stage::QueueWait
        } else {
            Stage::BounceWait
        };
        rec.advance(wait_stage, phase.start_us);
        rec.advance(Stage::Solve, phase.end_us);
        rec.phase_seq = phase.seq;
    }

    fn commit_segment(&mut self, key: u64, ts: u64, outcome: CommitOutcome) {
        self.ride_phase(key);
        let Some(rec) = self.live.get_mut(&key) else {
            return;
        };
        let before = rec.stage_us[Stage::Commit as usize];
        rec.advance(Stage::Commit, ts);
        let us = rec.stage_us[Stage::Commit as usize] - before;
        match outcome {
            CommitOutcome::Committed => self.commit_by.committed += us,
            CommitOutcome::BounceStale => self.commit_by.bounce_stale += us,
            CommitOutcome::BounceCapacity => self.commit_by.bounce_capacity += us,
            CommitOutcome::Rejected => self.commit_by.rejected += us,
        }
    }

    fn finalize(&mut self, key: u64, admitted: bool) {
        let Some(rec) = self.live.remove(&key) else {
            return;
        };
        let total: u64 = rec.last_ts.saturating_sub(rec.arrived_ts);
        let sum: u64 = rec.stage_us.iter().sum();
        if admitted {
            self.admitted += 1;
        } else {
            self.rejected += 1;
        }
        // ≥95% accounting invariant, integer arithmetic: sum/total ≥
        // 0.95 ⇔ 20·sum ≥ 19·total. Exact coverage (sum == total) is
        // the construction; the band absorbs only clock pathology.
        if sum * 20 >= total * 19 {
            self.accounted += 1;
        }
        *self.retry_depth.entry(rec.bounces).or_insert(0) += 1;
        for i in 0..STAGE_COUNT {
            self.stage_us[i] += rec.stage_us[i];
            self.stage_segments[i] += rec.segments[i];
            self.stage_hist[i].record(rec.stage_us[i]);
        }
        self.total_hist.record(total);
        self.total_us += total;
        let profile = RequestProfile {
            key,
            tenant: rec.tenant,
            admitted,
            total_us: total,
            stage_us: rec.stage_us,
            segments: rec.segments,
            bounces: rec.bounces,
        };
        if self.config.exemplars > 0 {
            let pos = self
                .exemplars
                .partition_point(|e| e.total_us >= profile.total_us);
            if pos < self.config.exemplars {
                self.exemplars.insert(pos, profile.clone());
                self.exemplars.truncate(self.config.exemplars);
            }
        }
        if self.config.keep_requests {
            self.requests.push(profile);
        }
    }

    fn observe(&mut self, ts: u64, kind: FlightKind, key: u64, tenant: u64, a: u64, b: u64) {
        match kind {
            FlightKind::Arrived if key != NONE => {
                self.live.insert(key, ReqRec::new(ts));
                self.tracked += 1;
            }
            FlightKind::CommitAttempt => {
                // a = first infeasible server, b = reason tag.
                let heat = self.servers.entry(a).or_insert(ServerHeat {
                    server: a,
                    conflicts: 0,
                    stale: 0,
                    capacity: 0,
                });
                heat.conflicts += 1;
                let capacity = b == 1;
                if capacity {
                    heat.capacity += 1;
                    self.capacity_bounces += 1;
                } else {
                    heat.stale += 1;
                    self.stale_bounces += 1;
                }
                *self.window_heat.entry(a).or_insert(0) += 1;
                if key != NONE {
                    self.commit_segment(
                        key,
                        ts,
                        if capacity {
                            CommitOutcome::BounceCapacity
                        } else {
                            CommitOutcome::BounceStale
                        },
                    );
                    if let Some(rec) = self.live.get_mut(&key) {
                        rec.bounces += 1;
                    }
                }
            }
            FlightKind::Committed => {
                self.commits += 1;
                if key != NONE {
                    self.commit_segment(key, ts, CommitOutcome::Committed);
                }
            }
            FlightKind::Rejected if key != NONE => {
                self.commit_segment(key, ts, CommitOutcome::Rejected);
                self.finalize(key, false);
            }
            FlightKind::Admitted if key != NONE => {
                // Native (storeless) paths fold queue+solve here;
                // after a store commit this is a no-op ride and the
                // apply gap lands in `placement`.
                self.ride_phase(key);
                if let Some(rec) = self.live.get_mut(&key) {
                    rec.tenant = tenant;
                    rec.vms = b;
                    rec.advance(Stage::Placement, ts);
                    if rec.vms == 0 {
                        self.finalize(key, true);
                    }
                }
            }
            FlightKind::Placed if key != NONE => {
                if let Some(rec) = self.live.get_mut(&key) {
                    rec.advance(Stage::Placement, ts);
                    rec.placed += 1;
                    if rec.placed >= rec.vms {
                        self.finalize(key, true);
                    }
                }
            }
            FlightKind::WindowClosed if !self.window_heat.is_empty() => {
                // a = window. Publish this window's hottest server as
                // deterministic series, then reset the window table.
                if crate::series::is_enabled() {
                    // Ascending iteration + strict > keeps the
                    // smallest server index on count ties.
                    let mut best = (0u64, 0u64);
                    for (&server, &count) in &self.window_heat {
                        if count > best.1 {
                            best = (server, count);
                        }
                    }
                    crate::series::record("prof.hot_server", a, best.0 as f64);
                    crate::series::record("prof.hot_server_conflicts", a, best.1 as f64);
                }
                self.window_heat.clear();
            }
            // Conflicted carries the round for timelines; the paired
            // CommitAttempt above already carries the attribution.
            // Everything else is irrelevant to admission latency.
            _ => {}
        }
    }

    fn snapshot(&self) -> Profile {
        let mut hot: Vec<ServerHeat> = self.servers.values().copied().collect();
        hot.sort_by_key(|s| (std::cmp::Reverse(s.conflicts), s.server));
        let mut stages: [StageAgg; STAGE_COUNT] = Default::default();
        for (i, agg) in stages.iter_mut().enumerate() {
            *agg = StageAgg {
                segments: self.stage_segments[i],
                total_us: self.stage_us[i],
                summary: self.stage_hist[i].summary(),
            };
        }
        Profile {
            tracked: self.tracked,
            admitted: self.admitted,
            rejected: self.rejected,
            in_flight: self.live.len() as u64,
            accounted: self.accounted,
            commits: self.commits,
            bounces: self.stale_bounces + self.capacity_bounces,
            stale_bounces: self.stale_bounces,
            capacity_bounces: self.capacity_bounces,
            retry_depth: self.retry_depth.iter().map(|(&d, &c)| (d, c)).collect(),
            stages,
            total: StageAgg {
                segments: self.admitted + self.rejected,
                total_us: self.total_us,
                summary: self.total_hist.summary(),
            },
            commit_by_outcome: vec![
                ("committed", self.commit_by.committed),
                ("bounce_stale", self.commit_by.bounce_stale),
                ("bounce_capacity", self.commit_by.bounce_capacity),
                ("rejected", self.commit_by.rejected),
            ],
            hot_servers: hot,
            windows: self.windows.values().copied().collect(),
            exemplars: self.exemplars.clone(),
            requests: self.requests.clone(),
        }
    }
}

#[derive(Clone, Copy)]
enum CommitOutcome {
    Committed,
    BounceStale,
    BounceCapacity,
    Rejected,
}

// --- global entry points ------------------------------------------------

static ENABLED: AtomicBool = AtomicBool::new(false);
static STATE: Mutex<Option<ProfState>> = Mutex::new(None);

fn with_state<R>(f: impl FnOnce(&mut ProfState) -> R) -> Option<R> {
    let mut guard = STATE.lock().expect("profiler state poisoned");
    guard.as_mut().map(f)
}

/// Turns the profiler on with default parameters. Idempotent; resets
/// any previous aggregation.
pub fn enable() {
    enable_with(ProfConfig::default());
}

/// Turns the profiler on with explicit parameters, resetting any
/// previous aggregation. Pins the shared clock epoch so profiled
/// timestamps correlate with spans and flight events.
pub fn enable_with(config: ProfConfig) {
    crate::now_us();
    *STATE.lock().expect("profiler state poisoned") = Some(ProfState::new(config));
    ENABLED.store(true, Ordering::Release);
}

/// Turns the profiler off. Aggregated data is kept until [`reset`] so
/// a final [`snapshot`] can still be taken.
pub fn disable() {
    ENABLED.store(false, Ordering::Release);
}

/// Whether the profiler is aggregating.
#[inline]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Drops all profiler state.
pub fn reset() {
    ENABLED.store(false, Ordering::Release);
    *STATE.lock().expect("profiler state poisoned") = None;
}

/// Feeds one flight event into the profiler. Called from
/// [`crate::flight::record`]; drivers never call this directly.
pub(crate) fn observe(ts: u64, kind: FlightKind, key: u64, tenant: u64, a: u64, b: u64) {
    with_state(|s| s.observe(ts, kind, key, tenant, a, b));
}

/// Declares one solve round of `window`: the coordinator-observed wall
/// interval `[start_us, end_us]` (from [`crate::now_us`]) plus each
/// shard's individually measured solve µs. Subsequent per-request
/// decisions ride this phase for their queue/solve attribution, and
/// the window's critical path accumulates the slowest shard.
pub fn solve_phase(window: u64, round: u64, start_us: u64, end_us: u64, shard_us: &[u64]) {
    if !is_enabled() {
        return;
    }
    with_state(|s| {
        s.phase_seq += 1;
        s.phase = Some(SolvePhase {
            seq: s.phase_seq,
            start_us,
            end_us: end_us.max(start_us),
        });
        let w = s.windows.entry(window).or_insert(WindowPath {
            window,
            ..WindowPath::default()
        });
        w.rounds = w.rounds.max(round + 1);
        w.shards = w.shards.max(shard_us.len() as u64);
        w.solve_critical_us += shard_us.iter().copied().max().unwrap_or(0);
        w.solve_total_us += shard_us.iter().sum::<u64>();
        w.solve_wall_us += end_us.saturating_sub(start_us);
    });
}

/// Declares the sequential commit tail of one solve round: `commit_us`
/// wall µs spent replaying the round's proposals against the store.
pub fn commit_phase(window: u64, round: u64, commit_us: u64) {
    if !is_enabled() {
        return;
    }
    with_state(|s| {
        let w = s.windows.entry(window).or_insert(WindowPath {
            window,
            ..WindowPath::default()
        });
        w.rounds = w.rounds.max(round + 1);
        w.commit_us += commit_us;
    });
}

/// Snapshot of everything aggregated so far, or `None` when the
/// profiler was never enabled (a [`disable`]d profiler still
/// snapshots).
pub fn snapshot() -> Option<Profile> {
    with_state(|s| s.snapshot())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flight;
    use std::sync::Mutex as TestMutex;

    /// Profiler state is process-global; tests serialise here.
    static LOCK: TestMutex<()> = TestMutex::new(());

    fn feed(ts: u64, kind: FlightKind, key: u64, tenant: u64, a: u64, b: u64) {
        observe(ts, kind, key, tenant, a, b);
    }

    #[test]
    fn sharded_lifecycle_decomposes_exactly() {
        let _g = LOCK.lock().unwrap();
        enable_with(ProfConfig {
            exemplars: 4,
            keep_requests: true,
        });
        // Request 7 arrives at t=100, round 0 solves [140, 180],
        // bounces off server 3 at t=200, round 1 solves [230, 260],
        // commits at t=270, admitted at t=275, two VMs placed by 290.
        feed(100, FlightKind::Arrived, 7, NONE, 0, 2);
        solve_phase(0, 0, 140, 180, &[40, 25]);
        feed(200, FlightKind::CommitAttempt, 7, NONE, 3, 0);
        feed(200, FlightKind::Conflicted, 7, NONE, 0, 0);
        commit_phase(0, 0, 30);
        solve_phase(0, 1, 230, 260, &[30]);
        feed(270, FlightKind::Committed, 7, NONE, 0, 1);
        feed(275, FlightKind::Admitted, 7, 42, 0, 2);
        feed(280, FlightKind::Placed, 7, 42, 5, 0);
        feed(290, FlightKind::Placed, 7, 42, 6, 1);
        commit_phase(0, 1, 12);
        feed(300, FlightKind::WindowClosed, NONE, NONE, 0, 1);
        let p = snapshot().unwrap();
        reset();

        assert_eq!(p.tracked, 1);
        assert_eq!(p.admitted, 1);
        assert_eq!(p.accounted, 1);
        assert!((p.accounted_fraction() - 1.0).abs() < 1e-12);
        let r = &p.requests[0];
        assert_eq!(r.total_us, 190, "arrived 100 → last placed 290");
        assert_eq!(r.stage_sum_us(), r.total_us, "stages sum to total");
        assert_eq!(r.stage_us[Stage::QueueWait as usize], 40, "100→140");
        assert_eq!(
            r.stage_us[Stage::Solve as usize],
            40 + 30,
            "both rounds' wall"
        );
        assert_eq!(
            r.stage_us[Stage::Commit as usize],
            20 + 10,
            "180→200 bounce, 260→270 commit"
        );
        assert_eq!(r.stage_us[Stage::BounceWait as usize], 30, "200→230");
        assert_eq!(r.stage_us[Stage::Placement as usize], 20, "270→290");
        assert_eq!(r.bounces, 1);
        assert_eq!(p.stage_coverage(), 5);
        assert_eq!(p.retry_depth, vec![(1, 1)]);
        // Hotspots: one stale bounce on server 3.
        assert_eq!(
            p.hot_servers,
            vec![ServerHeat {
                server: 3,
                conflicts: 1,
                stale: 1,
                capacity: 0
            }]
        );
        // Critical path: slowest shard per round, plus commit tails.
        assert_eq!(p.windows.len(), 1);
        let w = &p.windows[0];
        assert_eq!(w.rounds, 2);
        assert_eq!(w.shards, 2);
        assert_eq!(w.solve_critical_us, 40 + 30);
        assert_eq!(w.solve_total_us, 40 + 25 + 30);
        assert_eq!(w.commit_us, 42);
        // Flame export covers every stage with its exact totals.
        let flame = p.flame_folded();
        assert!(flame.contains("admission;queue_wait 40"));
        assert!(flame.contains("admission;commit;bounce_stale 20"));
        assert!(flame.contains("admission;commit;committed 10"));
        assert!(flame.contains("window;solve_critical 70"));
    }

    #[test]
    fn rejected_after_budget_exhaustion_accounts_fully() {
        let _g = LOCK.lock().unwrap();
        enable_with(ProfConfig {
            exemplars: 2,
            keep_requests: true,
        });
        feed(10, FlightKind::Arrived, 1, NONE, 0, 1);
        solve_phase(0, 0, 20, 30, &[10]);
        feed(35, FlightKind::CommitAttempt, 1, NONE, 0, 0);
        solve_phase(0, 1, 40, 50, &[10]);
        feed(55, FlightKind::CommitAttempt, 1, NONE, 0, 1);
        feed(60, FlightKind::Rejected, 1, 9, 0, 0);
        let p = snapshot().unwrap();
        reset();
        assert_eq!((p.admitted, p.rejected), (0, 1));
        let r = &p.requests[0];
        assert!(!r.admitted);
        assert_eq!(r.total_us, 50);
        assert_eq!(r.stage_sum_us(), 50);
        assert_eq!(r.bounces, 2);
        assert_eq!((p.stale_bounces, p.capacity_bounces), (1, 1));
        // The rejection decision after the last bounce lands in commit.
        assert_eq!(r.stage_us[Stage::Commit as usize], 5 + 5 + 5);
    }

    #[test]
    fn unsharded_path_splits_queue_and_solve_without_a_store() {
        let _g = LOCK.lock().unwrap();
        enable_with(ProfConfig {
            exemplars: 2,
            keep_requests: true,
        });
        feed(0, FlightKind::Arrived, 4, NONE, 0, 1);
        solve_phase(0, 0, 15, 40, &[25]);
        feed(50, FlightKind::Admitted, 4, 8, 0, 1);
        feed(55, FlightKind::Placed, 4, 8, 2, 0);
        let p = snapshot().unwrap();
        reset();
        let r = &p.requests[0];
        assert_eq!(r.stage_us[Stage::QueueWait as usize], 15);
        assert_eq!(r.stage_us[Stage::Solve as usize], 25);
        assert_eq!(r.stage_us[Stage::Commit as usize], 0);
        assert_eq!(r.stage_us[Stage::Placement as usize], 15, "40→55");
        assert_eq!(r.stage_sum_us(), r.total_us);
    }

    #[test]
    fn deterministic_json_is_stable_and_excludes_timing() {
        let _g = LOCK.lock().unwrap();
        let run = || {
            enable();
            feed(5, FlightKind::Arrived, 1, NONE, 0, 1);
            solve_phase(0, 0, 10, 20, &[10]);
            feed(25, FlightKind::CommitAttempt, 1, NONE, 7, 0);
            solve_phase(0, 1, 30, 40, &[9]);
            feed(45, FlightKind::Committed, 1, NONE, 0, 1);
            feed(46, FlightKind::Admitted, 1, 0, 0, 1);
            feed(47, FlightKind::Placed, 1, 0, 7, 0);
            let p = snapshot().unwrap();
            reset();
            p
        };
        let a = run();
        let b = run();
        assert_eq!(a.to_json(false), b.to_json(false), "deterministic subset");
        let det = a.to_json(false);
        assert!(!det.contains("timing"), "no timing in the det subset");
        assert!(det.contains("\"hot_fingerprint\""));
        let full = a.to_json(true);
        assert!(full.contains("\"timing\""));
        assert!(full.contains("\"exemplars\""));
        assert!(full.starts_with("{\"schema\":\"cpo-profile\""));
    }

    #[test]
    fn exemplars_keep_the_slowest_requests() {
        let _g = LOCK.lock().unwrap();
        enable_with(ProfConfig {
            exemplars: 2,
            keep_requests: false,
        });
        for (key, dur) in [(1u64, 10u64), (2, 50), (3, 30), (4, 5)] {
            feed(100 * key, FlightKind::Arrived, key, NONE, 0, 1);
            feed(100 * key + dur, FlightKind::Admitted, key, key, 0, 1);
            feed(100 * key + dur, FlightKind::Placed, key, key, 0, 0);
        }
        let p = snapshot().unwrap();
        reset();
        let totals: Vec<u64> = p.exemplars.iter().map(|e| e.total_us).collect();
        assert_eq!(totals, vec![50, 30], "top-2 slowest, slowest first");
        assert!(p.requests.is_empty(), "keep_requests off");
        assert_eq!(p.tracked, 4);
        assert_eq!(p.in_flight, 0);
    }

    #[test]
    fn disabled_profiler_observes_nothing() {
        let _g = LOCK.lock().unwrap();
        reset();
        assert!(!is_enabled());
        flight::record(FlightKind::Arrived, 9, NONE, 0, 1);
        solve_phase(0, 0, 0, 10, &[10]);
        assert!(snapshot().is_none());
    }

    #[test]
    fn hot_server_ranking_sorts_by_conflicts_then_index() {
        let _g = LOCK.lock().unwrap();
        enable();
        for (server, n) in [(5u64, 3), (2, 3), (9, 7)] {
            for _ in 0..n {
                feed(1, FlightKind::CommitAttempt, NONE, NONE, server, 0);
            }
        }
        let p = snapshot().unwrap();
        reset();
        let order: Vec<u64> = p.hot_servers.iter().map(|s| s.server).collect();
        assert_eq!(order, vec![9, 2, 5], "count desc, index asc on ties");
        assert_eq!(p.hot_fingerprint(2).len(), 16);
        assert_ne!(p.hot_fingerprint(1), p.hot_fingerprint(2));
        assert_eq!(p.bounces, 13);
    }
}
