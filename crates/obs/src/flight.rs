//! The always-on flight recorder: a lock-free, fixed-capacity ring of
//! compact lifecycle events.
//!
//! Unlike the registry's trace buffer (unbounded until a cap, dropped
//! beyond it), the flight recorder *overwrites oldest*: it is meant to be
//! left on for arbitrarily long runs and asked "what just happened?"
//! after a crash or an invariant violation. The ring holds
//! [`CAPACITY`] events of six words each (~3.5 MB) and is written
//! through a per-slot seqlock:
//!
//! * a writer claims a global monotone ticket with one `fetch_add`, then
//!   CASes its slot's sequence word from the previous lap's *complete*
//!   value to the odd *in-progress* value, stores the six payload words,
//!   and releases the even *complete* value `2·ticket + 2`;
//! * a reader loads the sequence word, copies the payload, and re-checks
//!   the sequence — an odd value or a changed value means a concurrent
//!   overwrite, and the slot is retried or skipped. Every payload word is
//!   an `AtomicU64`, so no read is ever torn even mid-overwrite; the
//!   seqlock only guarantees the six words belong to *one* event.
//!
//! When disabled (the default) [`record`] is a single relaxed atomic
//! load and no allocation — the same bar as the metrics registry; the
//! ring itself is not allocated until the first [`enable`].
//!
//! Events carry a *correlation key* (the request uid assigned at
//! generation time), an optional tenant id, and two payload words whose
//! meaning depends on the [`FlightKind`] — see the table in DESIGN.md.
//! [`crate::timeline`] reconstructs per-request lifecycles from a
//! [`FlightSnapshot`].

use std::sync::atomic::{fence, AtomicBool, AtomicU64, Ordering};
use std::sync::OnceLock;

/// Sentinel for "no key / no tenant" payload fields.
pub const NONE: u64 = u64::MAX;

/// Ring capacity in events. 2^16 slots × 7 words ≈ 3.5 MB.
pub const CAPACITY: usize = 1 << 16;

/// Schema version stamped on every dump.
pub const FLIGHT_SCHEMA_VERSION: u64 = 1;

/// What happened. The discriminant is the on-ring encoding.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum FlightKind {
    /// A request was drawn from an arrival stream. `key` = request uid,
    /// `a` = VM count.
    Generated = 0,
    /// The request reached the simulator. `a` = sim time in µ-units,
    /// `b` = VM count.
    Arrived = 1,
    /// Admission control accepted the request, binding `key` to
    /// `tenant`. `a` = window, `b` = VM count.
    Admitted = 2,
    /// Admission control rejected the request. `a` = window.
    Rejected = 3,
    /// One VM of an admitted request was placed. `a` = server, `b` =
    /// local VM index.
    Placed = 4,
    /// A running VM moved servers. `a` = from server, `b` = to server.
    Migrated = 5,
    /// The tenant released its resources. `a` = window.
    Departed = 6,
    /// A window's QoS fell below the tenant's guarantee (Eq. 23 credit
    /// accrued). `a` = window, `b` = credit in µ-units.
    SlaViolated = 7,
    /// A server went down. `a` = server, `b` = window.
    ServerFailed = 8,
    /// A server came back. `a` = server, `b` = window.
    ServerRepaired = 9,
    /// A scheduling window closed. `a` = window, `b` = running tenants.
    WindowClosed = 10,
    /// An invariant monitor tripped. `key` = monitor code (0 capacity,
    /// 1 placement, 2 affinity); `a`/`b` are monitor-specific.
    Violation = 11,
    /// Free-form marker dropped by drivers/tests.
    Marker = 12,
    /// The placement store accepted an optimistic commit for the
    /// request, reserving its residual capacity. `a` = window, `b` =
    /// retry round (0 = first attempt).
    Committed = 13,
    /// The placement store bounced an optimistic commit (another
    /// scheduler shard took the capacity first, or it never fit).
    /// `a` = window, `b` = retry round of the bounced attempt.
    Conflicted = 14,
    /// One rejected try_commit attempt, attributed to the first server
    /// whose residual could not absorb the proposal. `a` = server,
    /// `b` = the conflict-reason tag (0 stale, 1 capacity). Emitted
    /// alongside [`FlightKind::Conflicted`] so timelines show *where*
    /// a bounced request hit contention, and the profiler can build
    /// per-server hotspot tables.
    CommitAttempt = 15,
}

impl FlightKind {
    /// All kinds, for iteration in tests and exporters.
    pub const ALL: [FlightKind; 16] = [
        FlightKind::Generated,
        FlightKind::Arrived,
        FlightKind::Admitted,
        FlightKind::Rejected,
        FlightKind::Placed,
        FlightKind::Migrated,
        FlightKind::Departed,
        FlightKind::SlaViolated,
        FlightKind::ServerFailed,
        FlightKind::ServerRepaired,
        FlightKind::WindowClosed,
        FlightKind::Violation,
        FlightKind::Marker,
        FlightKind::Committed,
        FlightKind::Conflicted,
        FlightKind::CommitAttempt,
    ];

    /// Stable lower-case name used in JSONL dumps.
    pub fn name(self) -> &'static str {
        match self {
            FlightKind::Generated => "generated",
            FlightKind::Arrived => "arrived",
            FlightKind::Admitted => "admitted",
            FlightKind::Rejected => "rejected",
            FlightKind::Placed => "placed",
            FlightKind::Migrated => "migrated",
            FlightKind::Departed => "departed",
            FlightKind::SlaViolated => "sla_violated",
            FlightKind::ServerFailed => "server_failed",
            FlightKind::ServerRepaired => "server_repaired",
            FlightKind::WindowClosed => "window_closed",
            FlightKind::Violation => "violation",
            FlightKind::Marker => "marker",
            FlightKind::Committed => "committed",
            FlightKind::Conflicted => "conflicted",
            FlightKind::CommitAttempt => "commit_attempt",
        }
    }

    /// Inverse of [`FlightKind::name`].
    pub fn from_name(s: &str) -> Option<FlightKind> {
        FlightKind::ALL.into_iter().find(|k| k.name() == s)
    }

    /// Inverse of the on-ring `as u64` encoding.
    pub fn from_tag(tag: u64) -> Option<FlightKind> {
        FlightKind::ALL.into_iter().find(|&k| k as u64 == tag)
    }
}

/// One recorded event, as read back out of the ring.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FlightEvent {
    /// Global record ordinal (total order across threads).
    pub ticket: u64,
    /// Wall-clock microseconds since the registry epoch.
    pub ts_us: u64,
    /// What happened.
    pub kind: FlightKind,
    /// Request correlation uid, or [`NONE`].
    pub key: u64,
    /// Tenant id, or [`NONE`].
    pub tenant: u64,
    /// Kind-specific payload word.
    pub a: u64,
    /// Kind-specific payload word.
    pub b: u64,
}

/// Everything retrievable from the ring at one instant.
#[derive(Clone, Debug, Default)]
pub struct FlightSnapshot {
    /// Surviving events in ticket order (oldest first).
    pub events: Vec<FlightEvent>,
    /// Total events ever recorded (tickets issued).
    pub recorded: u64,
    /// Events no longer retrievable (overwritten or mid-write).
    pub overwritten: u64,
}

struct Slot {
    seq: AtomicU64,
    words: [AtomicU64; 6],
}

struct Ring {
    slots: Box<[Slot]>,
    cursor: AtomicU64,
}

impl Ring {
    fn new(capacity: usize) -> Self {
        assert!(capacity.is_power_of_two());
        let slots = (0..capacity)
            .map(|_| Slot {
                seq: AtomicU64::new(0),
                words: Default::default(),
            })
            .collect();
        Self {
            slots,
            cursor: AtomicU64::new(0),
        }
    }

    fn write(&self, words: [u64; 6]) {
        let cap = self.slots.len() as u64;
        let ticket = self.cursor.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(ticket & (cap - 1)) as usize];
        // The slot is free once the writer one lap behind has released it
        // (seq == 2·(ticket − cap) + 2), or immediately on the first lap
        // (seq == 0). Spin until then — laps are CAPACITY tickets apart,
        // so contention here means the ring wrapped during one write.
        let expected = if ticket < cap {
            0
        } else {
            2 * (ticket - cap) + 2
        };
        while slot
            .seq
            .compare_exchange_weak(
                expected,
                2 * ticket + 1,
                Ordering::Acquire,
                Ordering::Relaxed,
            )
            .is_err()
        {
            std::hint::spin_loop();
        }
        for (cell, w) in slot.words.iter().zip(words) {
            cell.store(w, Ordering::Relaxed);
        }
        slot.seq.store(2 * ticket + 2, Ordering::Release);
    }

    fn snapshot(&self) -> FlightSnapshot {
        const RETRIES: usize = 64;
        let recorded = self.cursor.load(Ordering::Acquire);
        let mut events = Vec::with_capacity(self.slots.len().min(recorded as usize));
        for slot in self.slots.iter() {
            for _ in 0..RETRIES {
                let s1 = slot.seq.load(Ordering::Acquire);
                if s1 == 0 {
                    break; // never written
                }
                if s1 & 1 == 1 {
                    std::hint::spin_loop();
                    continue; // write in progress
                }
                let mut w = [0u64; 6];
                for (dst, cell) in w.iter_mut().zip(&slot.words) {
                    *dst = cell.load(Ordering::Relaxed);
                }
                fence(Ordering::Acquire);
                if slot.seq.load(Ordering::Relaxed) != s1 {
                    continue; // overwritten underneath us; retry
                }
                let ticket = (s1 - 2) / 2;
                if let Some(kind) = FlightKind::from_tag(w[1]) {
                    events.push(FlightEvent {
                        ticket,
                        ts_us: w[0],
                        kind,
                        key: w[2],
                        tenant: w[3],
                        a: w[4],
                        b: w[5],
                    });
                }
                break;
            }
        }
        events.sort_unstable_by_key(|e| e.ticket);
        let overwritten = recorded.saturating_sub(events.len() as u64);
        FlightSnapshot {
            events,
            recorded,
            overwritten,
        }
    }
}

/// Lives outside the `OnceLock` so the disabled fast path touches
/// nothing else.
static ENABLED: AtomicBool = AtomicBool::new(false);
static STRICT: AtomicBool = AtomicBool::new(false);
static RING: OnceLock<Ring> = OnceLock::new();
static ENV_STRICT: OnceLock<bool> = OnceLock::new();

fn ring() -> &'static Ring {
    RING.get_or_init(|| Ring::new(CAPACITY))
}

/// Turns the recorder on (allocating the ring on first use). Idempotent.
pub fn enable() {
    ring();
    crate::now_us(); // pin the shared epoch so timestamps correlate
    ENABLED.store(true, Ordering::Release);
}

/// Turns the recorder off. Recorded events are kept until [`reset`].
pub fn disable() {
    ENABLED.store(false, Ordering::Release);
}

/// Whether the recorder is currently recording.
#[inline]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Clears the ring. Not safe to race with concurrent [`record`] calls —
/// callers (tests, drivers) quiesce recording first.
pub fn reset() {
    if let Some(r) = RING.get() {
        for slot in r.slots.iter() {
            slot.seq.store(0, Ordering::Relaxed);
        }
        r.cursor.store(0, Ordering::Release);
    }
}

/// Arms fail-fast mode: the next invariant-monitor violation panics
/// (which also triggers the panic-hook dump). Also armed by setting the
/// `CPO_STRICT_MONITORS` environment variable to anything but `0`.
pub fn set_strict(on: bool) {
    STRICT.store(on, Ordering::Release);
}

/// Whether invariant monitors fail fast. Monitors only run while the
/// recorder is enabled, so strictness has no effect on untraced runs.
pub fn strict_monitors() -> bool {
    STRICT.load(Ordering::Relaxed)
        || *ENV_STRICT
            .get_or_init(|| std::env::var_os("CPO_STRICT_MONITORS").is_some_and(|v| v != "0"))
}

/// Records one event. When disabled this is two relaxed atomic loads and
/// no allocation; when enabled it is wait-free except under ring wrap.
///
/// Events are fanned out to every enabled consumer off one shared
/// timestamp: the ring (when the recorder is on) and the latency
/// profiler ([`crate::prof`], when profiling is on) see the same
/// microsecond, so ring timelines and profiled stage decompositions
/// agree exactly.
#[inline]
pub fn record(kind: FlightKind, key: u64, tenant: u64, a: u64, b: u64) {
    let ring_on = is_enabled();
    let prof_on = crate::prof::is_enabled();
    if !ring_on && !prof_on {
        return;
    }
    let ts = crate::now_us();
    if ring_on {
        ring().write([ts, kind as u64, key, tenant, a, b]);
    }
    if prof_on {
        crate::prof::observe(ts, kind, key, tenant, a, b);
    }
}

/// Drops a free-form [`FlightKind::Marker`] event.
pub fn marker(a: u64, b: u64) {
    record(FlightKind::Marker, NONE, NONE, a, b);
}

/// Copies the surviving ring contents out, oldest first.
pub fn snapshot() -> FlightSnapshot {
    match RING.get() {
        None => FlightSnapshot::default(),
        Some(r) => r.snapshot(),
    }
}

// --- JSONL dump / parse -------------------------------------------------

fn write_opt(v: u64, out: &mut String) {
    use std::fmt::Write as _;
    if v == NONE {
        out.push_str("null");
    } else {
        let _ = write!(out, "{v}");
    }
}

pub(crate) fn write_event_json(e: &FlightEvent, out: &mut String) {
    use std::fmt::Write as _;
    let _ = write!(
        out,
        "{{\"ticket\":{},\"ts_us\":{},\"kind\":\"{}\",\"key\":",
        e.ticket,
        e.ts_us,
        e.kind.name()
    );
    write_opt(e.key, out);
    out.push_str(",\"tenant\":");
    write_opt(e.tenant, out);
    let _ = write!(out, ",\"a\":{},\"b\":{}}}", e.a, e.b);
}

pub(crate) fn event_from_value(v: &crate::json::Value) -> Result<FlightEvent, String> {
    let field_u64 = |name: &str| -> Result<u64, String> {
        v.get(name)
            .and_then(crate::json::Value::as_u64)
            .ok_or_else(|| format!("missing numeric field {name}"))
    };
    let opt = |name: &str| -> Result<u64, String> {
        match v.get(name) {
            None | Some(crate::json::Value::Null) => Ok(NONE),
            Some(x) => x
                .as_u64()
                .ok_or_else(|| format!("field {name} is not numeric")),
        }
    };
    let kind_name = v
        .get("kind")
        .and_then(crate::json::Value::as_str)
        .ok_or("missing kind")?;
    let kind =
        FlightKind::from_name(kind_name).ok_or_else(|| format!("unknown kind {kind_name:?}"))?;
    Ok(FlightEvent {
        ticket: field_u64("ticket")?,
        ts_us: field_u64("ts_us")?,
        kind,
        key: opt("key")?,
        tenant: opt("tenant")?,
        a: field_u64("a")?,
        b: field_u64("b")?,
    })
}

/// Serialises a snapshot as JSON lines: a schema-version meta header,
/// then one event object per line in ticket order.
pub fn dump_json_lines(snap: &FlightSnapshot) -> String {
    let mut out = format!(
        "{{\"event\":\"meta\",\"schema\":\"cpo-flight\",\"schema_version\":{},\"recorded\":{},\"overwritten\":{}}}\n",
        FLIGHT_SCHEMA_VERSION, snap.recorded, snap.overwritten
    );
    for e in &snap.events {
        write_event_json(e, &mut out);
        out.push('\n');
    }
    out
}

/// Parses a [`dump_json_lines`] document back. Rejects unknown schema
/// versions; accepts a missing header (headerless fragments) for
/// forgiving hand-editing.
pub fn dump_from_json_lines(text: &str) -> Result<FlightSnapshot, String> {
    let mut snap = FlightSnapshot::default();
    let mut saw_header = false;
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let v = crate::json::parse(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        if v.get("event").and_then(crate::json::Value::as_str) == Some("meta") {
            let version = v
                .get("schema_version")
                .and_then(crate::json::Value::as_u64)
                .ok_or("meta line without schema_version")?;
            if version != FLIGHT_SCHEMA_VERSION {
                return Err(format!(
                    "unsupported flight schema version {version} (expected {FLIGHT_SCHEMA_VERSION})"
                ));
            }
            snap.recorded = v
                .get("recorded")
                .and_then(crate::json::Value::as_u64)
                .unwrap_or(0);
            snap.overwritten = v
                .get("overwritten")
                .and_then(crate::json::Value::as_u64)
                .unwrap_or(0);
            saw_header = true;
            continue;
        }
        snap.events
            .push(event_from_value(&v).map_err(|e| format!("line {}: {e}", lineno + 1))?);
    }
    if !saw_header {
        snap.recorded = snap.events.len() as u64;
    }
    snap.events.sort_unstable_by_key(|e| e.ticket);
    Ok(snap)
}

// --- panic hook ---------------------------------------------------------

static HOOK_INSTALLED: AtomicBool = AtomicBool::new(false);

/// Installs a panic hook that dumps the ring to
/// `<dir>/flight-panic.jsonl` before delegating to the previous hook.
/// Idempotent; the dump is skipped when the recorder is disabled or
/// empty, and any I/O error is swallowed (a panic hook must not panic).
pub fn install_panic_hook(dir: &std::path::Path) {
    if HOOK_INSTALLED.swap(true, Ordering::SeqCst) {
        return;
    }
    let dir = dir.to_path_buf();
    let previous = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        if is_enabled() {
            let snap = snapshot();
            if !snap.events.is_empty() {
                let _ = std::fs::create_dir_all(&dir);
                let path = dir.join("flight-panic.jsonl");
                if std::fs::write(&path, dump_json_lines(&snap)).is_ok() {
                    eprintln!(
                        "flight recorder dumped {} events to {}",
                        snap.events.len(),
                        path.display()
                    );
                }
            }
        }
        previous(info);
    }));
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// The ring is process-global; unit tests touching it serialise here.
    static LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_recorder_stores_nothing() {
        let _g = LOCK.lock().unwrap();
        disable();
        reset();
        record(FlightKind::Marker, 1, 2, 3, 4);
        assert_eq!(snapshot().events.len(), 0);
        assert_eq!(snapshot().recorded, 0);
    }

    #[test]
    fn events_come_back_in_ticket_order_with_payload() {
        let _g = LOCK.lock().unwrap();
        enable();
        reset();
        for i in 0..100u64 {
            record(FlightKind::Arrived, i, NONE, i * 10, i * 11);
        }
        let snap = snapshot();
        disable();
        reset();
        assert_eq!(snap.recorded, 100);
        assert_eq!(snap.overwritten, 0);
        assert_eq!(snap.events.len(), 100);
        for (i, e) in snap.events.iter().enumerate() {
            assert_eq!(e.ticket, i as u64);
            assert_eq!(e.key, i as u64);
            assert_eq!(e.a, i as u64 * 10);
            assert_eq!(e.b, i as u64 * 11);
            assert_eq!(e.kind, FlightKind::Arrived);
        }
    }

    #[test]
    fn ring_overwrites_oldest_beyond_capacity() {
        let _g = LOCK.lock().unwrap();
        enable();
        reset();
        let n = (CAPACITY + 1000) as u64;
        for i in 0..n {
            record(FlightKind::Marker, i, NONE, i, 0);
        }
        let snap = snapshot();
        disable();
        reset();
        assert_eq!(snap.recorded, n);
        assert_eq!(snap.events.len(), CAPACITY);
        assert_eq!(snap.overwritten, 1000);
        // The survivors are exactly the newest CAPACITY tickets.
        assert_eq!(snap.events.first().unwrap().ticket, 1000);
        assert_eq!(snap.events.last().unwrap().ticket, n - 1);
        for e in &snap.events {
            assert_eq!(e.key, e.ticket, "payload must match its ticket");
        }
    }

    #[test]
    fn kind_names_round_trip() {
        for k in FlightKind::ALL {
            assert_eq!(FlightKind::from_name(k.name()), Some(k));
            assert_eq!(FlightKind::from_tag(k as u64), Some(k));
        }
        assert_eq!(FlightKind::from_name("nope"), None);
        assert_eq!(FlightKind::from_tag(999), None);
    }

    #[test]
    fn dump_round_trips_including_none_fields() {
        let snap = FlightSnapshot {
            events: vec![
                FlightEvent {
                    ticket: 0,
                    ts_us: 5,
                    kind: FlightKind::Generated,
                    key: 7,
                    tenant: NONE,
                    a: 3,
                    b: 0,
                },
                FlightEvent {
                    ticket: 1,
                    ts_us: 9,
                    kind: FlightKind::Admitted,
                    key: 7,
                    tenant: 12,
                    a: 0,
                    b: 3,
                },
            ],
            recorded: 2,
            overwritten: 0,
        };
        let text = dump_json_lines(&snap);
        assert!(text.starts_with("{\"event\":\"meta\""));
        let back = dump_from_json_lines(&text).unwrap();
        assert_eq!(back.events, snap.events);
        assert_eq!(back.recorded, 2);
    }

    #[test]
    fn unknown_schema_version_is_rejected() {
        let text = "{\"event\":\"meta\",\"schema\":\"cpo-flight\",\"schema_version\":99}\n";
        assert!(dump_from_json_lines(text).unwrap_err().contains("99"));
    }

    #[test]
    fn strict_flag_toggles() {
        // Env var is absent in the test environment, so only the runtime
        // flag matters here.
        if std::env::var_os("CPO_STRICT_MONITORS").is_some() {
            return;
        }
        assert!(!strict_monitors());
        set_strict(true);
        assert!(strict_monitors());
        set_strict(false);
        assert!(!strict_monitors());
    }
}
