//! Span nesting must stay coherent when worker threads record in
//! parallel: depth is tracked per thread, so a rayon task's span is a
//! root (depth 0) on its own worker thread while spans opened inside it
//! nest below it, and events from different threads carry distinct tids.
//! Own binary: mutates the global registry.

use rayon::prelude::*;
use std::collections::BTreeMap;

#[test]
fn spans_nest_per_thread_under_rayon() {
    cpo_obs::enable();
    cpo_obs::reset();

    {
        let _root = cpo_obs::span!("exper.run", run = 0u64);
        let _results: Vec<u64> = (0..64u64)
            .collect::<Vec<_>>()
            .par_iter()
            .map(|&i| {
                let _outer = cpo_obs::span!("nsga3.generation", gen = i);
                {
                    let _inner = cpo_obs::span!("moea.hypervolume");
                    std::hint::black_box(i * i)
                }
            })
            .collect();
    }

    cpo_obs::disable();
    let snap = cpo_obs::snapshot();

    let gens: Vec<_> = snap
        .events
        .iter()
        .filter(|e| e.name == "nsga3.generation")
        .collect();
    let hvs: Vec<_> = snap
        .events
        .iter()
        .filter(|e| e.name == "moea.hypervolume")
        .collect();
    assert_eq!(gens.len(), 64);
    assert_eq!(hvs.len(), 64);

    // Per-thread nesting: every hypervolume span sits exactly one level
    // below the generation span of the same thread.
    let mut gen_depth_by_tid: BTreeMap<u64, u32> = BTreeMap::new();
    for g in &gens {
        gen_depth_by_tid.insert(g.tid, g.depth);
    }
    for hv in &hvs {
        let gen_depth = gen_depth_by_tid[&hv.tid];
        assert_eq!(
            hv.depth,
            gen_depth + 1,
            "hypervolume span on tid {} must nest under its generation span",
            hv.tid
        );
    }

    // Spans record on drop, so the inner span's window lies within the
    // outer one on the same thread.
    for hv in &hvs {
        let owner = gens.iter().any(|g| {
            g.tid == hv.tid && g.ts_us <= hv.ts_us && hv.ts_us + hv.dur_us <= g.ts_us + g.dur_us
        });
        assert!(owner, "hypervolume span not contained in any generation");
    }

    // The root span on the calling thread is depth 0 and closed last.
    let root = snap
        .events
        .iter()
        .find(|e| e.name == "exper.run")
        .expect("root span recorded");
    assert_eq!(root.depth, 0);

    cpo_obs::reset();
}
