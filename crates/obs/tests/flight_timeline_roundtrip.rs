//! Property tests: the flight-dump JSONL codec and the timeline JSONL
//! codec must both round-trip arbitrary event streams exactly — the
//! post-mortem path (`dump → parse → reconstruct`) sees precisely what
//! the in-process path (`snapshot → reconstruct`) saw.

use cpo_obs::flight::{
    dump_from_json_lines, dump_json_lines, FlightEvent, FlightKind, FlightSnapshot, NONE,
};
use cpo_obs::timeline::{reconstruct, timelines_from_json_lines, timelines_json_lines};
use proptest::prelude::*;

/// A random event stream with ascending tickets. Keys and tenants land
/// in a small range (realistic collisions) or the `NONE` sentinel; the
/// payload words cover the full u64 range including values beyond f64's
/// integer precision, which the codec must keep exact.
fn arb_events() -> impl Strategy<Value = Vec<FlightEvent>> {
    collection::vec(
        (
            0usize..FlightKind::ALL.len(),
            0u64..40,
            0u64..40,
            0u64..u64::MAX,
            0u64..u64::MAX,
            0u64..u64::MAX,
        ),
        0..60,
    )
    .prop_map(|rows| {
        rows.into_iter()
            .enumerate()
            .map(|(i, (ki, key, tenant, a, b, ts_us))| FlightEvent {
                ticket: i as u64,
                ts_us,
                kind: FlightKind::ALL[ki],
                key: if key >= 30 { NONE } else { key },
                tenant: if tenant >= 30 { NONE } else { tenant },
                a,
                b,
            })
            .collect()
    })
}

proptest! {
    #[test]
    fn dump_roundtrips_exactly(events in arb_events()) {
        let snap = FlightSnapshot {
            recorded: events.len() as u64 + 3,
            overwritten: 3,
            events,
        };
        let text = dump_json_lines(&snap);
        let back = dump_from_json_lines(&text).expect("own dump must parse");
        prop_assert_eq!(back.events, snap.events);
        prop_assert_eq!(back.recorded, snap.recorded);
        prop_assert_eq!(back.overwritten, snap.overwritten);
    }

    #[test]
    fn timelines_roundtrip_exactly(events in arb_events()) {
        let set = reconstruct(&events);
        let text = timelines_json_lines(&set);
        let back = timelines_from_json_lines(&text).expect("own dump must parse");
        prop_assert_eq!(back.timelines, set.timelines);
    }

    #[test]
    fn reconstruction_commutes_with_the_dump(events in arb_events()) {
        // snapshot → dump → parse → reconstruct == snapshot → reconstruct
        let snap = FlightSnapshot {
            recorded: events.len() as u64,
            overwritten: 0,
            events,
        };
        let direct = reconstruct(&snap.events);
        let parsed = dump_from_json_lines(&dump_json_lines(&snap)).unwrap();
        let via_dump = reconstruct(&parsed.events);
        prop_assert_eq!(direct.timelines, via_dump.timelines);
        prop_assert_eq!(direct.orphans, via_dump.orphans);
    }
}

#[test]
fn headerless_dump_is_accepted() {
    let text = "{\"ticket\":0,\"ts_us\":5,\"kind\":\"generated\",\"key\":1,\"tenant\":null,\"a\":2,\"b\":0}\n";
    let snap = dump_from_json_lines(text).unwrap();
    assert_eq!(snap.events.len(), 1);
    assert_eq!(snap.events[0].kind, FlightKind::Generated);
    assert_eq!(snap.events[0].tenant, NONE);
}

#[test]
fn future_schema_versions_are_rejected() {
    let text = "{\"event\":\"meta\",\"schema\":\"cpo-flight\",\"schema_version\":999,\"recorded\":0,\"overwritten\":0}\n";
    assert!(dump_from_json_lines(text).is_err());
}
