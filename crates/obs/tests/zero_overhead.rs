//! Disabled-mode instrumentation must not allocate: the whole point of
//! compiling cpo-obs into every hot path is that it costs one relaxed
//! atomic load until someone calls `enable()`. This test installs a
//! counting global allocator and asserts the disabled paths perform
//! zero heap allocations. It lives in its own integration-test binary
//! so the allocator hook and the never-enabled registry can't interfere
//! with other tests.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn allocations_during(f: impl FnOnce()) -> u64 {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    f();
    ALLOCATIONS.load(Ordering::Relaxed) - before
}

#[test]
fn disabled_instrumentation_never_allocates() {
    assert!(!cpo_obs::is_enabled(), "registry must start disabled");

    let spans = allocations_during(|| {
        for g in 0..1_000u64 {
            let mut sp = cpo_obs::span!("nsga3.generation", gen = g);
            sp.field("feasible", 12u64).field("algo", "nsga3/tabu");
        }
    });
    assert_eq!(spans, 0, "disabled spans allocated {spans} times");

    let counters = allocations_during(|| {
        for _ in 0..1_000 {
            cpo_obs::counter_add("cp.propagations", 17);
        }
    });
    assert_eq!(counters, 0, "disabled counters allocated {counters} times");

    let gauges = allocations_during(|| {
        for _ in 0..1_000 {
            cpo_obs::gauge_set("des.queue_depth", 4.0);
        }
    });
    assert_eq!(gauges, 0, "disabled gauges allocated {gauges} times");

    let histograms = allocations_during(|| {
        for v in 0..1_000u64 {
            cpo_obs::record_value("platform.solve_ns", v * 1024);
        }
    });
    assert_eq!(
        histograms, 0,
        "disabled histograms allocated {histograms} times"
    );
}
