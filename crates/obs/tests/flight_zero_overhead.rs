//! The always-on flight recorder must be free until enabled: one relaxed
//! atomic load per `record()` call and zero heap allocations. Same
//! counting-allocator technique as `zero_overhead.rs`, in its own test
//! binary so the never-enabled recorder can't be flipped on by another
//! test in the same process.

use cpo_obs::flight::{self, FlightKind};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn allocations_during(f: impl FnOnce()) -> u64 {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    f();
    ALLOCATIONS.load(Ordering::Relaxed) - before
}

#[test]
fn disabled_recorder_never_allocates() {
    assert!(!flight::is_enabled(), "recorder must start disabled");

    let records = allocations_during(|| {
        for i in 0..100_000u64 {
            flight::record(FlightKind::Placed, i, i, i % 64, i % 7);
        }
    });
    assert_eq!(records, 0, "disabled record() allocated {records} times");

    let markers = allocations_during(|| {
        for i in 0..10_000u64 {
            flight::marker(i, 0);
        }
    });
    assert_eq!(markers, 0, "disabled marker() allocated {markers} times");

    // Nothing was recorded either.
    assert_eq!(flight::snapshot().recorded, 0);
}
