//! Concurrent writers must never produce torn events: the seqlock slots
//! either deliver all six words of one `record()` call or drop the slot
//! from the snapshot. Each recorded payload carries an arithmetic
//! relation between its words; any mixed-up slot breaks it. Runs in its
//! own test binary because the enabled recorder is process-global.

use cpo_obs::flight::{self, FlightKind, CAPACITY};
use rayon::prelude::*;

/// Payload relation: every event written by the hammer satisfies
/// `a == key * 10 + 1` and `b == key * 10 + 2`. A torn read mixing words
/// from two different writes violates at least one equation.
fn hammer(events_per_thread: u64, threads: u64) {
    let writers: Vec<u64> = (0..threads).collect();
    let _: Vec<()> = writers
        .par_iter()
        .map(|&t| {
            for i in 0..events_per_thread {
                let key = t * events_per_thread + i;
                flight::record(FlightKind::Marker, key, key, key * 10 + 1, key * 10 + 2);
            }
        })
        .collect();
}

#[test]
fn concurrent_writes_are_never_torn() {
    flight::enable();
    flight::reset();

    // Phase 1: fewer events than capacity — everything survives.
    let threads = 8u64;
    let per_thread = (CAPACITY as u64 / threads) / 2;
    hammer(per_thread, threads);
    let snap = flight::snapshot();
    assert_eq!(snap.recorded, per_thread * threads);
    assert_eq!(snap.events.len() as u64, snap.recorded);
    assert_eq!(snap.overwritten, 0);
    let mut seen = vec![false; (per_thread * threads) as usize];
    let mut last_ticket = None;
    for e in &snap.events {
        assert_eq!(e.a, e.key * 10 + 1, "torn event: {e:?}");
        assert_eq!(e.b, e.key * 10 + 2, "torn event: {e:?}");
        assert_eq!(e.tenant, e.key, "torn event: {e:?}");
        assert!(!seen[e.key as usize], "key {} delivered twice", e.key);
        seen[e.key as usize] = true;
        if let Some(last) = last_ticket {
            assert!(e.ticket > last, "tickets must be strictly increasing");
        }
        last_ticket = Some(e.ticket);
    }
    assert!(seen.iter().all(|&s| s), "every write must be retrievable");

    // Phase 2: overflow the ring — oldest events are overwritten, the
    // survivors still honour the payload relation and total order.
    flight::reset();
    let per_thread = (CAPACITY as u64 / threads) * 3;
    hammer(per_thread, threads);
    let snap = flight::snapshot();
    assert_eq!(snap.recorded, per_thread * threads);
    assert!(
        snap.overwritten >= snap.recorded - CAPACITY as u64,
        "a full ring keeps at most CAPACITY events"
    );
    assert!(
        !snap.events.is_empty() && snap.events.len() <= CAPACITY,
        "snapshot size {} out of range",
        snap.events.len()
    );
    let mut last_ticket = None;
    for e in &snap.events {
        assert_eq!(e.a, e.key * 10 + 1, "torn event after wrap: {e:?}");
        assert_eq!(e.b, e.key * 10 + 2, "torn event after wrap: {e:?}");
        if let Some(last) = last_ticket {
            assert!(e.ticket > last, "tickets must stay ordered after wrap");
        }
        last_ticket = Some(e.ticket);
    }
    flight::disable();
}
