//! Property test: any trace event the registry can produce survives a
//! JSONL write/read round trip bit-for-bit — including u64 timestamps
//! too large for f64, negative and float fields, and names/strings
//! containing every escape class the writer knows about.

use cpo_obs::{FieldValue, TraceEvent, TraceKind};
use proptest::prelude::*;

/// Characters that exercise the JSON escaping paths: quotes,
/// backslashes, control characters, multi-byte UTF-8.
const CHARS: &[char] = &[
    'a', 'z', '0', '.', '_', '/', ' ', ':', '{', '}', '[', ']', ',', '"', '\\', '\n', '\t', '\r',
    '\u{1}', '\u{1f}', '中', 'é', '😀',
];

fn arb_text() -> impl Strategy<Value = String> {
    collection::vec(0usize..CHARS.len(), 0..12).prop_map(|idxs| {
        let mut s = String::from("n"); // names are non-empty in practice
        s.extend(idxs.into_iter().map(|i| CHARS[i]));
        s
    })
}

fn arb_field_value() -> impl Strategy<Value = FieldValue> {
    (
        0u8..5,
        0u64..u64::MAX,
        i64::MIN..i64::MAX,
        -1.0e12_f64..1.0e12,
        arb_text(),
    )
        .prop_map(|(tag, u, i, f, s)| match tag {
            0 => FieldValue::U64(u),
            1 => FieldValue::from(i), // normalised: negative → I64
            2 => FieldValue::F64(f),
            3 => FieldValue::Str(s),
            _ => FieldValue::Bool(u % 2 == 0),
        })
}

fn arb_event() -> impl Strategy<Value = TraceEvent> {
    (
        (0u8..3, arb_text(), 0u64..u64::MAX, 0u64..u64::MAX),
        (
            0u64..64,
            0u32..8,
            collection::vec((arb_text(), arb_field_value()), 0..4),
            -1.0e12_f64..1.0e12,
        ),
    )
        .prop_map(|((kind, name, ts_us, dur), (tid, depth, fields, value))| {
            let kind = match kind {
                0 => TraceKind::Span,
                1 => TraceKind::Counter,
                _ => TraceKind::Gauge,
            };
            TraceEvent {
                kind,
                name,
                ts_us,
                // The writer only emits dur_us for spans and value for
                // counters/gauges — mirror what the registry produces.
                dur_us: if kind == TraceKind::Span { dur } else { 0 },
                value: if kind == TraceKind::Span {
                    None
                } else {
                    Some(value)
                },
                tid,
                depth,
                fields,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn jsonl_round_trip_is_lossless(events in collection::vec(arb_event(), 0..20)) {
        let text = cpo_obs::events_to_json_lines(&events);
        let back = cpo_obs::events_from_json_lines(&text)
            .map_err(proptest::test_runner::TestCaseError::fail)?;
        prop_assert_eq!(back, events);
    }

    #[test]
    fn second_serialisation_is_identical(events in collection::vec(arb_event(), 0..10)) {
        let text = cpo_obs::events_to_json_lines(&events);
        let back = cpo_obs::events_from_json_lines(&text)
            .map_err(proptest::test_runner::TestCaseError::fail)?;
        prop_assert_eq!(cpo_obs::events_to_json_lines(&back), text);
    }
}
