//! Property tests for the log-linear histogram: quantiles are monotone
//! non-decreasing in q, and every quantile lands inside the observed
//! value range — regardless of where samples fall relative to bucket
//! boundaries.

use cpo_obs::Histogram;
use proptest::collection::vec;
use proptest::prelude::*;

proptest! {
    #[test]
    fn quantiles_are_monotone_in_q(
        values in vec(0u64..u64::MAX, 1..200),
        mut qs in vec(0.0f64..=1.0, 2..12),
    ) {
        let mut h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        qs.sort_by(f64::total_cmp);
        let quantiles: Vec<u64> = qs.iter().map(|&q| h.quantile(q)).collect();
        for w in quantiles.windows(2) {
            prop_assert!(
                w[0] <= w[1],
                "quantiles must be monotone in q: {quantiles:?} at {qs:?}"
            );
        }
        let lo = *values.iter().min().unwrap();
        let hi = *values.iter().max().unwrap();
        for (&q, &v) in qs.iter().zip(&quantiles) {
            prop_assert!(
                (lo..=hi).contains(&v),
                "quantile(q={q}) = {v} outside observed range [{lo}, {hi}]"
            );
        }
    }

    #[test]
    fn quantile_approximates_the_exact_order_statistic(
        values in vec(0u64..1_000_000, 1..100),
        q in 0.0f64..=1.0,
    ) {
        // Nearest-rank over buckets must stay within one sub-bucket
        // (<= 1/16 relative error) of the true order statistic.
        let mut h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        let exact = sorted[rank - 1];
        let got = h.quantile(q);
        let band = exact / 16 + 1;
        prop_assert!(
            got >= exact.saturating_sub(band) && got <= exact + band,
            "quantile(q={q}) = {got} vs exact {exact} (band {band})"
        );
    }
}
