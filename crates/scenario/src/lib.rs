//! # cpo-scenario — random evaluation scenarios
//!
//! The paper evaluates on scenarios that are "randomly generated with
//! parameter configurations that reflect typical infrastructures sizes and
//! cloud provider practices", averaged over 100 runs, at sizes up to 800
//! servers and 1600 VMs. The exact distributions are unpublished, so this
//! crate makes every knob explicit and documents the defaults:
//!
//! * [`flavors`] — an EC2-like VM flavour catalogue, skewed to small
//!   instances;
//! * [`infra_gen`] — heterogeneous hosts (3 hardware classes) in
//!   spine-leaf datacenters, with jittered costs and QoS envelopes;
//! * [`request_gen`] — multi-VM requests with affinity/anti-affinity rules
//!   drawn per configurable probabilities (contradictory pairs excluded);
//! * [`arrival_gen`] — continuous-time open-loop arrival processes: one
//!   request per Poisson arrival with a real-valued holding time;
//! * [`presets`] — the "few resources" (Fig. 7), "many resources"
//!   (Fig. 8) and quality (Figs. 9–11) sweeps.
//!
//! Everything is deterministic under an explicit seed.
//!
//! ```
//! use cpo_scenario::prelude::*;
//!
//! let size = ScenarioSize::with_servers(20);
//! let problem = ScenarioSpec::for_size(&size).generate(42);
//! assert_eq!(problem.m(), 20);
//! assert_eq!(problem.n(), 40);
//! ```

#![warn(missing_docs)]

pub mod arrival_gen;
pub mod flavors;
pub mod infra_gen;
pub mod io;
pub mod presets;
pub mod request_gen;

/// The most-used scenario types.
pub mod prelude {
    pub use crate::arrival_gen::{generate_single_request, ArrivalSpec};
    pub use crate::flavors::{default_catalog, flavor_revenue, Flavor, VmCostParams};
    pub use crate::infra_gen::{generate_infra, GeneratedInfra, HostClass, InfraSpec};
    pub use crate::io::ScenarioFile;
    pub use crate::presets::{
        few_resources_sweep, many_resources_sweep, quality_sweep, ScenarioSize, ScenarioSpec,
    };
    pub use crate::request_gen::{generate_requests, RequestSpec};
}
