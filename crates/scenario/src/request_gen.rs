//! Random consumer request batches: multi-VM requests carrying
//! affinity/anti-affinity rules with configurable probabilities.

use crate::flavors::{default_catalog, sample, vm_from_flavor, Flavor, VmCostParams};
use cpo_model::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Request generation parameters.
#[derive(Clone, Debug)]
pub struct RequestSpec {
    /// Total number of virtual resources `n` to generate (requests are
    /// drawn until the budget is filled; the last request may be smaller).
    pub total_vms: usize,
    /// Request size range `[lo, hi]` (VMs per request).
    pub request_size: (usize, usize),
    /// Probability that a multi-VM request carries a rule of each kind
    /// (independent draws; at most one rule per kind per request).
    pub p_same_server: f64,
    /// Probability of a same-datacenter rule.
    pub p_same_datacenter: f64,
    /// Probability of a different-server rule.
    pub p_different_server: f64,
    /// Probability of a different-datacenter rule.
    pub p_different_datacenter: f64,
    /// Cost parameter ranges.
    pub costs: VmCostParams,
    /// Uniform multiplier applied to every generated demand vector — the
    /// utilisation knob of the sweeps (1.0 = the light default mix).
    pub demand_scale: f64,
}

impl Default for RequestSpec {
    fn default() -> Self {
        Self {
            total_vms: 40,
            request_size: (1, 4),
            p_same_server: 0.10,
            p_same_datacenter: 0.15,
            p_different_server: 0.20,
            p_different_datacenter: 0.05,
            costs: VmCostParams::default(),
            demand_scale: 1.0,
        }
    }
}

impl RequestSpec {
    /// A spec with all affinity probabilities zeroed (pure bin packing).
    pub fn without_affinity(mut self) -> Self {
        self.p_same_server = 0.0;
        self.p_same_datacenter = 0.0;
        self.p_different_server = 0.0;
        self.p_different_datacenter = 0.0;
        self
    }
}

/// Rules that can coexist in one request without being contradictory:
/// `SameServer` conflicts with `DifferentServer` and with
/// `DifferentDatacenter`; `SameDatacenter` conflicts with
/// `DifferentDatacenter`. This mirrors what a real API would reject.
fn compatible(kind: AffinityKind, chosen: &[AffinityKind]) -> bool {
    use AffinityKind::*;
    chosen.iter().all(|&c| {
        !matches!(
            (kind, c),
            (SameServer, DifferentServer)
                | (DifferentServer, SameServer)
                | (SameServer, DifferentDatacenter)
                | (DifferentDatacenter, SameServer)
                | (SameDatacenter, DifferentDatacenter)
                | (DifferentDatacenter, SameDatacenter)
        )
    })
}

/// Generates a request batch deterministically under `seed`.
pub fn generate_requests(spec: &RequestSpec, seed: u64) -> RequestBatch {
    generate_requests_with_catalog(spec, &default_catalog(), seed)
}

/// As [`generate_requests`] with a custom flavour catalogue.
pub fn generate_requests_with_catalog(
    spec: &RequestSpec,
    catalog: &[Flavor],
    seed: u64,
) -> RequestBatch {
    assert!(spec.request_size.0 >= 1 && spec.request_size.0 <= spec.request_size.1);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut batch = RequestBatch::new();
    let mut produced = 0usize;
    while produced < spec.total_vms {
        let size = rng
            .gen_range(spec.request_size.0..=spec.request_size.1)
            .min(spec.total_vms - produced);
        let vms: Vec<VmSpec> = (0..size)
            .map(|_| {
                let f = sample(catalog, &mut rng);
                let mut vm = vm_from_flavor(f, &spec.costs, &mut rng);
                for d in &mut vm.demand {
                    *d *= spec.demand_scale;
                }
                // A scaled VM sells proportionally more resources.
                vm.revenue *= spec.demand_scale;
                vm
            })
            .collect();
        let first_vm = produced;
        let vm_ids: Vec<VmId> = (first_vm..first_vm + size).map(VmId).collect();
        let mut rules = Vec::new();
        if size >= 2 {
            let mut chosen: Vec<AffinityKind> = Vec::new();
            for (kind, p) in [
                (AffinityKind::SameServer, spec.p_same_server),
                (AffinityKind::SameDatacenter, spec.p_same_datacenter),
                (AffinityKind::DifferentServer, spec.p_different_server),
                (
                    AffinityKind::DifferentDatacenter,
                    spec.p_different_datacenter,
                ),
            ] {
                if rng.gen::<f64>() < p && compatible(kind, &chosen) {
                    chosen.push(kind);
                    rules.push(AffinityRule::new(kind, vm_ids.clone()));
                }
            }
        }
        batch.push_request(vms, rules);
        produced += size;
    }
    batch
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_has_exact_vm_budget() {
        let spec = RequestSpec {
            total_vms: 57,
            ..Default::default()
        };
        let b = generate_requests(&spec, 9);
        assert_eq!(b.vm_count(), 57);
        assert!(b.request_count() >= 57 / 4);
        assert!(b.validate(3).is_ok());
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = RequestSpec::default();
        let a = generate_requests(&spec, 4);
        let b = generate_requests(&spec, 4);
        assert_eq!(a.vm_count(), b.vm_count());
        for (x, y) in a.vms().iter().zip(b.vms()) {
            assert_eq!(x, y);
        }
    }

    #[test]
    fn rules_reference_only_own_vms() {
        let spec = RequestSpec {
            total_vms: 100,
            p_same_server: 0.5,
            p_different_server: 0.5,
            ..Default::default()
        };
        let b = generate_requests(&spec, 17);
        for req in b.requests() {
            for rule in &req.rules {
                for vm in rule.vms() {
                    assert!(req.vms.contains(vm));
                }
            }
        }
    }

    #[test]
    fn no_contradictory_rule_pairs() {
        let spec = RequestSpec {
            total_vms: 400,
            request_size: (2, 5),
            p_same_server: 0.9,
            p_same_datacenter: 0.9,
            p_different_server: 0.9,
            p_different_datacenter: 0.9,
            ..Default::default()
        };
        let b = generate_requests(&spec, 23);
        use AffinityKind::*;
        for req in b.requests() {
            let kinds: Vec<_> = req.rules.iter().map(|r| r.kind()).collect();
            let has = |k: AffinityKind| kinds.contains(&k);
            assert!(!(has(SameServer) && has(DifferentServer)), "{kinds:?}");
            assert!(!(has(SameServer) && has(DifferentDatacenter)), "{kinds:?}");
            assert!(
                !(has(SameDatacenter) && has(DifferentDatacenter)),
                "{kinds:?}"
            );
        }
    }

    #[test]
    fn without_affinity_produces_no_rules() {
        let spec = RequestSpec {
            total_vms: 60,
            ..Default::default()
        }
        .without_affinity();
        let b = generate_requests(&spec, 2);
        assert!(b.requests().iter().all(|r| r.rules.is_empty()));
    }

    #[test]
    fn singleton_requests_never_carry_rules() {
        let spec = RequestSpec {
            total_vms: 30,
            request_size: (1, 1),
            p_same_server: 1.0,
            p_different_server: 1.0,
            ..Default::default()
        };
        let b = generate_requests(&spec, 5);
        assert_eq!(b.request_count(), 30);
        assert!(b.requests().iter().all(|r| r.rules.is_empty()));
    }

    #[test]
    fn affinity_probabilities_bite() {
        let spec = RequestSpec {
            total_vms: 600,
            request_size: (2, 4),
            p_same_server: 0.0,
            p_same_datacenter: 0.0,
            p_different_server: 1.0,
            p_different_datacenter: 0.0,
            ..Default::default()
        };
        let b = generate_requests(&spec, 8);
        // The final request may shrink to one VM when the budget runs out;
        // every *multi-VM* request must carry the p=1 rule.
        for req in b.requests() {
            if req.vms.len() >= 2 {
                assert!(
                    !req.rules.is_empty(),
                    "multi-VM request without the p=1 rule"
                );
            } else {
                assert!(req.rules.is_empty());
            }
        }
    }
}
