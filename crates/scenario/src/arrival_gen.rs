//! Continuous-time arrival specifications.
//!
//! The fixed-step simulator consumes one [`RequestSpec`] batch per window;
//! a continuous-time driver instead needs *individual* requests with
//! real-valued arrival times and holding times. [`ArrivalSpec`] describes
//! such an open-loop arrival process: Poisson arrivals at `rate` requests
//! per unit sim-time, each request shaped by the same [`RequestSpec`]
//! template the batch generator uses (its `total_vms` budget is ignored),
//! holding the platform for a uniform `lifetime` draw.
//!
//! Generation is deterministic: the `i`-th arrival of a given seed is
//! always the same request, independent of how the driver interleaves
//! other event sources.

use crate::request_gen::{generate_requests, RequestSpec};
use cpo_model::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// An open-loop continuous-time arrival process.
#[derive(Clone, Debug)]
pub struct ArrivalSpec {
    /// Mean request arrivals per unit sim-time (Poisson intensity λ).
    pub rate: f64,
    /// Shape of each individual request — sizes, rules, costs, demand
    /// scale. `total_vms` is ignored: each arrival is exactly one request.
    pub request: RequestSpec,
    /// Tenant holding-time range in sim-time units, inclusive (uniform).
    pub lifetime: (f64, f64),
}

impl Default for ArrivalSpec {
    fn default() -> Self {
        Self {
            rate: 1.0,
            request: RequestSpec::default(),
            lifetime: (3.0, 8.0),
        }
    }
}

impl ArrivalSpec {
    /// Draws the `i`-th request of stream `seed` — a single-request batch.
    /// Deterministic in `(seed, i)`. The arrival index `i` doubles as the
    /// request's flight-recorder correlation key: a `generated` event is
    /// dropped into the recorder (no-op when it is disabled), the first
    /// link of the per-request lifecycle timeline.
    pub fn request_at(&self, seed: u64, i: u64) -> RequestBatch {
        let batch = generate_single_request(&self.request, arrival_seed(seed, i));
        cpo_obs::flight::record(
            cpo_obs::flight::FlightKind::Generated,
            i,
            cpo_obs::flight::NONE,
            batch.vm_count() as u64,
            0,
        );
        batch
    }

    /// Draws the `i`-th holding time of stream `seed`.
    pub fn lifetime_at(&self, seed: u64, i: u64) -> f64 {
        let (lo, hi) = self.lifetime;
        assert!(lo <= hi && lo >= 0.0, "invalid lifetime range");
        let mut rng = SmallRng::seed_from_u64(arrival_seed(seed, i) ^ 0x5bd1_e995_97f4_a7c5);
        rng.gen_range(lo..=hi)
    }
}

/// Per-arrival sub-seed: decorrelates consecutive arrivals of one stream.
fn arrival_seed(seed: u64, i: u64) -> u64 {
    seed ^ i.wrapping_mul(0x9e37_79b9_7f4a_7c15).rotate_left(17)
}

/// Generates exactly one request from the template: the size is drawn
/// from `spec.request_size`, then the batch generator runs with a budget
/// of exactly that size. Deterministic under `seed`.
pub fn generate_single_request(spec: &RequestSpec, seed: u64) -> RequestBatch {
    let mut rng = SmallRng::seed_from_u64(seed);
    let size = rng.gen_range(spec.request_size.0..=spec.request_size.1);
    let one = RequestSpec {
        total_vms: size,
        request_size: (size, size),
        ..spec.clone()
    };
    let batch = generate_requests(&one, seed ^ 0xa5a5_5a5a_c01d_beef);
    debug_assert_eq!(batch.request_count(), 1);
    batch
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_request_is_single_and_deterministic() {
        let spec = RequestSpec::default();
        for seed in 0..20 {
            let a = generate_single_request(&spec, seed);
            assert_eq!(a.request_count(), 1);
            let size = a.requests()[0].vms.len();
            assert!((spec.request_size.0..=spec.request_size.1).contains(&size));
            let b = generate_single_request(&spec, seed);
            assert_eq!(a.vm_count(), b.vm_count());
            for (x, y) in a.vms().iter().zip(b.vms()) {
                assert_eq!(x, y);
            }
        }
    }

    #[test]
    fn arrival_stream_varies_by_index_but_not_by_call() {
        let spec = ArrivalSpec::default();
        let sizes: Vec<usize> = (0..32).map(|i| spec.request_at(7, i).vm_count()).collect();
        let again: Vec<usize> = (0..32).map(|i| spec.request_at(7, i).vm_count()).collect();
        assert_eq!(sizes, again);
        // Not all arrivals are identical (the stream actually varies).
        assert!(sizes.iter().any(|&s| s != sizes[0]));
    }

    #[test]
    fn lifetimes_stay_in_range() {
        let spec = ArrivalSpec {
            lifetime: (2.0, 4.0),
            ..Default::default()
        };
        for i in 0..100 {
            let l = spec.lifetime_at(3, i);
            assert!((2.0..=4.0).contains(&l), "{l}");
        }
    }
}
