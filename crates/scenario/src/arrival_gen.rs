//! Continuous-time arrival specifications.
//!
//! The fixed-step simulator consumes one [`RequestSpec`] batch per window;
//! a continuous-time driver instead needs *individual* requests with
//! real-valued arrival times and holding times. [`ArrivalSpec`] describes
//! such an open-loop arrival process: Poisson arrivals at `rate` requests
//! per unit sim-time, each request shaped by the same [`RequestSpec`]
//! template the batch generator uses (its `total_vms` budget is ignored),
//! holding the platform for a uniform `lifetime` draw.
//!
//! Generation is deterministic: the `i`-th arrival of a given seed is
//! always the same request, independent of how the driver interleaves
//! other event sources.

use crate::request_gen::{generate_requests, RequestSpec};
use cpo_model::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// An open-loop continuous-time arrival process.
#[derive(Clone, Debug)]
pub struct ArrivalSpec {
    /// Mean request arrivals per unit sim-time (Poisson intensity λ).
    pub rate: f64,
    /// Shape of each individual request — sizes, rules, costs, demand
    /// scale. `total_vms` is ignored: each arrival is exactly one request.
    pub request: RequestSpec,
    /// Tenant holding-time range in sim-time units, inclusive (uniform).
    pub lifetime: (f64, f64),
}

impl Default for ArrivalSpec {
    fn default() -> Self {
        Self {
            rate: 1.0,
            request: RequestSpec::default(),
            lifetime: (3.0, 8.0),
        }
    }
}

impl ArrivalSpec {
    /// Draws the `i`-th request of stream `seed` — a single-request batch.
    /// Deterministic in `(seed, i)`. The arrival index `i` doubles as the
    /// request's flight-recorder correlation key: a `generated` event is
    /// dropped into the recorder (no-op when it is disabled), the first
    /// link of the per-request lifecycle timeline.
    pub fn request_at(&self, seed: u64, i: u64) -> RequestBatch {
        let batch = generate_single_request(&self.request, arrival_seed(seed, i));
        mint_generated(i, &batch);
        batch
    }

    /// Draws the `i`-th request of stream `seed` with the size pinned to
    /// `vm_count` — the replay path for logged arrivals whose size is
    /// known but whose VM shapes must still come from the template.
    /// Same sub-seed derivation and flight-recorder minting as
    /// [`ArrivalSpec::request_at`], so a replayed stream is correlated
    /// exactly like a live one.
    pub fn replayed_request_at(&self, seed: u64, i: u64, vm_count: usize) -> RequestBatch {
        assert!(vm_count >= 1, "a request needs at least one VM");
        let pinned = RequestSpec {
            total_vms: vm_count,
            request_size: (vm_count, vm_count),
            ..self.request.clone()
        };
        let batch = generate_single_request(&pinned, arrival_seed(seed, i));
        mint_generated(i, &batch);
        batch
    }

    /// Builds the `i`-th request of stream `seed` from an *exact* demand
    /// vector — the production-trace path. The trace dictates shape
    /// (`demand`, in the model's standard attribute order) and fan-out
    /// (`vm_count` identical VMs, no affinity rules — per-VM traces carry
    /// no placement constraints); the template's cost ranges supply the
    /// QoS/cost parameters the trace does not record, and the price
    /// follows the shape via [`crate::flavors::flavor_revenue`].
    /// Deterministic in `(seed, i)` and minted into the flight recorder
    /// exactly like [`ArrivalSpec::request_at`].
    pub fn trace_request_at(
        &self,
        seed: u64,
        i: u64,
        demand: &[f64],
        vm_count: usize,
    ) -> RequestBatch {
        assert!(vm_count >= 1, "a request needs at least one VM");
        let mut rng = SmallRng::seed_from_u64(arrival_seed(seed, i));
        let range = |(lo, hi): (f64, f64), rng: &mut SmallRng| {
            if hi > lo {
                lo + (hi - lo) * rng.gen::<f64>()
            } else {
                lo
            }
        };
        let costs = &self.request.costs;
        let revenue = crate::flavors::flavor_revenue(
            demand.first().copied().unwrap_or(0.0),
            demand.get(1).copied().unwrap_or(0.0),
        );
        let vms: Vec<VmSpec> = (0..vm_count)
            .map(|_| VmSpec {
                demand: demand.to_vec(),
                qos_guarantee: range(costs.qos_guarantee, &mut rng),
                downtime_cost: range(costs.downtime_cost, &mut rng),
                migration_cost: range(costs.migration_cost, &mut rng),
                revenue,
            })
            .collect();
        let mut batch = RequestBatch::new();
        batch.push_request(vms, Vec::new());
        mint_generated(i, &batch);
        batch
    }

    /// Draws the `i`-th holding time of stream `seed`.
    pub fn lifetime_at(&self, seed: u64, i: u64) -> f64 {
        let (lo, hi) = self.lifetime;
        assert!(lo <= hi && lo >= 0.0, "invalid lifetime range");
        let mut rng = SmallRng::seed_from_u64(arrival_seed(seed, i) ^ 0x5bd1_e995_97f4_a7c5);
        rng.gen_range(lo..=hi)
    }
}

/// Per-arrival sub-seed: decorrelates consecutive arrivals of one stream.
fn arrival_seed(seed: u64, i: u64) -> u64 {
    seed ^ i.wrapping_mul(0x9e37_79b9_7f4a_7c15).rotate_left(17)
}

/// Drops the `generated` lifecycle event for arrival `i` into the flight
/// recorder (no-op when disabled) — the first link of the per-request
/// timeline, shared by the live, replayed, and trace paths.
fn mint_generated(i: u64, batch: &RequestBatch) {
    cpo_obs::flight::record(
        cpo_obs::flight::FlightKind::Generated,
        i,
        cpo_obs::flight::NONE,
        batch.vm_count() as u64,
        0,
    );
}

/// Generates exactly one request from the template: the size is drawn
/// from `spec.request_size`, then the batch generator runs with a budget
/// of exactly that size. Deterministic under `seed`.
pub fn generate_single_request(spec: &RequestSpec, seed: u64) -> RequestBatch {
    let mut rng = SmallRng::seed_from_u64(seed);
    let size = rng.gen_range(spec.request_size.0..=spec.request_size.1);
    let one = RequestSpec {
        total_vms: size,
        request_size: (size, size),
        ..spec.clone()
    };
    let batch = generate_requests(&one, seed ^ 0xa5a5_5a5a_c01d_beef);
    debug_assert_eq!(batch.request_count(), 1);
    batch
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_request_is_single_and_deterministic() {
        let spec = RequestSpec::default();
        for seed in 0..20 {
            let a = generate_single_request(&spec, seed);
            assert_eq!(a.request_count(), 1);
            let size = a.requests()[0].vms.len();
            assert!((spec.request_size.0..=spec.request_size.1).contains(&size));
            let b = generate_single_request(&spec, seed);
            assert_eq!(a.vm_count(), b.vm_count());
            for (x, y) in a.vms().iter().zip(b.vms()) {
                assert_eq!(x, y);
            }
        }
    }

    #[test]
    fn arrival_stream_varies_by_index_but_not_by_call() {
        let spec = ArrivalSpec::default();
        let sizes: Vec<usize> = (0..32).map(|i| spec.request_at(7, i).vm_count()).collect();
        let again: Vec<usize> = (0..32).map(|i| spec.request_at(7, i).vm_count()).collect();
        assert_eq!(sizes, again);
        // Not all arrivals are identical (the stream actually varies).
        assert!(sizes.iter().any(|&s| s != sizes[0]));
    }

    #[test]
    fn replayed_request_pins_size() {
        let spec = ArrivalSpec::default();
        for i in 0..16 {
            let b = spec.replayed_request_at(11, i, 3);
            assert_eq!(b.request_count(), 1);
            assert_eq!(b.vm_count(), 3);
        }
    }

    #[test]
    fn trace_request_uses_exact_demand_and_template_costs() {
        let spec = ArrivalSpec::default();
        let demand = [3.0, 6144.0, 55.0];
        let a = spec.trace_request_at(5, 9, &demand, 2);
        assert_eq!(a.request_count(), 1);
        assert_eq!(a.vm_count(), 2);
        for vm in a.vms() {
            assert_eq!(vm.demand, demand.to_vec());
            let c = &spec.request.costs;
            assert!((c.qos_guarantee.0..=c.qos_guarantee.1).contains(&vm.qos_guarantee));
            assert!((c.downtime_cost.0..=c.downtime_cost.1).contains(&vm.downtime_cost));
            assert_eq!(vm.revenue, crate::flavors::flavor_revenue(3.0, 6144.0));
        }
        assert!(a.requests()[0].rules.is_empty(), "traces carry no rules");
        // Deterministic in (seed, i).
        let b = spec.trace_request_at(5, 9, &demand, 2);
        assert_eq!(a.vms(), b.vms());
        // A different index draws different costs.
        let c = spec.trace_request_at(5, 10, &demand, 2);
        assert!(a.vms()[0].qos_guarantee != c.vms()[0].qos_guarantee);
    }

    #[test]
    fn lifetimes_stay_in_range() {
        let spec = ArrivalSpec {
            lifetime: (2.0, 4.0),
            ..Default::default()
        };
        for i in 0..100 {
            let l = spec.lifetime_at(3, i);
            assert!((2.0..=4.0).contains(&l), "{l}");
        }
    }
}
