//! Persist scenario *specifications* as JSON so experiments can be
//! shared, versioned and replayed exactly (spec + seed ⇒ identical
//! problem instance).
//!
//! Only the generator parameters are serialised, never the expanded
//! problem: a few hundred bytes of JSON regenerate any instance.

use crate::arrival_gen::ArrivalSpec;
use crate::flavors::VmCostParams;
use crate::infra_gen::InfraSpec;
use crate::presets::ScenarioSpec;
use crate::request_gen::RequestSpec;
use serde::{Deserialize, Serialize};

/// A self-contained, serialisable experiment description.
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq)]
pub struct ScenarioFile {
    /// Free-form name.
    pub name: String,
    /// Generator seed.
    pub seed: u64,
    /// Infrastructure parameters.
    pub infra: InfraSpecDto,
    /// Request parameters.
    pub requests: RequestSpecDto,
}

/// Serialisable mirror of [`InfraSpec`].
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq)]
pub struct InfraSpecDto {
    /// Number of datacenters.
    pub datacenters: usize,
    /// Total servers.
    pub servers: usize,
    /// Host-class weights (small, medium, large).
    pub class_mix: (f64, f64, f64),
    /// Cost jitter.
    pub cost_jitter: f64,
    /// Capacity factor range.
    pub factor: (f64, f64),
    /// QoS knee range.
    pub max_load: (f64, f64),
    /// Max QoS range.
    pub max_qos: (f64, f64),
}

/// Serialisable mirror of [`RequestSpec`].
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq)]
pub struct RequestSpecDto {
    /// Total VMs.
    pub total_vms: usize,
    /// Request size range.
    pub request_size: (usize, usize),
    /// Rule probabilities (same-server, same-dc, diff-server, diff-dc).
    pub rule_probs: (f64, f64, f64, f64),
    /// QoS guarantee range.
    pub qos_guarantee: (f64, f64),
    /// Downtime cost range.
    pub downtime_cost: (f64, f64),
    /// Migration cost range.
    pub migration_cost: (f64, f64),
    /// Demand multiplier.
    pub demand_scale: f64,
}

impl From<&InfraSpec> for InfraSpecDto {
    fn from(s: &InfraSpec) -> Self {
        Self {
            datacenters: s.datacenters,
            servers: s.servers,
            class_mix: s.class_mix,
            cost_jitter: s.cost_jitter,
            factor: s.factor,
            max_load: s.max_load,
            max_qos: s.max_qos,
        }
    }
}

impl From<&InfraSpecDto> for InfraSpec {
    fn from(d: &InfraSpecDto) -> Self {
        Self {
            datacenters: d.datacenters,
            servers: d.servers,
            class_mix: d.class_mix,
            cost_jitter: d.cost_jitter,
            factor: d.factor,
            max_load: d.max_load,
            max_qos: d.max_qos,
        }
    }
}

impl From<&RequestSpec> for RequestSpecDto {
    fn from(s: &RequestSpec) -> Self {
        Self {
            total_vms: s.total_vms,
            request_size: s.request_size,
            rule_probs: (
                s.p_same_server,
                s.p_same_datacenter,
                s.p_different_server,
                s.p_different_datacenter,
            ),
            qos_guarantee: s.costs.qos_guarantee,
            downtime_cost: s.costs.downtime_cost,
            migration_cost: s.costs.migration_cost,
            demand_scale: s.demand_scale,
        }
    }
}

impl From<&RequestSpecDto> for RequestSpec {
    fn from(d: &RequestSpecDto) -> Self {
        Self {
            total_vms: d.total_vms,
            request_size: d.request_size,
            p_same_server: d.rule_probs.0,
            p_same_datacenter: d.rule_probs.1,
            p_different_server: d.rule_probs.2,
            p_different_datacenter: d.rule_probs.3,
            costs: VmCostParams {
                qos_guarantee: d.qos_guarantee,
                downtime_cost: d.downtime_cost,
                migration_cost: d.migration_cost,
            },
            demand_scale: d.demand_scale,
        }
    }
}

/// Serialisable mirror of [`ArrivalSpec`] — lets continuous-time and
/// trace-replay experiments persist their arrival templates next to the
/// scenario knobs.
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq)]
pub struct ArrivalSpecDto {
    /// Poisson intensity λ (ignored by trace replay).
    pub rate: f64,
    /// Holding-time range.
    pub lifetime: (f64, f64),
    /// Per-request template.
    pub request: RequestSpecDto,
}

impl From<&ArrivalSpec> for ArrivalSpecDto {
    fn from(s: &ArrivalSpec) -> Self {
        Self {
            rate: s.rate,
            lifetime: s.lifetime,
            request: (&s.request).into(),
        }
    }
}

impl From<&ArrivalSpecDto> for ArrivalSpec {
    fn from(d: &ArrivalSpecDto) -> Self {
        Self {
            rate: d.rate,
            request: (&d.request).into(),
            lifetime: d.lifetime,
        }
    }
}

impl ArrivalSpecDto {
    /// Serialises to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("arrival specs always serialise")
    }

    /// Parses from JSON.
    pub fn from_json(json: &str) -> Result<Self, String> {
        serde_json::from_str(json).map_err(|e| format!("invalid arrival spec: {e}"))
    }
}

impl ScenarioFile {
    /// Captures a spec + seed under a name.
    pub fn capture(name: impl Into<String>, spec: &ScenarioSpec, seed: u64) -> Self {
        Self {
            name: name.into(),
            seed,
            infra: (&spec.infra).into(),
            requests: (&spec.requests).into(),
        }
    }

    /// Rebuilds the generator spec.
    pub fn to_spec(&self) -> ScenarioSpec {
        ScenarioSpec {
            infra: (&self.infra).into(),
            requests: (&self.requests).into(),
        }
    }

    /// Serialises to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("scenario specs always serialise")
    }

    /// Parses from JSON.
    pub fn from_json(json: &str) -> Result<Self, String> {
        serde_json::from_str(json).map_err(|e| format!("invalid scenario file: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets::ScenarioSize;

    #[test]
    fn json_roundtrip_is_lossless() {
        let size = ScenarioSize::with_servers(30);
        let spec = ScenarioSpec::for_size(&size).with_heavy_affinity();
        let file = ScenarioFile::capture("heavy-30", &spec, 99);
        let json = file.to_json();
        let back = ScenarioFile::from_json(&json).unwrap();
        assert_eq!(file, back);
    }

    #[test]
    fn reloaded_spec_generates_identical_problems() {
        let size = ScenarioSize::with_servers(12);
        let spec = ScenarioSpec::for_size(&size);
        let file = ScenarioFile::capture("t", &spec, 5);
        let reloaded = ScenarioFile::from_json(&file.to_json()).unwrap();
        let a = spec.generate(file.seed);
        let b = reloaded.to_spec().generate(reloaded.seed);
        assert_eq!(a.n(), b.n());
        assert_eq!(a.m(), b.m());
        for (x, y) in a.batch().vms().iter().zip(b.batch().vms()) {
            assert_eq!(x, y);
        }
        for (x, y) in a.infra().servers().iter().zip(b.infra().servers()) {
            assert_eq!(x, y);
        }
    }

    #[test]
    fn invalid_json_is_reported() {
        assert!(ScenarioFile::from_json("{nope").is_err());
        assert!(ScenarioFile::from_json("{}").is_err());
    }

    #[test]
    fn arrival_spec_roundtrips_through_dto() {
        let spec = ArrivalSpec {
            rate: 3.5,
            lifetime: (2.0, 40.0),
            ..Default::default()
        };
        let dto: ArrivalSpecDto = (&spec).into();
        let back: ArrivalSpec = (&ArrivalSpecDto::from_json(&dto.to_json()).unwrap()).into();
        let redto: ArrivalSpecDto = (&back).into();
        assert_eq!(dto, redto);
        assert!(ArrivalSpecDto::from_json("{broken").is_err());
    }

    mod prop {
        use super::*;
        use proptest::prelude::*;

        fn arb_arrival_spec() -> impl Strategy<Value = ArrivalSpec> {
            (
                0.1f64..50.0,
                (0.5f64..10.0, 10.0f64..500.0),
                (1usize..200, 1usize..8),
                (0.0f64..0.4, 0.0f64..0.4, 0.0f64..0.2),
                0.1f64..4.0,
            )
                .prop_map(|(rate, lifetime, (total, size_hi), (p1, p2, p3), scale)| {
                    let mut request = RequestSpec {
                        total_vms: total,
                        request_size: (1, size_hi),
                        demand_scale: scale,
                        ..Default::default()
                    };
                    request.p_same_server = p1;
                    request.p_same_datacenter = p2;
                    request.p_different_server = p3;
                    ArrivalSpec {
                        rate,
                        request,
                        lifetime,
                    }
                })
        }

        proptest! {
            #[test]
            fn json_roundtrip_preserves_every_field(spec in arb_arrival_spec()) {
                let dto: ArrivalSpecDto = (&spec).into();
                let parsed = ArrivalSpecDto::from_json(&dto.to_json()).unwrap();
                prop_assert_eq!(&dto, &parsed);
                // And a full there-and-back through the runtime type.
                let back: ArrivalSpec = (&parsed).into();
                let redto: ArrivalSpecDto = (&back).into();
                prop_assert_eq!(dto, redto);
            }
        }
    }

    #[test]
    fn json_contains_the_knobs() {
        let size = ScenarioSize::with_servers(10);
        let spec = ScenarioSpec::for_size(&size).with_heavy_affinity();
        let json = ScenarioFile::capture("x", &spec, 1).to_json();
        assert!(json.contains("demand_scale"));
        assert!(json.contains("rule_probs"));
        assert!(json.contains("class_mix"));
    }
}
