//! Random provider infrastructures: heterogeneous servers laid out in
//! spine-leaf datacenters.

use cpo_model::attr::AttrSet;
use cpo_model::prelude::{Infrastructure, Server};
use cpo_topology::{build_spine_leaf, BuiltPod, SpineLeafSpec};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Host hardware classes with their capacity vectors and cost profiles.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HostClass {
    /// 16 vCPU / 64 GiB / 1 TiB — cheap edge host.
    Small,
    /// 32 vCPU / 128 GiB / 2 TiB — the commodity workhorse.
    Medium,
    /// 64 vCPU / 256 GiB / 4 TiB — consolidation host.
    Large,
}

impl HostClass {
    fn capacity(self) -> [f64; 3] {
        match self {
            HostClass::Small => [16.0, 65_536.0, 1_024.0],
            HostClass::Medium => [32.0, 131_072.0, 2_048.0],
            HostClass::Large => [64.0, 262_144.0, 4_096.0],
        }
    }

    fn base_opex(self) -> f64 {
        match self {
            HostClass::Small => 6.0,
            HostClass::Medium => 10.0,
            HostClass::Large => 18.0,
        }
    }

    fn base_usage(self) -> f64 {
        match self {
            HostClass::Small => 1.2,
            HostClass::Medium => 1.0,
            HostClass::Large => 0.9,
        }
    }
}

/// Infrastructure generation parameters.
#[derive(Clone, Debug)]
pub struct InfraSpec {
    /// Number of datacenters `g`.
    pub datacenters: usize,
    /// Total number of servers `m` (split evenly across datacenters; the
    /// remainder goes to the first datacenters).
    pub servers: usize,
    /// Mix of host classes `(small, medium, large)` — weights.
    pub class_mix: (f64, f64, f64),
    /// Relative jitter applied to costs (0.1 = ±10 %).
    pub cost_jitter: f64,
    /// Virtual-to-physical capacity factor range (paper's `F`, Eq. 3).
    pub factor: (f64, f64),
    /// QoS knee range (`L^M`, Eq. 8).
    pub max_load: (f64, f64),
    /// Max QoS range (`Q^M`, Eq. 8).
    pub max_qos: (f64, f64),
}

impl Default for InfraSpec {
    fn default() -> Self {
        Self {
            datacenters: 2,
            servers: 20,
            class_mix: (0.3, 0.5, 0.2),
            cost_jitter: 0.15,
            factor: (0.85, 0.95),
            max_load: (0.7, 0.85),
            max_qos: (0.95, 0.999),
        }
    }
}

fn pick_class(mix: (f64, f64, f64), rng: &mut impl Rng) -> HostClass {
    let total = mix.0 + mix.1 + mix.2;
    let r = rng.gen::<f64>() * total;
    if r < mix.0 {
        HostClass::Small
    } else if r < mix.0 + mix.1 {
        HostClass::Medium
    } else {
        HostClass::Large
    }
}

fn jitter(base: f64, rel: f64, rng: &mut impl Rng) -> f64 {
    base * (1.0 + rel * (rng.gen::<f64>() * 2.0 - 1.0))
}

fn gen_server(spec: &InfraSpec, rng: &mut impl Rng) -> Server {
    let class = pick_class(spec.class_mix, rng);
    let cap = class.capacity();
    let factor = rng.gen_range(spec.factor.0..=spec.factor.1);
    let max_load = rng.gen_range(spec.max_load.0..=spec.max_load.1);
    let max_qos = rng.gen_range(spec.max_qos.0..=spec.max_qos.1);
    Server {
        capacity: cap.to_vec(),
        factor: vec![factor; 3],
        opex: jitter(class.base_opex(), spec.cost_jitter, rng),
        usage_cost: jitter(class.base_usage(), spec.cost_jitter, rng),
        max_load: vec![max_load; 3],
        max_qos: vec![max_qos; 3],
    }
}

/// A generated infrastructure plus the per-datacenter network pods.
#[derive(Clone, Debug)]
pub struct GeneratedInfra {
    /// The model-level infrastructure (what the solvers consume).
    pub infra: Infrastructure,
    /// One spine-leaf pod per datacenter (network substrate).
    pub pods: Vec<BuiltPod>,
}

/// Generates a random infrastructure from the spec, deterministically
/// under `seed`.
pub fn generate_infra(spec: &InfraSpec, seed: u64) -> GeneratedInfra {
    assert!(spec.datacenters >= 1, "need at least one datacenter");
    assert!(
        spec.servers >= spec.datacenters,
        "need at least one server per datacenter"
    );
    let mut rng = SmallRng::seed_from_u64(seed);
    let base = spec.servers / spec.datacenters;
    let extra = spec.servers % spec.datacenters;
    let mut dcs = Vec::with_capacity(spec.datacenters);
    let mut pods = Vec::with_capacity(spec.datacenters);
    for d in 0..spec.datacenters {
        let count = base + usize::from(d < extra);
        let servers: Vec<Server> = (0..count).map(|_| gen_server(spec, &mut rng)).collect();
        dcs.push((format!("dc{d}"), servers));
        pods.push(build_spine_leaf(&SpineLeafSpec::for_server_count(count)));
    }
    GeneratedInfra {
        infra: Infrastructure::new(AttrSet::standard(), dcs),
        pods,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_infra_has_requested_shape() {
        let spec = InfraSpec {
            datacenters: 3,
            servers: 10,
            ..Default::default()
        };
        let g = generate_infra(&spec, 42);
        assert_eq!(g.infra.datacenter_count(), 3);
        assert_eq!(g.infra.server_count(), 10);
        // 10 = 4 + 3 + 3
        assert_eq!(g.infra.datacenters()[0].server_count, 4);
        assert_eq!(g.infra.datacenters()[1].server_count, 3);
        assert_eq!(g.pods.len(), 3);
        assert!(g.pods[0].servers.len() >= 4);
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = InfraSpec::default();
        let a = generate_infra(&spec, 7);
        let b = generate_infra(&spec, 7);
        for (sa, sb) in a.infra.servers().iter().zip(b.infra.servers()) {
            assert_eq!(sa, sb);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let spec = InfraSpec::default();
        let a = generate_infra(&spec, 1);
        let b = generate_infra(&spec, 2);
        let same = a
            .infra
            .servers()
            .iter()
            .zip(b.infra.servers())
            .all(|(x, y)| x == y);
        assert!(!same);
    }

    #[test]
    fn all_servers_validate() {
        let spec = InfraSpec {
            datacenters: 2,
            servers: 50,
            ..Default::default()
        };
        let g = generate_infra(&spec, 3);
        for s in g.infra.servers() {
            assert!(s.validate(3).is_ok());
        }
    }

    #[test]
    fn class_mix_produces_heterogeneity() {
        let spec = InfraSpec {
            servers: 200,
            ..Default::default()
        };
        let g = generate_infra(&spec, 11);
        let mut caps: Vec<u64> = g
            .infra
            .servers()
            .iter()
            .map(|s| s.capacity[0] as u64)
            .collect();
        caps.sort_unstable();
        caps.dedup();
        assert!(caps.len() >= 2, "expected mixed host classes, got {caps:?}");
    }

    #[test]
    fn pure_class_mix_is_homogeneous() {
        let spec = InfraSpec {
            class_mix: (0.0, 1.0, 0.0),
            servers: 30,
            ..Default::default()
        };
        let g = generate_infra(&spec, 5);
        assert!(g.infra.servers().iter().all(|s| s.capacity[0] == 32.0));
    }

    #[test]
    #[should_panic(expected = "at least one server per datacenter")]
    fn too_few_servers_rejected() {
        let spec = InfraSpec {
            datacenters: 5,
            servers: 3,
            ..Default::default()
        };
        let _ = generate_infra(&spec, 0);
    }
}
