//! VM flavour catalogue — EC2-like shapes giving the consumer demand
//! distributions. The paper only says its requests are "randomly generated
//! with parameter configurations that reflect typical infrastructure sizes
//! and cloud provider practices"; typical practice is a small set of
//! flavours, heavily skewed towards small instances.

use cpo_model::prelude::VmSpec;
use rand::Rng;

/// A named VM flavour with standard attributes (vCPU, RAM MiB, disk GiB).
#[derive(Clone, Debug, PartialEq)]
pub struct Flavor {
    /// Flavour name (reports only).
    pub name: &'static str,
    /// vCPU cores.
    pub cpu: f64,
    /// RAM in MiB.
    pub ram: f64,
    /// Disk in GiB.
    pub disk: f64,
    /// Relative weight in the sampling distribution.
    pub weight: f64,
}

/// The default flavour catalogue (shapes after common public-cloud
/// offerings, weights skewed to small instances as in production traces).
pub fn default_catalog() -> Vec<Flavor> {
    vec![
        Flavor {
            name: "micro",
            cpu: 1.0,
            ram: 1_024.0,
            disk: 10.0,
            weight: 0.25,
        },
        Flavor {
            name: "small",
            cpu: 1.0,
            ram: 2_048.0,
            disk: 20.0,
            weight: 0.25,
        },
        Flavor {
            name: "medium",
            cpu: 2.0,
            ram: 4_096.0,
            disk: 40.0,
            weight: 0.20,
        },
        Flavor {
            name: "large",
            cpu: 4.0,
            ram: 8_192.0,
            disk: 80.0,
            weight: 0.15,
        },
        Flavor {
            name: "xlarge",
            cpu: 8.0,
            ram: 16_384.0,
            disk: 160.0,
            weight: 0.08,
        },
        Flavor {
            name: "c-heavy",
            cpu: 16.0,
            ram: 8_192.0,
            disk: 80.0,
            weight: 0.04,
        },
        Flavor {
            name: "m-heavy",
            cpu: 4.0,
            ram: 32_768.0,
            disk: 80.0,
            weight: 0.03,
        },
    ]
}

/// Samples one flavour from the catalogue by weight.
pub fn sample<'a>(catalog: &'a [Flavor], rng: &mut impl Rng) -> &'a Flavor {
    assert!(!catalog.is_empty(), "empty flavour catalogue");
    let total: f64 = catalog.iter().map(|f| f.weight).sum();
    let mut pick = rng.gen::<f64>() * total;
    for f in catalog {
        pick -= f.weight;
        if pick <= 0.0 {
            return f;
        }
    }
    catalog.last().expect("non-empty")
}

/// Cost/QoS parameter ranges for generated VM specs.
#[derive(Clone, Copy, Debug)]
pub struct VmCostParams {
    /// QoS guarantee range `[lo, hi]` (paper: C^Q_k).
    pub qos_guarantee: (f64, f64),
    /// Downtime penalty range (C^U_k).
    pub downtime_cost: (f64, f64),
    /// Migration cost range (M_k).
    pub migration_cost: (f64, f64),
}

impl Default for VmCostParams {
    fn default() -> Self {
        Self {
            qos_guarantee: (0.90, 0.99),
            downtime_cost: (2.0, 10.0),
            migration_cost: (0.5, 3.0),
        }
    }
}

/// The standard per-window price of a VM shape: cloud pricing is roughly
/// linear in vCPU + memory. Shared by flavour sampling and trace replay,
/// so a trace-fed VM of a given shape sells for the same price as a
/// synthetic one.
pub fn flavor_revenue(cpu: f64, ram_mib: f64) -> f64 {
    2.0 + cpu * 1.5 + ram_mib / 4096.0
}

/// Materialises a [`VmSpec`] from a sampled flavour and cost parameters.
pub fn vm_from_flavor(f: &Flavor, params: &VmCostParams, rng: &mut impl Rng) -> VmSpec {
    let range = |(lo, hi): (f64, f64), rng: &mut dyn rand::RngCore| {
        if hi > lo {
            lo + (hi - lo) * rand::Rng::gen::<f64>(rng)
        } else {
            lo
        }
    };
    let demand = vec![f.cpu, f.ram, f.disk];
    // Cost ranges are jittered per VM; the price follows the shape.
    let revenue = flavor_revenue(f.cpu, f.ram);
    VmSpec {
        demand,
        qos_guarantee: range(params.qos_guarantee, rng),
        downtime_cost: range(params.downtime_cost, rng),
        migration_cost: range(params.migration_cost, rng),
        revenue,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn catalog_weights_sum_to_one() {
        let total: f64 = default_catalog().iter().map(|f| f.weight).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn sampling_respects_weights_roughly() {
        let catalog = default_catalog();
        let mut rng = SmallRng::seed_from_u64(1);
        let mut micro = 0usize;
        let n = 20_000;
        for _ in 0..n {
            if sample(&catalog, &mut rng).name == "micro" {
                micro += 1;
            }
        }
        let frac = micro as f64 / n as f64;
        assert!((0.22..0.28).contains(&frac), "micro fraction {frac}");
    }

    #[test]
    fn vm_from_flavor_stays_in_ranges() {
        let catalog = default_catalog();
        let params = VmCostParams::default();
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..500 {
            let f = sample(&catalog, &mut rng);
            let vm = vm_from_flavor(f, &params, &mut rng);
            assert!(vm.validate(3).is_ok());
            assert!((0.90..=0.99).contains(&vm.qos_guarantee));
            assert!((2.0..=10.0).contains(&vm.downtime_cost));
            assert!((0.5..=3.0).contains(&vm.migration_cost));
            assert_eq!(vm.demand[0], f.cpu);
        }
    }

    #[test]
    fn degenerate_range_is_constant() {
        let f = &default_catalog()[0];
        let params = VmCostParams {
            qos_guarantee: (0.95, 0.95),
            downtime_cost: (5.0, 5.0),
            migration_cost: (1.0, 1.0),
        };
        let mut rng = SmallRng::seed_from_u64(3);
        let vm = vm_from_flavor(f, &params, &mut rng);
        assert_eq!(vm.qos_guarantee, 0.95);
        assert_eq!(vm.downtime_cost, 5.0);
    }
}
