//! Scenario presets reproducing the paper's evaluation sweeps.
//!
//! The evaluation compares the algorithms on randomly generated scenarios
//! "involving up to 800 servers and 1600 virtual machines", averaged over
//! 100 runs. Two regimes appear:
//!
//! * **few resources** (Fig. 7) — small clusters where Round Robin and CP
//!   are fastest;
//! * **many resources** (Fig. 8) — the scalability regime where the
//!   constraint-propagation approaches stop scaling.

use crate::infra_gen::{generate_infra, InfraSpec};
use crate::request_gen::{generate_requests, RequestSpec};
use cpo_model::prelude::AllocationProblem;

/// One point of a problem-size sweep.
#[derive(Clone, Debug, PartialEq)]
pub struct ScenarioSize {
    /// Number of servers `m`.
    pub servers: usize,
    /// Number of requested VMs `n`.
    pub vms: usize,
    /// Number of datacenters `g`.
    pub datacenters: usize,
}

impl ScenarioSize {
    /// The paper's sizing rule: VMs = 2 × servers (800 servers ↔ 1600 VMs),
    /// with a datacenter per ~200 servers (min 2).
    pub fn with_servers(servers: usize) -> Self {
        Self {
            servers,
            vms: servers * 2,
            datacenters: (servers / 200).max(2),
        }
    }

    /// A short label for reports (e.g. `"m=100 n=200"`).
    pub fn label(&self) -> String {
        format!("m={} n={}", self.servers, self.vms)
    }
}

/// The "few resources" sweep of Fig. 7.
pub fn few_resources_sweep() -> Vec<ScenarioSize> {
    [10, 20, 40, 60, 80, 100]
        .into_iter()
        .map(ScenarioSize::with_servers)
        .collect()
}

/// The "many resources" sweep of Fig. 8 (up to 800 servers / 1600 VMs).
pub fn many_resources_sweep() -> Vec<ScenarioSize> {
    [100, 200, 400, 600, 800]
        .into_iter()
        .map(ScenarioSize::with_servers)
        .collect()
}

/// The joint sweep used by Figs. 9–11 (rejection, violations, cost).
pub fn quality_sweep() -> Vec<ScenarioSize> {
    [20, 50, 100, 200, 400]
        .into_iter()
        .map(ScenarioSize::with_servers)
        .collect()
}

/// Fully-specified scenario parameters.
#[derive(Clone, Debug)]
pub struct ScenarioSpec {
    /// Infrastructure parameters.
    pub infra: InfraSpec,
    /// Request parameters.
    pub requests: RequestSpec,
}

impl ScenarioSpec {
    /// Builds the spec for a sweep point with default distributions.
    ///
    /// The VM budget targets moderate utilisation (the generated demand is
    /// ~40–60 % of capacity), which admits feasible placements while
    /// forcing consolidation choices — the regime where the algorithms
    /// differ most.
    pub fn for_size(size: &ScenarioSize) -> Self {
        Self {
            infra: InfraSpec {
                datacenters: size.datacenters,
                servers: size.servers,
                ..Default::default()
            },
            requests: RequestSpec {
                total_vms: size.vms,
                ..Default::default()
            },
        }
    }

    /// Same spec with heavier affinity pressure and tighter capacity (used
    /// by the rejection/violation/cost figures, where rules and packing
    /// pressure are what separate the algorithms): larger requests, more
    /// rules, and demand scaled to ~80-90 % CPU utilisation so greedy
    /// placement runs into fragmentation.
    pub fn with_heavy_affinity(mut self) -> Self {
        self.requests.request_size = (2, 5);
        self.requests.p_same_server = 0.25;
        self.requests.p_same_datacenter = 0.25;
        self.requests.p_different_server = 0.35;
        self.requests.p_different_datacenter = 0.10;
        self.requests.demand_scale = 4.5;
        self
    }

    /// Generates the [`AllocationProblem`] for run index `run` (each run
    /// re-derives both infrastructure and requests from the seed).
    pub fn generate(&self, seed: u64) -> AllocationProblem {
        let infra = generate_infra(&self.infra, seed ^ 0x9e37_79b9_7f4a_7c15);
        let batch = generate_requests(&self.requests, seed.wrapping_mul(0x2545_f491_4f6c_dd1d));
        AllocationProblem::new(infra.infra, batch, None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_shapes_match_the_paper() {
        let few = few_resources_sweep();
        assert!(few.iter().all(|s| s.servers <= 100));
        let many = many_resources_sweep();
        assert_eq!(many.last().unwrap().servers, 800);
        assert_eq!(many.last().unwrap().vms, 1600);
    }

    #[test]
    fn with_servers_applies_sizing_rule() {
        let s = ScenarioSize::with_servers(400);
        assert_eq!(s.vms, 800);
        assert_eq!(s.datacenters, 2);
        let big = ScenarioSize::with_servers(800);
        assert_eq!(big.datacenters, 4);
        assert_eq!(big.label(), "m=800 n=1600");
    }

    #[test]
    fn generated_problem_matches_size() {
        let size = ScenarioSize::with_servers(20);
        let p = ScenarioSpec::for_size(&size).generate(1);
        assert_eq!(p.m(), 20);
        assert_eq!(p.n(), 40);
        assert_eq!(p.g(), 2);
        assert_eq!(p.h(), 3);
    }

    #[test]
    fn generated_demand_is_moderate() {
        let size = ScenarioSize::with_servers(50);
        let p = ScenarioSpec::for_size(&size).generate(3);
        let cap = p.infra().total_effective_capacity();
        let dem = p.batch().total_demand(3);
        for l in 0..3 {
            let util = dem[l] / cap[l];
            assert!(
                (0.005..0.9).contains(&util),
                "attribute {l} utilisation {util} out of sane band"
            );
        }
    }

    #[test]
    fn scenarios_are_deterministic_and_seed_sensitive() {
        let size = ScenarioSize::with_servers(10);
        let spec = ScenarioSpec::for_size(&size);
        let a = spec.generate(5);
        let b = spec.generate(5);
        let c = spec.generate(6);
        assert_eq!(a.batch().vms(), b.batch().vms());
        assert_ne!(
            a.batch().vms().iter().map(|v| v.demand[0]).sum::<f64>(),
            c.batch().vms().iter().map(|v| v.demand[0]).sum::<f64>()
        );
    }

    #[test]
    fn heavy_affinity_raises_rule_density() {
        let size = ScenarioSize::with_servers(50);
        let base = ScenarioSpec::for_size(&size).generate(2);
        let heavy = ScenarioSpec::for_size(&size)
            .with_heavy_affinity()
            .generate(2);
        let count = |p: &AllocationProblem| {
            p.batch()
                .requests()
                .iter()
                .map(|r| r.rules.len())
                .sum::<usize>()
        };
        assert!(count(&heavy) > count(&base));
    }
}
