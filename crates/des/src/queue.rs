//! The timestamp-ordered event queue — the kernel's substrate.
//!
//! A binary heap keyed on `(time, sequence)`: events pop in timestamp
//! order, and events scheduled for the *same* timestamp pop in the order
//! they were scheduled (stable FIFO tie-breaking via a monotonically
//! increasing sequence number). Determinism is the whole point: two runs
//! that schedule the same events in the same order observe the same
//! history, whatever the mix of tied timestamps.

use crate::time::SimTime;
use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;

/// One scheduled entry.
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        self.time
            .cmp(&other.time)
            .then_with(|| self.seq.cmp(&other.seq))
    }
}

/// A deterministic future-event list.
///
/// ```
/// use cpo_des::prelude::*;
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::new(2.0), "late");
/// q.schedule(SimTime::new(1.0), "early");
/// q.schedule(SimTime::new(1.0), "early-too"); // same stamp: FIFO
/// assert_eq!(q.pop().unwrap().1, "early");
/// assert_eq!(q.pop().unwrap().1, "early-too");
/// assert_eq!(q.pop().unwrap().1, "late");
/// assert!(q.pop().is_none());
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    seq: u64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue at the epoch.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// The current clock — the timestamp of the last popped event.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    /// When `at` lies before the current clock — the past is immutable.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "cannot schedule into the past: {at} < {}",
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Entry {
            time: at,
            seq,
            event,
        }));
    }

    /// Schedules `event` at `dt` time units after the current clock.
    pub fn schedule_in(&mut self, dt: f64, event: E) {
        let at = self.now + dt;
        self.schedule(at, event);
    }

    /// The timestamp of the next event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(e)| e.time)
    }

    /// Pops the earliest event (FIFO among ties) and advances the clock
    /// to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let Reverse(entry) = self.heap.pop()?;
        self.now = entry.time;
        Some((entry.time, entry.event))
    }
}

/// Synthetic schedule/pop churn for throughput measurement: keeps a
/// steady population of `pending` events in flight and processes `n` of
/// them, rescheduling a successor for each pop at a pseudo-random offset
/// (SplitMix64 — no external RNG in the hot loop). Returns the number of
/// events processed; used by the `micro_des` benchmark and the release
/// throughput gate (≥ 1M events/sec).
pub fn synthetic_churn(n: usize, pending: usize, seed: u64) -> u64 {
    let mut state = seed;
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    // Offsets in (0, 1]: 21 random bits are plenty for a spread of stamps
    // and keep every value exactly representable.
    let mut offset = move || ((next() >> 43) + 1) as f64 * (1.0 / (1u64 << 21) as f64);

    let mut q: EventQueue<u32> = EventQueue::new();
    for i in 0..pending {
        let at = SimTime::new(offset());
        q.schedule(at, i as u32);
    }
    let mut processed = 0u64;
    while processed < n as u64 {
        let (now, id) = q.pop().expect("population never drains early");
        q.schedule(now + offset(), id);
        processed += 1;
    }
    processed
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_timestamp_order() {
        let mut q = EventQueue::new();
        for &t in &[5.0, 1.0, 3.0, 2.0, 4.0] {
            q.schedule(SimTime::new(t), t as u32);
        }
        let order: Vec<u32> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::new(1.0);
        for i in 0..100u32 {
            q.schedule(t, i);
        }
        let order: Vec<u32> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::new(2.0), ());
        q.schedule(SimTime::new(7.0), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::new(2.0));
        q.schedule_in(1.0, ());
        assert_eq!(q.peek_time(), Some(SimTime::new(3.0)));
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::new(5.0), ());
        q.pop();
        q.schedule(SimTime::new(4.0), ());
    }

    #[test]
    fn synthetic_churn_processes_exactly_n() {
        assert_eq!(synthetic_churn(10_000, 256, 1), 10_000);
        // Deterministic per seed (the count trivially is; run twice to
        // exercise the path).
        assert_eq!(synthetic_churn(10_000, 256, 1), 10_000);
    }
}
