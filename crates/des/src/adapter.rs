//! Fixed-window adapter: the classic [`PlatformSim`] loop driven from
//! the event queue.
//!
//! [`FixedWindowAdapter`] schedules one `WindowBoundary` event per
//! `window_length` and, at each, runs exactly the fixed-step phase
//! sequence — failures → departures → generated arrivals →
//! solve/apply — against the shared [`WindowExecutor`]. Because the
//! phases draw from the executor RNG in the same order as
//! [`PlatformSim::step`], a run over the same infrastructure, config and
//! seed reproduces the fixed-step simulator *exactly*: same admissions,
//! same migrations, same event log. The integration test
//! `tests/equivalence.rs` asserts this window by window.
//!
//! [`PlatformSim`]: cpo_platform::prelude::PlatformSim
//! [`PlatformSim::step`]: cpo_platform::prelude::PlatformSim::step

use crate::queue::EventQueue;
use crate::time::SimTime;
use cpo_core::prelude::Allocator;
use cpo_model::prelude::Infrastructure;
use cpo_platform::prelude::{LifetimePolicy, SimConfig, SimReport, WindowExecutor};

/// The event-driven twin of [`cpo_platform::prelude::PlatformSim`].
pub struct FixedWindowAdapter {
    exec: WindowExecutor,
    queue: EventQueue<()>,
    window_length: f64,
}

impl FixedWindowAdapter {
    /// Builds the adapter; `window_length` only positions boundaries on
    /// the continuous clock and does not affect the window contents.
    pub fn new(infra: Infrastructure, config: SimConfig, window_length: f64) -> Self {
        assert!(window_length > 0.0);
        Self {
            exec: WindowExecutor::new(infra, config),
            queue: EventQueue::new(),
            window_length,
        }
    }

    /// The underlying executor (event log, tenants, SLA ledger).
    pub fn executor(&self) -> &WindowExecutor {
        &self.exec
    }

    /// Current simulation clock.
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// Runs `windows` boundaries through the event queue.
    pub fn run(&mut self, allocator: &dyn Allocator, windows: u64) -> SimReport {
        let mut report = SimReport::default();
        for k in 0..windows {
            self.queue
                .schedule(SimTime::new((k + 1) as f64 * self.window_length), ());
        }
        while self.queue.pop().is_some() {
            self.exec.inject_failures();
            self.exec.tick_departures();
            let (arrivals, ids) = self.exec.generate_window_arrivals();
            let (window_report, _) =
                self.exec
                    .execute(allocator, &arrivals, &ids, LifetimePolicy::DrawnWindows);
            report.windows.push(window_report);
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpo_core::prelude::RoundRobinAllocator;
    use cpo_model::attr::AttrSet;
    use cpo_model::prelude::ServerProfile;

    #[test]
    fn boundaries_advance_the_clock() {
        let infra = Infrastructure::new(
            AttrSet::standard(),
            vec![("dc".into(), ServerProfile::commodity(3).build_many(6))],
        );
        let mut adapter = FixedWindowAdapter::new(infra, SimConfig::default(), 2.5);
        let report = adapter.run(&RoundRobinAllocator, 4);
        assert_eq!(report.windows.len(), 4);
        assert_eq!(adapter.now(), SimTime::new(10.0));
        assert_eq!(adapter.executor().window(), 4);
    }
}
