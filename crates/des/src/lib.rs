//! # cpo-des — continuous-time discrete-event simulation kernel
//!
//! The fixed-step simulator ([`cpo_platform::prelude::PlatformSim`])
//! advances in whole scheduling windows; real platforms live in
//! continuous time, where requests arrive mid-window, tenants hold
//! resources for real-valued durations and the optimiser's own execution
//! time delays everyone behind it. This crate supplies that timeline:
//!
//! * [`time`] — a finite, totally ordered simulation clock;
//! * [`queue`] — the deterministic future-event list: timestamp order
//!   with stable FIFO tie-breaking;
//! * [`sources`] — seeded Poisson arrivals, trace-driven replay of
//!   recorded [`cpo_platform::prelude::EventLog`]s, and MTBF/MTTR
//!   failure processes;
//! * [`scheduler`] — [`scheduler::WindowedScheduler`]: accumulates
//!   arrivals into cyclic windows, invokes any
//!   [`cpo_core::prelude::Allocator`] at boundaries through the shared
//!   [`cpo_platform::prelude::WindowExecutor`], and feeds solve latency
//!   back into the timeline (slow solves delay admissions and stretch
//!   the cycle);
//! * [`adapter`] — [`adapter::FixedWindowAdapter`]: the classic
//!   fixed-step loop driven from the event queue, reproducing
//!   `PlatformSim` exactly for the same seed.
//!
//! ```
//! use cpo_des::prelude::*;
//! use cpo_model::attr::AttrSet;
//! use cpo_model::prelude::*;
//! use cpo_platform::prelude::SimConfig;
//! use cpo_scenario::prelude::ArrivalSpec;
//! use cpo_core::prelude::RoundRobinAllocator;
//!
//! let infra = Infrastructure::new(
//!     AttrSet::standard(),
//!     vec![("dc".into(), ServerProfile::commodity(3).build_many(8))],
//! );
//! let arrivals = PoissonArrivals::new(ArrivalSpec { rate: 2.0, ..Default::default() }, 42);
//! let des = DesConfig { latency: LatencyModel::Fixed(0.1), ..Default::default() };
//! let mut sched = WindowedScheduler::new(infra, SimConfig::default(), des, arrivals);
//! let report = sched.run(&RoundRobinAllocator, 20.0);
//! assert!(report.waiting.count > 0);
//! assert!(report.waiting.mean() >= 0.1); // solves take 0.1 time units
//! ```

#![warn(missing_docs)]

pub mod adapter;
pub mod queue;
pub mod scheduler;
pub mod sources;
pub mod time;

/// The most-used kernel types.
pub mod prelude {
    pub use crate::adapter::FixedWindowAdapter;
    pub use crate::queue::EventQueue;
    pub use crate::scheduler::{
        DesConfig, DesReport, FailureSpec, LatencyModel, WaitingStats, WindowBackend,
        WindowedScheduler,
    };
    pub use crate::sources::{
        Arrival, ArrivalSource, FailureProcess, PoissonArrivals, TraceArrivals,
    };
    pub use crate::time::SimTime;
}
