//! Event sources: seeded arrival processes and server failure/repair.
//!
//! Two arrival sources feed the kernel:
//!
//! * [`PoissonArrivals`] — an open-loop Poisson process over an
//!   [`ArrivalSpec`]: exponential interarrivals at rate λ, each arrival a
//!   deterministic single-request draw from the spec's template;
//! * [`TraceArrivals`] — replay of a JSON-lines [`EventLog`] produced by
//!   any earlier run: `request_arrived` events become arrivals at
//!   `window × window_length`, and each tenant's observed departure
//!   window reconstructs its holding time.
//!
//! [`FailureProcess`] samples exponential uptimes (MTBF) and downtimes
//! (MTTR) for server failure/repair event chains.

use crate::time::SimTime;
use cpo_model::prelude::RequestBatch;
use cpo_platform::prelude::{Event, EventLog};
use cpo_scenario::arrival_gen::ArrivalSpec;
use cpo_scenario::request_gen::RequestSpec;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Draws an exponential variate with the given mean.
fn exponential(rng: &mut SmallRng, mean: f64) -> f64 {
    debug_assert!(mean > 0.0);
    let u: f64 = rng.gen();
    // u ∈ [0, 1) ⇒ 1 − u ∈ (0, 1] ⇒ ln is finite.
    -mean * (1.0 - u).ln()
}

/// One timestamped request emitted by an [`ArrivalSource`].
#[derive(Clone, Debug)]
pub struct Arrival {
    /// Absolute arrival time.
    pub at: SimTime,
    /// The (single-request) batch.
    pub batch: RequestBatch,
    /// Tenant holding time in sim-time units.
    pub holding: f64,
    /// Flight-recorder correlation key: the request's uid, stable from
    /// generation through admission to departure. Sources assign their
    /// stream index, so the `i`-th arrival is always request `i`.
    pub key: u64,
}

/// A stream of timestamped requests. Sources own their clock: arrival
/// times are non-decreasing (the event queue breaks simultaneous
/// arrivals FIFO by insertion order).
pub trait ArrivalSource {
    /// The next arrival, or `None` when the stream is exhausted.
    fn next_arrival(&mut self) -> Option<Arrival>;
}

/// Open-loop Poisson arrivals over an [`ArrivalSpec`].
pub struct PoissonArrivals {
    spec: ArrivalSpec,
    seed: u64,
    rng: SmallRng,
    index: u64,
    clock: f64,
}

impl PoissonArrivals {
    /// A fresh stream; `seed` fixes both the interarrival draws and the
    /// request bodies.
    pub fn new(spec: ArrivalSpec, seed: u64) -> Self {
        assert!(spec.rate > 0.0, "arrival rate must be positive");
        Self {
            spec,
            seed,
            rng: SmallRng::seed_from_u64(seed ^ 0x0a11_4a15_5e0f_ace5),
            index: 0,
            clock: 0.0,
        }
    }
}

impl ArrivalSource for PoissonArrivals {
    fn next_arrival(&mut self) -> Option<Arrival> {
        self.clock += exponential(&mut self.rng, 1.0 / self.spec.rate);
        // `request_at` records the `generated` flight event under key
        // `index`, so the stream index is the lifecycle correlation key.
        let batch = self.spec.request_at(self.seed, self.index);
        let holding = self.spec.lifetime_at(self.seed, self.index);
        let key = self.index;
        self.index += 1;
        Some(Arrival {
            at: SimTime::new(self.clock),
            batch,
            holding,
            key,
        })
    }
}

/// Replays the arrival pattern of a recorded [`EventLog`].
pub struct TraceArrivals {
    /// (time, vm count, holding time), in trace order.
    entries: std::vec::IntoIter<(f64, usize, f64)>,
    spec: ArrivalSpec,
    seed: u64,
    index: u64,
}

impl TraceArrivals {
    /// Builds the replay stream. Each `request_arrived` event at window
    /// `w` becomes an arrival at `w × window_length` with the same VM
    /// count (bodies re-drawn from `template`); its holding time spans to
    /// the tenant's logged departure, or to the end of the trace when the
    /// tenant never departed.
    pub fn from_log(log: &EventLog, window_length: f64, template: RequestSpec, seed: u64) -> Self {
        assert!(window_length > 0.0);
        let mut arrivals: Vec<(u64, u64, usize)> = Vec::new(); // (window, tenant, vms)
        let mut departures: Vec<(u64, u64)> = Vec::new(); // (tenant, window)
        let mut last_window = 0u64;
        for e in log.events() {
            match e {
                Event::RequestArrived {
                    window,
                    tenant,
                    vms,
                } => {
                    arrivals.push((*window, tenant.0, *vms));
                    last_window = last_window.max(*window);
                }
                Event::TenantDeparted { window, tenant } => {
                    departures.push((tenant.0, *window));
                    last_window = last_window.max(*window);
                }
                Event::WindowClosed { window, .. } => last_window = last_window.max(*window),
                _ => {}
            }
        }
        let horizon = (last_window + 1) as f64 * window_length;
        let entries: Vec<(f64, usize, f64)> = arrivals
            .into_iter()
            .map(|(w, tenant, vms)| {
                let at = w as f64 * window_length;
                let holding = departures
                    .iter()
                    .find(|&&(t, _)| t == tenant)
                    .map(|&(_, dep)| (dep.saturating_sub(w)).max(1) as f64 * window_length)
                    .unwrap_or(horizon - at);
                (at, vms.max(1), holding)
            })
            .collect();
        Self {
            entries: entries.into_iter(),
            spec: ArrivalSpec {
                request: template,
                ..ArrivalSpec::default()
            },
            seed,
            index: 0,
        }
    }
}

impl ArrivalSource for TraceArrivals {
    fn next_arrival(&mut self) -> Option<Arrival> {
        let (at, vms, holding) = self.entries.next()?;
        // The same constructor the live path uses, with the size pinned
        // to the logged VM count — identical sub-seed derivation and
        // flight-recorder minting, so replayed timelines are gap-free.
        let batch = self.spec.replayed_request_at(self.seed, self.index, vms);
        let key = self.index;
        self.index += 1;
        Some(Arrival {
            at: SimTime::new(at),
            batch,
            holding,
            key,
        })
    }
}

/// Exponential server uptime/downtime sampling (MTBF / MTTR).
pub struct FailureProcess {
    mtbf: f64,
    mttr: f64,
    rng: SmallRng,
}

impl FailureProcess {
    /// A per-fleet process: mean time between failures and mean time to
    /// repair, in sim-time units.
    pub fn new(mtbf: f64, mttr: f64, seed: u64) -> Self {
        assert!(mtbf > 0.0 && mttr > 0.0);
        Self {
            mtbf,
            mttr,
            rng: SmallRng::seed_from_u64(seed ^ 0xfa11_0ff5_e7d0_0d1e),
        }
    }

    /// Time until the next failure of a healthy server.
    pub fn next_uptime(&mut self) -> f64 {
        exponential(&mut self.rng, self.mtbf)
    }

    /// Time until a failed server is repaired.
    pub fn next_downtime(&mut self) -> f64 {
        exponential(&mut self.rng, self.mttr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_interarrivals_are_positive_and_mean_tracks_rate() {
        let spec = ArrivalSpec {
            rate: 2.0,
            ..Default::default()
        };
        let mut src = PoissonArrivals::new(spec, 5);
        let mut last = 0.0;
        let mut times = Vec::new();
        for i in 0..2_000u64 {
            let arr = src.next_arrival().unwrap();
            assert!(arr.at.as_f64() > last);
            assert_eq!(arr.batch.request_count(), 1);
            assert!(arr.holding >= 0.0);
            assert_eq!(arr.key, i, "keys are the stream index");
            times.push(arr.at.as_f64() - last);
            last = arr.at.as_f64();
        }
        let mean = times.iter().sum::<f64>() / times.len() as f64;
        // λ = 2 ⇒ mean interarrival 0.5; allow generous sampling noise.
        assert!((0.4..0.6).contains(&mean), "{mean}");
    }

    #[test]
    fn poisson_stream_is_deterministic() {
        let spec = ArrivalSpec::default();
        let mut a = PoissonArrivals::new(spec.clone(), 9);
        let mut b = PoissonArrivals::new(spec, 9);
        for _ in 0..50 {
            let x = a.next_arrival().unwrap();
            let y = b.next_arrival().unwrap();
            assert_eq!(x.at, y.at);
            assert_eq!(x.holding, y.holding);
            assert_eq!(x.key, y.key);
            assert_eq!(x.batch.vm_count(), y.batch.vm_count());
        }
    }

    #[test]
    fn failure_process_samples_positive() {
        let mut f = FailureProcess::new(100.0, 5.0, 3);
        for _ in 0..100 {
            assert!(f.next_uptime() > 0.0);
            assert!(f.next_downtime() > 0.0);
        }
    }
}
