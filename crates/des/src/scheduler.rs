//! The continuous-time cyclic-window scheduler.
//!
//! [`WindowedScheduler`] accumulates arrivals from an [`ArrivalSource`]
//! into cyclic windows of `window_length` sim-time units and, at each
//! window boundary, hands the accumulated batch to any
//! [`cpo_core::prelude::Allocator`] through the shared
//! [`WindowExecutor`]. The solve's latency — measured wall clock or a
//! deterministic model — feeds back into the timeline:
//!
//! * every request decided in a window waits until `boundary + latency`
//!   for its admission (or rejection), so a slow allocator directly
//!   raises mean request waiting time;
//! * the next window cannot open before the solve finishes: when
//!   `latency > window_length` the boundary slips, arrivals pile up and
//!   the queueing delay compounds — the paper's execution-time figures
//!   (Fig. 7/8) becoming admission latency.
//!
//! Tenant departures and server failures/repairs are ordinary events on
//! the same queue, interleaved deterministically with arrivals and
//! boundaries (FIFO among equal timestamps).

use crate::queue::EventQueue;
use crate::sources::{ArrivalSource, FailureProcess};
use crate::time::SimTime;
use cpo_core::prelude::Allocator;
use cpo_model::prelude::*;
use cpo_platform::prelude::{
    FleetExecutor, LifetimePolicy, ShardBackend, ShardedScheduler, SimConfig, TenantId,
    WindowExecutor, WindowReport,
};
use cpo_platform::tenant::rebase_rules;

/// How a window's solve time becomes simulation latency.
#[derive(Clone, Copy, Debug)]
pub enum LatencyModel {
    /// Use the measured wall-clock solve time, scaled by the given factor
    /// (sim-time units per wall-clock second). Realistic but
    /// non-deterministic across machines.
    Measured(f64),
    /// A constant latency per window — deterministic, for tests and
    /// what-if studies ("what if the solver always took half a window?").
    Fixed(f64),
    /// Latency affine in the window's problem size: `base +
    /// per_request × requests`. Deterministic; mirrors the paper's
    /// observation that solve time grows with the request count.
    PerRequest {
        /// Constant part per solve.
        base: f64,
        /// Additional latency per request in the window problem.
        per_request: f64,
    },
}

impl LatencyModel {
    fn latency(&self, report: &WindowReport, problem_requests: usize) -> f64 {
        match *self {
            LatencyModel::Measured(scale) => report.solve_time.as_secs_f64() * scale,
            LatencyModel::Fixed(l) => l,
            LatencyModel::PerRequest { base, per_request } => {
                base + per_request * problem_requests as f64
            }
        }
    }
}

/// Server failure/repair configuration for the continuous-time driver.
#[derive(Clone, Copy, Debug)]
pub struct FailureSpec {
    /// Mean time between failures per server, in sim-time units.
    pub mtbf: f64,
    /// Mean time to repair, in sim-time units.
    pub mttr: f64,
}

/// Scheduler configuration.
#[derive(Clone, Debug)]
pub struct DesConfig {
    /// Window length in sim-time units.
    pub window_length: f64,
    /// Solve-latency feedback model.
    pub latency: LatencyModel,
    /// Optional per-server failure/repair processes.
    pub failures: Option<FailureSpec>,
    /// Master seed for the failure processes (arrival streams carry their
    /// own seeds).
    pub seed: u64,
    /// Optional *wall-clock* budget per window solve. When set, the
    /// allocator is wrapped in [`DeadlineBound`](cpo_core::prelude::DeadlineBound)
    /// for every window close, so anytime members (tabu polish, racing
    /// portfolios, CP admission) cut their search at the deadline and
    /// return their best incumbent instead of overrunning the window.
    /// `None` (the default) leaves the allocator unbounded.
    pub solve_deadline: Option<std::time::Duration>,
}

impl Default for DesConfig {
    fn default() -> Self {
        Self {
            window_length: 1.0,
            latency: LatencyModel::Measured(1.0),
            failures: None,
            seed: 0,
            solve_deadline: None,
        }
    }
}

/// Events on the kernel queue.
enum DesEvent {
    /// A request arrived (payload drawn from the arrival source).
    Arrival {
        batch: RequestBatch,
        holding: f64,
        key: u64,
    },
    /// A tenant's holding time expired.
    Departure(TenantId),
    /// A server went down.
    ServerFailure(ServerId),
    /// A server came back.
    ServerRepair(ServerId),
    /// End of a cyclic window: solve and apply.
    WindowBoundary,
}

/// Request waiting-time statistics (arrival → admission/rejection
/// decision taking effect).
#[derive(Clone, Copy, Debug, Default)]
pub struct WaitingStats {
    /// Requests decided.
    pub count: usize,
    /// Sum of waiting times.
    pub total: f64,
    /// Worst waiting time.
    pub max: f64,
}

impl WaitingStats {
    fn observe(&mut self, wait: f64) {
        self.count += 1;
        self.total += wait;
        self.max = self.max.max(wait);
    }

    /// Mean waiting time over all decided requests (0 when none).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total / self.count as f64
        }
    }
}

/// Aggregate result of a continuous-time run.
#[derive(Debug, Default)]
pub struct DesReport {
    /// Per-window reports, in window order.
    pub windows: Vec<WindowReport>,
    /// Request waiting times (arrival to decision effect).
    pub waiting: WaitingStats,
    /// Simulation clock when the run stopped.
    pub end_time: f64,
}

impl DesReport {
    /// Total admitted requests.
    pub fn total_admitted(&self) -> usize {
        self.windows.iter().map(|w| w.admitted).sum()
    }

    /// Total rejected requests.
    pub fn total_rejected(&self) -> usize {
        self.windows.iter().map(|w| w.rejected).sum()
    }
}

/// One pending (not yet solved) arrival.
struct PendingArrival {
    at: SimTime,
    batch: RequestBatch,
    holding: f64,
    /// Flight-recorder correlation key (the source's stream index).
    key: u64,
}

/// The window-engine surface [`WindowedScheduler`] drives: everything the
/// continuous-time loop needs from a platform, abstracted so the same
/// scheduler runs over the full reconfiguration engine
/// ([`WindowExecutor`]) or the streaming admission-only one
/// ([`FleetExecutor`]).
pub trait WindowBackend {
    /// Assigns sequential tenant ids to an arrival batch.
    fn register_arrivals(&mut self, arrivals: &RequestBatch) -> Vec<TenantId>;
    /// Binds tenant ids to flight-recorder correlation keys.
    fn bind_request_keys(&mut self, ids: &[TenantId], keys: &[u64]);
    /// Solves one window over the registered arrivals; departures are
    /// external (the scheduler owns holding times).
    fn execute_window(
        &mut self,
        allocator: &dyn Allocator,
        arrivals: &RequestBatch,
        ids: &[TenantId],
    ) -> (WindowReport, Vec<TenantId>);
    /// Removes one resident tenant; `false` when not resident.
    fn depart_tenant(&mut self, id: TenantId) -> bool;
    /// Marks a server failed; `false` when already offline.
    fn force_failure(&mut self, server: ServerId) -> bool;
    /// Repairs a server; `false` when already healthy.
    fn force_repair(&mut self, server: ServerId) -> bool;
    /// Number of servers `m`.
    fn server_count(&self) -> usize;
    /// Requests currently resident (sizes the window problem for the
    /// per-request latency model).
    fn resident_requests(&self) -> usize;
}

impl WindowBackend for WindowExecutor {
    fn register_arrivals(&mut self, arrivals: &RequestBatch) -> Vec<TenantId> {
        WindowExecutor::register_arrivals(self, arrivals)
    }

    fn bind_request_keys(&mut self, ids: &[TenantId], keys: &[u64]) {
        WindowExecutor::bind_request_keys(self, ids, keys)
    }

    fn execute_window(
        &mut self,
        allocator: &dyn Allocator,
        arrivals: &RequestBatch,
        ids: &[TenantId],
    ) -> (WindowReport, Vec<TenantId>) {
        self.execute(allocator, arrivals, ids, LifetimePolicy::External)
    }

    fn depart_tenant(&mut self, id: TenantId) -> bool {
        WindowExecutor::depart_tenant(self, id)
    }

    fn force_failure(&mut self, server: ServerId) -> bool {
        WindowExecutor::force_failure(self, server)
    }

    fn force_repair(&mut self, server: ServerId) -> bool {
        WindowExecutor::force_repair(self, server)
    }

    fn server_count(&self) -> usize {
        self.infra().server_count()
    }

    fn resident_requests(&self) -> usize {
        self.tenants().len()
    }
}

impl WindowBackend for FleetExecutor {
    fn register_arrivals(&mut self, arrivals: &RequestBatch) -> Vec<TenantId> {
        FleetExecutor::register_arrivals(self, arrivals)
    }

    fn bind_request_keys(&mut self, ids: &[TenantId], keys: &[u64]) {
        FleetExecutor::bind_request_keys(self, ids, keys)
    }

    fn execute_window(
        &mut self,
        allocator: &dyn Allocator,
        arrivals: &RequestBatch,
        ids: &[TenantId],
    ) -> (WindowReport, Vec<TenantId>) {
        FleetExecutor::execute_window(self, allocator, arrivals, ids)
    }

    fn depart_tenant(&mut self, id: TenantId) -> bool {
        FleetExecutor::depart_tenant(self, id)
    }

    fn force_failure(&mut self, server: ServerId) -> bool {
        FleetExecutor::force_failure(self, server)
    }

    fn force_repair(&mut self, server: ServerId) -> bool {
        FleetExecutor::force_repair(self, server)
    }

    fn server_count(&self) -> usize {
        FleetExecutor::server_count(self)
    }

    fn resident_requests(&self) -> usize {
        FleetExecutor::resident_requests(self)
    }
}

/// A sharded engine plugs straight into the DES loop: the window solve
/// runs the snapshot → solve → optimistic-commit protocol of
/// [`ShardedScheduler::execute_window`], everything else delegates to
/// the wrapped backend. Under the DES clock the reported solve time is
/// the sharded critical path, so latency feedback and throughput
/// metrics see the parallel speedup even on a serial host.
impl<B: ShardBackend> WindowBackend for ShardedScheduler<B> {
    fn register_arrivals(&mut self, arrivals: &RequestBatch) -> Vec<TenantId> {
        self.backend_mut().register_arrivals(arrivals)
    }

    fn bind_request_keys(&mut self, ids: &[TenantId], keys: &[u64]) {
        self.backend_mut().bind_request_keys(ids, keys)
    }

    fn execute_window(
        &mut self,
        allocator: &dyn Allocator,
        arrivals: &RequestBatch,
        ids: &[TenantId],
    ) -> (WindowReport, Vec<TenantId>) {
        ShardedScheduler::execute_window(self, allocator, arrivals, ids)
    }

    fn depart_tenant(&mut self, id: TenantId) -> bool {
        self.backend_mut().depart_tenant(id)
    }

    fn force_failure(&mut self, server: ServerId) -> bool {
        self.backend_mut().force_failure(server)
    }

    fn force_repair(&mut self, server: ServerId) -> bool {
        self.backend_mut().force_repair(server)
    }

    fn server_count(&self) -> usize {
        self.backend().server_count()
    }

    fn resident_requests(&self) -> usize {
        self.backend().resident_requests()
    }
}

/// The continuous-time window scheduler over any [`WindowBackend`]
/// (defaulting to the full-reconfiguration [`WindowExecutor`]).
pub struct WindowedScheduler<S: ArrivalSource, B: WindowBackend = WindowExecutor> {
    exec: B,
    queue: EventQueue<DesEvent>,
    source: S,
    config: DesConfig,
    pending: Vec<PendingArrival>,
    failures: Option<FailureProcess>,
}

impl<S: ArrivalSource> WindowedScheduler<S, WindowExecutor> {
    /// Builds the scheduler over a [`WindowExecutor`]. `sim_config`'s
    /// arrival spec and lifetime range are unused here (the arrival
    /// source owns both); its seed drives the executor RNG, unused under
    /// external lifetimes, so any value is fine.
    pub fn new(infra: Infrastructure, sim_config: SimConfig, config: DesConfig, source: S) -> Self {
        Self::with_backend(WindowExecutor::new(infra, sim_config), config, source)
    }

    /// The underlying executor (event log, tenants, SLA ledger).
    pub fn executor(&self) -> &WindowExecutor {
        &self.exec
    }
}

impl<S: ArrivalSource, B: WindowBackend> WindowedScheduler<S, B> {
    /// Builds the scheduler over an explicit backend — e.g. a
    /// [`FleetExecutor`] for production-scale trace replay.
    pub fn with_backend(backend: B, config: DesConfig, source: S) -> Self {
        assert!(config.window_length > 0.0, "window length must be positive");
        Self {
            exec: backend,
            queue: EventQueue::new(),
            source,
            config,
            pending: Vec::new(),
            failures: None,
        }
    }

    /// The backend.
    pub fn backend(&self) -> &B {
        &self.exec
    }

    /// Consumes the scheduler, returning the backend for post-run
    /// inspection (residual tables, store metrics, tenant state).
    pub fn into_backend(self) -> B {
        self.exec
    }

    /// The arrival source.
    pub fn source(&self) -> &S {
        &self.source
    }

    /// Current simulation clock.
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// Pulls the next arrival from the source onto the queue.
    fn schedule_next_arrival(&mut self, horizon: f64) {
        if let Some(arr) = self.source.next_arrival() {
            if arr.at.as_f64() <= horizon {
                self.queue.schedule(
                    arr.at,
                    DesEvent::Arrival {
                        batch: arr.batch,
                        holding: arr.holding,
                        key: arr.key,
                    },
                );
            }
        }
    }

    /// Runs until the simulation clock passes `horizon`.
    pub fn run(&mut self, allocator: &dyn Allocator, horizon: f64) -> DesReport {
        assert!(horizon > 0.0);
        let mut report = DesReport::default();

        // Prime the event chains: first arrival, first boundary, and one
        // failure process per server when configured.
        self.schedule_next_arrival(horizon);
        self.queue.schedule(
            SimTime::new(self.config.window_length),
            DesEvent::WindowBoundary,
        );
        if let Some(spec) = self.config.failures {
            let mut proc = FailureProcess::new(spec.mtbf, spec.mttr, self.config.seed);
            for j in 0..self.exec.server_count() {
                let up = proc.next_uptime();
                if up <= horizon {
                    self.queue
                        .schedule(SimTime::new(up), DesEvent::ServerFailure(ServerId(j)));
                }
            }
            self.failures = Some(proc);
        }

        while let Some(t) = self.queue.peek_time() {
            if t.as_f64() > horizon {
                break;
            }
            let (now, event) = self.queue.pop().expect("peeked");
            match event {
                DesEvent::Arrival {
                    batch,
                    holding,
                    key,
                } => {
                    cpo_obs::flight::record(
                        cpo_obs::flight::FlightKind::Arrived,
                        key,
                        cpo_obs::flight::NONE,
                        sim_us(now.as_f64()),
                        batch.vm_count() as u64,
                    );
                    self.pending.push(PendingArrival {
                        at: now,
                        batch,
                        holding,
                        key,
                    });
                    self.schedule_next_arrival(horizon);
                }
                DesEvent::Departure(id) => {
                    self.exec.depart_tenant(id);
                }
                DesEvent::ServerFailure(server) => {
                    self.exec.force_failure(server);
                    if let Some(proc) = &mut self.failures {
                        let down = proc.next_downtime();
                        self.queue
                            .schedule(now + down, DesEvent::ServerRepair(server));
                    }
                }
                DesEvent::ServerRepair(server) => {
                    self.exec.force_repair(server);
                    if let Some(proc) = &mut self.failures {
                        let up = proc.next_uptime();
                        self.queue
                            .schedule(now + up, DesEvent::ServerFailure(server));
                    }
                }
                DesEvent::WindowBoundary => {
                    self.close_window(allocator, now, &mut report);
                }
            }
        }
        report.end_time = self.queue.now().as_f64().min(horizon);
        report
    }

    /// Solves one window at boundary time `now` and feeds the solve
    /// latency back into the timeline.
    fn close_window(&mut self, allocator: &dyn Allocator, now: SimTime, report: &mut DesReport) {
        let mut sp = cpo_obs::span!("des.window", window = report.windows.len());
        cpo_obs::gauge_set("des.queue_depth", self.pending.len() as f64);
        let pending = std::mem::take(&mut self.pending);
        let (batch, arrival_times, holdings, keys) = merge_pending(&pending);
        let ids = self.exec.register_arrivals(&batch);
        // Bind correlation keys before the solve so admission, placement
        // and later per-tenant events carry the request uid.
        if cpo_obs::flight::is_enabled() {
            self.exec.bind_request_keys(&ids, &keys);
        }
        let problem_requests = self.exec.resident_requests() + batch.request_count();
        let (window_report, admitted) = match self.config.solve_deadline {
            Some(budget) => {
                let bounded = cpo_core::prelude::DeadlineBound::new(allocator, budget);
                self.exec.execute_window(&bounded, &batch, &ids)
            }
            None => self.exec.execute_window(allocator, &batch, &ids),
        };
        let latency = self
            .config
            .latency
            .latency(&window_report, problem_requests)
            .max(0.0);
        let effective = now + latency;

        // Every request decided this window waited from its arrival until
        // the solve finished.
        for at in &arrival_times {
            report.waiting.observe(effective - *at);
        }
        // Admitted tenants depart one holding time after admission.
        for id in &admitted {
            let pos = ids.iter().position(|t| t == id).expect("admitted ⊆ ids");
            self.queue
                .schedule(effective + holdings[pos], DesEvent::Departure(*id));
        }
        // The next window opens when both the cycle and the solve allow.
        let next = (now + self.config.window_length).max(effective);
        self.queue.schedule(next, DesEvent::WindowBoundary);
        sp.field("admitted", window_report.admitted)
            .field("rejected", window_report.rejected)
            .field("latency", latency);
        cpo_obs::gauge_set("des.solve_latency", latency);
        cpo_obs::record_value("des.solve_latency_us", (latency * 1e6) as u64);
        if latency > self.config.window_length {
            cpo_obs::counter_add("des.stretched_windows", 1);
        }
        // Sample every registry gauge/counter into the time-series bus at
        // this window index (the backend already emitted its fleet probe
        // inside execute_window). No-op unless series collection is on.
        cpo_obs::series::sample_registry(report.windows.len() as u64);
        report.windows.push(window_report);
    }
}

/// Sim-time as integer micro-units, the flight-event payload encoding.
fn sim_us(t: f64) -> u64 {
    (t.max(0.0) * 1e6).round() as u64
}

/// Merges single-request pending batches into one window batch, keeping
/// arrival order; returns the batch plus per-request arrival times,
/// holding times and correlation keys (indexed like the batch's
/// requests). A multi-request pending batch shares its arrival's key
/// across its requests only when it holds exactly one request (the
/// sources' invariant); extra requests get [`cpo_obs::flight::NONE`].
fn merge_pending(pending: &[PendingArrival]) -> (RequestBatch, Vec<SimTime>, Vec<f64>, Vec<u64>) {
    let mut batch = RequestBatch::new();
    let mut times = Vec::with_capacity(pending.len());
    let mut holdings = Vec::with_capacity(pending.len());
    let mut keys = Vec::with_capacity(pending.len());
    for p in pending {
        for (r, req) in p.batch.requests().iter().enumerate() {
            let base = batch.vm_count();
            let vms: Vec<VmSpec> = req.vms.iter().map(|&k| p.batch.vm(k).clone()).collect();
            let rules = rebase_rules(req)
                .into_iter()
                .map(|(kind, locals)| {
                    AffinityRule::new(kind, locals.iter().map(|&l| VmId(base + l)).collect())
                })
                .collect();
            batch.push_request(vms, rules);
            times.push(p.at);
            holdings.push(p.holding);
            keys.push(if r == 0 { p.key } else { cpo_obs::flight::NONE });
        }
    }
    (batch, times, holdings, keys)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sources::PoissonArrivals;
    use cpo_core::prelude::RoundRobinAllocator;
    use cpo_model::attr::AttrSet;
    use cpo_scenario::arrival_gen::ArrivalSpec;

    fn infra(servers: usize) -> Infrastructure {
        Infrastructure::new(
            AttrSet::standard(),
            vec![("dc".into(), ServerProfile::commodity(3).build_many(servers))],
        )
    }

    fn scheduler(
        servers: usize,
        rate: f64,
        latency: LatencyModel,
    ) -> WindowedScheduler<PoissonArrivals> {
        let spec = ArrivalSpec {
            rate,
            lifetime: (2.0, 5.0),
            ..Default::default()
        };
        let config = DesConfig {
            window_length: 1.0,
            latency,
            failures: None,
            seed: 7,
            solve_deadline: None,
        };
        WindowedScheduler::new(
            infra(servers),
            SimConfig::default(),
            config,
            PoissonArrivals::new(spec, 7),
        )
    }

    #[test]
    fn open_loop_run_admits_and_departs() {
        let mut s = scheduler(10, 3.0, LatencyModel::Fixed(0.0));
        let report = s.run(&RoundRobinAllocator, 30.0);
        assert!(!report.windows.is_empty());
        assert!(report.total_admitted() > 0, "arrivals must be admitted");
        let log = s.executor().log();
        let departed = log
            .events()
            .iter()
            .filter(|e| matches!(e, cpo_platform::prelude::Event::TenantDeparted { .. }))
            .count();
        assert!(departed > 0, "holding times must expire within horizon");
        assert!(s.executor().verify_state().is_feasible());
    }

    #[test]
    fn deterministic_per_seed() {
        let run = || {
            let mut s = scheduler(8, 2.0, LatencyModel::Fixed(0.1));
            let r = s.run(&RoundRobinAllocator, 25.0);
            (
                r.windows.iter().map(|w| w.admitted).collect::<Vec<_>>(),
                r.waiting.count,
                r.waiting.total,
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn solve_deadline_reaches_the_allocator() {
        // An already-expired budget makes the deadline-aware CP
        // allocator reject every request as admission control; without
        // the budget the same runs admit. This proves close_window
        // actually threads the deadline through to the solve.
        let run = |solve_deadline| {
            let spec = ArrivalSpec {
                rate: 3.0,
                lifetime: (2.0, 5.0),
                ..Default::default()
            };
            let config = DesConfig {
                window_length: 1.0,
                latency: LatencyModel::Fixed(0.0),
                failures: None,
                seed: 7,
                solve_deadline,
            };
            let mut s = WindowedScheduler::new(
                infra(10),
                SimConfig::default(),
                config,
                PoissonArrivals::new(spec, 7),
            );
            s.run(&cpo_core::prelude::CpAllocator::default(), 10.0)
                .total_admitted()
        };
        assert!(run(None) > 0, "unbounded CP must admit");
        assert_eq!(
            run(Some(std::time::Duration::ZERO)),
            0,
            "expired budget must turn every solve into clean rejections"
        );
    }

    #[test]
    fn zero_latency_waits_are_bounded_by_window_length() {
        let mut s = scheduler(10, 3.0, LatencyModel::Fixed(0.0));
        let report = s.run(&RoundRobinAllocator, 20.0);
        assert!(report.waiting.count > 0);
        // With instant solves a request waits at most one full window
        // (arrive just after a boundary, decided at the next).
        assert!(
            report.waiting.max <= 1.0 + 1e-9,
            "max wait {} exceeds the window",
            report.waiting.max
        );
    }

    #[test]
    fn slower_solves_raise_waiting_time() {
        let fast = {
            let mut s = scheduler(10, 3.0, LatencyModel::Fixed(0.01));
            s.run(&RoundRobinAllocator, 40.0)
        };
        let slow = {
            let mut s = scheduler(10, 3.0, LatencyModel::Fixed(1.5));
            s.run(&RoundRobinAllocator, 40.0)
        };
        assert!(fast.waiting.count > 0 && slow.waiting.count > 0);
        assert!(
            slow.waiting.mean() > fast.waiting.mean() + 1.0,
            "latency 1.5 (mean wait {:.3}) must dominate latency 0.01 (mean wait {:.3})",
            slow.waiting.mean(),
            fast.waiting.mean()
        );
        // A solve longer than the window also stretches the cycle: fewer
        // windows fit in the same horizon.
        assert!(slow.windows.len() < fast.windows.len());
    }

    #[test]
    fn failures_interleave_with_windows() {
        let spec = ArrivalSpec {
            rate: 2.0,
            lifetime: (3.0, 6.0),
            ..Default::default()
        };
        let config = DesConfig {
            window_length: 1.0,
            latency: LatencyModel::Fixed(0.0),
            failures: Some(FailureSpec {
                mtbf: 10.0,
                mttr: 2.0,
            }),
            seed: 3,
            solve_deadline: None,
        };
        let mut s = WindowedScheduler::new(
            infra(8),
            SimConfig::default(),
            config,
            PoissonArrivals::new(spec, 3),
        );
        let report = s.run(&RoundRobinAllocator, 40.0);
        let log = s.executor().log();
        assert!(log.failure_count() > 0, "MTBF 10 over 40 units must fail");
        let repaired = log
            .events()
            .iter()
            .any(|e| matches!(e, cpo_platform::prelude::Event::ServerRepaired { .. }));
        assert!(repaired, "MTTR 2 must repair within horizon");
        assert!(report.windows.iter().any(|w| w.offline_servers > 0));
        assert!(s.executor().verify_state().is_feasible());
    }

    #[test]
    fn fleet_backend_runs_the_same_loop() {
        let spec = ArrivalSpec {
            rate: 3.0,
            lifetime: (2.0, 5.0),
            ..Default::default()
        };
        let config = DesConfig {
            window_length: 1.0,
            latency: LatencyModel::Fixed(0.0),
            failures: None,
            seed: 7,
            solve_deadline: None,
        };
        let mut s = WindowedScheduler::with_backend(
            FleetExecutor::new(infra(10)),
            config,
            PoissonArrivals::new(spec, 7),
        );
        let report = s.run(&RoundRobinAllocator, 30.0);
        assert!(!report.windows.is_empty());
        assert!(report.total_admitted() > 0);
        assert!(report.windows.iter().all(|w| w.migrations == 0));
        assert!(s.backend().verify().is_ok());
        // Holding times expire inside the horizon, so the fleet drains.
        let resident = s.backend().resident_requests();
        assert!(
            resident < report.total_admitted(),
            "some tenants must have departed"
        );
    }

    #[test]
    fn per_request_latency_tracks_problem_size() {
        let mut s = scheduler(
            10,
            4.0,
            LatencyModel::PerRequest {
                base: 0.05,
                per_request: 0.02,
            },
        );
        let report = s.run(&RoundRobinAllocator, 30.0);
        assert!(report.waiting.count > 0);
        // Affine latency is strictly positive, so waits exceed the
        // zero-latency bound somewhere.
        assert!(report.waiting.mean() > 0.05);
    }
}
