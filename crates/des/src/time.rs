//! Continuous simulation time.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point on the simulation clock, in abstract time units (a scenario
/// decides whether a unit is a second or a scheduling quantum). Always
/// finite; ordering is total.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SimTime(f64);

impl SimTime {
    /// The epoch.
    pub const ZERO: SimTime = SimTime(0.0);

    /// Wraps a finite number of time units.
    ///
    /// # Panics
    /// When `t` is NaN, infinite or negative — none of these are points
    /// on a simulation clock.
    pub fn new(t: f64) -> Self {
        assert!(t.is_finite() && t >= 0.0, "invalid sim time: {t}");
        SimTime(t)
    }

    /// The raw value in time units.
    pub fn as_f64(self) -> f64 {
        self.0
    }
}

impl Eq for SimTime {}

impl PartialOrd for SimTime {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for SimTime {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Values are always finite (checked at construction), so
        // total_cmp agrees with the usual order.
        self.0.total_cmp(&other.0)
    }
}

impl Add<f64> for SimTime {
    type Output = SimTime;
    fn add(self, dt: f64) -> SimTime {
        SimTime::new(self.0 + dt)
    }
}

impl AddAssign<f64> for SimTime {
    fn add_assign(&mut self, dt: f64) {
        *self = *self + dt;
    }
}

impl Sub for SimTime {
    type Output = f64;
    fn sub(self, earlier: SimTime) -> f64 {
        self.0 - earlier.0
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.3}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_and_arithmetic() {
        let a = SimTime::new(1.0);
        let b = a + 0.5;
        assert!(b > a);
        assert_eq!(b - a, 0.5);
        assert_eq!(SimTime::ZERO.as_f64(), 0.0);
    }

    #[test]
    #[should_panic(expected = "invalid sim time")]
    fn nan_rejected() {
        SimTime::new(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "invalid sim time")]
    fn negative_rejected() {
        SimTime::new(-1.0);
    }
}
