//! Property tests for the kernel's determinism guarantees.

use cpo_core::prelude::RoundRobinAllocator;
use cpo_des::prelude::*;
use cpo_model::attr::AttrSet;
use cpo_model::prelude::*;
use cpo_platform::prelude::{EventLog, SimConfig};
use cpo_scenario::arrival_gen::ArrivalSpec;
use proptest::collection::vec;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary interleavings of a few distinct timestamps pop in
    /// timestamp order, FIFO among equal stamps — i.e. exactly a stable
    /// sort of the insertion sequence by time.
    #[test]
    fn same_timestamp_events_pop_fifo(stamps in vec(0u8..5, 1..120)) {
        let mut q = EventQueue::new();
        for (i, &s) in stamps.iter().enumerate() {
            q.schedule(SimTime::new(f64::from(s)), (s, i));
        }
        let mut expected: Vec<(u8, usize)> =
            stamps.iter().copied().enumerate().map(|(i, s)| (s, i)).collect();
        expected.sort_by_key(|&(s, _)| s); // stable: preserves insertion order per stamp
        let popped: Vec<(u8, usize)> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        prop_assert_eq!(popped, expected);
    }

    /// A DES-produced trace survives the JSON-lines round trip intact.
    #[test]
    fn event_log_roundtrips_des_traces(seed in 0u64..1_000, rate_steps in 1u32..6) {
        let infra = Infrastructure::new(
            AttrSet::standard(),
            vec![("dc".into(), ServerProfile::commodity(3).build_many(6))],
        );
        let arrivals = PoissonArrivals::new(
            ArrivalSpec { rate: f64::from(rate_steps), lifetime: (1.0, 3.0), ..Default::default() },
            seed,
        );
        let des = DesConfig {
            latency: LatencyModel::Fixed(0.05),
            failures: Some(FailureSpec { mtbf: 8.0, mttr: 2.0 }),
            seed,
            ..Default::default()
        };
        let mut sched = WindowedScheduler::new(infra, SimConfig::default(), des, arrivals);
        sched.run(&RoundRobinAllocator, 6.0);

        let trace = sched.executor().log().to_json_lines();
        let parsed = EventLog::from_json_lines(&trace).expect("own trace must parse");
        prop_assert_eq!(parsed.events(), sched.executor().log().events());
        prop_assert_eq!(parsed.to_json_lines(), trace);
    }
}
