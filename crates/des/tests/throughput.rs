//! Release-mode throughput gate: the kernel queue must sustain at least
//! one million synthetic events per second (the `micro_des` benchmark
//! measures the same loop). Debug builds run the churn for correctness
//! but skip the rate assertion.

use cpo_des::queue::synthetic_churn;
use std::time::Instant;

#[test]
fn queue_sustains_a_million_events_per_second() {
    // Warm up allocator and caches.
    synthetic_churn(100_000, 1024, 0x5eed);

    let n = 1_000_000usize;
    let start = Instant::now();
    let processed = synthetic_churn(n, 1024, 0x5eed);
    let secs = start.elapsed().as_secs_f64();
    assert_eq!(processed, n as u64);

    let rate = n as f64 / secs;
    eprintln!("synthetic churn: {rate:.0} events/sec");
    if cfg!(debug_assertions) {
        return; // the bar is a release-mode bar
    }
    assert!(
        rate >= 1_000_000.0,
        "kernel throughput {rate:.0} events/sec is below the 1M bar"
    );
}
