//! The fixed-window DES adapter must reproduce `PlatformSim` exactly:
//! same seed, same infrastructure, same config ⇒ same per-window
//! admissions and migrations (and the same event log), because both
//! drive the shared `WindowExecutor` phases in the same order.

use cpo_core::prelude::{CpAllocator, RoundRobinAllocator};
use cpo_des::prelude::FixedWindowAdapter;
use cpo_model::attr::AttrSet;
use cpo_model::prelude::*;
use cpo_platform::prelude::{PlatformSim, SimConfig};
use cpo_scenario::request_gen::RequestSpec;

fn infra(servers: usize) -> Infrastructure {
    Infrastructure::new(
        AttrSet::standard(),
        vec![("dc".into(), ServerProfile::commodity(3).build_many(servers))],
    )
}

fn config(vms: usize, seed: u64, failure_prob: f64) -> SimConfig {
    SimConfig {
        arrivals: RequestSpec {
            total_vms: vms,
            ..Default::default()
        },
        lifetime: (2, 5),
        seed,
        server_failure_prob: failure_prob,
        repair_windows: 2,
    }
}

#[test]
fn adapter_reproduces_platform_sim_admissions_and_migrations() {
    for seed in [1u64, 7, 42] {
        let cfg = config(8, seed, 0.0);
        let mut fixed = PlatformSim::new(infra(8), cfg.clone());
        let mut des = FixedWindowAdapter::new(infra(8), cfg, 1.0);
        let a = fixed.run(&RoundRobinAllocator, 8);
        let b = des.run(&RoundRobinAllocator, 8);
        assert_eq!(a.windows.len(), b.windows.len());
        for (x, y) in a.windows.iter().zip(&b.windows) {
            assert_eq!(x.window, y.window, "seed {seed}");
            assert_eq!(x.arrivals, y.arrivals, "seed {seed} window {}", x.window);
            assert_eq!(x.admitted, y.admitted, "seed {seed} window {}", x.window);
            assert_eq!(x.rejected, y.rejected, "seed {seed} window {}", x.window);
            assert_eq!(
                x.migrations, y.migrations,
                "seed {seed} window {}",
                x.window
            );
            assert_eq!(
                x.running_tenants, y.running_tenants,
                "seed {seed} window {}",
                x.window
            );
        }
    }
}

#[test]
fn adapter_reproduces_platform_sim_under_failures() {
    let cfg = config(6, 13, 0.6);
    let mut fixed = PlatformSim::new(infra(6), cfg.clone());
    let mut des = FixedWindowAdapter::new(infra(6), cfg, 2.0);
    let a = fixed.run(&CpAllocator::default(), 6);
    let b = des.run(&CpAllocator::default(), 6);
    for (x, y) in a.windows.iter().zip(&b.windows) {
        assert_eq!(x.admitted, y.admitted, "window {}", x.window);
        assert_eq!(x.migrations, y.migrations, "window {}", x.window);
        assert_eq!(x.offline_servers, y.offline_servers, "window {}", x.window);
        assert_eq!(x.stranded_vms, y.stranded_vms, "window {}", x.window);
    }
    // The whole event history matches, timestamp layer aside.
    assert_eq!(
        fixed.log().to_json_lines(),
        des.executor().log().to_json_lines()
    );
}
