//! Property-based tests of the spine-leaf fabric: connectivity, path
//! validity, reservation conservation.

use cpo_topology::{build_spine_leaf, LinkId, SpineLeafSpec};
use proptest::prelude::*;

fn spec_strategy() -> impl Strategy<Value = SpineLeafSpec> {
    (1usize..4, 1usize..5, 1usize..6).prop_map(|(spines, leaves, per_leaf)| SpineLeafSpec {
        spines,
        leaves,
        servers_per_leaf: per_leaf,
        cores: 1,
        ..Default::default()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every pair of servers is connected, and the returned path is a
    /// valid walk between them.
    #[test]
    fn all_server_pairs_connected(spec in spec_strategy()) {
        let pod = build_spine_leaf(&spec);
        let servers = &pod.servers;
        for (i, &a) in servers.iter().enumerate() {
            for &b in servers.iter().skip(i + 1) {
                let path = pod.fabric.shortest_path(a, b, 0.0)
                    .expect("spine-leaf pods are connected");
                // Walk the path: consecutive links must chain from a to b.
                let mut at = a;
                for lid in &path {
                    at = pod.fabric.link(*lid).other(at)
                        .expect("path link not incident to walk position");
                }
                prop_assert_eq!(at, b);
            }
        }
    }

    /// Same-rack paths are 2 hops; cross-rack are exactly 4 (leaf-spine-leaf).
    #[test]
    fn hop_counts_match_the_architecture(spec in spec_strategy()) {
        let pod = build_spine_leaf(&spec);
        for (i, &a) in pod.servers.iter().enumerate() {
            for &b in pod.servers.iter().skip(i + 1) {
                let hops = pod.fabric.shortest_path(a, b, 0.0).unwrap().len();
                let same_rack = pod.rack_of(a) == pod.rack_of(b);
                if same_rack {
                    prop_assert_eq!(hops, 2, "same-rack via the leaf");
                } else {
                    prop_assert_eq!(hops, 4, "cross-rack via one spine");
                }
            }
        }
    }

    /// Admit + release conserves bandwidth exactly.
    #[test]
    fn reservation_conservation(spec in spec_strategy(), bw in 1.0_f64..5_000.0) {
        let mut pod = build_spine_leaf(&spec);
        let a = pod.servers[0];
        let b = *pod.servers.last().unwrap();
        if a == b {
            return Ok(());
        }
        let before: f64 = (0..pod.fabric.link_count())
            .map(|l| pod.fabric.link(LinkId(l)).reserved)
            .sum();
        if let Some(path) = pod.fabric.admit_flow(a, b, bw) {
            let during: f64 = (0..pod.fabric.link_count())
                .map(|l| pod.fabric.link(LinkId(l)).reserved)
                .sum();
            prop_assert!((during - before - bw * path.len() as f64).abs() < 1e-6);
            pod.fabric.release_path(&path, bw);
        }
        let after: f64 = (0..pod.fabric.link_count())
            .map(|l| pod.fabric.link(LinkId(l)).reserved)
            .sum();
        prop_assert!((after - before).abs() < 1e-6);
    }

    /// Admission never overcommits any link.
    #[test]
    fn admission_never_overcommits(spec in spec_strategy(), flows in 1usize..30) {
        let mut pod = build_spine_leaf(&spec);
        let n = pod.servers.len();
        for f in 0..flows {
            let a = pod.servers[f % n];
            let b = pod.servers[(f * 7 + 3) % n];
            if a != b {
                let _ = pod.fabric.admit_flow(a, b, 3_000.0);
            }
        }
        for l in 0..pod.fabric.link_count() {
            let link = pod.fabric.link(LinkId(l));
            prop_assert!(link.reserved <= link.capacity + 1e-6);
        }
    }
}
