//! The spine-leaf fabric graph: adjacency, path computation, bandwidth
//! admission. This is the datacenter substrate of the paper's Fig. 1.

use crate::link::{Link, LinkId};
use crate::node::{Node, NodeId, Tier};

/// A datacenter network fabric (one per datacenter).
#[derive(Clone, Debug, Default)]
pub struct Fabric {
    nodes: Vec<Node>,
    links: Vec<Link>,
    /// `adjacency[n]` = links incident to node `n`.
    adjacency: Vec<Vec<LinkId>>,
}

impl Fabric {
    /// An empty fabric.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a node, returning its id.
    pub fn add_node(&mut self, node: Node) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(node);
        self.adjacency.push(Vec::new());
        id
    }

    /// Adds an undirected link, returning its id.
    ///
    /// # Panics
    /// Panics on self-loops or out-of-range endpoints.
    pub fn add_link(&mut self, a: NodeId, b: NodeId, capacity: f64) -> LinkId {
        assert_ne!(a, b, "self-loops are not allowed");
        assert!(a.index() < self.nodes.len() && b.index() < self.nodes.len());
        let id = LinkId(self.links.len());
        self.links.push(Link::new(a, b, capacity));
        self.adjacency[a.index()].push(id);
        self.adjacency[b.index()].push(id);
        id
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of links.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Node `n`.
    pub fn node(&self, n: NodeId) -> &Node {
        &self.nodes[n.index()]
    }

    /// Link `l`.
    pub fn link(&self, l: LinkId) -> &Link {
        &self.links[l.index()]
    }

    /// Mutable link `l`.
    pub fn link_mut(&mut self, l: LinkId) -> &mut Link {
        &mut self.links[l.index()]
    }

    /// Links incident to node `n`.
    pub fn incident(&self, n: NodeId) -> &[LinkId] {
        &self.adjacency[n.index()]
    }

    /// All node ids of a tier.
    pub fn tier_nodes(&self, tier: Tier) -> Vec<NodeId> {
        self.nodes
            .iter()
            .enumerate()
            .filter_map(|(i, n)| (n.tier == tier).then_some(NodeId(i)))
            .collect()
    }

    /// Shortest path (fewest hops) from `src` to `dst` using only links
    /// with at least `min_headroom` available bandwidth. Returns the link
    /// sequence, or `None` when disconnected under that requirement.
    pub fn shortest_path(
        &self,
        src: NodeId,
        dst: NodeId,
        min_headroom: f64,
    ) -> Option<Vec<LinkId>> {
        if src == dst {
            return Some(Vec::new());
        }
        let n = self.nodes.len();
        let mut prev: Vec<Option<(NodeId, LinkId)>> = vec![None; n];
        let mut visited = vec![false; n];
        let mut queue = std::collections::VecDeque::new();
        visited[src.index()] = true;
        queue.push_back(src);
        while let Some(u) = queue.pop_front() {
            for &lid in &self.adjacency[u.index()] {
                let link = &self.links[lid.index()];
                if link.headroom() + 1e-9 < min_headroom {
                    continue;
                }
                let v = link.other(u).expect("adjacency is consistent");
                if visited[v.index()] {
                    continue;
                }
                visited[v.index()] = true;
                prev[v.index()] = Some((u, lid));
                if v == dst {
                    // Reconstruct.
                    let mut path = Vec::new();
                    let mut cur = dst;
                    while cur != src {
                        let (p, l) = prev[cur.index()].expect("path is connected");
                        path.push(l);
                        cur = p;
                    }
                    path.reverse();
                    return Some(path);
                }
                queue.push_back(v);
            }
        }
        None
    }

    /// Reserves `bw` along a path atomically: either every link admits the
    /// flow or nothing is reserved.
    pub fn reserve_path(&mut self, path: &[LinkId], bw: f64) -> bool {
        for (i, &lid) in path.iter().enumerate() {
            if !self.links[lid.index()].try_reserve(bw) {
                // Roll back what we already took.
                for &undo in &path[..i] {
                    self.links[undo.index()].release(bw);
                }
                return false;
            }
        }
        true
    }

    /// Releases `bw` along a path.
    pub fn release_path(&mut self, path: &[LinkId], bw: f64) {
        for &lid in path {
            self.links[lid.index()].release(bw);
        }
    }

    /// Admits a flow of `bw` between two nodes: finds a feasible shortest
    /// path and reserves it. Returns the path on success.
    pub fn admit_flow(&mut self, src: NodeId, dst: NodeId, bw: f64) -> Option<Vec<LinkId>> {
        let path = self.shortest_path(src, dst, bw)?;
        let ok = self.reserve_path(&path, bw);
        debug_assert!(ok, "shortest_path guaranteed headroom");
        Some(path)
    }

    /// Peak link utilisation across the fabric — a congestion indicator
    /// used by the platform simulator's accounting.
    pub fn peak_utilization(&self) -> f64 {
        self.links.iter().map(Link::utilization).fold(0.0, f64::max)
    }

    /// Mean link utilisation.
    pub fn mean_utilization(&self) -> f64 {
        if self.links.is_empty() {
            return 0.0;
        }
        self.links.iter().map(Link::utilization).sum::<f64>() / self.links.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a 2-spine, 2-leaf, 2-servers-per-leaf mini fabric.
    fn mini() -> (Fabric, Vec<NodeId>, Vec<NodeId>, Vec<NodeId>) {
        let mut f = Fabric::new();
        let spines: Vec<_> = (0..2)
            .map(|i| {
                f.add_node(Node {
                    tier: Tier::Spine,
                    name: format!("spine-{i}"),
                    rack: None,
                })
            })
            .collect();
        let leaves: Vec<_> = (0..2)
            .map(|i| {
                f.add_node(Node {
                    tier: Tier::Leaf,
                    name: format!("leaf-{i}"),
                    rack: Some(i),
                })
            })
            .collect();
        let mut servers = Vec::new();
        for (r, &leaf) in leaves.iter().enumerate() {
            for s in 0..2 {
                let srv = f.add_node(Node {
                    tier: Tier::Server,
                    name: format!("rack{r}-srv{s}"),
                    rack: Some(r),
                });
                f.add_link(leaf, srv, 10_000.0);
                servers.push(srv);
            }
        }
        for &leaf in &leaves {
            for &spine in &spines {
                f.add_link(leaf, spine, 40_000.0);
            }
        }
        (f, spines, leaves, servers)
    }

    #[test]
    fn mini_fabric_shape() {
        let (f, spines, leaves, servers) = mini();
        assert_eq!(f.node_count(), 8);
        assert_eq!(f.link_count(), 4 + 4); // 4 server links + full leaf-spine mesh
        assert_eq!(f.tier_nodes(Tier::Spine), spines);
        assert_eq!(f.tier_nodes(Tier::Leaf), leaves);
        assert_eq!(f.tier_nodes(Tier::Server), servers);
    }

    #[test]
    fn same_rack_path_stays_under_leaf() {
        let (f, _, _, servers) = mini();
        let path = f.shortest_path(servers[0], servers[1], 0.0).unwrap();
        assert_eq!(path.len(), 2, "server → leaf → server");
    }

    #[test]
    fn cross_rack_path_traverses_spine() {
        let (f, _, _, servers) = mini();
        let path = f.shortest_path(servers[0], servers[2], 0.0).unwrap();
        assert_eq!(path.len(), 4, "server → leaf → spine → leaf → server");
    }

    #[test]
    fn path_to_self_is_empty() {
        let (f, _, _, servers) = mini();
        assert_eq!(f.shortest_path(servers[0], servers[0], 0.0), Some(vec![]));
    }

    #[test]
    fn admission_respects_bandwidth() {
        let (mut f, _, _, servers) = mini();
        // Server access links are 10 G; a 12 G flow cannot be admitted.
        assert!(f.admit_flow(servers[0], servers[2], 12_000.0).is_none());
        // A 6 G flow fits; a second 6 G flow saturates the access link.
        assert!(f.admit_flow(servers[0], servers[2], 6_000.0).is_some());
        assert!(f.admit_flow(servers[0], servers[2], 6_000.0).is_none());
    }

    #[test]
    fn multipath_spreads_when_one_spine_is_full() {
        let (mut f, _, _, servers) = mini();
        // Saturate spine-0's leaf0 uplink directly.
        let leaf0_spine0 = LinkId(4); // first leaf-spine link added
        assert!(f.link_mut(leaf0_spine0).try_reserve(40_000.0));
        // Cross-rack flow must still be admitted via spine-1.
        let path = f
            .admit_flow(servers[0], servers[2], 5_000.0)
            .expect("second spine available");
        assert!(!path.contains(&leaf0_spine0));
    }

    #[test]
    fn reserve_path_is_atomic() {
        let (mut f, _, _, servers) = mini();
        let path = f.shortest_path(servers[0], servers[2], 0.0).unwrap();
        // Saturate the last link of the path, then try to reserve the path.
        let last = *path.last().unwrap();
        let cap = f.link(last).capacity;
        assert!(f.link_mut(last).try_reserve(cap));
        assert!(!f.reserve_path(&path, 1_000.0));
        // No partial reservations must remain on the earlier links.
        for &l in &path[..path.len() - 1] {
            assert_eq!(f.link(l).reserved, 0.0, "atomicity violated on {l:?}");
        }
    }

    #[test]
    fn release_path_frees_bandwidth() {
        let (mut f, _, _, servers) = mini();
        let path = f.admit_flow(servers[0], servers[3], 2_000.0).unwrap();
        f.release_path(&path, 2_000.0);
        assert_eq!(f.peak_utilization(), 0.0);
    }

    #[test]
    fn utilization_statistics() {
        let (mut f, _, _, servers) = mini();
        assert_eq!(f.mean_utilization(), 0.0);
        f.admit_flow(servers[0], servers[1], 5_000.0).unwrap();
        assert!(f.peak_utilization() > 0.0);
        assert!(f.mean_utilization() > 0.0);
        assert!(f.mean_utilization() <= f.peak_utilization());
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn self_loop_rejected() {
        let mut f = Fabric::new();
        let n = f.add_node(Node {
            tier: Tier::Spine,
            name: "s".into(),
            rack: None,
        });
        f.add_link(n, n, 1.0);
    }
}
