//! Parameterised construction of canonical spine-leaf datacenters
//! (Fig. 1 of the paper; Al-Fares et al. / leaf-spine practice).

use crate::fabric::Fabric;
use crate::node::{Node, NodeId, Tier};

/// Parameters of one spine-leaf datacenter pod.
#[derive(Clone, Debug, PartialEq)]
pub struct SpineLeafSpec {
    /// Number of spine switches.
    pub spines: usize,
    /// Number of leaf (top-of-rack) switches = racks.
    pub leaves: usize,
    /// Servers attached to each leaf.
    pub servers_per_leaf: usize,
    /// Server access-link bandwidth in Mbit/s.
    pub access_bw: f64,
    /// Leaf-to-spine uplink bandwidth in Mbit/s.
    pub uplink_bw: f64,
    /// Number of core routers (0 for a standalone pod).
    pub cores: usize,
    /// Spine-to-core bandwidth in Mbit/s.
    pub core_bw: f64,
}

impl Default for SpineLeafSpec {
    fn default() -> Self {
        Self {
            spines: 2,
            leaves: 4,
            servers_per_leaf: 16,
            access_bw: 10_000.0, // 10 GbE access
            uplink_bw: 40_000.0, // 40 GbE uplinks
            cores: 1,
            core_bw: 100_000.0, // 100 GbE to core
        }
    }
}

impl SpineLeafSpec {
    /// A spec sized to hold (at least) `servers` hosts, preserving the
    /// default oversubscription shape: 16 servers per rack, one spine per
    /// four racks (min 2).
    pub fn for_server_count(servers: usize) -> Self {
        let servers_per_leaf = 16usize;
        let leaves = servers.div_ceil(servers_per_leaf).max(1);
        let spines = (leaves / 4).max(2);
        Self {
            spines,
            leaves,
            servers_per_leaf,
            ..Self::default()
        }
    }

    /// Total server slots in the pod.
    pub fn server_slots(&self) -> usize {
        self.leaves * self.servers_per_leaf
    }
}

/// The built pod: the fabric plus the node ids per tier.
#[derive(Clone, Debug)]
pub struct BuiltPod {
    /// The fabric graph.
    pub fabric: Fabric,
    /// Core routers (may be empty).
    pub cores: Vec<NodeId>,
    /// Spine switches.
    pub spines: Vec<NodeId>,
    /// Leaf switches; `leaves[r]` serves rack `r`.
    pub leaves: Vec<NodeId>,
    /// Servers; `servers[r * servers_per_leaf + s]` is server `s` of rack `r`.
    pub servers: Vec<NodeId>,
}

impl BuiltPod {
    /// Rack (failure domain) of a server node.
    pub fn rack_of(&self, server: NodeId) -> Option<usize> {
        self.fabric.node(server).rack
    }
}

/// Builds a full spine-leaf pod from a spec.
///
/// Every leaf connects to every spine (the full bipartite mesh that gives
/// the architecture its bandwidth and redundancy properties), every server
/// to exactly one leaf, and every spine to every core.
pub fn build_spine_leaf(spec: &SpineLeafSpec) -> BuiltPod {
    assert!(spec.spines >= 1 && spec.leaves >= 1 && spec.servers_per_leaf >= 1);
    let mut fabric = Fabric::new();

    let cores: Vec<NodeId> = (0..spec.cores)
        .map(|i| {
            fabric.add_node(Node {
                tier: Tier::Core,
                name: format!("core-{i}"),
                rack: None,
            })
        })
        .collect();
    let spines: Vec<NodeId> = (0..spec.spines)
        .map(|i| {
            fabric.add_node(Node {
                tier: Tier::Spine,
                name: format!("spine-{i}"),
                rack: None,
            })
        })
        .collect();
    let leaves: Vec<NodeId> = (0..spec.leaves)
        .map(|r| {
            fabric.add_node(Node {
                tier: Tier::Leaf,
                name: format!("leaf-{r}"),
                rack: Some(r),
            })
        })
        .collect();

    let mut servers = Vec::with_capacity(spec.server_slots());
    for (r, &leaf) in leaves.iter().enumerate() {
        for s in 0..spec.servers_per_leaf {
            let srv = fabric.add_node(Node {
                tier: Tier::Server,
                name: format!("rack{r}-srv{s:02}"),
                rack: Some(r),
            });
            fabric.add_link(leaf, srv, spec.access_bw);
            servers.push(srv);
        }
    }
    for &leaf in &leaves {
        for &spine in &spines {
            fabric.add_link(leaf, spine, spec.uplink_bw);
        }
    }
    for &spine in &spines {
        for &core in &cores {
            fabric.add_link(spine, core, spec.core_bw);
        }
    }

    BuiltPod {
        fabric,
        cores,
        spines,
        leaves,
        servers,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_pod_has_expected_counts() {
        let spec = SpineLeafSpec::default();
        let pod = build_spine_leaf(&spec);
        assert_eq!(pod.spines.len(), 2);
        assert_eq!(pod.leaves.len(), 4);
        assert_eq!(pod.servers.len(), 64);
        assert_eq!(pod.cores.len(), 1);
        // links: 64 access + 4*2 uplinks + 2*1 core
        assert_eq!(pod.fabric.link_count(), 64 + 8 + 2);
    }

    #[test]
    fn every_leaf_reaches_every_spine() {
        let pod = build_spine_leaf(&SpineLeafSpec::default());
        for &leaf in &pod.leaves {
            for &spine in &pod.spines {
                let p = pod.fabric.shortest_path(leaf, spine, 0.0).unwrap();
                assert_eq!(p.len(), 1, "leaf-spine mesh must be direct");
            }
        }
    }

    #[test]
    fn any_two_servers_are_connected() {
        let pod = build_spine_leaf(&SpineLeafSpec {
            spines: 2,
            leaves: 3,
            servers_per_leaf: 2,
            ..Default::default()
        });
        for &a in &pod.servers {
            for &b in &pod.servers {
                assert!(pod.fabric.shortest_path(a, b, 0.0).is_some());
            }
        }
    }

    #[test]
    fn rack_of_reflects_leaf_attachment() {
        let pod = build_spine_leaf(&SpineLeafSpec {
            spines: 2,
            leaves: 2,
            servers_per_leaf: 3,
            ..Default::default()
        });
        assert_eq!(pod.rack_of(pod.servers[0]), Some(0));
        assert_eq!(pod.rack_of(pod.servers[3]), Some(1));
    }

    #[test]
    fn for_server_count_sizes_racks() {
        let spec = SpineLeafSpec::for_server_count(100);
        assert!(spec.server_slots() >= 100);
        assert_eq!(spec.leaves, 7);
        assert_eq!(spec.spines, 2);
        let big = SpineLeafSpec::for_server_count(800);
        assert_eq!(big.leaves, 50);
        assert_eq!(big.spines, 12);
        assert!(big.server_slots() >= 800);
    }

    #[test]
    fn redundancy_survives_one_spine_saturation() {
        // The paper picked spine-leaf for redundancy; verify a cross-rack
        // flow survives losing (saturating) an entire spine.
        let mut pod = build_spine_leaf(&SpineLeafSpec {
            spines: 2,
            leaves: 2,
            servers_per_leaf: 1,
            ..Default::default()
        });
        let spine0 = pod.spines[0];
        // Saturate all spine0 links.
        for lid in (0..pod.fabric.link_count()).map(crate::link::LinkId) {
            let link = pod.fabric.link(lid);
            if link.a == spine0 || link.b == spine0 {
                let cap = link.capacity;
                pod.fabric.link_mut(lid).try_reserve(cap);
            }
        }
        let a = pod.servers[0];
        let b = pod.servers[1];
        assert!(
            pod.fabric.admit_flow(a, b, 1_000.0).is_some(),
            "spine-1 must carry the flow"
        );
    }
}
