//! # cpo-topology — spine-leaf datacenter fabric substrate
//!
//! The paper grounds its model in the Core/Leaf-Spine distributed network
//! architecture (Fig. 1, refs [19–21]): servers attach to leaf (top-of-rack)
//! switches, every leaf connects to every spine, and spines uplink to core
//! routers. This crate provides that substrate: a capacity-annotated fabric
//! graph with shortest-path routing and atomic bandwidth admission, plus a
//! parameterised builder for canonical pods.
//!
//! The scenario generator uses the builder to lay out datacenters (racks →
//! servers) and the platform simulator uses admission to account for
//! east-west traffic between co-dependent virtual resources.
//!
//! ```
//! use cpo_topology::{build_spine_leaf, SpineLeafSpec};
//!
//! let pod = build_spine_leaf(&SpineLeafSpec::for_server_count(48));
//! assert!(pod.servers.len() >= 48);
//! // Cross-rack traffic flows server → leaf → spine → leaf → server.
//! let path = pod.fabric.shortest_path(pod.servers[0], *pod.servers.last().unwrap(), 0.0).unwrap();
//! assert_eq!(path.len(), 4);
//! ```

#![warn(missing_docs)]

pub mod builder;
pub mod fabric;
pub mod link;
pub mod node;

pub use builder::{build_spine_leaf, BuiltPod, SpineLeafSpec};
pub use fabric::Fabric;
pub use link::{Link, LinkId};
pub use node::{Node, NodeId, Tier};
