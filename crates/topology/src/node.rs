//! Nodes of the spine-leaf datacenter fabric (paper Fig. 1, refs [19–21]).

/// Index of a node within a [`crate::fabric::Fabric`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct NodeId(pub usize);

impl NodeId {
    /// Raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

/// The tier a node belongs to in the Core/Spine-Leaf architecture.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Tier {
    /// Core router interconnecting datacenters / pods.
    Core,
    /// Spine switch: every leaf connects to every spine.
    Spine,
    /// Leaf (top-of-rack) switch: servers connect here.
    Leaf,
    /// Physical server (hypervisor host).
    Server,
}

impl Tier {
    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            Tier::Core => "core",
            Tier::Spine => "spine",
            Tier::Leaf => "leaf",
            Tier::Server => "server",
        }
    }
}

/// A fabric node.
#[derive(Clone, Debug, PartialEq)]
pub struct Node {
    /// Which tier the node sits in.
    pub tier: Tier,
    /// Human-readable name (`spine-2`, `rack3-srv07`, …).
    pub name: String,
    /// Rack index for leaves and servers (failure domain), `None` for
    /// spines and cores.
    pub rack: Option<usize>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tier_labels_are_stable() {
        assert_eq!(Tier::Core.label(), "core");
        assert_eq!(Tier::Spine.label(), "spine");
        assert_eq!(Tier::Leaf.label(), "leaf");
        assert_eq!(Tier::Server.label(), "server");
    }

    #[test]
    fn node_carries_rack_domain() {
        let n = Node {
            tier: Tier::Server,
            name: "rack0-srv1".into(),
            rack: Some(0),
        };
        assert_eq!(n.rack, Some(0));
        let s = Node {
            tier: Tier::Spine,
            name: "spine-0".into(),
            rack: None,
        };
        assert_eq!(s.rack, None);
    }
}
