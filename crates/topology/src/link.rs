//! Links of the fabric with capacity and reservation accounting.

use crate::node::NodeId;

/// Index of a link within a [`crate::fabric::Fabric`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct LinkId(pub usize);

impl LinkId {
    /// Raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

/// An undirected fabric link with bandwidth accounting (Mbit/s).
#[derive(Clone, Debug, PartialEq)]
pub struct Link {
    /// One endpoint.
    pub a: NodeId,
    /// The other endpoint.
    pub b: NodeId,
    /// Total capacity in Mbit/s.
    pub capacity: f64,
    /// Currently reserved bandwidth in Mbit/s.
    pub reserved: f64,
}

impl Link {
    /// Creates an idle link.
    pub fn new(a: NodeId, b: NodeId, capacity: f64) -> Self {
        assert!(
            capacity.is_finite() && capacity > 0.0,
            "link capacity must be positive"
        );
        Self {
            a,
            b,
            capacity,
            reserved: 0.0,
        }
    }

    /// Bandwidth still available.
    #[inline]
    pub fn headroom(&self) -> f64 {
        (self.capacity - self.reserved).max(0.0)
    }

    /// Utilisation in `[0, 1]`.
    #[inline]
    pub fn utilization(&self) -> f64 {
        (self.reserved / self.capacity).clamp(0.0, 1.0)
    }

    /// Attempts to reserve `bw`; returns `false` (unchanged) if it does
    /// not fit.
    pub fn try_reserve(&mut self, bw: f64) -> bool {
        if bw <= self.headroom() + 1e-9 {
            self.reserved += bw;
            true
        } else {
            false
        }
    }

    /// Releases `bw` (clamped at zero).
    pub fn release(&mut self, bw: f64) {
        self.reserved = (self.reserved - bw).max(0.0);
    }

    /// The opposite endpoint of `n`, if `n` is an endpoint.
    pub fn other(&self, n: NodeId) -> Option<NodeId> {
        if n == self.a {
            Some(self.b)
        } else if n == self.b {
            Some(self.a)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserve_and_release_roundtrip() {
        let mut l = Link::new(NodeId(0), NodeId(1), 10_000.0);
        assert!(l.try_reserve(4_000.0));
        assert_eq!(l.headroom(), 6_000.0);
        assert!((l.utilization() - 0.4).abs() < 1e-12);
        l.release(4_000.0);
        assert_eq!(l.reserved, 0.0);
    }

    #[test]
    fn overcommit_is_refused() {
        let mut l = Link::new(NodeId(0), NodeId(1), 1_000.0);
        assert!(l.try_reserve(999.0));
        assert!(!l.try_reserve(2.0));
        assert_eq!(l.reserved, 999.0);
    }

    #[test]
    fn release_clamps_at_zero() {
        let mut l = Link::new(NodeId(0), NodeId(1), 100.0);
        l.release(50.0);
        assert_eq!(l.reserved, 0.0);
    }

    #[test]
    fn other_endpoint_lookup() {
        let l = Link::new(NodeId(3), NodeId(7), 100.0);
        assert_eq!(l.other(NodeId(3)), Some(NodeId(7)));
        assert_eq!(l.other(NodeId(7)), Some(NodeId(3)));
        assert_eq!(l.other(NodeId(1)), None);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_rejected() {
        let _ = Link::new(NodeId(0), NodeId(1), 0.0);
    }
}
