//! Ablation — NSGA-II crowding vs NSGA-III reference-point niching on
//! the 3-objective allocation problem, judged by the hypervolume of the
//! feasible first front (larger = better front) and by wall-clock.
//!
//! The paper picks NSGA-III for many-objective spread; with 3 objectives
//! the gap is modest but measurable.

use cpo_bench::bench_problem;
use cpo_core::prelude::*;
use cpo_moea::hv::hypervolume;
use cpo_moea::prelude as moea;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn front_hypervolume(problem: &cpo_model::prelude::AllocationProblem, variant: Variant) -> f64 {
    use cpo_core::prelude::AllocMoeaProblem;
    let adapter = AllocMoeaProblem::new(problem);
    let config = moea::NsgaConfig {
        population_size: 40,
        max_evaluations: 2_000,
        ..moea::NsgaConfig::paper_defaults(variant)
    };
    let result = moea::run(&adapter, &config, None);
    // Feasible front when available; otherwise the raw first front (an
    // unmodified NSGA rarely reaches feasibility here — that is Fig. 10's
    // finding — but its front geometry is still comparable).
    let mut front: Vec<Vec<f64>> = result
        .population
        .iter()
        .filter(|i| i.rank == 0 && i.is_feasible())
        .map(|i| i.objectives.clone())
        .collect();
    if front.is_empty() {
        front = result
            .population
            .iter()
            .filter(|i| i.rank == 0)
            .map(|i| i.objectives.clone())
            .collect();
    }
    if front.is_empty() {
        return 0.0;
    }
    // Reference: componentwise max over the front, padded 10 %.
    let m = front[0].len();
    let reference: Vec<f64> = (0..m)
        .map(|j| front.iter().map(|f| f[j]).fold(0.0_f64, f64::max) * 1.1 + 1.0)
        .collect();
    hypervolume(&front, &reference)
}

fn ablation(c: &mut Criterion) {
    let problem = bench_problem(20, false, 42);

    println!("\n=== ablation: NSGA-II vs NSGA-III vs U-NSGA-III on the allocation objectives ===");
    for (name, variant) in [
        ("nsga2", Variant::Nsga2),
        ("nsga3", Variant::Nsga3),
        ("unsga3", Variant::UNsga3),
    ] {
        let hv = front_hypervolume(&problem, variant);
        println!("{name:>8}: first-front hypervolume = {hv:.3e}");
    }
    println!("===================================================================\n");

    let mut group = c.benchmark_group("ablation_nsga2_vs_nsga3");
    group.sample_size(10);
    for (name, variant) in [
        ("nsga2", Variant::Nsga2),
        ("nsga3", Variant::Nsga3),
        ("unsga3", Variant::UNsga3),
    ] {
        group.bench_with_input(BenchmarkId::new(name, 20), &problem, |b, p| {
            b.iter(|| black_box(front_hypervolume(p, variant)))
        });
    }
    group.finish();
}

criterion_group!(benches, ablation);
criterion_main!(benches);
