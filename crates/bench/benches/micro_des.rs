//! Micro — DES kernel throughput: events/sec through the timestamp-ordered
//! queue (schedule + pop of synthetic events), the substrate every
//! continuous-time scenario rides on. The acceptance bar is ≥ 1M
//! events/sec in release mode; the companion integration test
//! `crates/des/tests/throughput.rs` asserts it.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn micro(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro_des");
    group.sample_size(10);
    for &events in &[100_000usize, 1_000_000] {
        group.bench_with_input(
            BenchmarkId::new("schedule_pop", events),
            &events,
            |b, &n| {
                b.iter(|| {
                    let processed = cpo_des::queue::synthetic_churn(n, 1024, 0x5eed);
                    black_box(processed)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, micro);
criterion_main!(benches);
