//! Fig. 10 — violated constraints vs problem size: only the unmodified
//! evolutionary algorithms violate. The regenerated table printed at
//! startup is the figure; the criterion cells time an unmodified NSGA-III
//! against the repaired hybrid on the same instance so the cost of the
//! repair machinery is visible next to its benefit.

use cpo_bench::{bench_problem, print_figure};
use cpo_exper::runner::{Algorithm, Effort};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn fig10(c: &mut Criterion) {
    print_figure("fig10");

    let mut group = c.benchmark_group("fig10_violations");
    group.sample_size(10);
    let problem = bench_problem(25, true, 42);
    for algorithm in [Algorithm::Nsga3, Algorithm::Nsga3Tabu] {
        group.bench_with_input(BenchmarkId::new(algorithm.label(), 25), &problem, |b, p| {
            b.iter(|| {
                let allocator = algorithm.build(Effort::Quick, 42);
                black_box(allocator.allocate(p).violated_constraints)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, fig10);
criterion_main!(benches);
