//! Micro-benchmarks of the model's hot kernels: objective evaluation
//! (Eq. 15), constraint checking (Eqs. 16–21), incremental load updates
//! (Eq. 25) and the QoS curve (Eq. 24). These dominate the evolutionary
//! engine's per-evaluation cost.

use cpo_bench::bench_problem;
use cpo_model::prelude::*;
use cpo_model::qos::qos_at;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn random_assignment(problem: &AllocationProblem, seed: u64) -> Assignment {
    let mut rng = SmallRng::seed_from_u64(seed);
    let genes: Vec<usize> = (0..problem.n())
        .map(|_| rng.gen_range(0..problem.m()))
        .collect();
    Assignment::from_genes(&genes)
}

fn micro(c: &mut Criterion) {
    for servers in [25usize, 200] {
        let problem = bench_problem(servers, true, 42);
        let assignment = random_assignment(&problem, 1);
        let tracker = problem.tracker(&assignment);

        let mut group = c.benchmark_group(format!("micro_model_m{servers}"));

        group.bench_function("evaluate_eq15", |b| {
            b.iter(|| black_box(problem.evaluate(&assignment).total()))
        });
        group.bench_function("check_constraints", |b| {
            b.iter(|| black_box(problem.check(&assignment).count()))
        });
        group.bench_function("evaluate_with_tracker", |b| {
            b.iter(|| black_box(problem.evaluate_with_tracker(&assignment, &tracker).total()))
        });
        group.bench_function("tracker_rebuild", |b| {
            b.iter(|| black_box(problem.tracker(&assignment).active_servers()))
        });
        group.bench_function("tracker_add_remove", |b| {
            let mut t = problem.tracker(&assignment);
            let k = VmId(0);
            let j = assignment.server_of(k).unwrap();
            b.iter(|| {
                t.remove(k, j, problem.batch());
                t.add(k, j, problem.batch());
                black_box(t.hosted(j))
            })
        });
        group.bench_function("accepted_requests", |b| {
            b.iter(|| black_box(problem.accepted_requests(&assignment).len()))
        });
        group.finish();
    }

    let mut group = c.benchmark_group("micro_model_scalar");
    for load in [0.5_f64, 0.95] {
        group.bench_with_input(
            BenchmarkId::new("qos_at", format!("{load}")),
            &load,
            |b, &l| b.iter(|| black_box(qos_at(l, 0.8, 0.99))),
        );
    }
    group.finish();
}

criterion_group!(benches, micro);
criterion_main!(benches);
