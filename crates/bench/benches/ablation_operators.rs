//! Ablation — variation operators on the server-id genome: the paper's
//! "SBX and PM standard" (real-coded arithmetic blending) vs the classic
//! integer-genome pair (uniform crossover + random-reset mutation). SBX
//! interpolating between unrelated server indices is a known quirk of
//! real-coding discrete placement problems; this bench quantifies whether
//! it matters once the tabu repair is in the loop.

use cpo_bench::bench_problem;
use cpo_core::prelude::*;
use cpo_moea::prelude::Operators;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn allocator(operators: Operators, seed: u64) -> EvoAllocator {
    let mut alloc = EvoAllocator::nsga3_tabu(NsgaConfig {
        population_size: 40,
        max_evaluations: 2_000,
        ..NsgaConfig::paper_defaults(Variant::Nsga3)
    })
    .with_seed(seed);
    alloc.config.operators = operators;
    alloc
}

fn ablation(c: &mut Criterion) {
    let problem = bench_problem(25, true, 42);

    println!("\n=== ablation: variation operators on server-id genomes (m=25) ===");
    println!(
        "{:>16} {:>10} {:>12} {:>14} {:>12}",
        "operators", "reject", "violations", "cost", "time[ms]"
    );
    for (name, ops) in [
        ("sbx+pm", Operators::RealCoded),
        ("uniform+reset", Operators::IntegerStyle),
    ] {
        // Average 3 seeds to damp run-to-run noise.
        let mut reject = 0.0;
        let mut cost = 0.0;
        let mut violations = 0usize;
        let mut time_ms = 0.0;
        for seed in 0..3 {
            let out = allocator(ops, seed).allocate(&problem);
            reject += out.rejection_rate / 3.0;
            cost += out.provider_cost() / 3.0;
            violations += out.violated_constraints;
            time_ms += out.elapsed.as_secs_f64() * 1_000.0 / 3.0;
        }
        println!("{name:>16} {reject:>10.3} {violations:>12} {cost:>14.1} {time_ms:>12.1}");
    }
    println!("===================================================================\n");

    let mut group = c.benchmark_group("ablation_operators");
    group.sample_size(10);
    for (name, ops) in [
        ("sbx_pm", Operators::RealCoded),
        ("uniform_reset", Operators::IntegerStyle),
    ] {
        group.bench_with_input(BenchmarkId::new(name, 25), &problem, |b, p| {
            b.iter(|| black_box(allocator(ops, 42).allocate(p).rejection_rate))
        });
    }
    group.finish();
}

criterion_group!(benches, ablation);
criterion_main!(benches);
