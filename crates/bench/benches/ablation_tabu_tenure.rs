//! Ablation — tabu tenure in the standalone tabu search (DESIGN.md §5:
//! "tabu tenure & neighbourhood order"). Tenure 0 disables the memory
//! (pure hill-climbing with sampled neighbourhoods); short tenures allow
//! cycling; long tenures over-constrain the move pool.

use cpo_bench::bench_problem;
use cpo_model::prelude::*;
use cpo_tabu::{tabu_search, TabuConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn start_from_pile(problem: &AllocationProblem) -> Assignment {
    // Everything piled on server 0: maximally infeasible start.
    Assignment::from_genes(&vec![0usize; problem.n()])
}

fn ablation(c: &mut Criterion) {
    let problem = bench_problem(15, false, 42);
    let start = start_from_pile(&problem);

    println!("\n=== ablation: tabu tenure (m=15, light workload, pile start, 600 iterations) ===");
    println!(
        "{:>8} {:>12} {:>14} {:>10}",
        "tenure", "violation", "total cost", "moves"
    );
    for tenure in [0usize, 8, 24, 96] {
        let config = TabuConfig {
            tenure,
            max_iterations: 600,
            ..Default::default()
        };
        let result = tabu_search(&problem, start.clone(), &config);
        println!(
            "{:>8} {:>12.1} {:>14.1} {:>10}",
            tenure,
            result.best_score.violation.max(0.0),
            result.best_score.total_cost,
            result.accepted_moves
        );
    }
    println!("==================================================================\n");

    let mut group = c.benchmark_group("ablation_tabu_tenure");
    group.sample_size(10);
    for tenure in [0usize, 24] {
        group.bench_with_input(BenchmarkId::new("tabu_search", tenure), &tenure, |b, &t| {
            let config = TabuConfig {
                tenure: t,
                max_iterations: 300,
                ..Default::default()
            };
            b.iter(|| {
                black_box(
                    tabu_search(&problem, start.clone(), &config)
                        .best_score
                        .violation,
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, ablation);
criterion_main!(benches);
