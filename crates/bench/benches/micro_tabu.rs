//! Micro-benchmarks of the tabu machinery: faulty-gene detection, one
//! repair invocation at two problem sizes, and raw tabu-list operations.

use cpo_bench::bench_problem;
use cpo_model::prelude::*;
use cpo_tabu::repair::{faulty_vms, repair, RepairConfig, ScanOrder};
use cpo_tabu::{TabuList, TabuMove};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn random_assignment(problem: &AllocationProblem, seed: u64) -> Assignment {
    let mut rng = SmallRng::seed_from_u64(seed);
    Assignment::from_genes(
        &(0..problem.n())
            .map(|_| rng.gen_range(0..problem.m()))
            .collect::<Vec<_>>(),
    )
}

fn micro(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro_tabu");
    for servers in [25usize, 200] {
        let problem = bench_problem(servers, true, 42);
        let broken = random_assignment(&problem, 7);
        group.bench_with_input(BenchmarkId::new("faulty_vms", servers), &problem, |b, p| {
            b.iter(|| black_box(faulty_vms(p, &broken).len()))
        });
        group.bench_with_input(
            BenchmarkId::new("repair_bestcost", servers),
            &problem,
            |b, p| {
                let config = RepairConfig {
                    scan: ScanOrder::BestCost,
                    ..RepairConfig::default()
                };
                b.iter(|| {
                    let mut a = broken.clone();
                    black_box(repair(p, &mut a, &config).moves)
                })
            },
        );
    }
    group.bench_function("tabu_list_push_query", |b| {
        let mut list = TabuList::new(32);
        let mut i = 0usize;
        b.iter(|| {
            list.push(TabuMove {
                vm: VmId(i % 100),
                from: ServerId(i % 50),
            });
            i += 1;
            black_box(list.is_tabu(VmId(3), ServerId(9)))
        })
    });
    group.finish();
}

criterion_group!(benches, micro);
criterion_main!(benches);
