//! Fig. 7 — average execution time with few resources.
//!
//! Regenerates the figure's data table, then criterion-times every
//! algorithm on a representative small scenario (the figure's metric *is*
//! wall-clock time, so the criterion estimates are the figure's points).

use cpo_bench::{bench_problem, print_figure, timed_algorithms};
use cpo_exper::runner::Effort;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn fig7(c: &mut Criterion) {
    print_figure("fig7");

    let mut group = c.benchmark_group("fig7_exec_time_small");
    group.sample_size(10);
    for servers in [10usize, 25] {
        let problem = bench_problem(servers, false, 42);
        for algorithm in timed_algorithms() {
            group.bench_with_input(
                BenchmarkId::new(algorithm.label(), servers),
                &problem,
                |b, p| {
                    b.iter(|| {
                        let allocator = algorithm.build(Effort::Quick, 42);
                        black_box(allocator.allocate(p).rejection_rate)
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, fig7);
criterion_main!(benches);
