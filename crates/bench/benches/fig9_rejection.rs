//! Fig. 9 — rejection rate vs problem size. The metric is not time, so
//! the regenerated data table printed at startup *is* the figure; the
//! criterion cells time the two algorithms whose acceptance differs most
//! (Round Robin vs the tabu hybrid) on the affinity-heavy workload.

use cpo_bench::{bench_problem, print_figure};
use cpo_exper::runner::{Algorithm, Effort};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn fig9(c: &mut Criterion) {
    print_figure("fig9");

    let mut group = c.benchmark_group("fig9_rejection");
    group.sample_size(10);
    let problem = bench_problem(25, true, 42);
    for algorithm in [Algorithm::RoundRobin, Algorithm::Nsga3Tabu] {
        group.bench_with_input(BenchmarkId::new(algorithm.label(), 25), &problem, |b, p| {
            b.iter(|| {
                let allocator = algorithm.build(Effort::Quick, 42);
                black_box(allocator.allocate(p).rejection_rate)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, fig9);
criterion_main!(benches);
