//! Micro-benchmarks of the evolutionary engine's kernels: fast
//! non-dominated sorting, crowding distance, Das–Dennis generation,
//! niching normalisation, SBX and polynomial mutation.

use cpo_moea::crowding::assign_crowding_distance;
use cpo_moea::individual::Individual;
use cpo_moea::nsga3::{associate, normalize};
use cpo_moea::operators::{polynomial_mutation, sbx, PmParams, SbxParams};
use cpo_moea::problem::{Evaluation, MoeaProblem};
use cpo_moea::refpoints::das_dennis;
use cpo_moea::sort::fast_non_dominated_sort;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

struct Box3(usize);
impl MoeaProblem for Box3 {
    fn n_vars(&self) -> usize {
        self.0
    }
    fn n_objectives(&self) -> usize {
        3
    }
    fn bounds(&self, _: usize) -> (f64, f64) {
        (0.0, 100.0)
    }
    fn evaluate(&self, _g: &[f64]) -> Evaluation {
        Evaluation::feasible(vec![0.0; 3])
    }
}

fn random_population(n: usize, m: usize, seed: u64) -> Vec<Individual> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let mut ind = Individual::new(vec![0.0]);
            ind.set_evaluation(Evaluation::feasible(
                (0..m).map(|_| rng.gen::<f64>() * 100.0).collect(),
            ));
            ind
        })
        .collect()
}

fn micro(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro_moea");

    for pop in [100usize, 200] {
        group.bench_with_input(
            BenchmarkId::new("fast_non_dominated_sort", pop),
            &pop,
            |b, &n| {
                let population = random_population(n, 3, 1);
                b.iter(|| {
                    let mut p = population.clone();
                    black_box(fast_non_dominated_sort(&mut p).len())
                })
            },
        );
    }

    group.bench_function("crowding_distance_100", |b| {
        let mut population = random_population(100, 3, 2);
        let front: Vec<usize> = (0..100).collect();
        b.iter(|| {
            assign_crowding_distance(&mut population, &front);
            black_box(population[0].crowding)
        })
    });

    group.bench_function("das_dennis_3obj_12div", |b| {
        b.iter(|| black_box(das_dennis(3, 12).len()))
    });

    group.bench_function("normalize_and_associate_100", |b| {
        let population = random_population(100, 3, 3);
        let candidates: Vec<usize> = (0..100).collect();
        let refs = das_dennis(3, 12);
        b.iter(|| {
            let normalized = normalize(&population, &candidates);
            black_box(associate(&normalized, &refs).len())
        })
    });

    for vars in [100usize, 800] {
        let problem = Box3(vars);
        let mut rng = SmallRng::seed_from_u64(4);
        let p1: Vec<f64> = (0..vars).map(|_| rng.gen::<f64>() * 100.0).collect();
        let p2: Vec<f64> = (0..vars).map(|_| rng.gen::<f64>() * 100.0).collect();
        group.bench_with_input(BenchmarkId::new("sbx", vars), &vars, |b, _| {
            let mut rng = SmallRng::seed_from_u64(5);
            b.iter(|| black_box(sbx(&problem, SbxParams::default(), &p1, &p2, &mut rng).0[0]))
        });
        group.bench_with_input(
            BenchmarkId::new("polynomial_mutation", vars),
            &vars,
            |b, _| {
                let mut rng = SmallRng::seed_from_u64(6);
                b.iter(|| {
                    let mut g = p1.clone();
                    polynomial_mutation(&problem, PmParams::default(), &mut g, &mut rng);
                    black_box(g[0])
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, micro);
criterion_main!(benches);
