//! Ablation — `findNeighbour` scan order (Fig. 6 returns the *first*
//! valid server; this bench quantifies what that choice costs).
//!
//! * `first-fit`     — the literal pseudo-code (scan 0..m);
//! * `nearest-first` — ring scan outward from the current server;
//! * `best-cost`     — cheapest (opex+usage) servers first.
//!
//! Printed: post-repair feasibility, moves and resulting provider cost on
//! a batch of broken individuals; timed: one repair invocation per order.

use cpo_bench::bench_problem;
use cpo_model::prelude::*;
use cpo_tabu::repair::{repair, RepairConfig, ScanOrder};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn broken_individuals(problem: &AllocationProblem, count: usize) -> Vec<Assignment> {
    // Random complete assignments — mostly invalid on the heavy workload.
    let mut rng = SmallRng::seed_from_u64(7);
    (0..count)
        .map(|_| {
            let genes: Vec<usize> = (0..problem.n())
                .map(|_| rng.gen_range(0..problem.m()))
                .collect();
            Assignment::from_genes(&genes)
        })
        .collect()
}

fn ablation(c: &mut Criterion) {
    let problem = bench_problem(25, true, 42);
    let individuals = broken_individuals(&problem, 50);

    println!("\n=== ablation: findNeighbour scan order (50 random individuals) ===");
    println!(
        "{:>14} {:>10} {:>12} {:>14} {:>12}",
        "scan", "fixed", "avg moves", "avg cost", "avg reject"
    );
    for (name, scan) in [
        ("first-fit", ScanOrder::FirstFit),
        ("nearest-first", ScanOrder::NearestFirst),
        ("best-cost", ScanOrder::BestCost),
    ] {
        let config = RepairConfig {
            scan,
            ..RepairConfig::default()
        };
        let mut fixed = 0usize;
        let mut moves = 0usize;
        let mut cost = 0.0;
        let mut reject = 0.0;
        for ind in &individuals {
            let mut a = ind.clone();
            let outcome = repair(&problem, &mut a, &config);
            fixed += usize::from(outcome.feasible);
            moves += outcome.moves;
            cost += problem.evaluate(&a).usage_opex;
            reject += problem.rejection_rate(&a);
        }
        let n = individuals.len() as f64;
        println!(
            "{:>14} {:>10} {:>12.1} {:>14.1} {:>12.3}",
            name,
            fixed,
            moves as f64 / n,
            cost / n,
            reject / n
        );
    }
    println!("====================================================================\n");

    let mut group = c.benchmark_group("ablation_repair_scan");
    group.sample_size(20);
    for (name, scan) in [
        ("first-fit", ScanOrder::FirstFit),
        ("nearest-first", ScanOrder::NearestFirst),
        ("best-cost", ScanOrder::BestCost),
    ] {
        let config = RepairConfig {
            scan,
            ..RepairConfig::default()
        };
        group.bench_with_input(BenchmarkId::new(name, 25), &individuals[0], |b, ind| {
            b.iter(|| {
                let mut a = ind.clone();
                black_box(repair(&problem, &mut a, &config).moves)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, ablation);
criterion_main!(benches);
