//! Ablation — weighted mono-objective GA vs the multi-objective hybrid
//! (the choice §III of the paper debates: "it is enough to find the one
//! point on the Pareto frontier that is preferred by decision makers").
//! Also includes Table II's filtering algorithm as the greedy reference.

use cpo_bench::bench_problem;
use cpo_exper::runner::{Algorithm, Effort};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn ablation(c: &mut Criterion) {
    let problem = bench_problem(25, true, 42);

    println!("\n=== ablation: mono- vs multi-objective (+ filtering) ===");
    println!(
        "{:>24} {:>12} {:>10} {:>12} {:>12}",
        "algorithm", "time[ms]", "reject", "violations", "cost"
    );
    for algorithm in [
        Algorithm::Nsga3Tabu,
        Algorithm::WeightedGa,
        Algorithm::Filtering,
    ] {
        let outcome = algorithm.build(Effort::Quick, 42).allocate(&problem);
        println!(
            "{:>24} {:>12.2} {:>10.3} {:>12} {:>12.1}",
            algorithm.label(),
            outcome.elapsed.as_secs_f64() * 1_000.0,
            outcome.rejection_rate,
            outcome.violated_constraints,
            outcome.provider_cost(),
        );
    }
    println!("=========================================================\n");

    let mut group = c.benchmark_group("ablation_mono_vs_multi");
    group.sample_size(10);
    for algorithm in [
        Algorithm::Nsga3Tabu,
        Algorithm::WeightedGa,
        Algorithm::Filtering,
    ] {
        group.bench_with_input(BenchmarkId::new(algorithm.label(), 25), &problem, |b, p| {
            b.iter(|| {
                black_box(
                    algorithm
                        .build(Effort::Quick, 42)
                        .allocate(p)
                        .rejection_rate,
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, ablation);
criterion_main!(benches);
