//! Fig. 8 — average execution time with many resources: the scalability
//! cliff. CP's per-request search inflates with size while the tabu
//! hybrid grows gently; unmodified NSGA stays cheap but (Fig. 10)
//! violates constraints.

use cpo_bench::{bench_problem, print_figure};
use cpo_exper::runner::{Algorithm, Effort};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;

fn fig8(c: &mut Criterion) {
    print_figure("fig8");

    let mut group = c.benchmark_group("fig8_exec_time_large");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(20));
    // The timing cells focus on the three interesting curves at the sizes
    // where they diverge; the full six-way table is printed above.
    let contenders = [
        Algorithm::ConstraintProgramming,
        Algorithm::Nsga3,
        Algorithm::Nsga3Tabu,
    ];
    for servers in [50usize, 150] {
        let problem = bench_problem(servers, false, 42);
        for algorithm in contenders {
            group.bench_with_input(
                BenchmarkId::new(algorithm.label(), servers),
                &problem,
                |b, p| {
                    b.iter(|| {
                        let allocator = algorithm.build(Effort::Quick, 42);
                        black_box(allocator.allocate(p).rejection_rate)
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, fig8);
criterion_main!(benches);
