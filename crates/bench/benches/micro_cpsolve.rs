//! Micro-benchmarks of the CP solver: propagation fixpoints, first-fail
//! solving and branch-and-bound on packing instances of growing size —
//! the kernels whose growth drives the Fig. 8 cliff. Queued-vs-reference
//! cells measure the event-driven engine against the retained
//! full-fixpoint loop on the same instances.

use cpo_cpsolve::prelude::*;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn packing_csp(items: usize, bins: usize) -> Csp {
    let mut csp = Csp::new(items, bins);
    csp.add(Box::new(Pack::new(
        (0..items).map(VarId).collect(),
        (0..items).map(|i| vec![1.0 + (i % 4) as f64]).collect(),
        vec![vec![(items as f64 / bins as f64) * 3.0]; bins],
    )));
    csp
}

/// A mixed instance exercising all constraint shapes: packing plus
/// affinity groups, as `build_request_csp` produces.
fn mixed_csp(items: usize, bins: usize) -> Csp {
    let mut csp = packing_csp(items, bins);
    csp.add(Box::new(AllDifferent {
        vars: (0..items.min(4)).map(VarId).collect(),
    }));
    if items >= 8 {
        csp.add(Box::new(AllEqual {
            vars: vec![VarId(5), VarId(6)],
        }));
    }
    csp
}

fn micro(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro_cpsolve");

    for (items, bins) in [(20usize, 10usize), (80, 40)] {
        group.bench_with_input(
            BenchmarkId::new("pack_propagate", format!("{items}x{bins}")),
            &(items, bins),
            |b, &(i, n)| {
                b.iter(|| {
                    let mut csp = packing_csp(i, n);
                    black_box(csp.propagate())
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("pack_solve_first", format!("{items}x{bins}")),
            &(items, bins),
            |b, &(i, n)| {
                b.iter(|| {
                    let mut csp = packing_csp(i, n);
                    let (outcome, stats) = solve(&mut csp, &SearchConfig::default());
                    black_box((outcome.solution().map(<[usize]>::len), stats.nodes))
                })
            },
        );
        // Engine comparison on identical mixed instances: the queued cell
        // should beat the reference cell by a growing margin with size.
        for engine in [Engine::Queued, Engine::Reference] {
            let label = match engine {
                Engine::Queued => "queued",
                Engine::Reference => "reference",
            };
            group.bench_with_input(
                BenchmarkId::new(format!("solve_{label}"), format!("{items}x{bins}")),
                &(items, bins),
                |b, &(i, n)| {
                    b.iter(|| {
                        let mut csp = mixed_csp(i, n);
                        let config = SearchConfig {
                            engine,
                            ..Default::default()
                        };
                        let (outcome, stats) = solve(&mut csp, &config);
                        black_box((outcome.solution().map(<[usize]>::len), stats.propagations))
                    })
                },
            );
        }
    }

    group.bench_function("alldifferent_solve_8x8", |b| {
        b.iter(|| {
            let mut csp = Csp::new(8, 8);
            csp.add(Box::new(AllDifferent {
                vars: (0..8).map(VarId).collect(),
            }));
            let (outcome, _) = solve(&mut csp, &SearchConfig::default());
            black_box(outcome.solution().is_some())
        })
    });

    group.bench_function("bnb_optimize_6x4", |b| {
        b.iter(|| {
            let mut csp = Csp::new(6, 4);
            csp.add(Box::new(Pack::new(
                (0..6).map(VarId).collect(),
                (0..6).map(|i| vec![2.0 + i as f64]).collect(),
                vec![vec![12.0]; 4],
            )));
            let cost: Vec<Vec<f64>> = (0..6)
                .map(|i| (0..4).map(|j| ((i + j) % 5) as f64).collect())
                .collect();
            let (best, _, _) = optimize(&mut csp, &cost, &SearchConfig::default());
            black_box(best.map(|(_, c)| c))
        })
    });

    group.bench_function("store_push_pop", |b| {
        let mut store = Store::new(100, 50);
        b.iter(|| {
            store.push();
            for v in 0..20 {
                store.remove(VarId(v), v % 50);
            }
            store.pop();
            black_box(store.domain_size(VarId(0)))
        })
    });
    group.finish();
}

criterion_group!(benches, micro);
criterion_main!(benches);
