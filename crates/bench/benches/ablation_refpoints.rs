//! Ablation — Das–Dennis reference-point density. NSGA-III sizes its
//! lattice to the population; this bench varies the population (and with
//! it the division count) and reports front hypervolume vs wall-clock,
//! exposing the diversity/runtime trade the lattice drives.

use cpo_bench::bench_problem;
use cpo_core::prelude::*;
use cpo_moea::hv::hypervolume;
use cpo_moea::prelude as moea;
use cpo_moea::refpoints::{das_dennis_count, divisions_for};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

/// A fixed, problem-level reference point so hypervolumes are comparable
/// across population sizes: componentwise max over a deterministic sample
/// of random assignments, padded 20 %.
fn fixed_reference(problem: &cpo_model::prelude::AllocationProblem) -> Vec<f64> {
    use cpo_model::prelude::Assignment;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    let mut rng = SmallRng::seed_from_u64(99);
    let mut reference = vec![0.0_f64; 3];
    for _ in 0..64 {
        let genes: Vec<usize> = (0..problem.n())
            .map(|_| rng.gen_range(0..problem.m()))
            .collect();
        let z = problem.evaluate(&Assignment::from_genes(&genes));
        for (r, v) in reference.iter_mut().zip(z.as_array()) {
            *r = r.max(v);
        }
    }
    reference.iter().map(|r| r * 1.2 + 1.0).collect()
}

fn run_with_pop(
    problem: &cpo_model::prelude::AllocationProblem,
    reference: &[f64],
    pop: usize,
) -> f64 {
    use cpo_core::prelude::AllocMoeaProblem;
    let adapter = AllocMoeaProblem::new(problem);
    let config = moea::NsgaConfig {
        population_size: pop,
        max_evaluations: 2_000,
        ..moea::NsgaConfig::paper_defaults(Variant::Nsga3)
    };
    let result = moea::run(&adapter, &config, None);
    let front: Vec<Vec<f64>> = result
        .population
        .iter()
        .filter(|i| i.rank == 0)
        .map(|i| i.objectives.clone())
        .collect();
    if front.is_empty() {
        return 0.0;
    }
    hypervolume(&front, reference)
}

fn ablation(c: &mut Criterion) {
    let problem = bench_problem(20, false, 42);
    let reference = fixed_reference(&problem);

    println!("\n=== ablation: reference-point density (3 objectives, fixed HV reference) ===");
    println!(
        "{:>6} {:>10} {:>10} {:>14}",
        "pop", "divisions", "points", "front HV"
    );
    for pop in [20usize, 52, 100, 200] {
        let d = divisions_for(3, pop);
        let hv = run_with_pop(&problem, &reference, pop);
        println!(
            "{:>6} {:>10} {:>10} {:>14.3e}",
            pop,
            d,
            das_dennis_count(3, d),
            hv
        );
    }
    println!("==========================================================\n");

    let mut group = c.benchmark_group("ablation_refpoints");
    group.sample_size(10);
    for pop in [20usize, 100] {
        group.bench_with_input(BenchmarkId::new("nsga3_run", pop), &pop, |b, &pop| {
            b.iter(|| black_box(run_with_pop(&problem, &reference, pop)))
        });
    }
    group.finish();
}

criterion_group!(benches, ablation);
criterion_main!(benches);
