//! Micro-benchmarks of the platform simulator: window stepping under the
//! cheap allocators at two platform sizes, and the snapshot/accounting
//! path.

use cpo_core::prelude::{CpAllocator, RoundRobinAllocator};
use cpo_model::attr::AttrSet;
use cpo_model::prelude::{Infrastructure, ServerProfile};
use cpo_platform::prelude::{PlatformSim, SimConfig};
use cpo_scenario::request_gen::RequestSpec;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn sim(servers: usize, vms_per_window: usize) -> PlatformSim {
    let infra = Infrastructure::new(
        AttrSet::standard(),
        vec![("dc".into(), ServerProfile::commodity(3).build_many(servers))],
    );
    PlatformSim::new(
        infra,
        SimConfig {
            arrivals: RequestSpec {
                total_vms: vms_per_window,
                ..Default::default()
            },
            lifetime: (3, 6),
            seed: 9,
            ..Default::default()
        },
    )
}

fn micro(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro_platform");
    group.sample_size(10);
    for (servers, vms) in [(16usize, 12usize), (64, 48)] {
        group.bench_with_input(
            BenchmarkId::new("step_round_robin", servers),
            &(servers, vms),
            |b, &(s, v)| {
                b.iter(|| {
                    let mut sim = sim(s, v);
                    for _ in 0..5 {
                        black_box(sim.step(&RoundRobinAllocator).admitted);
                    }
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("step_cp", servers),
            &(servers, vms),
            |b, &(s, v)| {
                b.iter(|| {
                    let mut sim = sim(s, v);
                    for _ in 0..5 {
                        black_box(sim.step(&CpAllocator::default()).admitted);
                    }
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("snapshot_verify", servers),
            &(servers, vms),
            |b, &(s, v)| {
                let mut warm = sim(s, v);
                for _ in 0..5 {
                    warm.step(&RoundRobinAllocator);
                }
                b.iter(|| black_box(warm.verify_state().count()))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, micro);
criterion_main!(benches);
