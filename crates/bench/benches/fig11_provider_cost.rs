//! Fig. 11 — average provider cost per algorithm. The regenerated table
//! printed at startup is the figure; the criterion cells time the two
//! cost extremes (CP cheapest vs unmodified NSGA-II dearest).

use cpo_bench::{bench_problem, print_figure};
use cpo_exper::runner::{Algorithm, Effort};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn fig11(c: &mut Criterion) {
    print_figure("fig11");

    let mut group = c.benchmark_group("fig11_provider_cost");
    group.sample_size(10);
    let problem = bench_problem(25, true, 42);
    for algorithm in [Algorithm::ConstraintProgramming, Algorithm::Nsga2] {
        group.bench_with_input(BenchmarkId::new(algorithm.label(), 25), &problem, |b, p| {
            b.iter(|| {
                let allocator = algorithm.build(Effort::Quick, 42);
                black_box(allocator.allocate(p).provider_cost())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, fig11);
criterion_main!(benches);
