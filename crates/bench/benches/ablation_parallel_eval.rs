//! Ablation — rayon-parallel vs sequential population evaluation.
//!
//! The engine evaluates each generation's offspring with
//! `par_iter().map(evaluate)`; this bench measures the speed-up on the
//! allocation problem at two sizes. Determinism is unaffected (verified
//! in the engine's tests): parallelism only reorders the evaluations.

use cpo_bench::bench_problem;
use cpo_core::prelude::*;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_parallel_eval");
    group.sample_size(10);
    for servers in [25usize, 100] {
        let problem = bench_problem(servers, false, 42);
        for (name, parallel) in [("sequential", false), ("parallel", true)] {
            group.bench_with_input(BenchmarkId::new(name, servers), &problem, |b, p| {
                b.iter(|| {
                    let config = NsgaConfig {
                        population_size: 40,
                        max_evaluations: 1_000,
                        parallel_eval: parallel,
                        ..NsgaConfig::paper_defaults(Variant::Nsga3)
                    };
                    let alloc = EvoAllocator::nsga3(config);
                    black_box(alloc.allocate(p).evaluations)
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, ablation);
criterion_main!(benches);
