//! Ablation — constraint handling in the evolutionary loop.
//!
//! The paper reports that penalising violations exploded response times
//! ("no solution found yet even after having computed for a whole week")
//! and that discarding invalid individuals "excludes too many"; it adopts
//! repair. This bench compares the four repair wirings the engine
//! supports on the same instance:
//!
//! * `Off`       — constraint-domination only (unmodified NSGA-III);
//! * `Parents`   — the literal Fig. 4 pipeline (repair selected parents);
//! * `Offspring` — repair after variation;
//! * `Both`      — the full hybrid.
//!
//! Printed per mode: final feasible fraction and rejection rate; timed
//! per mode: the full allocation run.

use cpo_bench::bench_problem;
use cpo_core::prelude::*;
use cpo_moea::prelude::RepairMode;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn quick_config() -> NsgaConfig {
    NsgaConfig {
        population_size: 40,
        max_evaluations: 2_000,
        ..NsgaConfig::paper_defaults(Variant::Nsga3)
    }
}

fn allocator_with(mode: RepairMode) -> EvoAllocator {
    let mut alloc = EvoAllocator::nsga3_tabu(quick_config());
    alloc.config.repair_mode = mode;
    if matches!(mode, RepairMode::Off | RepairMode::Exclude) {
        // Exclusion is a pure in-engine method: no repair operator, no
        // final admission fix-ups — exactly the paper's Method 1.
        alloc.hybrid = Hybrid::None;
        alloc.finalize_rejections = false;
    }
    alloc
}

fn ablation(c: &mut Criterion) {
    let problem = bench_problem(25, true, 42);

    println!("\n=== ablation: constraint handling (m=25, affinity-heavy) ===");
    println!(
        "{:>12} {:>12} {:>12} {:>12}",
        "mode", "reject", "violations", "time[ms]"
    );
    for (name, mode) in [
        ("off", RepairMode::Off),
        ("exclude", RepairMode::Exclude),
        ("parents", RepairMode::Parents),
        ("offspring", RepairMode::Offspring),
        ("both", RepairMode::Both),
    ] {
        let outcome = allocator_with(mode).allocate(&problem);
        println!(
            "{:>12} {:>12.3} {:>12} {:>12.1}",
            name,
            outcome.rejection_rate,
            outcome.violated_constraints,
            outcome.elapsed.as_secs_f64() * 1_000.0
        );
    }
    println!("==============================================================\n");

    let mut group = c.benchmark_group("ablation_constraint_handling");
    group.sample_size(10);
    for (name, mode) in [("off", RepairMode::Off), ("both", RepairMode::Both)] {
        group.bench_with_input(BenchmarkId::new(name, 25), &problem, |b, p| {
            b.iter(|| black_box(allocator_with(mode).allocate(p).rejection_rate))
        });
    }
    group.finish();
}

criterion_group!(benches, ablation);
criterion_main!(benches);
