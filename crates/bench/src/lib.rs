//! Shared helpers for the benchmark suite.
//!
//! Each `benches/figN_*.rs` target regenerates one figure of the paper:
//! it prints the figure's data table (the same rows `exper figN` emits)
//! and then lets criterion time the representative cells. The
//! `ablation_*` targets benchmark the design choices DESIGN.md calls out;
//! the `micro_*` targets profile the hot kernels.

pub mod diff;
pub mod report;

use cpo_exper::runner::{Algorithm, Effort};
use cpo_model::prelude::AllocationProblem;
use cpo_scenario::prelude::{ScenarioSize, ScenarioSpec};

/// Deterministic scenario for a bench cell.
pub fn bench_problem(servers: usize, heavy: bool, seed: u64) -> AllocationProblem {
    let size = ScenarioSize::with_servers(servers);
    let spec = if heavy {
        ScenarioSpec::for_size(&size).with_heavy_affinity()
    } else {
        ScenarioSpec::for_size(&size)
    };
    spec.generate(seed)
}

/// Prints one figure's data table by calling the exper harness with a
/// small run count — the rows `cargo bench` leaves in its log are the
/// regenerated figure.
pub fn print_figure(id: &str) {
    use cpo_exper::figures;
    use cpo_exper::report::{render_figure, shape_summary};
    let runs = 2;
    let seed = 42;
    let fig = match id {
        "fig7" => figures::fig7(Effort::Quick, runs, seed),
        "fig8" => figures::fig8(Effort::Quick, runs, seed),
        "fig9" => figures::fig9(Effort::Quick, runs, seed),
        "fig10" => figures::fig10(Effort::Quick, runs, seed),
        "fig11" => figures::fig11(Effort::Quick, runs, seed),
        other => panic!("unknown figure {other}"),
    };
    println!("\n=== regenerated {id} ===");
    print!("{}", render_figure(&fig));
    print!("{}", shape_summary(&fig));
    println!("========================\n");
}

/// The algorithm set for timing cells.
pub fn timed_algorithms() -> [Algorithm; 6] {
    Algorithm::all()
}

/// The fig8 seed-42 cell restricted to admissible requests — the same
/// batch-level CSP the propagation regression test pins. Requests whose
/// rules are structurally unsatisfiable on this infrastructure (a
/// different-datacenter rule spanning more VMs than there are
/// datacenters) are dropped upfront, exactly as batch admission would.
pub fn admissible_fig8_problem() -> AllocationProblem {
    use cpo_model::prelude::*;
    let raw = ScenarioSpec::for_size(&ScenarioSize::with_servers(100)).generate(42);
    let g = raw.g();
    let mut batch = RequestBatch::new();
    for req in raw.batch().requests() {
        let admissible = req
            .rules
            .iter()
            .all(|r| r.kind() != AffinityKind::DifferentDatacenter || r.vms().len() <= g);
        if !admissible {
            continue;
        }
        let base = batch.vms().len();
        let vms: Vec<VmSpec> = req.vms.iter().map(|&k| raw.batch().vm(k).clone()).collect();
        let rules: Vec<AffinityRule> = req
            .rules
            .iter()
            .map(|r| {
                let remapped: Vec<VmId> = r
                    .vms()
                    .iter()
                    .map(|k| {
                        let pos = req.vms.iter().position(|v| v == k).expect("rule vm");
                        VmId(base + pos)
                    })
                    .collect();
                AffinityRule::new(r.kind(), remapped)
            })
            .collect();
        batch.push_request(vms, rules);
    }
    AllocationProblem::new(raw.infra().clone(), batch, None)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_problem_is_deterministic() {
        let a = bench_problem(8, true, 1);
        let b = bench_problem(8, true, 1);
        assert_eq!(a.n(), b.n());
        assert_eq!(a.m(), 8);
    }
}
