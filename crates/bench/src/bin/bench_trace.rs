//! The standing macro-benchmark: replays an amplified production trace
//! through the full continuous-time stack — `cpo-traces` streaming
//! ingestion → amplifier → `TraceArrivalSource` → `WindowedScheduler`
//! over the memory-lean `FleetExecutor` — and writes `BENCH_trace.json`.
//!
//! ```text
//! cargo run --release -p cpo-bench --bin bench_trace -- \
//!     [--arrivals 1000000] [--servers 10000] [--window 60] \
//!     [--seed 42] [--shards 4] [--out target/bench/BENCH_trace.json] \
//!     [--dash target/bench/DASH_trace.html]
//! ```
//!
//! The run is executed **twice** with the same seed and the per-window
//! outcome stream is fingerprinted: the benchmark aborts if the two
//! replays diverge, so determinism is re-proven on every invocation.
//! Per-window fleet-health series (`cpo_obs::series`) are collected
//! through both replays with three standing assertions: at least six
//! distinct `fleet.*` series sampled once per window, every ring inside
//! its constant-memory capacity bound, and byte-identical deterministic
//! series JSON across the two replays. The series render to a
//! self-contained HTML dashboard (`--dash`) plus an ANSI summary on
//! stdout. Reported cells: ingest throughput (events/s), end-to-end
//! replay throughput, peak RSS (null where procfs is unavailable),
//! admitted/rejected totals, and p50/p95/p99 per-window solve latency.
//!
//! A sharded section then replays the same trace through
//! `ShardedScheduler<FleetExecutor>` at a ladder of shard counts up to
//! `--shards`, printing a throughput-vs-shards scaling table. The
//! headline sharded metric is the *modeled* admission throughput under
//! the DES clock — arrivals divided by the summed per-window critical
//! path (slowest shard's solve plus the sequential commit phase) — so
//! the scaling is honest on any host, including single-CPU CI runners
//! where the shard solves execute serially but are timed individually.
//! Wall-clock throughput is reported alongside as an untracked cell.
//! The `shards = 1` rung must fingerprint-match the native replay
//! (bit-identity of the optimistic-commit protocol at one shard), and
//! the top rung is run twice to prove the conflict counters and window
//! outcomes deterministic.
//!
//! Finally the top rung runs twice more under the latency-attribution
//! profiler (`cpo_obs::prof`): per-request stage decomposition must
//! account ≥95% of finalized requests, the deterministic profile subset
//! must be byte-identical across the two runs, and the per-server
//! conflict heat must sum to the store's own conflict counter. The full
//! profile lands in `BENCH_trace_profile.json` plus a
//! flamegraph-compatible `BENCH_trace_flame.folded`, and the
//! deterministic attribution counters become pinned report cells.

use cpo_bench::bench_problem;
use cpo_bench::report::{Cell, Report};
use cpo_core::prelude::{
    AllocationOutcome, Allocator, CpAllocator, FilteringAllocator, PortfolioAllocator,
    PortfolioCriterion, RoundRobinAllocator, TabuSearchAllocator,
};
use cpo_des::prelude::*;
use cpo_model::attr::AttrSet;
use cpo_model::prelude::*;
use cpo_platform::prelude::{
    FleetExecutor, ShardConfig, ShardedScheduler, StoreMetrics, WindowReport,
};
use cpo_scenario::prelude::ArrivalSpec;
use cpo_tabu::{tabu_search, Neighborhood, Scoring, TabuConfig};
use cpo_traces::prelude::*;
use std::io::Cursor;
use std::time::{Duration, Instant};

/// The committed 64-row Azure-style seed trace (3600 s span).
const SAMPLE: &str = include_str!("../../../../examples/data/azure_sample.csv");

struct Args {
    arrivals: usize,
    servers: usize,
    window: f64,
    seed: u64,
    shards: usize,
    out: String,
    dash: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        arrivals: 1_000_000,
        servers: 10_000,
        window: 60.0,
        seed: 42,
        shards: 4,
        out: "target/bench/BENCH_trace.json".into(),
        dash: "target/bench/DASH_trace.html".into(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .unwrap_or_else(|| panic!("missing value for {flag}"))
        };
        match flag.as_str() {
            "--arrivals" => args.arrivals = value().parse().expect("--arrivals"),
            "--servers" => args.servers = value().parse().expect("--servers"),
            "--window" => args.window = value().parse().expect("--window"),
            "--seed" => args.seed = value().parse().expect("--seed"),
            "--shards" => {
                args.shards = value().parse().expect("--shards");
                assert!(args.shards >= 1, "--shards must be >= 1");
            }
            "--out" => args.out = value(),
            "--dash" => args.dash = value(),
            other => panic!("unknown flag {other}"),
        }
    }
    args
}

fn fleet(servers: usize) -> Infrastructure {
    Infrastructure::new(
        AttrSet::standard(),
        vec![("dc".into(), ServerProfile::commodity(3).build_many(servers))],
    )
}

fn amplifier(factor: usize, seed: u64) -> Amplifier {
    let reader = AzureReader::new(Cursor::new(SAMPLE), MalformedPolicy::Fail)
        .expect("embedded sample parses");
    Amplifier::new(
        reader,
        AmplifyConfig {
            factor,
            time_jitter: 30.0,
            demand_jitter: 0.2,
            seed,
        },
    )
    .expect("embedded sample amplifies")
}

/// FNV-1a over the per-window allocation outcomes.
fn fingerprint(windows: &[WindowReport]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut mix = |v: u64| {
        h ^= v;
        h = h.wrapping_mul(0x100_0000_01b3);
    };
    for w in windows {
        mix(w.window as u64);
        mix(w.arrivals as u64);
        mix(w.admitted as u64);
        mix(w.rejected as u64);
        mix(w.active_servers as u64);
        mix(w.running_vms as u64);
    }
    h
}

fn replay(args: &Args, factor: usize) -> (DesReport, usize, f64) {
    let amp = amplifier(factor, args.seed);
    let horizon = amp.horizon() + 2.0 * args.window;
    let source = TraceArrivalSource::new(amp, ArrivalSpec::default(), args.seed);
    let config = DesConfig {
        window_length: args.window,
        latency: LatencyModel::Fixed(0.0),
        failures: None,
        seed: args.seed,
        solve_deadline: None,
    };
    let backend = FleetExecutor::new(fleet(args.servers));
    let mut sched = WindowedScheduler::with_backend(backend, config, source);
    let report = sched.run(&RoundRobinAllocator, horizon);
    if let Some(err) = sched.source().error() {
        panic!("trace stream failed: {err}");
    }
    let emitted = sched.source().emitted() as usize;
    (report, emitted, horizon)
}

/// One sharded replay: outcomes, emitted arrivals, store counters, and
/// end-to-end wall time.
fn replay_sharded(
    args: &Args,
    factor: usize,
    shards: usize,
) -> (DesReport, usize, StoreMetrics, u128) {
    let amp = amplifier(factor, args.seed);
    let horizon = amp.horizon() + 2.0 * args.window;
    let source = TraceArrivalSource::new(amp, ArrivalSpec::default(), args.seed);
    let config = DesConfig {
        window_length: args.window,
        latency: LatencyModel::Fixed(0.0),
        failures: None,
        seed: args.seed,
        solve_deadline: None,
    };
    let backend = ShardedScheduler::new(
        FleetExecutor::new(fleet(args.servers)),
        ShardConfig {
            shards,
            ..ShardConfig::default()
        },
    );
    let start = Instant::now();
    let mut sched = WindowedScheduler::with_backend(backend, config, source);
    let report = sched.run(&RoundRobinAllocator, horizon);
    let wall_ns = start.elapsed().as_nanos();
    if let Some(err) = sched.source().error() {
        panic!("trace stream failed: {err}");
    }
    let metrics = sched.backend().backend().store().metrics();
    let emitted = sched.source().emitted() as usize;
    (report, emitted, metrics, wall_ns)
}

/// One down-scaled replay under a per-window solve deadline: the trace
/// at a reduced amplification on a deliberately tight fleet, so the
/// allocators compete on admission, not on an empty data center. The
/// deadline is generous (node budgets, not the wall clock, bound the
/// members) so the outcome stays deterministic.
fn replay_raced(
    args: &Args,
    factor: usize,
    servers: usize,
    allocator: &dyn Allocator,
    deadline: Duration,
) -> DesReport {
    let amp = amplifier(factor, args.seed);
    let horizon = amp.horizon() + 2.0 * args.window;
    let source = TraceArrivalSource::new(amp, ArrivalSpec::default(), args.seed);
    let config = DesConfig {
        window_length: args.window,
        latency: LatencyModel::Fixed(0.0),
        failures: None,
        seed: args.seed,
        solve_deadline: Some(deadline),
    };
    let backend = FleetExecutor::new(fleet(servers));
    let mut sched = WindowedScheduler::with_backend(backend, config, source);
    let report = sched.run(allocator, horizon);
    if let Some(err) = sched.source().error() {
        panic!("trace stream failed: {err}");
    }
    report
}

/// Wraps the racing portfolio and, on every window solve, also runs each
/// member alone on the *same* batch and residual snapshot, asserting the
/// race never admits fewer than its best member. This is the per-window
/// dominance the racing reduction guarantees; cumulative admission over
/// a stateful replay is reported but not asserted, because a cost-better
/// tie in one window legitimately changes the residual the next window
/// sees.
struct RaceDominanceProbe {
    race: PortfolioAllocator,
    members: Vec<(&'static str, Box<dyn Allocator>)>,
    budget: Duration,
    /// (windows checked, minimum race-minus-best-member margin).
    stats: std::sync::Mutex<(usize, i64)>,
}

impl Allocator for RaceDominanceProbe {
    fn name(&self) -> &'static str {
        "portfolio-race-probe"
    }

    fn allocate(&self, problem: &AllocationProblem) -> AllocationOutcome {
        let out = self.race.allocate(problem);
        let (best, best_label) = self
            .members
            .iter()
            .map(|(label, m)| {
                let solo = m.allocate_with_deadline(problem, Deadline::within(self.budget));
                (solo.accepted_requests, *label)
            })
            .max()
            .expect("the portfolio has members");
        assert!(
            out.accepted_requests >= best,
            "window of {} requests: race admitted {} but member {best_label} admitted {best}",
            problem.n(),
            out.accepted_requests
        );
        let margin = out.accepted_requests as i64 - best as i64;
        let mut s = self.stats.lock().expect("probe stats");
        s.0 += 1;
        s.1 = s.1.min(margin);
        out
    }
}

/// Summed per-window service time — for a sharded window the critical
/// path (max-over-shards solve + sequential commits); the denominator
/// of the modeled admission throughput.
fn modeled_ns(windows: &[WindowReport]) -> u128 {
    windows.iter().map(|w| w.solve_time.as_nanos()).sum()
}

fn percentile_ms(sorted_ns: &[u128], p: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ns.len() - 1) as f64 * p).round() as usize;
    sorted_ns[idx] as f64 / 1e6
}

fn main() {
    let args = parse_args();
    let base_len = SAMPLE.lines().count() - 1;
    let factor = args.arrivals.div_ceil(base_len);
    let total = base_len * factor;
    println!(
        "bench_trace: {total} arrivals ({base_len}-row seed × {factor}), \
         {} servers, {}s windows, seed {}",
        args.servers, args.window, args.seed
    );

    // --- ingest-only throughput (no simulation behind it) -----------
    let ingest_start = Instant::now();
    let mut amp = amplifier(factor, args.seed);
    let mut ingested = 0usize;
    while let Some(event) = amp.next_event() {
        event.expect("amplified stream is clean");
        ingested += 1;
    }
    let ingest_ns = ingest_start.elapsed().as_nanos();
    assert_eq!(ingested, total);
    let ingest_rate = ingested as f64 / (ingest_ns as f64 / 1e9);
    println!("ingest: {ingest_rate:.0} events/s over {ingested} events");

    // --- full replay, twice: measure and prove determinism ----------
    // Fleet-health series are collected through both replays; the
    // deterministic subset of the series JSON must come out of each
    // byte-for-byte identical, extending the fingerprint check from
    // window outcomes to the whole telemetry pipeline.
    cpo_obs::series::enable_with_capacity(512);
    let replay_start = Instant::now();
    let (report, emitted, horizon) = replay(&args, factor);
    let replay_ns = replay_start.elapsed().as_nanos();
    let bus = cpo_obs::series::snapshot();
    let det_json = bus.to_json(false);
    cpo_obs::series::reset();
    let (second, _, _) = replay(&args, factor);
    let det_json2 = cpo_obs::series::snapshot().to_json(false);
    cpo_obs::series::disable();
    let fp = fingerprint(&report.windows);
    let fp2 = fingerprint(&second.windows);
    assert_eq!(
        fp, fp2,
        "replay is not deterministic: fingerprints {fp:#x} vs {fp2:#x}"
    );
    assert_eq!(
        det_json, det_json2,
        "deterministic series JSON must be byte-identical across replays"
    );

    // --- fleet-health series: coverage and the constant-memory bound -
    let fleet_series: Vec<&str> = bus
        .series()
        .keys()
        .map(String::as_str)
        .filter(|n| n.starts_with("fleet."))
        .collect();
    assert!(
        fleet_series.len() >= 6,
        "expected >= 6 fleet-health series, got {fleet_series:?}"
    );
    for (name, s) in bus.series() {
        assert!(
            s.ring.points().len() <= bus.capacity(),
            "series {name} exceeded its capacity bound: {} > {}",
            s.ring.points().len(),
            bus.capacity()
        );
        assert_eq!(
            s.ring.total(),
            report.windows.len() as u64,
            "series {name} must be sampled exactly once per window"
        );
    }

    assert_eq!(emitted, total, "scheduler must drain the whole stream");
    let replay_rate = emitted as f64 / (replay_ns as f64 / 1e9);
    let admitted = report.total_admitted();
    let rejected = report.total_rejected();
    let peak_active = report
        .windows
        .iter()
        .map(|w| w.active_servers)
        .max()
        .unwrap_or(0);
    let peak_vms = report
        .windows
        .iter()
        .map(|w| w.running_vms)
        .max()
        .unwrap_or(0);
    let mut solve_ns: Vec<u128> = report
        .windows
        .iter()
        .map(|w| w.solve_time.as_nanos())
        .collect();
    solve_ns.sort_unstable();
    let (p50, p95, p99) = (
        percentile_ms(&solve_ns, 0.50),
        percentile_ms(&solve_ns, 0.95),
        percentile_ms(&solve_ns, 0.99),
    );
    let rss = cpo_bench::report::peak_rss_bytes();

    println!(
        "replay: {replay_rate:.0} events/s, {} windows, {admitted} admitted, \
         {rejected} rejected, peak {peak_active} active servers / {peak_vms} VMs",
        report.windows.len()
    );
    println!("solve latency: p50 {p50:.2} ms, p95 {p95:.2} ms, p99 {p99:.2} ms");
    if let Some(rss) = rss {
        println!("peak RSS: {:.1} MiB", rss as f64 / (1024.0 * 1024.0));
    }

    // --- dashboard: HTML report + terminal summary ------------------
    let title = format!(
        "bench_trace — {total} arrivals / {} servers / seed {}",
        args.servers, args.seed
    );
    cpo_obs::dash::write_html(&bus, &args.dash, &title).expect("write dashboard");
    println!("wrote {}", args.dash);
    print!("{}", cpo_obs::dash::ansi_summary(&bus));

    // --- sharded replays: scaling ladder, equivalence, determinism --
    // Ladder: powers of two up to --shards, plus --shards itself.
    let mut ladder = vec![1usize];
    let mut next = 2usize;
    while next < args.shards {
        ladder.push(next);
        next *= 2;
    }
    if args.shards > 1 {
        ladder.push(args.shards);
    }
    let native_modeled = modeled_ns(&report.windows);
    println!("sharded replay ladder (modeled = arrivals / summed window critical path):");
    println!(
        "  shards  modeled-events/s  speedup  wall-events/s  commits  conflicts  conflict-rate"
    );
    let mut top = None;
    let mut one_shard_modeled = native_modeled;
    for &s in &ladder {
        let (rep, em, metrics, wall) = replay_sharded(&args, factor, s);
        assert_eq!(em, total, "sharded scheduler must drain the whole stream");
        let sfp = fingerprint(&rep.windows);
        if s == 1 {
            assert_eq!(
                sfp, fp,
                "shards=1 must be bit-identical to the native fleet replay"
            );
            one_shard_modeled = modeled_ns(&rep.windows);
        }
        let m_ns = modeled_ns(&rep.windows);
        let modeled_rate = em as f64 / (m_ns as f64 / 1e9);
        let wall_rate = em as f64 / (wall as f64 / 1e9);
        let speedup = one_shard_modeled as f64 / m_ns as f64;
        let conflict_rate = metrics.conflict_rate();
        println!(
            "  {s:>6}  {modeled_rate:>16.0}  {speedup:>6.2}x  {wall_rate:>13.0}  {:>7}  {:>9}  {conflict_rate:>13.4}",
            metrics.commits, metrics.conflicts
        );
        top = Some((
            s,
            rep,
            metrics,
            sfp,
            m_ns,
            modeled_rate,
            wall_rate,
            speedup,
            conflict_rate,
        ));
    }
    let (
        top_shards,
        top_report,
        top_metrics,
        top_fp,
        _top_ns,
        top_rate,
        top_wall_rate,
        top_speedup,
        top_conflict_rate,
    ) = top.expect("ladder is never empty");

    // Determinism at the top rung: outcomes *and* conflict counters,
    // with the store.* telemetry series captured for the artifact.
    cpo_obs::series::enable_with_capacity(512);
    let (rerun, _, rerun_metrics, _) = replay_sharded(&args, factor, top_shards);
    let sharded_bus = cpo_obs::series::snapshot();
    cpo_obs::series::disable();
    assert_eq!(
        fingerprint(&rerun.windows),
        top_fp,
        "sharded replay is not deterministic at {top_shards} shards"
    );
    assert_eq!(
        rerun_metrics, top_metrics,
        "conflict counters must reproduce exactly at {top_shards} shards"
    );
    let series_path = args.out.replace(".json", "_series.json");
    std::fs::create_dir_all(
        std::path::Path::new(&series_path)
            .parent()
            .unwrap_or_else(|| std::path::Path::new(".")),
    )
    .expect("create series dir");
    std::fs::write(&series_path, sharded_bus.to_json(false)).expect("write sharded series");
    println!(
        "sharded determinism: {top_shards} shards reproduce fingerprint {top_fp:#018x}; \
         store series -> {series_path}"
    );

    // --- latency attribution at the top rung, twice -----------------
    // The profiler decomposes every admitted request's latency into
    // stages and attributes each bounce to a server; its deterministic
    // subset (counts, segments, rankings — no µs) must reproduce
    // byte-for-byte across same-seed runs, and its conflict tables must
    // agree with the store's own counters.
    let run_profiled = || {
        cpo_obs::flight::enable();
        cpo_obs::prof::enable();
        let (rep, _, metrics, _) = replay_sharded(&args, factor, top_shards);
        let profile = cpo_obs::prof::snapshot().expect("profiler enabled");
        cpo_obs::prof::disable();
        cpo_obs::prof::reset();
        cpo_obs::flight::disable();
        cpo_obs::flight::reset();
        (rep, metrics, profile)
    };
    let (prof_rep, prof_metrics, profile) = run_profiled();
    let (_, _, profile2) = run_profiled();
    assert_eq!(
        fingerprint(&prof_rep.windows),
        top_fp,
        "profiling must not change replay outcomes"
    );
    let prof_det = profile.to_json(false);
    assert_eq!(
        prof_det,
        profile2.to_json(false),
        "deterministic profile JSON must be byte-identical across replays"
    );
    assert!(
        profile.accounted_fraction() >= 0.95,
        "stage decomposition must account >=95% of finalized requests, got {:.4}",
        profile.accounted_fraction()
    );
    assert_eq!(
        profile.bounces, prof_metrics.conflicts,
        "profiler bounce count must equal the store's conflict counter"
    );
    assert_eq!(
        profile.commits, prof_metrics.commits,
        "profiler commit count must equal the store's commit counter"
    );
    let hot_total: u64 = profile.hot_servers.iter().map(|h| h.conflicts).sum();
    assert_eq!(
        hot_total, prof_metrics.conflicts,
        "per-server conflict heat must sum to the store's conflict counter"
    );
    let profile_path = args.out.replace(".json", "_profile.json");
    std::fs::write(&profile_path, profile.to_json(true)).expect("write profile");
    let flame_path = args.out.replace(".json", "_flame.folded");
    std::fs::write(&flame_path, profile.flame_folded()).expect("write flame");
    println!(
        "latency attribution: {:.2}% accounted over {} finalized requests, \
         stage coverage {}/5, hot-server fingerprint {} -> {profile_path}",
        profile.accounted_fraction() * 100.0,
        profile.finalized(),
        profile.stage_coverage(),
        profile.hot_fingerprint(16),
    );

    // --- deadline-raced portfolio vs its members --------------------
    // The anytime admission claim, on the trace itself: a down-scaled
    // replay on a deliberately tight fleet, all solves under the same
    // generous per-window deadline. The race keeps the best member
    // outcome per window, so on every window batch — same residual, same
    // requests — it can only tie or beat each member; the probe asserts
    // exactly that, window by window. Each member's *solo trajectory* is
    // also replayed and reported: cumulative admission is informational,
    // not asserted, because a cost-better tie in one window legitimately
    // changes the residual the next window sees. Members are
    // node-budgeted (never wall-clock-cut) so every count is
    // deterministic.
    let race_factor = 8usize;
    let race_servers = 4usize;
    let race_deadline = Duration::from_secs(10);
    let cp_member = || CpAllocator {
        per_request_deadline: Duration::from_secs(1),
        max_nodes: Some(20_000),
        ..CpAllocator::default()
    };
    let make_members = || -> Vec<(&'static str, Box<dyn Allocator>)> {
        vec![
            ("filtering", Box::new(FilteringAllocator)),
            ("constraint-programming", Box::new(cp_member())),
            ("tabu-search", Box::<TabuSearchAllocator>::default()),
        ]
    };
    println!(
        "deadline-raced portfolio ({} arrivals, {race_servers} servers, {:.0}s deadline):",
        base_len * race_factor,
        race_deadline.as_secs_f64()
    );
    let mut member_cells = Vec::new();
    for (label, member) in &make_members() {
        let rep = replay_raced(
            &args,
            race_factor,
            race_servers,
            member.as_ref(),
            race_deadline,
        );
        let admitted = rep.total_admitted();
        println!(
            "  {label:<24} admitted {admitted:>5}  rejected {:>5}",
            rep.total_rejected()
        );
        member_cells.push((*label, admitted, rep.total_rejected()));
    }
    let probe = RaceDominanceProbe {
        race: PortfolioAllocator::racing(
            make_members().into_iter().map(|(_, m)| m).collect(),
            PortfolioCriterion::AcceptanceThenCost,
            Some(race_deadline),
        ),
        members: make_members(),
        budget: race_deadline,
        stats: std::sync::Mutex::new((0, i64::MAX)),
    };
    let race_rep = replay_raced(&args, race_factor, race_servers, &probe, race_deadline);
    let race_admitted = race_rep.total_admitted();
    let (race_windows, race_min_margin) = *probe.stats.lock().expect("probe stats");
    println!(
        "  {:<24} admitted {race_admitted:>5}  rejected {:>5}",
        "portfolio-race",
        race_rep.total_rejected()
    );
    println!(
        "  per-window dominance held on all {race_windows} windows (min margin {race_min_margin})"
    );

    // --- parallel-scan scaling table --------------------------------
    // The exhaustive tabu scan at a thread ladder on the fig8 seed-42
    // polish. The trajectory is asserted identical at every rung (the
    // partitioning is logical); wall time and speedup are reported for
    // whatever cores the host actually has — informational, not gated.
    let scan_problem = bench_problem(100, false, 42);
    let mut s = 7u64;
    let genes: Vec<usize> = (0..scan_problem.n())
        .map(|_| {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (s >> 33) as usize % scan_problem.m()
        })
        .collect();
    let scan_start = Assignment::from_genes(&genes);
    println!(
        "parallel exhaustive scan scaling (n·m = {}):",
        scan_problem.n() * scan_problem.m()
    );
    println!("  threads  wall-ms  speedup");
    let mut scan_cells = Vec::new();
    let mut t1_ns = 0u128;
    let mut scan_ref = None;
    for threads in [1usize, 2, 4, 8] {
        let config = TabuConfig {
            tenure: 24,
            max_iterations: 60,
            candidates: 48,
            seed: 42,
            scoring: Scoring::Delta,
            neighborhood: Neighborhood::Exhaustive,
            threads,
            ..TabuConfig::default()
        };
        let t0 = Instant::now();
        let result = tabu_search(&scan_problem, scan_start.clone(), &config);
        let wall = t0.elapsed().as_nanos();
        if threads == 1 {
            t1_ns = wall;
        }
        let probe = (
            result.accepted_moves,
            result.candidates_scanned,
            result.eval_work,
        );
        match &scan_ref {
            None => scan_ref = Some(probe),
            Some(r) => assert_eq!(*r, probe, "scan at {threads} threads diverged"),
        }
        let speedup = t1_ns as f64 / wall as f64;
        println!(
            "  {threads:>7}  {:>7.1}  {speedup:>6.2}x",
            wall as f64 / 1e6
        );
        scan_cells.push((threads, wall, speedup));
    }

    let mut out = Report::new("cpo-bench-trace", 1);
    out.push(
        Cell::new("trace.config")
            .int("arrivals", total as i128)
            .int("servers", args.servers as i128)
            .int("amplify_factor", factor as i128)
            .float("window_length", args.window)
            .float("horizon", horizon)
            .int("seed", args.seed as i128),
    );
    out.push(
        Cell::new("trace.ingest")
            .int("events", ingested as i128)
            .int("wall_ns", ingest_ns as i128)
            .float("events_per_sec", ingest_rate),
    );
    out.push(
        Cell::new("trace.replay")
            .int("events", emitted as i128)
            .int("wall_ns", replay_ns as i128)
            .float("events_per_sec", replay_rate)
            .int("windows", report.windows.len() as i128)
            .int("admitted", admitted as i128)
            .int("rejected", rejected as i128)
            .int("peak_active_servers", peak_active as i128)
            .int("peak_running_vms", peak_vms as i128)
            .str("fingerprint", format!("{fp:#018x}"))
            .opt_int("peak_rss_bytes", rss),
    );
    out.push(
        Cell::new("trace.solve_latency")
            .float("p50_ms", p50)
            .float("p95_ms", p95)
            .float("p99_ms", p99),
    );
    out.push(
        Cell::new("trace.series")
            .int("fleet_series", fleet_series.len() as i128)
            .int("ring_capacity", bus.capacity() as i128)
            .int("windows_sampled", report.windows.len() as i128),
    );
    out.push(
        Cell::new("sharded.replay")
            .int("shards", top_shards as i128)
            .float("events_per_sec", top_rate)
            .float("wall_events_per_sec", top_wall_rate)
            .float("speedup_vs_one", top_speedup)
            .int("windows", top_report.windows.len() as i128)
            .int("admitted", top_report.total_admitted() as i128)
            .int("rejected", top_report.total_rejected() as i128)
            .str("fingerprint", format!("{top_fp:#018x}")),
    );
    out.push(
        Cell::new("sharded.store")
            .int("commits", top_metrics.commits as i128)
            .int("conflicts", top_metrics.conflicts as i128)
            .float("conflict_rate", top_conflict_rate),
    );
    let mut race_cell = Cell::new("trace.race")
        .int("arrivals", (base_len * race_factor) as i128)
        .int("servers", race_servers as i128)
        .int("deadline_ms", race_deadline.as_millis() as i128)
        .int("admitted", race_admitted as i128)
        .int("rejected", race_rep.total_rejected() as i128)
        .int("windows_checked", race_windows as i128)
        .int("min_window_margin", race_min_margin as i128);
    for (label, admitted, rejected) in &member_cells {
        let key = label.replace('-', "_");
        race_cell = race_cell
            .int(format!("{key}_admitted"), *admitted as i128)
            .int(format!("{key}_rejected"), *rejected as i128);
    }
    out.push(race_cell);
    for (threads, wall, speedup) in &scan_cells {
        out.push(
            Cell::new(format!("tabu.scan_scaling.t{threads}"))
                .int("wall_ns", *wall as i128)
                .float("speedup_vs_t1", *speedup),
        );
    }
    out.push(
        Cell::new("profile.attribution")
            .int("tracked", profile.tracked as i128)
            .int("finalized", profile.finalized() as i128)
            .float("accounted_fraction", profile.accounted_fraction())
            .int("stage_coverage", profile.stage_coverage() as i128)
            .int("commits", profile.commits as i128)
            .int("conflicts", profile.bounces as i128)
            .int("stale_bounces", profile.stale_bounces as i128)
            .int("capacity_bounces", profile.capacity_bounces as i128)
            .str("hot_fingerprint", profile.hot_fingerprint(16)),
    );
    out.write(&args.out).expect("write BENCH_trace.json");
    println!("wrote {}", args.out);
}
