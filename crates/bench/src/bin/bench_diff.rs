//! CI perf-regression gate: diffs a fresh `BENCH_*.json` against its
//! committed baseline under the per-metric tolerance policy in
//! [`cpo_bench::diff`].
//!
//! ```text
//! cargo run --release -p cpo-bench --bin bench_diff -- \
//!     --baseline results/baselines/BENCH_trace.json \
//!     --current  target/bench/BENCH_trace.json \
//!     [--scale 1.0]
//! ```
//!
//! Exit codes: `0` inside every band, `1` on a regression or a missing
//! metric, `2` on usage/parse errors. `--scale` multiplies every
//! non-exact tolerance (use >1 on noisy shared runners); exact metrics
//! (deterministic counts, the replay fingerprint) never loosen — when
//! one changes intentionally, regenerate and commit the baseline in the
//! same PR.

use cpo_bench::diff::diff_reports;
use cpo_obs::json::parse;
use std::process::ExitCode;

struct Args {
    baseline: String,
    current: String,
    scale: f64,
}

fn parse_args() -> Result<Args, String> {
    let mut baseline = None;
    let mut current = None;
    let mut scale = 1.0f64;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = || it.next().ok_or(format!("missing value for {flag}"));
        match flag.as_str() {
            "--baseline" => baseline = Some(value()?),
            "--current" => current = Some(value()?),
            "--scale" => {
                scale = value()?.parse().map_err(|e| format!("bad --scale: {e}"))?;
                if !(scale > 0.0) {
                    return Err("--scale must be positive".into());
                }
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(Args {
        baseline: baseline.ok_or("--baseline is required")?,
        current: current.ok_or("--current is required")?,
        scale,
    })
}

fn load(path: &str) -> Result<cpo_obs::json::Value, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    parse(&text).map_err(|e| format!("parse {path}: {e}"))
}

fn run() -> Result<bool, String> {
    let args = parse_args()?;
    let baseline = load(&args.baseline)?;
    let current = load(&args.current)?;
    let outcome = diff_reports(&baseline, &current, args.scale)?;
    println!(
        "bench_diff: {} vs baseline {} (scale {})",
        args.current, args.baseline, args.scale
    );
    print!("{}", outcome.render());
    Ok(outcome.passed())
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(e) => {
            eprintln!("bench_diff: {e}");
            eprintln!(
                "usage: bench_diff --baseline <committed.json> --current <fresh.json> \
                 [--scale <f>]"
            );
            ExitCode::from(2)
        }
    }
}
