//! Dependency-free micro-benchmark runner: times the hot kernels the
//! criterion suite profiles, but as a plain binary CI can run on every
//! push, and writes the results as machine-readable JSON.
//!
//! ```text
//! cargo run --release -p cpo-bench --bin bench_micro [out.json]
//! ```
//!
//! Cells:
//! * `cpsolve.{queued,reference}` — the fig8 seed-42 batch CSP under both
//!   propagation engines (wall time, propagator invocations, nodes);
//! * `des.synthetic_churn` — raw event-queue throughput in events/s;
//! * `tabu.move_scoring.{delta,full}` — the fig8 seed-42 tabu polish
//!   under incremental vs full move scoring (wall time, `eval_work`
//!   model-cell counter), plus the full/delta work ratio;
//! * `tabu.parallel_scan.t{1,2,4}` — the same polish under the
//!   exhaustive n·m scan at 1/2/4 logical partitions; the trajectory is
//!   asserted bit-identical across thread counts, the t1/t4 speedup is
//!   reported informationally;
//! * `tabu.candidate_list` — candidate-list neighborhood vs the
//!   exhaustive scan (scan reduction, deterministic counters);
//! * `alloc.<label>.flight_{off,on}` — one allocator sweep with the
//!   flight recorder disabled vs enabled, plus the overhead ratio. The
//!   recorder's acceptance bar is ≤5% overhead when enabled; the ratio
//!   is reported, not asserted, because CI machines are noisy.

use cpo_bench::report::{Cell, Report};
use cpo_bench::{admissible_fig8_problem, bench_problem};
use cpo_core::cp_alloc::build_batch_csp;
use cpo_cpsolve::prelude::*;
use cpo_des::queue::synthetic_churn;
use cpo_exper::runner::{Algorithm, Effort};
use cpo_model::prelude::*;
use cpo_obs::flight;
use cpo_tabu::{tabu_search, Neighborhood, Scoring, TabuConfig};
use std::time::Instant;

/// Median wall time of `reps` runs of `f`, in nanoseconds.
fn median_ns(reps: usize, mut f: impl FnMut()) -> u128 {
    let mut samples: Vec<u128> = (0..reps)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_nanos()
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn solve_fig8(engine: Engine) -> SearchStats {
    let problem = admissible_fig8_problem();
    let mut csp = build_batch_csp(&problem);
    let config = SearchConfig {
        deadline: None,
        max_nodes: Some(5_000),
        value_order: ValueOrder::Lex,
        engine,
    };
    let (outcome, stats) = solve(&mut csp, &config);
    assert!(
        outcome.solution().is_some(),
        "fig8 cell must be satisfiable"
    );
    stats
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "target/bench/BENCH_micro.json".into());
    let mut report = Report::new("cpo-bench-micro", 1);

    // --- cpsolve: queued vs reference propagation engine ------------
    for (name, engine) in [
        ("cpsolve.queued", Engine::Queued),
        ("cpsolve.reference", Engine::Reference),
    ] {
        let mut stats = SearchStats::default();
        let wall_ns = median_ns(3, || stats = solve_fig8(engine));
        println!(
            "{name}: {:.2} ms, {} propagations, {} nodes",
            wall_ns as f64 / 1e6,
            stats.propagations,
            stats.nodes
        );
        report.push(
            Cell::new(name)
                .int("wall_ns", wall_ns as i128)
                .int("propagations", stats.propagations as i128)
                .int("nodes", stats.nodes as i128),
        );
    }

    // --- des: raw event-queue throughput ----------------------------
    let events = 500_000usize;
    let wall_ns = median_ns(3, || {
        assert_eq!(synthetic_churn(events, 1024, 42), events as u64);
    });
    let events_per_sec = events as f64 / (wall_ns as f64 / 1e9);
    println!("des.synthetic_churn: {events_per_sec:.0} events/s");
    report.push(
        Cell::new("des.synthetic_churn")
            .int("wall_ns", wall_ns as i128)
            .int("events", events as i128)
            .float("events_per_sec", events_per_sec),
    );

    // --- tabu: delta vs full move scoring ---------------------------
    let problem = bench_problem(100, false, 42);
    let mut s = 7u64;
    let genes: Vec<usize> = (0..problem.n())
        .map(|_| {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (s >> 33) as usize % problem.m()
        })
        .collect();
    let start = Assignment::from_genes(&genes);
    let mut works = [0u64; 2];
    for (slot, (name, scoring)) in [
        ("tabu.move_scoring.delta", Scoring::Delta),
        ("tabu.move_scoring.full", Scoring::Full),
    ]
    .into_iter()
    .enumerate()
    {
        let config = TabuConfig {
            tenure: 24,
            max_iterations: 200,
            candidates: 48,
            seed: 42,
            scoring,
            ..TabuConfig::default()
        };
        let mut result = None;
        let wall_ns = median_ns(3, || {
            result = Some(tabu_search(&problem, start.clone(), &config));
        });
        let result = result.expect("tabu ran");
        works[slot] = result.eval_work;
        println!(
            "{name}: {:.2} ms, eval_work {}, {} evals",
            wall_ns as f64 / 1e6,
            result.eval_work,
            result.delta_evals + result.full_evals
        );
        report.push(
            Cell::new(name)
                .int("wall_ns", wall_ns as i128)
                .int("eval_work", result.eval_work as i128)
                .int("delta_evals", result.delta_evals as i128)
                .int("full_evals", result.full_evals as i128),
        );
    }
    let work_ratio = works[1] as f64 / works[0] as f64;
    println!("tabu.move_scoring: full/delta eval-work ratio {work_ratio:.1}");
    report.push(Cell::new("tabu.move_scoring.ratio").float("work_ratio", work_ratio));

    // --- tabu: parallel exhaustive scan at 1/2/4 partitions ---------
    // The fig8 seed-42 polish under the exhaustive n·m scan. The
    // trajectory is asserted bit-identical across thread counts right
    // here (placement fingerprint + every counter); wall time and the
    // speedup are *reported* — physical parallelism is whatever the CI
    // host provides, so the speedup is informational, not gated.
    let scan_config = |threads| TabuConfig {
        tenure: 24,
        max_iterations: 60,
        candidates: 48,
        seed: 42,
        scoring: Scoring::Delta,
        neighborhood: Neighborhood::Exhaustive,
        threads,
        ..TabuConfig::default()
    };
    let fingerprint = |a: &Assignment| -> i128 {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for k in 0..a.len() {
            let v = a.server_of(VmId(k)).map_or(u64::MAX, |j| j.index() as u64);
            hash ^= v.wrapping_add(1);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        hash as i128
    };
    let mut walls = [0u128; 3];
    let mut reference = None;
    for (slot, threads) in [1usize, 2, 4].into_iter().enumerate() {
        let config = scan_config(threads);
        let mut result = None;
        let wall_ns = median_ns(3, || {
            result = Some(tabu_search(&problem, start.clone(), &config));
        });
        let result = result.expect("tabu ran");
        walls[slot] = wall_ns;
        let probe = (
            fingerprint(&result.best),
            result.accepted_moves,
            result.candidates_scanned,
            result.delta_evals,
            result.eval_work,
        );
        match &reference {
            None => reference = Some(probe),
            Some(r) => assert_eq!(
                *r, probe,
                "parallel scan at {threads} threads diverged from serial"
            ),
        }
        let name = format!("tabu.parallel_scan.t{threads}");
        println!(
            "{name}: {:.2} ms, {} scanned, eval_work {}",
            wall_ns as f64 / 1e6,
            result.candidates_scanned,
            result.eval_work
        );
        report.push(
            Cell::new(name)
                .int("wall_ns", wall_ns as i128)
                .int("fingerprint", probe.0)
                .int("eval_work", result.eval_work as i128)
                .int("delta_evals", result.delta_evals as i128)
                .int("candidates_scanned", result.candidates_scanned as i128),
        );
    }
    let speedup_x4 = walls[0] as f64 / walls[2] as f64;
    println!("tabu.parallel_scan: t1/t4 speedup {speedup_x4:.2}×");
    report.push(Cell::new("tabu.parallel_scan.speedup").float("speedup_x4", speedup_x4));

    // --- tabu: candidate lists vs the exhaustive scan ---------------
    // Same polish, candidate-list neighborhood: the point is reaching a
    // comparable incumbent while scanning far fewer moves. Scanned and
    // eval-work counts are deterministic (Exact in the diff policy);
    // the scan-reduction ratio is derived.
    {
        let config = TabuConfig {
            neighborhood: Neighborhood::Candidates { refresh: 16 },
            ..scan_config(1)
        };
        let mut result = None;
        let wall_ns = median_ns(3, || {
            result = Some(tabu_search(&problem, start.clone(), &config));
        });
        let result = result.expect("tabu ran");
        let exhaustive_scanned = reference.expect("scan cells ran").2;
        let scan_reduction = exhaustive_scanned as f64 / result.candidates_scanned.max(1) as f64;
        println!(
            "tabu.candidate_list: {:.2} ms, {} scanned ({scan_reduction:.1}× fewer), eval_work {}",
            wall_ns as f64 / 1e6,
            result.candidates_scanned,
            result.eval_work
        );
        report.push(
            Cell::new("tabu.candidate_list")
                .int("wall_ns", wall_ns as i128)
                .int("fingerprint", fingerprint(&result.best))
                .int("eval_work", result.eval_work as i128)
                .int("delta_evals", result.delta_evals as i128)
                .int("candidates_scanned", result.candidates_scanned as i128)
                .float("scan_reduction", scan_reduction),
        );
    }

    // --- allocator sweep: flight recorder off vs on -----------------
    let problem = bench_problem(15, false, 42);
    for algorithm in [Algorithm::RoundRobin, Algorithm::ConstraintProgramming] {
        let label = algorithm.label();
        flight::disable();
        let off_ns = median_ns(5, || {
            let _ = algorithm.build(Effort::Quick, 42).allocate(&problem);
        });
        flight::enable();
        flight::reset();
        let on_ns = median_ns(5, || {
            let _ = algorithm.build(Effort::Quick, 42).allocate(&problem);
        });
        flight::disable();
        let ratio = on_ns as f64 / off_ns as f64;
        println!("alloc.{label}: off {off_ns} ns, on {on_ns} ns, ratio {ratio:.3}");
        report.push(Cell::new(format!("alloc.{label}.flight_off")).int("wall_ns", off_ns as i128));
        report.push(
            Cell::new(format!("alloc.{label}.flight_on"))
                .int("wall_ns", on_ns as i128)
                .float("overhead_ratio", ratio),
        );
    }

    report.write(&out_path).expect("write BENCH_micro.json");
    println!("wrote {out_path}");
}
