//! The perf-regression gate: compares a freshly produced `BENCH_*.json`
//! against a committed baseline under per-metric tolerance bands.
//!
//! Every metric key carries a [`Direction`] — which way is *worse* — and
//! a relative tolerance. Throughputs (`events_per_sec`) regress when they
//! drop; wall times and latency percentiles regress when they grow;
//! deterministic replay outcomes (admitted/rejected counts, the replay
//! fingerprint, solver node counts) must match **exactly** — a mismatch
//! there is not noise but a behaviour change that needs an intentional
//! baseline refresh in the same commit. Unknown metrics are reported but
//! never gate, so adding a new cell does not break CI until a baseline
//! containing it is committed.
//!
//! Timing tolerances are deliberately generous (CI machines are noisy
//! and runner classes change); the `scale` knob loosens every
//! non-exact band uniformly for the noisiest jobs. The committed
//! defaults are tuned so a genuine 20% throughput regression always
//! trips the `events_per_sec` band (tolerance 0.15) while a clean
//! same-machine re-run stays inside it.

use cpo_obs::json::Value;
use std::fmt::Write as _;

/// Which direction of change constitutes a regression.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// Throughput-like: a drop beyond tolerance is a regression.
    LowerIsWorse,
    /// Latency/footprint-like: growth beyond tolerance is a regression.
    HigherIsWorse,
    /// Deterministic outcome: any change is a regression.
    Exact,
    /// Informational only; never gates.
    Ignore,
}

/// The comparison rule for one metric key.
#[derive(Clone, Copy, Debug)]
pub struct Policy {
    /// Which way is worse.
    pub direction: Direction,
    /// Relative tolerance (ignored for `Exact`/`Ignore`).
    pub tolerance: f64,
}

/// The tolerance-band table, keyed by the field name within a cell.
/// Cell names don't enter the policy: `wall_ns` means the same thing in
/// every cell that reports it.
pub fn policy_for(key: &str) -> Policy {
    let p = |direction, tolerance| Policy {
        direction,
        tolerance,
    };
    match key {
        // Throughput: the headline gate. 0.15 < 0.20 so an injected 20%
        // events/s regression always trips it.
        "events_per_sec" => p(Direction::LowerIsWorse, 0.15),
        // Wall-clock timings: noisy, gate only on gross blowups.
        "wall_ns" => p(Direction::HigherIsWorse, 0.50),
        // Per-window solve-latency percentiles (ms).
        "p50_ms" | "p95_ms" | "p99_ms" => p(Direction::HigherIsWorse, 1.0),
        // Peak memory: constant-memory claims break loudly.
        "peak_rss_bytes" => p(Direction::HigherIsWorse, 0.30),
        // Incremental-evaluation effectiveness: the full/delta eval-work
        // ratio shrinking means delta scoring saves less work.
        "work_ratio" => p(Direction::LowerIsWorse, 0.25),
        // Flight-recorder overhead: on/off wall ratio, very noisy.
        "overhead_ratio" => p(Direction::HigherIsWorse, 1.0),
        // Deterministic replay/search outcomes and configuration echoes:
        // exact or the baseline is stale.
        "arrivals"
        | "servers"
        | "amplify_factor"
        | "seed"
        | "window_length"
        | "horizon"
        | "events"
        | "windows"
        | "admitted"
        | "rejected"
        | "peak_active_servers"
        | "peak_running_vms"
        | "fingerprint"
        | "propagations"
        | "nodes"
        | "eval_work"
        | "delta_evals"
        | "full_evals"
        | "fleet_series"
        | "ring_capacity"
        | "windows_sampled"
        // Sharded-replay outcomes: the optimistic-commit protocol is
        // deterministic, so conflict counters and their derived rate
        // must reproduce exactly or the store protocol changed.
        | "shards"
        | "commits"
        | "conflicts"
        | "conflict_rate"
        // Latency-attribution counters: the profiler's deterministic
        // subset (stage coverage, accounting, per-server conflict heat
        // ranking) must reproduce exactly or attribution changed.
        | "tracked"
        | "finalized"
        | "accounted_fraction"
        | "stage_coverage"
        | "stale_bounces"
        | "capacity_bounces"
        | "hot_fingerprint" => p(Direction::Exact, 0.0),
        _ => p(Direction::Ignore, 0.0),
    }
}

/// Outcome class of one compared metric.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Status {
    /// Inside the band (or an improvement).
    Ok,
    /// Outside the band in the bad direction.
    Regression,
    /// Present in the baseline but absent from the current report.
    Missing,
    /// Not gated (unknown key, or a key policy says to ignore).
    Info,
}

/// One compared metric.
#[derive(Clone, Debug)]
pub struct DiffLine {
    /// `cell.field` identifier.
    pub key: String,
    /// Outcome class.
    pub status: Status,
    /// Human-readable comparison.
    pub detail: String,
}

/// The full comparison result.
#[derive(Clone, Debug, Default)]
pub struct DiffOutcome {
    /// One line per compared metric, report order.
    pub lines: Vec<DiffLine>,
    /// Count of [`Status::Regression`] lines.
    pub regressions: usize,
    /// Count of [`Status::Missing`] lines.
    pub missing: usize,
}

impl DiffOutcome {
    /// True when the gate passes.
    pub fn passed(&self) -> bool {
        self.regressions == 0 && self.missing == 0
    }

    /// Renders the outcome as an aligned text table (regressions and
    /// missing metrics first, then the rest in report order).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let mut ordered: Vec<&DiffLine> = self
            .lines
            .iter()
            .filter(|l| matches!(l.status, Status::Regression | Status::Missing))
            .collect();
        ordered.extend(
            self.lines
                .iter()
                .filter(|l| !matches!(l.status, Status::Regression | Status::Missing)),
        );
        let key_w = ordered.iter().map(|l| l.key.len()).max().unwrap_or(0);
        for line in ordered {
            let tag = match line.status {
                Status::Ok => "ok        ",
                Status::Regression => "REGRESSION",
                Status::Missing => "MISSING   ",
                Status::Info => "info      ",
            };
            let _ = writeln!(out, "{tag}  {:<key_w$}  {}", line.key, line.detail);
        }
        let _ = writeln!(
            out,
            "{} metrics compared, {} regressions, {} missing → {}",
            self.lines.len(),
            self.regressions,
            self.missing,
            if self.passed() { "PASS" } else { "FAIL" }
        );
        out
    }
}

fn cells_of(report: &Value) -> Result<Vec<(&str, &[(String, Value)])>, String> {
    let cells = report
        .get("cells")
        .and_then(Value::as_array)
        .ok_or("report has no cells array")?;
    cells
        .iter()
        .map(|c| {
            let name = c
                .get("name")
                .and_then(Value::as_str)
                .ok_or("cell without a name")?;
            Ok((name, c.entries().ok_or("cell is not an object")?))
        })
        .collect()
}

fn numeric_line(key: &str, base: f64, cur: f64, policy: Policy, scale: f64) -> DiffLine {
    let tol = policy.tolerance * scale;
    let rel = if base != 0.0 {
        (cur - base) / base.abs()
    } else if cur == 0.0 {
        0.0
    } else {
        f64::INFINITY * (cur - base).signum()
    };
    let bad = match policy.direction {
        Direction::LowerIsWorse => rel < -tol,
        Direction::HigherIsWorse => rel > tol,
        Direction::Exact => base != cur,
        Direction::Ignore => false,
    };
    let status = match policy.direction {
        Direction::Ignore => Status::Info,
        _ if bad => Status::Regression,
        _ => Status::Ok,
    };
    let detail = if policy.direction == Direction::Exact {
        format!("baseline {base} current {cur} (exact)")
    } else {
        format!(
            "baseline {base:.4} current {cur:.4} ({:+.1}%, tolerance ±{:.0}%)",
            rel * 100.0,
            tol * 100.0
        )
    };
    DiffLine {
        key: key.to_string(),
        status,
        detail,
    }
}

/// Compares `current` against `baseline` (both parsed `BENCH_*.json`
/// documents) with every non-exact tolerance multiplied by `scale`.
/// Metrics present only in `current` are informational; metrics present
/// only in the baseline count as missing (a silently dropped measurement
/// must not pass the gate).
pub fn diff_reports(baseline: &Value, current: &Value, scale: f64) -> Result<DiffOutcome, String> {
    let bs = baseline.get("schema").and_then(Value::as_str);
    let cs = current.get("schema").and_then(Value::as_str);
    if bs != cs {
        return Err(format!(
            "schema mismatch: baseline {bs:?} vs current {cs:?}"
        ));
    }
    let base_cells = cells_of(baseline)?;
    let cur_cells = cells_of(current)?;
    let mut outcome = DiffOutcome::default();
    for (cell, fields) in &base_cells {
        let cur_fields = cur_cells.iter().find(|(n, _)| n == cell).map(|(_, f)| *f);
        for (field, base_val) in fields.iter() {
            if field == "name" {
                continue;
            }
            let key = format!("{cell}.{field}");
            let policy = policy_for(field);
            let cur_val =
                cur_fields.and_then(|f| f.iter().find(|(k, _)| k == field).map(|(_, v)| v));
            let line = match (cur_val, policy.direction) {
                (None, Direction::Ignore) => DiffLine {
                    key,
                    status: Status::Info,
                    detail: "absent from current report (not gated)".into(),
                },
                (None, _) => DiffLine {
                    key,
                    status: Status::Missing,
                    detail: "present in baseline, absent from current report".into(),
                },
                (Some(cur), _) => match (base_val, cur) {
                    // Null on either side (e.g. peak RSS off-Linux):
                    // nothing comparable, report and move on.
                    (Value::Null, _) | (_, Value::Null) => DiffLine {
                        key,
                        status: Status::Info,
                        detail: "null on at least one side (not gated)".into(),
                    },
                    (Value::Str(b), _) => match cur.as_str() {
                        Some(c) if policy.direction == Direction::Ignore => DiffLine {
                            key,
                            status: Status::Info,
                            detail: format!("baseline {b:?} current {c:?} (not gated)"),
                        },
                        Some(c) if c == b => DiffLine {
                            key,
                            status: Status::Ok,
                            detail: format!("{b:?} (exact)"),
                        },
                        Some(c) => DiffLine {
                            key,
                            status: Status::Regression,
                            detail: format!("baseline {b:?} current {c:?} (exact match required)"),
                        },
                        None => DiffLine {
                            key,
                            status: Status::Regression,
                            detail: "baseline is a string, current is not".into(),
                        },
                    },
                    _ => match (base_val.as_f64(), cur.as_f64()) {
                        (Some(b), Some(c)) => numeric_line(&key, b, c, policy, scale),
                        _ => DiffLine {
                            key,
                            status: Status::Regression,
                            detail: "type mismatch between baseline and current".into(),
                        },
                    },
                },
            };
            match line.status {
                Status::Regression => outcome.regressions += 1,
                Status::Missing => outcome.missing += 1,
                _ => {}
            }
            outcome.lines.push(line);
        }
    }
    // New metrics in the current report: informational until a baseline
    // refresh commits them.
    for (cell, fields) in &cur_cells {
        let in_base = base_cells.iter().find(|(n, _)| n == cell).map(|(_, f)| *f);
        for (field, _) in fields.iter() {
            if field == "name" {
                continue;
            }
            let known = in_base.is_some_and(|f| f.iter().any(|(k, _)| k == field));
            if !known {
                outcome.lines.push(DiffLine {
                    key: format!("{cell}.{field}"),
                    status: Status::Info,
                    detail: "new metric, not in baseline (commit a refreshed baseline to gate it)"
                        .into(),
                });
            }
        }
    }
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpo_obs::json::parse;

    fn report(events_per_sec: f64, admitted: u64, fp: &str) -> Value {
        parse(&format!(
            "{{\"schema\":\"cpo-bench-trace\",\"schema_version\":1,\"cells\":[\
             {{\"name\":\"trace.replay\",\"events_per_sec\":{events_per_sec},\
             \"admitted\":{admitted},\"fingerprint\":\"{fp}\",\"wall_ns\":1000000}}]}}"
        ))
        .unwrap()
    }

    #[test]
    fn clean_rerun_passes() {
        let base = report(100_000.0, 42, "0xabc");
        // 5% slower + identical deterministic outcomes: inside the band.
        let cur = report(95_000.0, 42, "0xabc");
        let d = diff_reports(&base, &cur, 1.0).unwrap();
        assert!(d.passed(), "{}", d.render());
    }

    #[test]
    fn twenty_percent_throughput_drop_fails() {
        let base = report(100_000.0, 42, "0xabc");
        let cur = report(80_000.0, 42, "0xabc");
        let d = diff_reports(&base, &cur, 1.0).unwrap();
        assert!(!d.passed());
        assert_eq!(d.regressions, 1);
        assert!(d.render().contains("trace.replay.events_per_sec"));
    }

    #[test]
    fn throughput_improvement_never_fails() {
        let base = report(100_000.0, 42, "0xabc");
        let cur = report(250_000.0, 42, "0xabc");
        assert!(diff_reports(&base, &cur, 1.0).unwrap().passed());
    }

    #[test]
    fn deterministic_outcomes_require_exact_match() {
        let base = report(100_000.0, 42, "0xabc");
        let off_by_one = report(100_000.0, 43, "0xabc");
        assert!(!diff_reports(&base, &off_by_one, 1.0).unwrap().passed());
        let fp_change = report(100_000.0, 42, "0xdef");
        assert!(!diff_reports(&base, &fp_change, 1.0).unwrap().passed());
        // Scale loosens timing bands but never exactness.
        assert!(!diff_reports(&base, &fp_change, 100.0).unwrap().passed());
    }

    #[test]
    fn missing_metric_fails_but_new_metric_informs() {
        let base = report(100_000.0, 42, "0xabc");
        let narrower = parse(
            "{\"schema\":\"cpo-bench-trace\",\"schema_version\":1,\"cells\":[\
             {\"name\":\"trace.replay\",\"admitted\":42,\"fingerprint\":\"0xabc\",\
             \"wall_ns\":1000000,\"brand_new\":7}]}",
        )
        .unwrap();
        let d = diff_reports(&base, &narrower, 1.0).unwrap();
        assert_eq!(d.missing, 1, "{}", d.render());
        assert!(!d.passed());
        assert!(d
            .lines
            .iter()
            .any(|l| l.key == "trace.replay.brand_new" && l.status == Status::Info));
    }

    #[test]
    fn scale_loosens_timing_bands() {
        let base = report(100_000.0, 42, "0xabc");
        let cur = report(85_000.0, 42, "0xabc"); // −15%: outside 0.15? just at edge
        assert!(diff_reports(&base, &cur, 1.0).unwrap().passed());
        let worse = report(80_000.0, 42, "0xabc"); // −20%: fails at scale 1
        assert!(!diff_reports(&base, &worse, 1.0).unwrap().passed());
        // ...but passes at scale 2 (tolerance 30%).
        assert!(diff_reports(&base, &worse, 2.0).unwrap().passed());
    }

    #[test]
    fn null_rss_is_informational() {
        let base = parse(
            "{\"schema\":\"s\",\"schema_version\":1,\"cells\":[\
             {\"name\":\"c\",\"peak_rss_bytes\":null}]}",
        )
        .unwrap();
        let cur = parse(
            "{\"schema\":\"s\",\"schema_version\":1,\"cells\":[\
             {\"name\":\"c\",\"peak_rss_bytes\":123456}]}",
        )
        .unwrap();
        let d = diff_reports(&base, &cur, 1.0).unwrap();
        assert!(d.passed());
        assert_eq!(d.lines[0].status, Status::Info);
    }

    #[test]
    fn schema_mismatch_is_an_error() {
        let a = parse("{\"schema\":\"x\",\"cells\":[]}").unwrap();
        let b = parse("{\"schema\":\"y\",\"cells\":[]}").unwrap();
        assert!(diff_reports(&a, &b, 1.0).is_err());
    }
}
