//! Machine-readable benchmark reports.
//!
//! Both standing benchmark binaries (`bench_micro`, `bench_trace`) write
//! the same JSON envelope so CI can diff runs across commits:
//!
//! ```json
//! {
//!   "schema": "cpo-bench-micro",
//!   "schema_version": 1,
//!   "cells": [ {"name": "...", ...}, ... ]
//! }
//! ```
//!
//! Cells are flat maps of metric name → number (or string). The writer is
//! dependency-free: values are formatted directly so the binaries stay
//! buildable without any serialisation crate in their dependency graph.

use std::fmt::Write as _;
use std::path::Path;

/// One named measurement row in a report.
#[derive(Clone, Debug, Default)]
pub struct Cell {
    name: String,
    fields: Vec<(String, Value)>,
}

#[derive(Clone, Debug)]
enum Value {
    Null,
    Int(i128),
    Float(f64),
    Str(String),
}

impl Cell {
    /// Starts a cell with the given metric name.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            fields: Vec::new(),
        }
    }

    /// Adds an integer field.
    pub fn int(mut self, key: impl Into<String>, value: impl Into<i128>) -> Self {
        self.fields.push((key.into(), Value::Int(value.into())));
        self
    }

    /// Adds a float field (written with 4 decimal places; NaN/inf become
    /// `null` so the output stays valid JSON).
    pub fn float(mut self, key: impl Into<String>, value: f64) -> Self {
        self.fields.push((key.into(), Value::Float(value)));
        self
    }

    /// Adds a string field.
    pub fn str(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.fields.push((key.into(), Value::Str(value.into())));
        self
    }

    /// Adds an optional integer field, written as `null` when absent —
    /// so a metric that is unavailable on this platform (e.g. peak RSS
    /// without procfs) still appears in the report with a stable key
    /// instead of silently vanishing.
    pub fn opt_int(mut self, key: impl Into<String>, value: Option<impl Into<i128>>) -> Self {
        self.fields.push((
            key.into(),
            match value {
                Some(v) => Value::Int(v.into()),
                None => Value::Null,
            },
        ));
        self
    }

    fn render(&self, out: &mut String) {
        let _ = write!(out, "  {{\"name\":\"{}\"", escape(&self.name));
        for (key, value) in &self.fields {
            let _ = write!(out, ",\"{}\":", escape(key));
            match value {
                Value::Null => out.push_str("null"),
                Value::Int(v) => {
                    let _ = write!(out, "{v}");
                }
                Value::Float(v) if v.is_finite() => {
                    let _ = write!(out, "{v:.4}");
                }
                Value::Float(_) => out.push_str("null"),
                Value::Str(s) => {
                    let _ = write!(out, "\"{}\"", escape(s));
                }
            }
        }
        out.push('}');
    }
}

fn escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            '\n' => vec!['\\', 'n'],
            c => vec![c],
        })
        .collect()
}

/// A schema-versioned collection of [`Cell`]s.
#[derive(Clone, Debug)]
pub struct Report {
    schema: String,
    version: u32,
    cells: Vec<Cell>,
}

impl Report {
    /// Starts an empty report under a schema name and version.
    pub fn new(schema: impl Into<String>, version: u32) -> Self {
        Self {
            schema: schema.into(),
            version,
            cells: Vec::new(),
        }
    }

    /// Appends a cell.
    pub fn push(&mut self, cell: Cell) {
        self.cells.push(cell);
    }

    /// Number of cells collected so far.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True when no cell has been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Renders the JSON envelope.
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\n\"schema\":\"{}\",\"schema_version\":{},\"cells\":[\n",
            escape(&self.schema),
            self.version
        );
        for (i, cell) in self.cells.iter().enumerate() {
            cell.render(&mut out);
            out.push_str(if i + 1 < self.cells.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("]}\n");
        out
    }

    /// Writes the report to `path`, creating parent directories.
    pub fn write(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        let path = path.as_ref();
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        std::fs::write(path, self.to_json())
    }
}

/// Peak resident-set size of this process in bytes (`VmHWM` from
/// `/proc/self/status`), or `None` where procfs is unavailable (non-Linux
/// platforms, or a malformed status file). Callers serialize the `None`
/// as JSON `null` via [`Cell::opt_int`] so the metric key stays present
/// cross-platform.
pub fn peak_rss_bytes() -> Option<u64> {
    #[cfg(target_os = "linux")]
    {
        parse_vm_hwm(&std::fs::read_to_string("/proc/self/status").ok()?)
    }
    #[cfg(not(target_os = "linux"))]
    {
        None
    }
}

/// Extracts `VmHWM` (peak RSS) in bytes from `/proc/self/status` text.
/// Returns `None` when the field is missing or unparseable.
pub fn parse_vm_hwm(status: &str) -> Option<u64> {
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kib: u64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
            return Some(kib * 1024);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_valid_shaped_json() {
        let mut report = Report::new("cpo-bench-test", 1);
        report.push(
            Cell::new("a")
                .int("count", 3)
                .float("ratio", 1.25)
                .str("note", "ok"),
        );
        report.push(Cell::new("b").float("nan", f64::NAN));
        let json = report.to_json();
        assert!(json.contains("\"schema\":\"cpo-bench-test\""));
        assert!(json.contains("\"schema_version\":1"));
        assert!(json.contains("{\"name\":\"a\",\"count\":3,\"ratio\":1.2500,\"note\":\"ok\"}"));
        assert!(json.contains("{\"name\":\"b\",\"nan\":null}"));
        // Exactly one comma between the two cells, none trailing.
        assert!(json.contains("}\n,\n") || json.contains("},\n"));
        assert!(!json.contains(",\n]"));
    }

    #[test]
    fn escapes_quotes_and_backslashes() {
        let mut report = Report::new("s", 1);
        report.push(Cell::new("x\"y").str("k", "a\\b\nc"));
        let json = report.to_json();
        assert!(json.contains("x\\\"y"));
        assert!(json.contains("a\\\\b\\nc"));
    }

    #[test]
    fn write_creates_parent_dirs() {
        let dir = std::env::temp_dir().join("cpo_bench_report_test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("deep/nested/out.json");
        let report = Report::new("s", 2);
        report.write(&path).unwrap();
        let back = std::fs::read_to_string(&path).unwrap();
        assert!(back.contains("\"schema_version\":2"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn opt_int_serializes_none_as_null() {
        let mut report = Report::new("s", 1);
        report.push(
            Cell::new("rss")
                .opt_int("present", Some(7u64))
                .opt_int("absent", None::<u64>),
        );
        let json = report.to_json();
        assert!(json.contains("{\"name\":\"rss\",\"present\":7,\"absent\":null}"));
    }

    #[test]
    fn parse_vm_hwm_reads_the_peak_and_rejects_garbage() {
        let status = "Name:\tbench\nVmPeak:\t  999 kB\nVmHWM:\t   5120 kB\nThreads:\t1\n";
        assert_eq!(parse_vm_hwm(status), Some(5120 * 1024));
        // Field missing entirely → None (the non-Linux / stripped-procfs shape).
        assert_eq!(parse_vm_hwm("Name:\tbench\nThreads:\t1\n"), None);
        // Unparseable value → None, not a panic.
        assert_eq!(parse_vm_hwm("VmHWM:\tnot-a-number kB\n"), None);
        assert_eq!(parse_vm_hwm(""), None);
    }

    #[test]
    fn peak_rss_is_positive_on_linux() {
        if cfg!(target_os = "linux") {
            let rss = peak_rss_bytes().expect("procfs available");
            assert!(rss > 1024 * 1024, "peak RSS should exceed 1 MiB: {rss}");
        }
    }
}
