//! Online invariant monitors over the model's hard constraints.
//!
//! Every allocation outcome ([`crate::allocator::AllocationOutcome`]) and
//! every closed platform window can be checked against the paper's hard
//! constraints — capacity (Eqs. 4/16), every-VM-placed-once (Eqs. 5/17)
//! and the affinity family (Eqs. 9–14 / 18–21). This module is the
//! reporting sink those checks share: each violation
//!
//! * increments a labelled counter `monitor.{scope}.{label}` in the
//!   metrics registry (`label` ∈ {`capacity`, `placement`, `affinity`});
//! * drops a [`FlightKind::Violation`] marker into the flight recorder so
//!   the surrounding event context survives in post-mortem dumps;
//! * panics when strict mode is armed ([`flight::set_strict`] or the
//!   `CPO_STRICT_MONITORS` environment variable *while the recorder is
//!   enabled*), turning a silent invariant break into a fail-fast crash
//!   whose ring dump the panic hook preserves.
//!
//! The monitors themselves cost nothing when the flight recorder is
//! disabled: callers gate the constraint re-check on
//! [`flight::is_enabled`], and this sink is only reached with violations
//! in hand.

use cpo_model::constraints::Violation;
use cpo_obs::flight::{self, FlightKind};

/// Violation class codes carried in the flight event's `key` slot.
pub const CODE_CAPACITY: u64 = 0;
/// See [`CODE_CAPACITY`].
pub const CODE_PLACEMENT: u64 = 1;
/// See [`CODE_CAPACITY`].
pub const CODE_AFFINITY: u64 = 2;

/// Short label + class code + payload words of one violation.
fn classify(v: &Violation) -> (&'static str, u64, u64, u64) {
    match v {
        Violation::Capacity { server, attr, .. } => {
            ("capacity", CODE_CAPACITY, server.0 as u64, attr.0 as u64)
        }
        Violation::Unassigned { vm } => ("placement", CODE_PLACEMENT, vm.0 as u64, 0),
        Violation::Affinity {
            request, degree, ..
        } => ("affinity", CODE_AFFINITY, request.0 as u64, *degree as u64),
    }
}

/// Reports one monitored invariant violation observed in `scope`
/// (`"allocator"` for solver outputs, `"platform"` for live window
/// state): counter + flight marker + fail-fast panic under strict mode.
pub fn record_violation(scope: &str, v: &Violation) {
    let (label, code, a, b) = classify(v);
    cpo_obs::counter_add(&format!("monitor.{scope}.{label}"), 1);
    flight::record(FlightKind::Violation, code, flight::NONE, a, b);
    if flight::strict_monitors() {
        panic!("invariant monitor [{scope}/{label}]: {v}");
    }
}
