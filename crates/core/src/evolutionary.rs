//! The four evolutionary allocators of the paper's evaluation:
//!
//! * unmodified **NSGA-II** and **NSGA-III** — fast, but their best
//!   individuals routinely violate constraints (Fig. 10);
//! * **NSGA-III + constraint solver** — faulty genes fixed by a CP solve
//!   over the offending VMs;
//! * **NSGA-III + tabu search** — the paper's contribution (Figs. 3–6):
//!   faulty individuals repaired by the tabu relocation procedure inside
//!   the reproduction loop.
//!
//! Final solution selection follows the paper: the population member
//! closest (Euclidean) to the ideal point. Hybrids then perform admission
//! control: any request the repaired solution still cannot serve validly
//! is explicitly rejected (VMs unassigned) so the hybrid, like CP and
//! Round Robin, never emits an invalid placement.

use crate::allocator::{AllocationOutcome, Allocator};
use crate::cp_repair::CpRepair;
use crate::moea_problem::AllocMoeaProblem;
use cpo_model::prelude::*;
use cpo_moea::prelude::{run, NsgaConfig, Repair, RepairMode, Variant};
use cpo_tabu::repair::{repair as tabu_repair, RepairConfig};
use std::time::Instant;

/// The hybridisation wired into the engine's repair hook.
#[derive(Clone, Debug)]
pub enum Hybrid {
    /// No repair: unmodified NSGA.
    None,
    /// Tabu-search repair (the paper's proposal).
    Tabu(RepairConfig),
    /// Constraint-solver repair.
    Cp(CpRepair),
}

/// An evolutionary allocator: NSGA-II/III, optionally hybridised.
#[derive(Clone, Debug)]
pub struct EvoAllocator {
    name: &'static str,
    /// Engine configuration (Table III defaults unless overridden).
    pub config: NsgaConfig,
    /// The repair hybridisation.
    pub hybrid: Hybrid,
    /// Whether to perform final admission control (hybrids only).
    pub finalize_rejections: bool,
}

impl EvoAllocator {
    /// Unmodified NSGA-II.
    pub fn nsga2(config: NsgaConfig) -> Self {
        let config = NsgaConfig {
            variant: Variant::Nsga2,
            repair_mode: RepairMode::Off,
            ..config
        };
        Self {
            name: "nsga2",
            config,
            hybrid: Hybrid::None,
            finalize_rejections: false,
        }
    }

    /// Unmodified NSGA-III.
    pub fn nsga3(config: NsgaConfig) -> Self {
        let config = NsgaConfig {
            variant: Variant::Nsga3,
            repair_mode: RepairMode::Off,
            ..config
        };
        Self {
            name: "nsga3",
            config,
            hybrid: Hybrid::None,
            finalize_rejections: false,
        }
    }

    /// NSGA-III with the constraint-solver repair.
    pub fn nsga3_cp(config: NsgaConfig) -> Self {
        let config = NsgaConfig {
            variant: Variant::Nsga3,
            repair_mode: RepairMode::Both,
            ..config
        };
        Self {
            name: "nsga3-cp",
            config,
            hybrid: Hybrid::Cp(CpRepair::default()),
            finalize_rejections: true,
        }
    }

    /// NSGA-III with the tabu-search repair — the paper's contribution.
    pub fn nsga3_tabu(config: NsgaConfig) -> Self {
        let config = NsgaConfig {
            variant: Variant::Nsga3,
            repair_mode: RepairMode::Both,
            ..config
        };
        Self {
            name: "nsga3-tabu",
            config,
            hybrid: Hybrid::Tabu(RepairConfig {
                // Cost-ordered scanning packs cheap servers first, which
                // both consolidates (Fig. 11) and leaves contiguous room
                // for large co-location groups (Fig. 9).
                scan: cpo_tabu::repair::ScanOrder::BestCost,
                ..RepairConfig::default()
            }),
            finalize_rejections: true,
        }
    }

    /// Paper-default constructors, seeded.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }
}

/// Admission control on the final solution: unassign the VMs of every
/// request that is not fully and validly served; report them as rejected.
fn finalize(problem: &AllocationProblem, assignment: &mut Assignment) -> Vec<RequestId> {
    let accepted = problem.accepted_requests(assignment);
    let mut rejected = Vec::new();
    for req in problem.batch().requests() {
        if !accepted.contains(&req.id) {
            for &k in &req.vms {
                assignment.unassign(k);
            }
            rejected.push(req.id);
        }
    }
    rejected
}

/// Iterated repair + admission: repair the individual, reject what is
/// still invalid, then let the repair try once more to place the evicted
/// requests against the freed capacity. Converges in a few rounds because
/// every round only re-attempts requests that were previously rejected.
fn admit(
    problem: &AllocationProblem,
    assignment: &mut Assignment,
    hybrid: &Hybrid,
) -> Vec<RequestId> {
    let repair_once = |a: &mut Assignment| match hybrid {
        Hybrid::Tabu(cfg) => {
            let _ = tabu_repair(problem, a, cfg);
        }
        Hybrid::Cp(cp) => {
            let _ = cp.repair(problem, a);
        }
        Hybrid::None => {}
    };
    repair_once(assignment);
    let mut rejected = finalize(problem, assignment);
    for _ in 0..3 {
        if rejected.is_empty() {
            break;
        }
        repair_once(assignment); // tries to place the unassigned VMs
        let next = finalize(problem, assignment);
        if next.len() >= rejected.len() {
            rejected = next;
            break;
        }
        rejected = next;
    }
    rejected
}

impl Allocator for EvoAllocator {
    fn name(&self) -> &'static str {
        self.name
    }

    fn allocate(&self, problem: &AllocationProblem) -> AllocationOutcome {
        let mut sp = cpo_obs::span!("allocator.allocate", algo = self.name());
        let start = Instant::now();
        let adapter = AllocMoeaProblem::new(problem);
        let codec = adapter.codec();

        // Build the repair closure for the engine's hook (Fig. 4).
        let tabu_closure;
        let cp_closure;
        let repair: Option<&dyn Repair> = match &self.hybrid {
            Hybrid::None => None,
            Hybrid::Tabu(cfg) => {
                let cfg = *cfg;
                tabu_closure = move |genes: &mut [f64]| -> bool {
                    let mut a = codec.decode(genes);
                    let outcome = tabu_repair(problem, &mut a, &cfg);
                    if outcome.moves > 0 {
                        genes.copy_from_slice(&codec.encode(&a));
                        true
                    } else {
                        false
                    }
                };
                Some(&tabu_closure)
            }
            Hybrid::Cp(cp) => {
                let cp = cp.clone();
                cp_closure = move |genes: &mut [f64]| -> bool {
                    let mut a = codec.decode(genes);
                    if cp.repair(problem, &mut a) {
                        genes.copy_from_slice(&codec.encode(&a));
                        true
                    } else {
                        false
                    }
                };
                Some(&cp_closure)
            }
        };

        // Warm start: seed the running allocation X^t (if any) so the
        // search explores around the incumbent and the Eq. 26 migration
        // term can actually be minimised rather than paid wholesale.
        let mut config = self.config.clone();
        if let Some(previous) = problem.previous() {
            config.seeds.push(codec.encode(previous));
        }
        let result = run(&adapter, &config, repair);

        let (assignment, rejected) = if self.finalize_rejections {
            // The paper's decision rule targets "the ideal point where
            // cost and rejection rate are the next to naught" and the
            // hybrid "is designed to generate the largest revenues" —
            // acceptance leads. Run every final individual through
            // iterated repair + admission control and keep the one with
            // the fewest rejections, breaking ties by cost (the Euclidean
            // pick degenerates to this lexicographic order because
            // rejecting a request *lowers* cost, which would otherwise
            // reward rejection — the distortion the paper calls out for CP).
            let mut candidates: Vec<(Assignment, Vec<RequestId>, f64, f64)> = result
                .population
                .iter()
                .map(|ind| {
                    let mut a = codec.decode(&ind.genes);
                    let rejected = admit(problem, &mut a, &self.hybrid);
                    let rejection = problem.rejection_rate(&a);
                    let cost = problem.evaluate(&a).total();
                    (a, rejected, rejection, cost)
                })
                .collect();
            let best = candidates
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| {
                    a.2.partial_cmp(&b.2)
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(a.3.partial_cmp(&b.3).unwrap_or(std::cmp::Ordering::Equal))
                })
                .map(|(i, _)| i)
                .expect("population is never empty");
            let (a, rejected, _, _) = candidates.swap_remove(best);
            (a, rejected)
        } else {
            let best = result
                .closest_to_ideal()
                .expect("population is never empty");
            (codec.decode(&best.genes), Vec::new())
        };

        let outcome = AllocationOutcome::from_assignment(
            problem,
            assignment,
            rejected,
            start.elapsed(),
            result.evaluations,
        );
        crate::allocator::observe_outcome(&mut sp, self.name(), &outcome);
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpo_model::attr::AttrSet;
    use cpo_moea::prelude::NsgaConfig;

    fn quick_config() -> NsgaConfig {
        NsgaConfig {
            population_size: 24,
            max_evaluations: 1_200,
            parallel_eval: false,
            ..NsgaConfig::paper_defaults(Variant::Nsga3)
        }
    }

    fn problem(servers: usize, vms: usize, rules: bool) -> AllocationProblem {
        let infra = Infrastructure::new(
            AttrSet::standard(),
            vec![
                (
                    "dc0".into(),
                    ServerProfile::commodity(3).build_many(servers / 2),
                ),
                (
                    "dc1".into(),
                    ServerProfile::commodity(3).build_many(servers - servers / 2),
                ),
            ],
        );
        let mut batch = RequestBatch::new();
        let mut k = 0;
        while k < vms {
            let group = (vms - k).min(2);
            let specs = vec![vm_spec(2.0, 2048.0, 20.0); group];
            let rule = if rules && group == 2 {
                vec![AffinityRule::new(
                    AffinityKind::DifferentServer,
                    vec![VmId(k), VmId(k + 1)],
                )]
            } else {
                vec![]
            };
            batch.push_request(specs, rule);
            k += group;
        }
        AllocationProblem::new(infra, batch, None)
    }

    #[test]
    fn nsga3_tabu_produces_clean_allocations() {
        let p = problem(4, 8, true);
        let out = EvoAllocator::nsga3_tabu(quick_config()).allocate(&p);
        assert!(
            out.is_clean(),
            "hybrid must not violate: {:?}",
            out.violated_constraints
        );
        assert_eq!(out.rejection_rate, 0.0, "easy problem must be fully served");
        assert!(out.evaluations >= 1_200);
    }

    #[test]
    fn nsga3_cp_produces_clean_allocations() {
        let p = problem(4, 8, true);
        let out = EvoAllocator::nsga3_cp(quick_config()).allocate(&p);
        assert!(out.is_clean());
        assert_eq!(out.rejection_rate, 0.0);
    }

    #[test]
    fn unmodified_nsga_may_violate_but_never_rejects_explicitly() {
        let p = problem(4, 16, true);
        for alloc in [
            EvoAllocator::nsga2(quick_config()),
            EvoAllocator::nsga3(quick_config()),
        ] {
            let out = alloc.allocate(&p);
            assert!(
                out.rejected.is_empty(),
                "unmodified NSGA has no admission control"
            );
            // The assignment is complete (every gene decodes to a server).
            assert!(out.assignment.is_complete());
        }
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(EvoAllocator::nsga2(quick_config()).name(), "nsga2");
        assert_eq!(EvoAllocator::nsga3(quick_config()).name(), "nsga3");
        assert_eq!(EvoAllocator::nsga3_cp(quick_config()).name(), "nsga3-cp");
        assert_eq!(
            EvoAllocator::nsga3_tabu(quick_config()).name(),
            "nsga3-tabu"
        );
    }

    #[test]
    fn seeded_runs_are_reproducible() {
        let p = problem(4, 8, false);
        let a = EvoAllocator::nsga3_tabu(quick_config())
            .with_seed(7)
            .allocate(&p);
        let b = EvoAllocator::nsga3_tabu(quick_config())
            .with_seed(7)
            .allocate(&p);
        assert_eq!(a.assignment, b.assignment);
        assert_eq!(a.rejection_rate, b.rejection_rate);
    }

    #[test]
    fn warm_start_reduces_migrations() {
        // A feasible incumbent placement exists; the warm-started hybrid
        // should keep most VMs where they are (low migration cost) while
        // a cold random search would shuffle nearly everything.
        let infra = Infrastructure::new(
            AttrSet::standard(),
            vec![("dc".into(), ServerProfile::commodity(3).build_many(6))],
        );
        let mut batch = RequestBatch::new();
        for _ in 0..12 {
            batch.push_request(vec![vm_spec(2.0, 2048.0, 20.0)], vec![]);
        }
        let mut prev = Assignment::unassigned(12);
        for k in 0..12 {
            prev.assign(VmId(k), ServerId(k % 6));
        }
        let p = AllocationProblem::new(infra, batch, Some(prev.clone()));
        let out = EvoAllocator::nsga3_tabu(quick_config()).allocate(&p);
        assert!(out.is_clean());
        let moves = out.assignment.migrations_from(&prev).len();
        assert!(
            moves <= 6,
            "warm start should limit churn, got {moves}/12 migrations"
        );
    }

    #[test]
    fn hybrid_rejects_impossible_requests_cleanly() {
        // One request can never fit (demand beyond any server).
        let infra = Infrastructure::new(
            AttrSet::standard(),
            vec![("dc".into(), ServerProfile::commodity(3).build_many(2))],
        );
        let mut batch = RequestBatch::new();
        batch.push_request(vec![vm_spec(1.0, 512.0, 5.0)], vec![]);
        batch.push_request(vec![vm_spec(500.0, 512.0, 5.0)], vec![]);
        let p = AllocationProblem::new(infra, batch, None);
        let out = EvoAllocator::nsga3_tabu(quick_config()).allocate(&p);
        assert!(
            out.is_clean(),
            "impossible request must be rejected, not violated"
        );
        assert_eq!(out.rejection_rate, 0.5);
        assert_eq!(out.rejected, vec![RequestId(1)]);
    }
}
