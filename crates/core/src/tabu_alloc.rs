//! An anytime allocator built from the tabu engine: greedy seed, then a
//! deadline-bounded candidate-list polish.
//!
//! The pipeline is *seed → polish → admit*:
//!
//! 1. **Seed** — [`FilteringAllocator`] places what fits greedily and
//!    cleanly rejects the rest (fast, never violating);
//! 2. **Polish** — [`tabu_search`] runs from the seed under the call's
//!    [`Deadline`] with the candidate-list neighborhood and the
//!    configured scan partitions. Unassigned VMs of rejected requests
//!    are part of the search space (an unassigned VM is a violation the
//!    search wants to erase), so the polish can *recover acceptances*
//!    the greedy pass gave up on, besides consolidating cost;
//! 3. **Admit** — requests not fully and validly served by the polished
//!    placement are evicted (their VMs unassigned) and reported as
//!    clean rejections. Because [`AllocationProblem::accepted_requests`]
//!    rejects every request touching an overloaded server, one eviction
//!    pass always yields a violation-free placement.
//!
//! Should the polish somehow end worse than its seed (a deadline can cut
//! it mid-repair), the seed outcome is returned instead — the allocator
//! is monotone in its seed by construction.

use crate::allocator::{AllocationOutcome, Allocator};
use crate::filtering::FilteringAllocator;
use cpo_model::deadline::Deadline;
use cpo_model::prelude::*;
use cpo_tabu::search::{tabu_search, Neighborhood, TabuConfig};
use std::time::Instant;

/// Anytime tabu-search allocator (seed → polish → admit).
#[derive(Clone, Copy, Debug)]
pub struct TabuSearchAllocator {
    /// Polish configuration. The per-call deadline is composed onto
    /// `config.deadline` with [`Deadline::earliest`].
    pub config: TabuConfig,
}

impl Default for TabuSearchAllocator {
    fn default() -> Self {
        Self {
            config: TabuConfig {
                max_iterations: 400,
                neighborhood: Neighborhood::Candidates { refresh: 16 },
                ..TabuConfig::default()
            },
        }
    }
}

impl TabuSearchAllocator {
    /// The default pipeline with `threads` scan partitions.
    pub fn with_threads(threads: usize) -> Self {
        let mut a = Self::default();
        a.config.threads = threads;
        a
    }
}

impl Allocator for TabuSearchAllocator {
    fn name(&self) -> &'static str {
        "tabu-search"
    }

    fn allocate(&self, problem: &AllocationProblem) -> AllocationOutcome {
        self.allocate_with_deadline(problem, Deadline::never())
    }

    fn allocate_with_deadline(
        &self,
        problem: &AllocationProblem,
        deadline: Deadline,
    ) -> AllocationOutcome {
        let mut sp = cpo_obs::span!("allocator.allocate", algo = self.name());
        let start = Instant::now();
        let seed = FilteringAllocator.allocate(problem);

        let mut cfg = self.config;
        cfg.deadline = cfg.deadline.earliest(deadline);
        let result = tabu_search(problem, seed.assignment.clone(), &cfg);
        let evaluations = result.delta_evals + result.full_evals;

        // Admission control: evict whatever the polish left partially or
        // invalidly placed; what survives is violation-free.
        let mut polished = result.best;
        let accepted = problem.accepted_requests(&polished);
        let mut rejected = Vec::new();
        for req in problem.batch().requests() {
            if !accepted.contains(&req.id) {
                for &k in &req.vms {
                    polished.unassign(k);
                }
                rejected.push(req.id);
            }
        }
        let polished = AllocationOutcome::from_assignment(
            problem,
            polished,
            rejected,
            start.elapsed(),
            evaluations,
        );

        // Monotone in the seed: keep the polish only when it serves at
        // least as many requests at no higher cost (or strictly more).
        let mut outcome = if polished.accepted_requests > seed.accepted_requests
            || (polished.accepted_requests == seed.accepted_requests
                && polished.provider_cost() <= seed.provider_cost())
        {
            polished
        } else {
            let mut seed = seed;
            seed.evaluations = evaluations;
            seed
        };
        outcome.elapsed = start.elapsed();
        crate::allocator::observe_outcome(&mut sp, self.name(), &outcome);
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpo_model::attr::AttrSet;
    use std::time::Duration;

    fn problem(servers: usize, vms: usize) -> AllocationProblem {
        let infra = Infrastructure::new(
            AttrSet::standard(),
            vec![("dc".into(), ServerProfile::commodity(3).build_many(servers))],
        );
        let mut batch = RequestBatch::new();
        for _ in 0..vms {
            batch.push_request(vec![vm_spec(2.0, 2048.0, 20.0)], vec![]);
        }
        AllocationProblem::new(infra, batch, None)
    }

    #[test]
    fn outcome_is_clean_and_never_below_the_seed() {
        let p = problem(4, 8);
        let seed = FilteringAllocator.allocate(&p);
        let out = TabuSearchAllocator::default().allocate(&p);
        assert!(out.is_clean());
        assert!(out.accepted_requests >= seed.accepted_requests);
        assert!(
            out.accepted_requests > seed.accepted_requests
                || out.provider_cost() <= seed.provider_cost() + 1e-9
        );
    }

    #[test]
    fn expired_deadline_still_returns_the_seed_quality() {
        let p = problem(4, 8);
        let seed = FilteringAllocator.allocate(&p);
        let out = TabuSearchAllocator::default()
            .allocate_with_deadline(&p, Deadline::within(Duration::ZERO));
        assert!(out.is_clean());
        assert_eq!(out.accepted_requests, seed.accepted_requests);
    }

    #[test]
    fn parallel_polish_matches_serial_outcome() {
        let p = problem(5, 10);
        let serial = TabuSearchAllocator::default().allocate(&p);
        let par = TabuSearchAllocator::with_threads(4).allocate(&p);
        assert_eq!(serial.assignment, par.assignment);
        assert_eq!(serial.rejected, par.rejected);
        assert_eq!(
            serial.provider_cost().to_bits(),
            par.provider_cost().to_bits()
        );
    }
}
