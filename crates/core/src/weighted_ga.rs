//! The mono-objective alternative the paper discusses and sets aside:
//! "We have considered using a classical mono-objective genetic algorithm
//! because it is easier to apply a weighting coefficient on the
//! objectives" (Section III). Provided as a comparator for the ablation
//! benches: the same engine, genome and repair, but a single weighted
//! objective instead of the three-dimensional Pareto search.

use crate::allocator::{AllocationOutcome, Allocator};
use crate::encoding::GenomeCodec;
use crate::eval_pool::EvaluatorPool;
use cpo_model::prelude::*;
use cpo_moea::prelude::{run, Evaluation, MoeaProblem, NsgaConfig, Repair, Variant};
use cpo_tabu::repair::{repair as tabu_repair, RepairConfig, ScanOrder};
use std::time::Instant;

/// The allocation problem scalarised to one objective. Genome scoring
/// reuses a pooled [`EvaluatorPool`], as in
/// [`AllocMoeaProblem`](crate::moea_problem::AllocMoeaProblem).
struct WeightedProblem<'a> {
    problem: &'a AllocationProblem,
    codec: GenomeCodec,
    weights: [f64; 3],
    pool: EvaluatorPool<'a>,
}

impl MoeaProblem for WeightedProblem<'_> {
    fn n_vars(&self) -> usize {
        self.problem.n()
    }
    fn n_objectives(&self) -> usize {
        1
    }
    fn bounds(&self, _i: usize) -> (f64, f64) {
        self.codec.bounds()
    }
    fn evaluate(&self, genes: &[f64]) -> Evaluation {
        let a = self.codec.decode(genes);
        let score = self.pool.score(a);
        Evaluation {
            objectives: vec![score.objectives.weighted(self.weights)],
            violation: score.violation,
        }
    }
    fn name(&self) -> &str {
        "iaas-allocation-weighted"
    }
}

/// Single-objective GA with tabu repair: the weighted-sum baseline.
#[derive(Clone, Debug)]
pub struct WeightedGaAllocator {
    /// Engine configuration (single-objective NSGA-II degenerates to an
    /// elitist GA; crowding keeps diversity).
    pub config: NsgaConfig,
    /// Objective weights for (usage+opex, downtime, migration).
    pub weights: [f64; 3],
    /// Repair configuration.
    pub repair: RepairConfig,
}

impl WeightedGaAllocator {
    /// Equal weights (the paper's default stance) at the given config.
    pub fn equal_weights(config: NsgaConfig) -> Self {
        Self {
            config: NsgaConfig {
                variant: Variant::Nsga2,
                repair_mode: cpo_moea::prelude::RepairMode::Both,
                ..config
            },
            weights: [1.0, 1.0, 1.0],
            repair: RepairConfig {
                scan: ScanOrder::BestCost,
                ..RepairConfig::default()
            },
        }
    }

    /// Custom weights.
    pub fn with_weights(mut self, weights: [f64; 3]) -> Self {
        self.weights = weights;
        self
    }
}

impl Allocator for WeightedGaAllocator {
    fn name(&self) -> &'static str {
        "weighted-ga"
    }

    fn allocate(&self, problem: &AllocationProblem) -> AllocationOutcome {
        let mut sp = cpo_obs::span!("allocator.allocate", algo = self.name());
        let start = Instant::now();
        let codec = GenomeCodec::new(problem.m(), problem.n());
        let adapter = WeightedProblem {
            problem,
            codec,
            weights: self.weights,
            pool: EvaluatorPool::new(problem),
        };

        let repair_cfg = self.repair;
        let fixer = move |genes: &mut [f64]| -> bool {
            let mut a = codec.decode(genes);
            let outcome = tabu_repair(problem, &mut a, &repair_cfg);
            if outcome.moves > 0 {
                genes.copy_from_slice(&codec.encode(&a));
                true
            } else {
                false
            }
        };
        let repair: &dyn Repair = &fixer;
        let result = run(&adapter, &self.config, Some(repair));

        // Single objective: the best individual is simply the feasible
        // minimum; admission control as in the hybrids.
        let best = result
            .population
            .iter()
            .min_by(|a, b| {
                (a.violation, a.objectives[0])
                    .partial_cmp(&(b.violation, b.objectives[0]))
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .expect("population non-empty");
        let mut assignment = codec.decode(&best.genes);
        let _ = tabu_repair(problem, &mut assignment, &self.repair);
        let accepted = problem.accepted_requests(&assignment);
        let mut rejected = Vec::new();
        for req in problem.batch().requests() {
            if !accepted.contains(&req.id) {
                for &k in &req.vms {
                    assignment.unassign(k);
                }
                rejected.push(req.id);
            }
        }
        let outcome = AllocationOutcome::from_assignment(
            problem,
            assignment,
            rejected,
            start.elapsed(),
            result.evaluations,
        );
        crate::allocator::observe_outcome(&mut sp, self.name(), &outcome);
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpo_model::attr::AttrSet;

    fn quick() -> NsgaConfig {
        NsgaConfig {
            population_size: 24,
            max_evaluations: 1_000,
            parallel_eval: false,
            ..NsgaConfig::paper_defaults(Variant::Nsga2)
        }
    }

    fn problem() -> AllocationProblem {
        let infra = Infrastructure::new(
            AttrSet::standard(),
            vec![("dc".into(), ServerProfile::commodity(3).build_many(4))],
        );
        let mut batch = RequestBatch::new();
        for _ in 0..4 {
            batch.push_request(vec![vm_spec(4.0, 4096.0, 40.0); 2], vec![]);
        }
        AllocationProblem::new(infra, batch, None)
    }

    #[test]
    fn weighted_ga_is_clean_and_serves_easy_load() {
        let p = problem();
        let out = WeightedGaAllocator::equal_weights(quick()).allocate(&p);
        assert!(out.is_clean());
        assert_eq!(out.rejection_rate, 0.0);
        assert!(out.evaluations >= 1_000);
    }

    #[test]
    fn weights_steer_the_search() {
        // A problem with a previous allocation: migration-averse weights
        // must produce fewer moves than migration-indifferent ones.
        let infra = Infrastructure::new(
            AttrSet::standard(),
            vec![("dc".into(), ServerProfile::commodity(3).build_many(4))],
        );
        let mut batch = RequestBatch::new();
        for _ in 0..8 {
            batch.push_request(vec![vm_spec(2.0, 2048.0, 20.0)], vec![]);
        }
        // Previous: spread one per server (round-robin-ish), feasible.
        let mut prev = Assignment::unassigned(8);
        for k in 0..8 {
            prev.assign(VmId(k), ServerId(k % 4));
        }
        let p = AllocationProblem::new(infra, batch, Some(prev.clone()));
        let averse = WeightedGaAllocator::equal_weights(quick())
            .with_weights([1.0, 1.0, 1_000.0])
            .allocate(&p);
        let indifferent = WeightedGaAllocator::equal_weights(quick())
            .with_weights([1.0, 1.0, 0.0])
            .allocate(&p);
        let moves_averse = averse.assignment.migrations_from(&prev).len();
        let moves_indiff = indifferent.assignment.migrations_from(&prev).len();
        assert!(
            moves_averse <= moves_indiff,
            "migration-averse weights must move no more ({moves_averse} vs {moves_indiff})"
        );
    }

    #[test]
    fn name_is_stable() {
        assert_eq!(
            WeightedGaAllocator::equal_weights(quick()).name(),
            "weighted-ga"
        );
    }
}
