//! Constraint-solver repair: the fixer behind the paper's "NSGA-III with
//! constraint solver" comparison point.
//!
//! Repair is chunked per offending request: the request's VMs become CSP
//! variables, everything else stays frozen (committed as residual
//! capacity), and the request's own affinity rules become propagators —
//! the same CSP shape the CP allocator admits requests with. Chunking
//! keeps each solve small, lets partial repair succeed, and mirrors how a
//! Choco-backed fixer would be engineered.

use crate::cp_alloc::build_request_csp;
use cpo_cpsolve::prelude::*;
use cpo_model::delta::DeltaEvaluator;
use cpo_model::prelude::*;
use std::time::Duration;

/// CP-based repair configuration.
#[derive(Clone, Debug)]
pub struct CpRepair {
    /// Wall-clock budget per offending request.
    pub deadline: Duration,
    /// Node budget per offending request.
    pub max_nodes: usize,
    /// Propagation engine driving the per-request searches.
    pub engine: Engine,
}

impl Default for CpRepair {
    fn default() -> Self {
        Self {
            deadline: Duration::from_millis(20),
            max_nodes: 4_000,
            engine: Engine::default(),
        }
    }
}

impl CpRepair {
    /// Attempts to repair the assignment in place, one offending request
    /// at a time. Returns `true` when the assignment was modified.
    pub fn repair(&self, problem: &AllocationProblem, assignment: &mut Assignment) -> bool {
        // The evaluator's maintained state supplies the offending-request
        // set and, per request, the residual capacity — built by removing
        // the request's own VMs from the live tracker, O(|request|·h),
        // instead of the old re-add of all n−|request| frozen VMs.
        let owned = std::mem::replace(assignment, Assignment::unassigned(0));
        let mut ev = DeltaEvaluator::new(problem, owned);
        if ev.is_feasible() {
            *assignment = ev.into_assignment();
            return false;
        }
        let batch = problem.batch();
        let offending = ev.offending_requests();

        let mut changed = false;
        for r in offending {
            let req = batch.request(r);
            // Commit everything except this request.
            let mut tracker = ev.tracker().clone();
            for &k in &req.vms {
                if let Some(j) = ev.assignment().server_of(k) {
                    tracker.remove(k, j, batch);
                }
            }
            let mut csp = build_request_csp(problem, req, &tracker);
            let config = SearchConfig {
                deadline: Some(self.deadline),
                max_nodes: Some(self.max_nodes),
                value_order: ValueOrder::Lex,
                engine: self.engine,
            };
            let (outcome, _) = solve(&mut csp, &config);
            if let Some(values) = outcome.solution() {
                for (v, &j) in values.iter().enumerate() {
                    ev.apply(req.vms[v], ServerId(j));
                }
                ev.clear_history();
                changed = true;
            }
        }
        *assignment = ev.into_assignment();
        changed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpo_model::attr::AttrSet;

    fn problem(reqs: Vec<(Vec<VmSpec>, Vec<AffinityRule>)>) -> AllocationProblem {
        let infra = Infrastructure::new(
            AttrSet::standard(),
            vec![
                ("dc0".into(), ServerProfile::commodity(3).build_many(2)),
                ("dc1".into(), ServerProfile::commodity(3).build_many(2)),
            ],
        );
        let mut batch = RequestBatch::new();
        for (vms, r) in reqs {
            batch.push_request(vms, r);
        }
        AllocationProblem::new(infra, batch, None)
    }

    #[test]
    fn fixes_capacity_overload() {
        let p = problem(vec![(
            vec![vm_spec(20.0, 1024.0, 10.0), vm_spec(20.0, 1024.0, 10.0)],
            vec![],
        )]);
        let mut a = Assignment::from_genes(&[0, 0]);
        assert!(!p.is_feasible(&a));
        assert!(CpRepair::default().repair(&p, &mut a));
        assert!(p.is_feasible(&a));
    }

    #[test]
    fn colocates_scattered_same_server_group() {
        let p = problem(vec![(
            vec![vm_spec(1.0, 512.0, 5.0); 3],
            vec![AffinityRule::new(
                AffinityKind::SameServer,
                vec![VmId(0), VmId(1), VmId(2)],
            )],
        )]);
        let mut a = Assignment::from_genes(&[2, 2, 0]);
        assert!(CpRepair::default().repair(&p, &mut a));
        assert!(p.is_feasible(&a), "repair: {a:?}");
        assert_eq!(a.server_of(VmId(0)), a.server_of(VmId(1)));
        assert_eq!(a.server_of(VmId(1)), a.server_of(VmId(2)));
    }

    #[test]
    fn fixes_different_datacenter_rule() {
        let p = problem(vec![(
            vec![vm_spec(1.0, 512.0, 5.0); 2],
            vec![AffinityRule::new(
                AffinityKind::DifferentDatacenter,
                vec![VmId(0), VmId(1)],
            )],
        )]);
        let mut a = Assignment::from_genes(&[0, 1]); // both dc0
        assert!(CpRepair::default().repair(&p, &mut a));
        assert!(p.is_feasible(&a));
    }

    #[test]
    fn repairs_multiple_offending_requests_independently() {
        let p = problem(vec![
            (
                vec![vm_spec(20.0, 512.0, 5.0), vm_spec(20.0, 512.0, 5.0)],
                vec![],
            ),
            (
                vec![vm_spec(1.0, 512.0, 5.0); 2],
                vec![AffinityRule::new(
                    AffinityKind::DifferentServer,
                    vec![VmId(2), VmId(3)],
                )],
            ),
        ]);
        // Request 0 overloads server 0; request 1 breaks its separation.
        let mut a = Assignment::from_genes(&[0, 0, 3, 3]);
        assert!(CpRepair::default().repair(&p, &mut a));
        assert!(p.is_feasible(&a), "{:?}", p.check(&a).violations());
    }

    #[test]
    fn feasible_assignment_is_untouched() {
        let p = problem(vec![(vec![vm_spec(1.0, 512.0, 5.0); 2], vec![])]);
        let mut a = Assignment::from_genes(&[0, 1]);
        let before = a.clone();
        assert!(!CpRepair::default().repair(&p, &mut a));
        assert_eq!(a, before);
    }

    #[test]
    fn returns_false_when_unrepairable() {
        let p = problem(vec![(vec![vm_spec(500.0, 512.0, 5.0)], vec![])]);
        let mut a = Assignment::from_genes(&[0]);
        assert!(!CpRepair::default().repair(&p, &mut a));
    }

    #[test]
    fn places_unassigned_vms() {
        let p = problem(vec![(vec![vm_spec(1.0, 512.0, 5.0); 2], vec![])]);
        let mut a = Assignment::unassigned(2);
        assert!(CpRepair::default().repair(&p, &mut a));
        assert!(a.is_complete());
        assert!(p.is_feasible(&a));
    }

    #[test]
    fn partial_repair_counts_as_change() {
        // Request 0 is repairable, request 1 is impossible.
        let p = problem(vec![
            (
                vec![vm_spec(20.0, 512.0, 5.0), vm_spec(20.0, 512.0, 5.0)],
                vec![],
            ),
            (vec![vm_spec(500.0, 512.0, 5.0)], vec![]),
        ]);
        let mut a = Assignment::from_genes(&[0, 0, 1]);
        assert!(CpRepair::default().repair(&p, &mut a));
        // Request 0 fixed even though request 1 stays broken.
        assert_ne!(a.server_of(VmId(0)), a.server_of(VmId(1)));
    }
}
