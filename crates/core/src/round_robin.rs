//! Round Robin with server affinity (the paper's baseline, after Mahajan
//! et al., "Round Robin with Server Affinity: A VM Load Balancing
//! Algorithm for Cloud Based Infrastructure").
//!
//! Requests are processed in arrival order; a rotating cursor spreads load
//! across servers. Affinity awareness: VMs bound by a same-server rule are
//! placed as one unit; the other rules are honoured by skipping servers
//! the rules forbid. A request whose VMs cannot all be placed is rejected
//! as a whole (its partial placements rolled back) — Round Robin never
//! produces an invalid placement, it just rejects a lot (Fig. 9).

use crate::allocator::{AllocationOutcome, Allocator};
use cpo_model::prelude::*;
use cpo_tabu::repair::is_valid_allocation;
use std::time::Instant;

/// Round Robin with server affinity.
#[derive(Clone, Copy, Debug, Default)]
pub struct RoundRobinAllocator;

impl RoundRobinAllocator {
    /// Places all VMs of `req` starting the server scan at `cursor`.
    /// Returns `false` (leaving `assignment`/`tracker` rolled back) when
    /// the request cannot be fully placed.
    fn place_request(
        problem: &AllocationProblem,
        req: &Request,
        assignment: &mut Assignment,
        tracker: &mut LoadTracker,
        cursor: &mut usize,
    ) -> bool {
        let m = problem.m();
        let mut placed: Vec<(VmId, ServerId)> = Vec::with_capacity(req.vms.len());

        // Same-server groups must go as a unit: pre-compute the union of
        // VMs bound by any same-server rule of this request.
        let mut unit: Vec<VmId> = Vec::new();
        for rule in &req.rules {
            if rule.kind() == AffinityKind::SameServer {
                for &k in rule.vms() {
                    if !unit.contains(&k) {
                        unit.push(k);
                    }
                }
            }
        }

        let rollback = |assignment: &mut Assignment,
                        tracker: &mut LoadTracker,
                        placed: &[(VmId, ServerId)]| {
            for &(k, j) in placed {
                tracker.remove(k, j, problem.batch());
                assignment.unassign(k);
            }
        };

        // Place the same-server unit first (hardest to fit).
        if !unit.is_empty() {
            let mut found = false;
            for step in 0..m {
                let j = ServerId((*cursor + step) % m);
                // The whole unit must fit on j simultaneously.
                let mut ok = true;
                let mut trial: Vec<(VmId, ServerId)> = Vec::with_capacity(unit.len());
                for &k in &unit {
                    if is_valid_allocation(problem, assignment, tracker, k, j) {
                        tracker.add(k, j, problem.batch());
                        assignment.assign(k, j);
                        trial.push((k, j));
                    } else {
                        ok = false;
                        break;
                    }
                }
                if ok {
                    placed.extend_from_slice(&trial);
                    *cursor = (j.index() + 1) % m;
                    found = true;
                    break;
                }
                rollback(assignment, tracker, &trial);
            }
            if !found {
                return false;
            }
        }

        // Place the remaining VMs one by one round-robin.
        for &k in &req.vms {
            if unit.contains(&k) {
                continue;
            }
            let mut found = false;
            for step in 0..m {
                let j = ServerId((*cursor + step) % m);
                if is_valid_allocation(problem, assignment, tracker, k, j) {
                    tracker.add(k, j, problem.batch());
                    assignment.assign(k, j);
                    placed.push((k, j));
                    *cursor = (j.index() + 1) % m;
                    found = true;
                    break;
                }
            }
            if !found {
                rollback(assignment, tracker, &placed);
                return false;
            }
        }
        true
    }
}

impl Allocator for RoundRobinAllocator {
    fn name(&self) -> &'static str {
        "round-robin"
    }

    fn allocate(&self, problem: &AllocationProblem) -> AllocationOutcome {
        let mut sp = cpo_obs::span!("allocator.allocate", algo = self.name());
        let start = Instant::now();
        let mut assignment = Assignment::unassigned(problem.n());
        let mut tracker = LoadTracker::new(problem.m(), problem.h());
        let mut cursor = 0usize;
        let mut rejected = Vec::new();
        for req in problem.batch().requests() {
            if !Self::place_request(problem, req, &mut assignment, &mut tracker, &mut cursor) {
                rejected.push(req.id);
            }
        }
        let outcome =
            AllocationOutcome::from_assignment(problem, assignment, rejected, start.elapsed(), 0);
        crate::allocator::observe_outcome(&mut sp, self.name(), &outcome);
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpo_model::attr::AttrSet;

    fn infra(servers: usize) -> Infrastructure {
        Infrastructure::new(
            AttrSet::standard(),
            vec![("dc".into(), ServerProfile::commodity(3).build_many(servers))],
        )
    }

    #[test]
    fn spreads_load_round_robin() {
        let mut batch = RequestBatch::new();
        for _ in 0..4 {
            batch.push_request(vec![vm_spec(2.0, 1024.0, 10.0)], vec![]);
        }
        let p = AllocationProblem::new(infra(4), batch, None);
        let out = RoundRobinAllocator.allocate(&p);
        assert!(out.is_clean());
        assert_eq!(out.rejection_rate, 0.0);
        // One VM per server: the defining round-robin behaviour.
        let servers: Vec<usize> = (0..4)
            .map(|k| out.assignment.server_of(VmId(k)).unwrap().index())
            .collect();
        assert_eq!(servers, vec![0, 1, 2, 3]);
    }

    #[test]
    fn same_server_group_is_colocated() {
        let mut batch = RequestBatch::new();
        batch.push_request(
            vec![vm_spec(2.0, 1024.0, 10.0); 3],
            vec![AffinityRule::new(
                AffinityKind::SameServer,
                vec![VmId(0), VmId(1), VmId(2)],
            )],
        );
        let p = AllocationProblem::new(infra(3), batch, None);
        let out = RoundRobinAllocator.allocate(&p);
        assert!(out.is_clean());
        assert_eq!(out.rejection_rate, 0.0);
        let s0 = out.assignment.server_of(VmId(0));
        assert_eq!(s0, out.assignment.server_of(VmId(1)));
        assert_eq!(s0, out.assignment.server_of(VmId(2)));
    }

    #[test]
    fn different_server_rule_is_honoured() {
        let mut batch = RequestBatch::new();
        batch.push_request(
            vec![vm_spec(1.0, 512.0, 5.0); 2],
            vec![AffinityRule::new(
                AffinityKind::DifferentServer,
                vec![VmId(0), VmId(1)],
            )],
        );
        let p = AllocationProblem::new(infra(2), batch, None);
        let out = RoundRobinAllocator.allocate(&p);
        assert!(out.is_clean());
        assert_ne!(
            out.assignment.server_of(VmId(0)),
            out.assignment.server_of(VmId(1))
        );
    }

    #[test]
    fn unplaceable_request_is_rejected_and_rolled_back() {
        let mut batch = RequestBatch::new();
        // Three VMs that must be separated but only two servers exist.
        batch.push_request(
            vec![vm_spec(1.0, 512.0, 5.0); 3],
            vec![AffinityRule::new(
                AffinityKind::DifferentServer,
                vec![VmId(0), VmId(1), VmId(2)],
            )],
        );
        batch.push_request(vec![vm_spec(1.0, 512.0, 5.0)], vec![]);
        let p = AllocationProblem::new(infra(2), batch, None);
        let out = RoundRobinAllocator.allocate(&p);
        assert_eq!(out.rejected, vec![RequestId(0)]);
        assert!(out.is_clean(), "rejection must be clean");
        assert_eq!(out.rejection_rate, 0.5);
        // Rolled back: no VM of request 0 placed.
        for k in 0..3 {
            assert_eq!(out.assignment.server_of(VmId(k)), None);
        }
        // Request 1 still served.
        assert!(out.assignment.server_of(VmId(3)).is_some());
    }

    #[test]
    fn capacity_is_never_exceeded() {
        let mut batch = RequestBatch::new();
        for _ in 0..20 {
            batch.push_request(vec![vm_spec(8.0, 8192.0, 100.0)], vec![]);
        }
        // 20 * 8 = 160 vCPU demand on 2 servers * 28.8 = 57.6: most reject.
        let p = AllocationProblem::new(infra(2), batch, None);
        let out = RoundRobinAllocator.allocate(&p);
        assert!(out.is_clean());
        assert!(out.rejection_rate > 0.5);
        assert!(p
            .check(&out.assignment)
            .violations()
            .iter()
            .all(|v| matches!(v, cpo_model::constraints::Violation::Unassigned { .. })));
    }

    #[test]
    fn rejects_nothing_when_everything_fits() {
        let mut batch = RequestBatch::new();
        for _ in 0..10 {
            batch.push_request(vec![vm_spec(1.0, 512.0, 5.0)], vec![]);
        }
        let p = AllocationProblem::new(infra(4), batch, None);
        let out = RoundRobinAllocator.allocate(&p);
        assert_eq!(out.rejection_rate, 0.0);
        assert_eq!(out.evaluations, 0);
    }
}
