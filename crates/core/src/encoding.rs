//! Genome ↔ assignment codec.
//!
//! The paper: "Each individual possesses chromosomes here standing for
//! virtual machines. Each gene stands for a server ID." We real-code each
//! gene in `[0, m)` (the representation SBX/PM operate on) and decode by
//! flooring to a server index.

use cpo_model::prelude::{Assignment, ServerId};

/// Codec between real-coded genomes and assignments for a problem with
/// `m` servers and `n` VMs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GenomeCodec {
    /// Number of servers `m`.
    pub m: usize,
    /// Number of VMs `n`.
    pub n: usize,
}

impl GenomeCodec {
    /// Creates a codec.
    pub fn new(m: usize, n: usize) -> Self {
        assert!(m > 0, "need at least one server");
        Self { m, n }
    }

    /// Decodes one gene to a server index (clamped into `0..m`).
    #[inline]
    pub fn decode_gene(&self, gene: f64) -> usize {
        (gene.max(0.0) as usize).min(self.m - 1)
    }

    /// Decodes a genome to a complete assignment.
    pub fn decode(&self, genes: &[f64]) -> Assignment {
        debug_assert_eq!(genes.len(), self.n);
        let mut a = Assignment::unassigned(self.n);
        for (k, &g) in genes.iter().enumerate() {
            a.assign(cpo_model::prelude::VmId(k), ServerId(self.decode_gene(g)));
        }
        a
    }

    /// Encodes an assignment back into gene space (server index + 0.5, the
    /// cell midpoint, so SBX perturbations round-trip stably). Unassigned
    /// VMs encode to gene 0.5 (server 0) — encoders only run on complete
    /// assignments in practice.
    pub fn encode(&self, assignment: &Assignment) -> Vec<f64> {
        (0..self.n)
            .map(|k| {
                assignment
                    .server_of(cpo_model::prelude::VmId(k))
                    .map_or(0.5, |s| s.index() as f64 + 0.5)
            })
            .collect()
    }

    /// Gene-space box bounds for the MOEA engine.
    pub fn bounds(&self) -> (f64, f64) {
        (0.0, self.m as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpo_model::prelude::VmId;

    #[test]
    fn decode_floors_and_clamps() {
        let c = GenomeCodec::new(4, 3);
        assert_eq!(c.decode_gene(0.0), 0);
        assert_eq!(c.decode_gene(2.9), 2);
        assert_eq!(c.decode_gene(3.999), 3);
        assert_eq!(c.decode_gene(4.0), 3, "upper bound clamps to last server");
        assert_eq!(c.decode_gene(-1.0), 0);
    }

    #[test]
    fn roundtrip_preserves_placement() {
        let c = GenomeCodec::new(5, 4);
        let mut a = Assignment::unassigned(4);
        for (k, j) in [(0, 2), (1, 0), (2, 4), (3, 3)] {
            a.assign(VmId(k), ServerId(j));
        }
        let genes = c.encode(&a);
        let back = c.decode(&genes);
        assert_eq!(back, a);
    }

    #[test]
    fn encode_uses_cell_midpoints() {
        let c = GenomeCodec::new(3, 1);
        let mut a = Assignment::unassigned(1);
        a.assign(VmId(0), ServerId(1));
        assert_eq!(c.encode(&a), vec![1.5]);
    }

    #[test]
    fn bounds_cover_gene_space() {
        let c = GenomeCodec::new(7, 2);
        assert_eq!(c.bounds(), (0.0, 7.0));
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn zero_servers_rejected() {
        let _ = GenomeCodec::new(0, 1);
    }
}
