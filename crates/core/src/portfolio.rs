//! A portfolio meta-allocator: run several algorithms on the same
//! problem and keep the best outcome under a configurable criterion.
//!
//! This is the practical deployment the paper's comparison implies — the
//! scheduler does not have to commit to one algorithm; on small problems
//! CP wins outright (Fig. 7), on large ones the hybrid does (Figs. 8–9),
//! and a portfolio gets both, at the price of running its members
//! (optionally bounded by their own deadlines).

use crate::allocator::{AllocationOutcome, Allocator};
use cpo_model::deadline::Deadline;
use cpo_model::prelude::AllocationProblem;
use std::time::{Duration, Instant};

/// What the portfolio optimises when ranking member outcomes.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PortfolioCriterion {
    /// Fewest rejections, ties by provider cost — the paper's joint
    /// consumer/provider stance (violating outcomes always rank last).
    AcceptanceThenCost,
    /// Highest net revenue (violating outcomes always rank last).
    NetRevenue,
}

/// How the portfolio runs its members.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum PortfolioMode {
    /// Members run one after another; the portfolio's wall-clock is the
    /// sum of the members'. Under a deadline, members still to start are
    /// skipped once it expires (the first member always runs, so the
    /// portfolio returns a placement).
    #[default]
    Sequential,
    /// Members race on scoped threads, every one handed the same
    /// deadline; the portfolio's wall-clock is the slowest member (on
    /// enough cores, the slowest *anytime-cut* member). Reduction stays
    /// in member order, so with a deadline generous enough for every
    /// member to finish its budget the pick is deterministic.
    Racing,
}

/// The portfolio allocator.
pub struct PortfolioAllocator {
    /// Member algorithms, tried in order.
    pub members: Vec<Box<dyn Allocator>>,
    /// Ranking criterion.
    pub criterion: PortfolioCriterion,
    /// Member execution mode.
    pub mode: PortfolioMode,
    /// Per-call wall-clock budget imposed on the members *in addition*
    /// to any deadline the caller passes (whichever expires first wins).
    pub budget: Option<Duration>,
}

impl PortfolioAllocator {
    /// Builds a sequential, unbudgeted portfolio.
    ///
    /// # Panics
    /// Panics when `members` is empty.
    pub fn new(members: Vec<Box<dyn Allocator>>, criterion: PortfolioCriterion) -> Self {
        assert!(!members.is_empty(), "a portfolio needs at least one member");
        Self {
            members,
            criterion,
            mode: PortfolioMode::Sequential,
            budget: None,
        }
    }

    /// Builds a deadline-racing portfolio: members run concurrently,
    /// each bounded by `budget` from call time (tightened further by any
    /// caller-passed deadline).
    ///
    /// # Panics
    /// Panics when `members` is empty.
    pub fn racing(
        members: Vec<Box<dyn Allocator>>,
        criterion: PortfolioCriterion,
        budget: Option<Duration>,
    ) -> Self {
        let mut p = Self::new(members, criterion);
        p.mode = PortfolioMode::Racing;
        p.budget = budget;
        p
    }

    fn effective_deadline(&self, outer: Deadline) -> Deadline {
        match self.budget {
            Some(b) => outer.earliest(Deadline::within(b)),
            None => outer,
        }
    }

    fn better(&self, a: &AllocationOutcome, b: &AllocationOutcome) -> bool {
        // Invalid placements lose to clean ones regardless of criterion.
        match (a.is_clean(), b.is_clean()) {
            (true, false) => return true,
            (false, true) => return false,
            _ => {}
        }
        match self.criterion {
            PortfolioCriterion::AcceptanceThenCost => {
                (a.rejection_rate, a.provider_cost()) < (b.rejection_rate, b.provider_cost())
            }
            PortfolioCriterion::NetRevenue => a.net_revenue() > b.net_revenue(),
        }
    }
}

impl Allocator for PortfolioAllocator {
    fn name(&self) -> &'static str {
        match self.mode {
            PortfolioMode::Sequential => "portfolio",
            PortfolioMode::Racing => "portfolio-race",
        }
    }

    fn allocate(&self, problem: &AllocationProblem) -> AllocationOutcome {
        self.allocate_with_deadline(problem, Deadline::never())
    }

    fn allocate_with_deadline(
        &self,
        problem: &AllocationProblem,
        deadline: Deadline,
    ) -> AllocationOutcome {
        let mut sp = cpo_obs::span!("allocator.allocate", algo = self.name());
        let start = Instant::now();
        let deadline = self.effective_deadline(deadline);
        let outcomes: Vec<AllocationOutcome> = match self.mode {
            PortfolioMode::Sequential => {
                let mut outs = Vec::with_capacity(self.members.len());
                for member in &self.members {
                    // Budget enforcement between members: once the
                    // deadline has expired, a member not yet started
                    // would only be cut immediately — skip it. The first
                    // member always runs so the portfolio returns a
                    // placement; *within* a member the deadline is the
                    // member's own anytime cut.
                    if !outs.is_empty() && deadline.expired() {
                        break;
                    }
                    outs.push(member.allocate_with_deadline(problem, deadline));
                }
                outs
            }
            PortfolioMode::Racing => std::thread::scope(|s| {
                let handles: Vec<_> = self
                    .members
                    .iter()
                    .map(|member| s.spawn(move || member.allocate_with_deadline(problem, deadline)))
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("portfolio member panicked"))
                    .collect()
            }),
        };
        let mut best: Option<AllocationOutcome> = None;
        for outcome in outcomes {
            best = Some(match best {
                None => outcome,
                Some(current) => {
                    if self.better(&outcome, &current) {
                        outcome
                    } else {
                        current
                    }
                }
            });
        }
        let mut outcome = best.expect("at least one member");
        // Sequential wall-clock is the sum of the members' runs; racing
        // wall-clock is the slowest member.
        outcome.elapsed = start.elapsed();
        crate::allocator::observe_outcome(&mut sp, self.name(), &outcome);
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cp_alloc::CpAllocator;
    use crate::filtering::FilteringAllocator;
    use crate::round_robin::RoundRobinAllocator;
    use cpo_model::attr::AttrSet;
    use cpo_model::prelude::*;

    fn problem() -> AllocationProblem {
        let infra = Infrastructure::new(
            AttrSet::standard(),
            vec![("dc".into(), ServerProfile::commodity(3).build_many(4))],
        );
        let mut batch = RequestBatch::new();
        for _ in 0..4 {
            batch.push_request(vec![vm_spec(2.0, 2048.0, 20.0)], vec![]);
        }
        AllocationProblem::new(infra, batch, None)
    }

    fn portfolio(criterion: PortfolioCriterion) -> PortfolioAllocator {
        PortfolioAllocator::new(
            vec![
                Box::new(RoundRobinAllocator),
                Box::new(FilteringAllocator),
                Box::new(CpAllocator::default()),
            ],
            criterion,
        )
    }

    #[test]
    fn portfolio_is_at_least_as_good_as_each_member() {
        let p = problem();
        let out = portfolio(PortfolioCriterion::AcceptanceThenCost).allocate(&p);
        for member in [
            RoundRobinAllocator.allocate(&p),
            FilteringAllocator.allocate(&p),
            CpAllocator::default().allocate(&p),
        ] {
            assert!(
                (out.rejection_rate, out.provider_cost())
                    <= (member.rejection_rate, member.provider_cost() + 1e-9),
                "portfolio must not lose to a member"
            );
        }
    }

    #[test]
    fn criterion_changes_the_pick() {
        // On this sparse problem RR spreads (high cost) while filtering/CP
        // consolidate; under AcceptanceThenCost the consolidators win.
        let p = problem();
        let out = portfolio(PortfolioCriterion::AcceptanceThenCost).allocate(&p);
        let rr = RoundRobinAllocator.allocate(&p);
        assert!(out.provider_cost() < rr.provider_cost());
    }

    #[test]
    fn net_revenue_criterion_prefers_earning() {
        let p = problem();
        let out = portfolio(PortfolioCriterion::NetRevenue).allocate(&p);
        let rr = RoundRobinAllocator.allocate(&p);
        assert!(out.net_revenue() >= rr.net_revenue() - 1e-9);
    }

    #[test]
    fn elapsed_covers_all_members() {
        let p = problem();
        let out = portfolio(PortfolioCriterion::AcceptanceThenCost).allocate(&p);
        let cp = CpAllocator::default().allocate(&p);
        // Portfolio time includes at least the slowest member's order of
        // magnitude (sanity, not a strict bound).
        assert!(out.elapsed >= cp.elapsed / 4);
    }

    #[test]
    #[should_panic(expected = "at least one member")]
    fn empty_portfolio_rejected() {
        let _ = PortfolioAllocator::new(vec![], PortfolioCriterion::NetRevenue);
    }

    #[test]
    fn racing_portfolio_is_at_least_as_good_as_each_member() {
        // A generous budget lets every member finish, so the race picks
        // exactly what the sequential reduction would.
        let p = problem();
        let race = PortfolioAllocator::racing(
            vec![
                Box::new(RoundRobinAllocator),
                Box::new(FilteringAllocator),
                Box::new(CpAllocator::default()),
            ],
            PortfolioCriterion::AcceptanceThenCost,
            Some(std::time::Duration::from_secs(60)),
        );
        assert_eq!(race.name(), "portfolio-race");
        let out = race.allocate(&p);
        for member in [
            RoundRobinAllocator.allocate(&p),
            FilteringAllocator.allocate(&p),
            CpAllocator::default().allocate(&p),
        ] {
            assert!(
                (out.rejection_rate, out.provider_cost())
                    <= (member.rejection_rate, member.provider_cost() + 1e-9),
                "racing portfolio must not lose to a member"
            );
        }
    }

    #[test]
    fn expired_deadline_skips_members_past_the_first() {
        let p = problem();
        let seq = portfolio(PortfolioCriterion::AcceptanceThenCost);
        let out = seq.allocate_with_deadline(
            &p,
            cpo_model::deadline::Deadline::within(std::time::Duration::ZERO),
        );
        // The first member (round-robin) still ran and fully places this
        // easy batch; the expensive tail members were never started.
        assert_eq!(out.rejected.len(), 0);
        let rr = RoundRobinAllocator.allocate(&p);
        assert_eq!(out.provider_cost(), rr.provider_cost());
    }
}
