//! A portfolio meta-allocator: run several algorithms on the same
//! problem and keep the best outcome under a configurable criterion.
//!
//! This is the practical deployment the paper's comparison implies — the
//! scheduler does not have to commit to one algorithm; on small problems
//! CP wins outright (Fig. 7), on large ones the hybrid does (Figs. 8–9),
//! and a portfolio gets both, at the price of running its members
//! (optionally bounded by their own deadlines).

use crate::allocator::{AllocationOutcome, Allocator};
use cpo_model::prelude::AllocationProblem;
use std::time::Instant;

/// What the portfolio optimises when ranking member outcomes.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PortfolioCriterion {
    /// Fewest rejections, ties by provider cost — the paper's joint
    /// consumer/provider stance (violating outcomes always rank last).
    AcceptanceThenCost,
    /// Highest net revenue (violating outcomes always rank last).
    NetRevenue,
}

/// The portfolio allocator.
pub struct PortfolioAllocator {
    /// Member algorithms, tried in order.
    pub members: Vec<Box<dyn Allocator>>,
    /// Ranking criterion.
    pub criterion: PortfolioCriterion,
}

impl PortfolioAllocator {
    /// Builds a portfolio.
    ///
    /// # Panics
    /// Panics when `members` is empty.
    pub fn new(members: Vec<Box<dyn Allocator>>, criterion: PortfolioCriterion) -> Self {
        assert!(!members.is_empty(), "a portfolio needs at least one member");
        Self { members, criterion }
    }

    fn better(&self, a: &AllocationOutcome, b: &AllocationOutcome) -> bool {
        // Invalid placements lose to clean ones regardless of criterion.
        match (a.is_clean(), b.is_clean()) {
            (true, false) => return true,
            (false, true) => return false,
            _ => {}
        }
        match self.criterion {
            PortfolioCriterion::AcceptanceThenCost => {
                (a.rejection_rate, a.provider_cost()) < (b.rejection_rate, b.provider_cost())
            }
            PortfolioCriterion::NetRevenue => a.net_revenue() > b.net_revenue(),
        }
    }
}

impl Allocator for PortfolioAllocator {
    fn name(&self) -> &'static str {
        "portfolio"
    }

    fn allocate(&self, problem: &AllocationProblem) -> AllocationOutcome {
        let mut sp = cpo_obs::span!("allocator.allocate", algo = self.name());
        let start = Instant::now();
        let mut best: Option<AllocationOutcome> = None;
        for member in &self.members {
            let outcome = member.allocate(problem);
            best = Some(match best {
                None => outcome,
                Some(current) => {
                    if self.better(&outcome, &current) {
                        outcome
                    } else {
                        current
                    }
                }
            });
        }
        let mut outcome = best.expect("at least one member");
        // The portfolio's wall-clock is the sum of its members' runs.
        outcome.elapsed = start.elapsed();
        crate::allocator::observe_outcome(&mut sp, self.name(), &outcome);
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cp_alloc::CpAllocator;
    use crate::filtering::FilteringAllocator;
    use crate::round_robin::RoundRobinAllocator;
    use cpo_model::attr::AttrSet;
    use cpo_model::prelude::*;

    fn problem() -> AllocationProblem {
        let infra = Infrastructure::new(
            AttrSet::standard(),
            vec![("dc".into(), ServerProfile::commodity(3).build_many(4))],
        );
        let mut batch = RequestBatch::new();
        for _ in 0..4 {
            batch.push_request(vec![vm_spec(2.0, 2048.0, 20.0)], vec![]);
        }
        AllocationProblem::new(infra, batch, None)
    }

    fn portfolio(criterion: PortfolioCriterion) -> PortfolioAllocator {
        PortfolioAllocator::new(
            vec![
                Box::new(RoundRobinAllocator),
                Box::new(FilteringAllocator),
                Box::new(CpAllocator::default()),
            ],
            criterion,
        )
    }

    #[test]
    fn portfolio_is_at_least_as_good_as_each_member() {
        let p = problem();
        let out = portfolio(PortfolioCriterion::AcceptanceThenCost).allocate(&p);
        for member in [
            RoundRobinAllocator.allocate(&p),
            FilteringAllocator.allocate(&p),
            CpAllocator::default().allocate(&p),
        ] {
            assert!(
                (out.rejection_rate, out.provider_cost())
                    <= (member.rejection_rate, member.provider_cost() + 1e-9),
                "portfolio must not lose to a member"
            );
        }
    }

    #[test]
    fn criterion_changes_the_pick() {
        // On this sparse problem RR spreads (high cost) while filtering/CP
        // consolidate; under AcceptanceThenCost the consolidators win.
        let p = problem();
        let out = portfolio(PortfolioCriterion::AcceptanceThenCost).allocate(&p);
        let rr = RoundRobinAllocator.allocate(&p);
        assert!(out.provider_cost() < rr.provider_cost());
    }

    #[test]
    fn net_revenue_criterion_prefers_earning() {
        let p = problem();
        let out = portfolio(PortfolioCriterion::NetRevenue).allocate(&p);
        let rr = RoundRobinAllocator.allocate(&p);
        assert!(out.net_revenue() >= rr.net_revenue() - 1e-9);
    }

    #[test]
    fn elapsed_covers_all_members() {
        let p = problem();
        let out = portfolio(PortfolioCriterion::AcceptanceThenCost).allocate(&p);
        let cp = CpAllocator::default().allocate(&p);
        // Portfolio time includes at least the slowest member's order of
        // magnitude (sanity, not a strict bound).
        assert!(out.elapsed >= cp.elapsed / 4);
    }

    #[test]
    #[should_panic(expected = "at least one member")]
    fn empty_portfolio_rejected() {
        let _ = PortfolioAllocator::new(vec![], PortfolioCriterion::NetRevenue);
    }
}
