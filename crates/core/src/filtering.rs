//! The "Filtering Algorithm" of the paper's Table II — a BtrPlace-style
//! (ref. 13) consolidation manager: per resource, *filter* the candidate
//! servers through every constraint, then commit the cheapest survivor.
//!
//! Table II credits filtering with constraint compliance and
//! infrastructure control but denies it resource scalability and
//! customer-request compliance; this implementation reproduces that
//! profile: it never violates constraints (filters are exact), it greedily
//! serves requests in order (no backtracking → rejects requests a global
//! optimiser would fit) and its per-VM full-server scan is the
//! scalability weakness the table points at.

use crate::allocator::{AllocationOutcome, Allocator};
use cpo_model::prelude::*;
use cpo_tabu::repair::is_valid_allocation;
use std::time::Instant;

/// Filtering-based allocator (greedy best-fit with exact filters).
#[derive(Clone, Copy, Debug, Default)]
pub struct FilteringAllocator;

impl FilteringAllocator {
    /// Cheapest server passing all filters for VM `k`, given the partial
    /// assignment: marginal cost = usage cost + opex if the server would
    /// be switched on.
    fn best_candidate(
        problem: &AllocationProblem,
        assignment: &Assignment,
        tracker: &LoadTracker,
        k: VmId,
    ) -> Option<ServerId> {
        let mut best: Option<(ServerId, f64)> = None;
        for j in problem.infra().server_ids() {
            // Filters: capacity and every affinity rule of k's request.
            if !is_valid_allocation(problem, assignment, tracker, k, j) {
                continue;
            }
            let s = problem.infra().server(j);
            let marginal = s.usage_cost + if tracker.hosted(j) == 0 { s.opex } else { 0.0 };
            match best {
                Some((_, c)) if c <= marginal => {}
                _ => best = Some((j, marginal)),
            }
        }
        best.map(|(j, _)| j)
    }
}

impl Allocator for FilteringAllocator {
    fn name(&self) -> &'static str {
        "filtering"
    }

    fn allocate(&self, problem: &AllocationProblem) -> AllocationOutcome {
        let mut sp = cpo_obs::span!("allocator.allocate", algo = self.name());
        let start = Instant::now();
        let mut assignment = Assignment::unassigned(problem.n());
        let mut tracker = LoadTracker::new(problem.m(), problem.h());
        let mut rejected = Vec::new();

        for req in problem.batch().requests() {
            let mut placed: Vec<(VmId, ServerId)> = Vec::with_capacity(req.vms.len());
            // Place same-server groups first (the hardest filter), then
            // the rest in declaration order.
            let mut ordered: Vec<VmId> = req.vms.clone();
            ordered.sort_by_key(|&k| {
                usize::from(
                    !req.rules
                        .iter()
                        .any(|r| r.kind() == AffinityKind::SameServer && r.vms().contains(&k)),
                )
            });
            let mut ok = true;
            for &k in &ordered {
                match Self::best_candidate(problem, &assignment, &tracker, k) {
                    Some(j) => {
                        assignment.assign(k, j);
                        tracker.add(k, j, problem.batch());
                        placed.push((k, j));
                    }
                    None => {
                        ok = false;
                        break;
                    }
                }
            }
            if !ok {
                for (k, j) in placed {
                    tracker.remove(k, j, problem.batch());
                    assignment.unassign(k);
                }
                rejected.push(req.id);
            }
        }
        let outcome =
            AllocationOutcome::from_assignment(problem, assignment, rejected, start.elapsed(), 0);
        crate::allocator::observe_outcome(&mut sp, self.name(), &outcome);
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpo_model::attr::AttrSet;

    fn infra(servers: usize) -> Infrastructure {
        Infrastructure::new(
            AttrSet::standard(),
            vec![("dc".into(), ServerProfile::commodity(3).build_many(servers))],
        )
    }

    #[test]
    fn consolidates_onto_the_cheapest_server() {
        let mut batch = RequestBatch::new();
        for _ in 0..3 {
            batch.push_request(vec![vm_spec(2.0, 1024.0, 10.0)], vec![]);
        }
        let p = AllocationProblem::new(infra(4), batch, None);
        let out = FilteringAllocator.allocate(&p);
        assert!(out.is_clean());
        // Greedy marginal cost packs everything on one server.
        let tracker = p.tracker(&out.assignment);
        assert_eq!(tracker.active_servers(), 1);
    }

    #[test]
    fn filters_enforce_rules_exactly() {
        let mut batch = RequestBatch::new();
        batch.push_request(
            vec![vm_spec(1.0, 512.0, 5.0); 2],
            vec![AffinityRule::new(
                AffinityKind::DifferentServer,
                vec![VmId(0), VmId(1)],
            )],
        );
        batch.push_request(
            vec![vm_spec(1.0, 512.0, 5.0); 2],
            vec![AffinityRule::new(
                AffinityKind::SameServer,
                vec![VmId(2), VmId(3)],
            )],
        );
        let p = AllocationProblem::new(infra(3), batch, None);
        let out = FilteringAllocator.allocate(&p);
        assert!(out.is_clean());
        assert_eq!(out.rejection_rate, 0.0);
        let a = &out.assignment;
        assert_ne!(a.server_of(VmId(0)), a.server_of(VmId(1)));
        assert_eq!(a.server_of(VmId(2)), a.server_of(VmId(3)));
    }

    #[test]
    fn rejects_cleanly_with_rollback() {
        let mut batch = RequestBatch::new();
        batch.push_request(
            vec![vm_spec(1.0, 512.0, 5.0); 3],
            vec![AffinityRule::new(
                AffinityKind::DifferentServer,
                vec![VmId(0), VmId(1), VmId(2)],
            )],
        );
        let p = AllocationProblem::new(infra(2), batch, None);
        let out = FilteringAllocator.allocate(&p);
        assert_eq!(out.rejected, vec![RequestId(0)]);
        assert!(out.is_clean());
        assert_eq!(out.assignment.assigned_count(), 0, "rollback must be total");
    }

    #[test]
    fn cheaper_than_round_robin_on_sparse_load() {
        use crate::round_robin::RoundRobinAllocator;
        let mut batch = RequestBatch::new();
        for _ in 0..4 {
            batch.push_request(vec![vm_spec(1.0, 512.0, 5.0)], vec![]);
        }
        let p = AllocationProblem::new(infra(4), batch, None);
        let filt = FilteringAllocator.allocate(&p);
        let rr = RoundRobinAllocator.allocate(&p);
        assert!(
            filt.provider_cost() < rr.provider_cost(),
            "filtering consolidates ({}) where RR spreads ({})",
            filt.provider_cost(),
            rr.provider_cost()
        );
    }

    #[test]
    fn same_server_group_placed_first() {
        // Group of 3 needing 24 cpu must land before singles fragment
        // the space.
        let mut batch = RequestBatch::new();
        batch.push_request(
            vec![vm_spec(8.0, 512.0, 5.0); 3],
            vec![AffinityRule::new(
                AffinityKind::SameServer,
                vec![VmId(0), VmId(1), VmId(2)],
            )],
        );
        let p = AllocationProblem::new(infra(1), batch, None);
        let out = FilteringAllocator.allocate(&p);
        assert!(out.is_clean());
        assert_eq!(out.rejection_rate, 0.0);
    }
}
