//! # cpo-core — the six IaaS allocators
//!
//! The paper's contribution layer: a common [`allocator::Allocator`]
//! interface and every algorithm its evaluation compares —
//!
//! | name | module | paper role |
//! |---|---|---|
//! | `round-robin` | [`round_robin`] | baseline with server affinity (ref. 26) |
//! | `constraint-programming` | [`cp_alloc`] | Choco-style CP admission |
//! | `nsga2` | [`evolutionary`] | unmodified NSGA-II |
//! | `nsga3` | [`evolutionary`] | unmodified NSGA-III |
//! | `nsga3-cp` | [`evolutionary`] + [`cp_repair`] | NSGA-III with constraint solver |
//! | `nsga3-tabu` | [`evolutionary`] + `cpo-tabu` | **the proposed hybrid** |
//!
//! Two further comparators round out the paper's discussion: the Table II
//! "Filtering Algorithm" ([`filtering`], BtrPlace-style greedy best-fit
//! with exact filters) and the weighted mono-objective GA the paper
//! considers and rejects ([`weighted_ga`]).
//!
//! Anytime admission is a cross-cutting concern here: every allocator
//! can be called through
//! [`Allocator::allocate_with_deadline`](allocator::Allocator::allocate_with_deadline)
//! (solvers with a search cut it at the deadline and return their best
//! incumbent), [`allocator::DeadlineBound`] imposes a per-call budget on
//! any allocator, [`tabu_alloc`] polishes a greedy seed under the
//! deadline, and [`portfolio`] can *race* its members against it.
//!
//! ```
//! use cpo_core::prelude::*;
//! use cpo_model::prelude::*;
//! use cpo_model::attr::AttrSet;
//!
//! let infra = Infrastructure::new(
//!     AttrSet::standard(),
//!     vec![("dc".into(), ServerProfile::commodity(3).build_many(4))],
//! );
//! let mut batch = RequestBatch::new();
//! batch.push_request(
//!     vec![vm_spec(4.0, 8192.0, 100.0); 2],
//!     vec![AffinityRule::new(AffinityKind::DifferentServer, vec![VmId(0), VmId(1)])],
//! );
//! let problem = AllocationProblem::new(infra, batch, None);
//!
//! let config = NsgaConfig {
//!     population_size: 20,
//!     max_evaluations: 600,
//!     ..NsgaConfig::paper_defaults(Variant::Nsga3)
//! };
//! let outcome = EvoAllocator::nsga3_tabu(config).allocate(&problem);
//! assert!(outcome.is_clean());
//! ```

#![warn(missing_docs)]

pub mod allocator;
pub mod cp_alloc;
pub mod cp_repair;
pub mod encoding;
pub mod eval_pool;
pub mod evolutionary;
pub mod filtering;
pub mod moea_problem;
pub mod monitor;
pub mod portfolio;
pub mod round_robin;
pub mod tabu_alloc;
pub mod weighted_ga;

/// The most-used allocator types.
pub mod prelude {
    pub use crate::allocator::{AllocationOutcome, Allocator, DeadlineBound};
    pub use crate::cp_alloc::{CpAllocator, CpMode};
    pub use crate::cp_repair::CpRepair;
    pub use crate::encoding::GenomeCodec;
    pub use crate::eval_pool::EvaluatorPool;
    pub use crate::evolutionary::{EvoAllocator, Hybrid};
    pub use crate::filtering::FilteringAllocator;
    pub use crate::moea_problem::AllocMoeaProblem;
    pub use crate::portfolio::{PortfolioAllocator, PortfolioCriterion, PortfolioMode};
    pub use crate::round_robin::RoundRobinAllocator;
    pub use crate::tabu_alloc::TabuSearchAllocator;
    pub use crate::weighted_ga::WeightedGaAllocator;
    pub use cpo_moea::prelude::{NsgaConfig, Variant};
}
