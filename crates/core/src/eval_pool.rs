//! Re-export of [`cpo_model::eval_pool`] — the shared pool of reusable
//! `DeltaEvaluator`s for parallel scoring.
//!
//! The implementation moved into `cpo-model` so the parallel tabu
//! engine (`cpo-tabu`, which `cpo-core` depends on — the dependency
//! cannot run the other way) can draw scan workers from the same pool
//! type the MOEA adapters use. This module keeps the documented
//! `cpo_core::eval_pool::EvaluatorPool` path working; see
//! [`cpo_model::eval_pool`] for the locking-discipline audit notes.

pub use cpo_model::eval_pool::EvaluatorPool;
