//! The [`Allocator`] trait and the common outcome type carrying the four
//! metrics of the paper's evaluation: execution time (Figs. 7–8),
//! rejection rate (Fig. 9), violated constraints (Fig. 10) and provider
//! cost (Fig. 11).

use cpo_model::constraints::Violation;
use cpo_model::deadline::Deadline;
use cpo_model::prelude::*;
use std::time::Duration;

/// Result of one allocation run.
#[derive(Clone, Debug)]
pub struct AllocationOutcome {
    /// The produced placement. VMs of rejected requests are unassigned.
    pub assignment: Assignment,
    /// Requests the allocator explicitly rejected (admission control).
    pub rejected: Vec<RequestId>,
    /// Wall-clock time of the run (the Figs. 7–8 metric).
    pub elapsed: Duration,
    /// Objective vector of the placement (Eq. 15 terms).
    pub objectives: ObjectiveVector,
    /// Number of violated constraints, *excluding* cleanly rejected
    /// requests (the Fig. 10 metric: an admission-controlled rejection is
    /// not a violation — producing an invalid placement is).
    pub violated_constraints: usize,
    /// Rejection rate in `[0,1]` (the Fig. 9 metric): requests not fully
    /// and validly placed over total requests.
    pub rejection_rate: f64,
    /// Objective-function evaluations consumed (0 for non-evolutionary
    /// algorithms).
    pub evaluations: usize,
    /// Number of requests fully and validly served.
    pub accepted_requests: usize,
    /// Gross revenue earned from the accepted requests.
    pub gross_revenue: f64,
}

impl AllocationOutcome {
    /// Builds an outcome from an assignment and the explicit rejections,
    /// computing every derived metric.
    pub fn from_assignment(
        problem: &AllocationProblem,
        assignment: Assignment,
        rejected: Vec<RequestId>,
        elapsed: Duration,
        evaluations: usize,
    ) -> Self {
        let report = problem.check(&assignment);
        let flagged: Vec<&Violation> = report
            .violations()
            .iter()
            .filter(|v| match v {
                Violation::Unassigned { vm } => {
                    !rejected.contains(&problem.batch().request_of(*vm))
                }
                Violation::Affinity { request, .. } => !rejected.contains(request),
                Violation::Capacity { .. } => true,
            })
            .collect();
        let violated_constraints = flagged.len();
        if cpo_obs::flight::is_enabled() {
            for v in &flagged {
                crate::monitor::record_violation("allocator", v);
            }
        }
        let objectives = problem.evaluate(&assignment);
        let accepted_requests = problem.accepted_requests(&assignment).len();
        let gross_revenue = problem.gross_revenue(&assignment);
        let rejection_rate = problem.rejection_rate(&assignment);
        Self {
            assignment,
            rejected,
            elapsed,
            objectives,
            violated_constraints,
            rejection_rate,
            evaluations,
            accepted_requests,
            gross_revenue,
        }
    }

    /// Net revenue: gross revenue minus the full Eq. 15 cost — the
    /// provider's bottom line the paper's conclusion argues about.
    pub fn net_revenue(&self) -> f64 {
        self.gross_revenue - self.objectives.total()
    }

    /// Provider cost of the placement (the Fig. 11 metric): usage + opex.
    pub fn provider_cost(&self) -> f64 {
        self.objectives.usage_opex
    }

    /// `true` when the outcome violates no constraint (cleanly rejected
    /// requests allowed).
    pub fn is_clean(&self) -> bool {
        self.violated_constraints == 0
    }

    /// Normalised provider cost per *accepted* request — the comparison
    /// metric the paper's conclusion proposes as future work ("a
    /// normalized and standardized metric on a cost per request basis"):
    /// it removes the misleading advantage of algorithms that reject
    /// (rejections carry no cost). Infinite when nothing was accepted.
    pub fn cost_per_accepted_request(&self) -> f64 {
        if self.accepted_requests == 0 {
            f64::INFINITY
        } else {
            self.provider_cost() / self.accepted_requests as f64
        }
    }
}

/// A cloud resource allocation algorithm.
///
/// `Sync` is a supertrait so a `&dyn Allocator` can be shared across the
/// sharded scheduler's scoped solver threads; every allocator here is a
/// pure function of the problem plus owned configuration, so the bound
/// costs nothing.
pub trait Allocator: Sync {
    /// Short stable name used in reports ("round-robin", "nsga3-tabu", …).
    fn name(&self) -> &'static str;

    /// Produces a placement for the problem.
    fn allocate(&self, problem: &AllocationProblem) -> AllocationOutcome;

    /// Produces a placement under a wall-clock [`Deadline`].
    ///
    /// Anytime allocators (CP, tabu polish, racing portfolios) override
    /// this to cut their search at the deadline and return the best
    /// incumbent found so far; the default ignores the deadline — for a
    /// one-pass heuristic (round-robin, filtering) there is no search to
    /// cut, so the plain run *is* the anytime behaviour.
    fn allocate_with_deadline(
        &self,
        problem: &AllocationProblem,
        deadline: Deadline,
    ) -> AllocationOutcome {
        let _ = deadline;
        self.allocate(problem)
    }
}

/// Borrows an allocator and imposes a per-call wall-clock budget on it:
/// every `allocate` becomes `allocate_with_deadline(now + budget)`, and
/// an incoming deadline is tightened to whichever bound expires first.
///
/// This is how the windowed scheduler enforces `solve_deadline` without
/// knowing which algorithm it drives — the wrapper composes with any
/// [`Allocator`], and allocators that ignore deadlines simply run as
/// before.
pub struct DeadlineBound<'a> {
    inner: &'a dyn Allocator,
    budget: Duration,
}

impl<'a> DeadlineBound<'a> {
    /// Bounds every call on `inner` to `budget` from call time.
    pub fn new(inner: &'a dyn Allocator, budget: Duration) -> Self {
        Self { inner, budget }
    }
}

impl Allocator for DeadlineBound<'_> {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn allocate(&self, problem: &AllocationProblem) -> AllocationOutcome {
        self.inner
            .allocate_with_deadline(problem, Deadline::within(self.budget))
    }

    fn allocate_with_deadline(
        &self,
        problem: &AllocationProblem,
        deadline: Deadline,
    ) -> AllocationOutcome {
        self.inner
            .allocate_with_deadline(problem, deadline.earliest(Deadline::within(self.budget)))
    }
}

/// Records one `Allocator::allocate` call into the observability
/// registry: outcome labels on the span, a per-algorithm solve-time
/// histogram (`allocator.solve_ns.<name>`) and run counter. No-op when
/// instrumentation is disabled. Allocator impls call this right before
/// returning their outcome.
pub fn observe_outcome(span: &mut cpo_obs::SpanGuard, name: &str, outcome: &AllocationOutcome) {
    if !span.is_live() {
        return;
    }
    span.field("accepted", outcome.accepted_requests)
        .field("rejected", outcome.rejected.len())
        .field("violations", outcome.violated_constraints)
        .field("evaluations", outcome.evaluations)
        .field("clean", outcome.is_clean());
    cpo_obs::record_value(
        &format!("allocator.solve_ns.{name}"),
        outcome.elapsed.as_nanos() as u64,
    );
    cpo_obs::counter_add(&format!("allocator.runs.{name}"), 1);
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpo_model::attr::AttrSet;

    fn problem() -> AllocationProblem {
        let infra = Infrastructure::new(
            AttrSet::standard(),
            vec![("dc".into(), ServerProfile::commodity(3).build_many(2))],
        );
        let mut batch = RequestBatch::new();
        batch.push_request(vec![vm_spec(2.0, 1024.0, 10.0)], vec![]);
        batch.push_request(vec![vm_spec(40.0, 1024.0, 10.0)], vec![]); // never fits
        AllocationProblem::new(infra, batch, None)
    }

    #[test]
    fn clean_rejection_is_not_a_violation() {
        let p = problem();
        let mut a = Assignment::unassigned(2);
        a.assign(VmId(0), ServerId(0));
        // Request 1 explicitly rejected, VM 1 left unassigned.
        let out = AllocationOutcome::from_assignment(
            &p,
            a,
            vec![RequestId(1)],
            Duration::from_millis(1),
            0,
        );
        assert_eq!(out.violated_constraints, 0);
        assert!(out.is_clean());
        assert_eq!(out.rejection_rate, 0.5);
    }

    #[test]
    fn silent_non_placement_is_a_violation() {
        let p = problem();
        let mut a = Assignment::unassigned(2);
        a.assign(VmId(0), ServerId(0));
        // Same assignment but no explicit rejection: VM 1 is just dropped.
        let out = AllocationOutcome::from_assignment(&p, a, vec![], Duration::from_millis(1), 0);
        assert_eq!(out.violated_constraints, 1);
        assert!(!out.is_clean());
    }

    #[test]
    fn overload_is_always_a_violation() {
        let p = problem();
        let mut a = Assignment::unassigned(2);
        a.assign(VmId(0), ServerId(0));
        a.assign(VmId(1), ServerId(0)); // 42 cpu on 28.8: overload
        let out = AllocationOutcome::from_assignment(
            &p,
            a,
            vec![RequestId(1)], // claiming rejection doesn't absolve the overload
            Duration::from_millis(1),
            0,
        );
        assert!(out.violated_constraints >= 1);
    }

    #[test]
    fn provider_cost_is_the_usage_opex_term() {
        let p = problem();
        let mut a = Assignment::unassigned(2);
        a.assign(VmId(0), ServerId(0));
        let out = AllocationOutcome::from_assignment(&p, a, vec![RequestId(1)], Duration::ZERO, 0);
        assert_eq!(out.provider_cost(), out.objectives.usage_opex);
        assert!(out.provider_cost() > 0.0);
    }
}
