//! The "Constraint Programming" baseline: per-request admission through
//! the CP solver (our Choco substitute), exactly the role Choco plays in
//! the paper's first resolution approach.
//!
//! Requests are admitted one by one: each request's VMs become CSP
//! variables over the servers, constrained by residual capacities and the
//! request's affinity rules. Cost-ordered value selection (optionally full
//! branch-and-bound) drives the provider cost down — which is why CP posts
//! the lowest cost in Fig. 11 while rejecting more than the hybrid in
//! Fig. 9 (rejections carry no cost penalty, as the paper notes).

use crate::allocator::{AllocationOutcome, Allocator};
use cpo_cpsolve::prelude::*;
use cpo_model::deadline::Deadline;
use cpo_model::prelude::*;
use std::time::{Duration, Instant};

/// How hard the CP allocator works per request.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum CpMode {
    /// First feasible solution with cost-ordered branching (fast).
    Feasible,
    /// Branch-and-bound to the separable-cost optimum, within the budget.
    Optimize,
}

/// Constraint-programming allocator.
#[derive(Clone, Debug)]
pub struct CpAllocator {
    /// Search effort.
    pub mode: CpMode,
    /// Per-request wall-clock budget.
    pub per_request_deadline: Duration,
    /// Per-request node budget (guards worst-case thrashing).
    pub max_nodes: Option<usize>,
    /// Propagation engine (queued by default; `Engine::Reference` exists
    /// for differential testing and regression guards).
    pub engine: Engine,
}

impl Default for CpAllocator {
    fn default() -> Self {
        Self {
            mode: CpMode::Optimize,
            per_request_deadline: Duration::from_millis(500),
            max_nodes: Some(200_000),
            engine: Engine::default(),
        }
    }
}

impl CpAllocator {
    /// A feasibility-only variant (no optimisation pass).
    pub fn feasible_only() -> Self {
        Self {
            mode: CpMode::Feasible,
            ..Default::default()
        }
    }
}

/// Builds the CSP for one request against the current platform state
/// (`tracker` carries everything already committed). Variable `v` of the
/// CSP is `req.vms[v]`. Shared by the CP allocator and the CP repair of
/// the NSGA-III hybrid.
pub fn build_request_csp(problem: &AllocationProblem, req: &Request, tracker: &LoadTracker) -> Csp {
    let m = problem.m();
    let h = problem.h();
    let mut csp = Csp::new(req.vms.len(), m);

    // Residual capacities: effective minus already-committed usage.
    // Clamped at zero: a server overloaded by *other* requests has no
    // residual room, not a poisoned (negative) capacity that would fail
    // the whole CSP.
    let capacity: Vec<Vec<f64>> = (0..m)
        .map(|j| {
            let j = ServerId(j);
            (0..h)
                .map(|l| {
                    (problem
                        .infra()
                        .effective_capacity(j, cpo_model::attr::AttrId(l))
                        - tracker.used(j, cpo_model::attr::AttrId(l)))
                    .max(0.0)
                })
                .collect()
        })
        .collect();
    let demand: Vec<Vec<f64>> = req
        .vms
        .iter()
        .map(|&k| problem.batch().vm(k).demand.clone())
        .collect();
    let vars: Vec<VarId> = (0..req.vms.len()).map(VarId).collect();
    csp.add(Box::new(Pack::new(vars.clone(), demand, capacity)));

    // Affinity rules → propagators over this request's variables.
    let dc_group: Vec<usize> = (0..m)
        .map(|j| problem.infra().datacenter_of(ServerId(j)).index())
        .collect();
    let var_of = |k: VmId| -> VarId {
        VarId(
            req.vms
                .iter()
                .position(|&v| v == k)
                .expect("rule vm in request"),
        )
    };
    for rule in &req.rules {
        let rule_vars: Vec<VarId> = rule.vms().iter().map(|&k| var_of(k)).collect();
        match rule.linearize() {
            LinearizedRule::AllEqualServer(_) => csp.add(Box::new(AllEqual { vars: rule_vars })),
            LinearizedRule::AllDifferentServer(_) => {
                csp.add(Box::new(AllDifferent { vars: rule_vars }))
            }
            LinearizedRule::AllEqualDatacenter(_) => csp.add(Box::new(GroupAllEqual {
                vars: rule_vars,
                group: dc_group.clone(),
            })),
            LinearizedRule::AllDifferentDatacenter(_) => csp.add(Box::new(GroupAllDifferent {
                vars: rule_vars,
                group: dc_group.clone(),
            })),
        }
    }
    csp
}

/// Builds one CSP covering the *whole* batch: every VM of every request
/// becomes a variable over the servers, a single [`Pack`] carries the
/// full-platform capacities, and each request's affinity rules become
/// propagators over that request's variables. This is the monolithic
/// formulation of Eqs. 9–17 (admission decided for the batch at once,
/// rather than request by request) — and the shape where event-driven
/// propagation pays off most: a branching decision wakes only the packing
/// constraint plus the few rules of the request it touches, while the
/// full-fixpoint loop re-runs every rule of every request each round.
pub fn build_batch_csp(problem: &AllocationProblem) -> Csp {
    let m = problem.m();
    let h = problem.h();
    let n = problem.n();
    let mut csp = Csp::new(n, m);

    let capacity: Vec<Vec<f64>> = (0..m)
        .map(|j| {
            (0..h)
                .map(|l| {
                    problem
                        .infra()
                        .effective_capacity(ServerId(j), cpo_model::attr::AttrId(l))
                })
                .collect()
        })
        .collect();
    let demand: Vec<Vec<f64>> = (0..n)
        .map(|k| problem.batch().vm(VmId(k)).demand.clone())
        .collect();
    csp.add(Box::new(Pack::new(
        (0..n).map(VarId).collect(),
        demand,
        capacity,
    )));

    let dc_group: Vec<usize> = (0..m)
        .map(|j| problem.infra().datacenter_of(ServerId(j)).index())
        .collect();
    for req in problem.batch().requests() {
        for rule in &req.rules {
            let rule_vars: Vec<VarId> = rule.vms().iter().map(|&k| VarId(k.index())).collect();
            match rule.linearize() {
                LinearizedRule::AllEqualServer(_) => {
                    csp.add(Box::new(AllEqual { vars: rule_vars }))
                }
                LinearizedRule::AllDifferentServer(_) => {
                    csp.add(Box::new(AllDifferent { vars: rule_vars }))
                }
                LinearizedRule::AllEqualDatacenter(_) => csp.add(Box::new(GroupAllEqual {
                    vars: rule_vars,
                    group: dc_group.clone(),
                })),
                LinearizedRule::AllDifferentDatacenter(_) => csp.add(Box::new(GroupAllDifferent {
                    vars: rule_vars,
                    group: dc_group.clone(),
                })),
            }
        }
    }
    csp
}

/// Marginal provider cost of placing each VM of the request on each
/// server: the usage cost, plus the opex for a server that would be
/// switched on by the placement.
pub fn marginal_cost(
    problem: &AllocationProblem,
    req: &Request,
    tracker: &LoadTracker,
) -> Vec<Vec<f64>> {
    let m = problem.m();
    let per_server: Vec<f64> = (0..m)
        .map(|j| {
            let s = problem.infra().server(ServerId(j));
            s.usage_cost
                + if tracker.hosted(ServerId(j)) == 0 {
                    s.opex
                } else {
                    0.0
                }
        })
        .collect();
    vec![per_server; req.vms.len()]
}

impl Allocator for CpAllocator {
    fn name(&self) -> &'static str {
        match self.mode {
            CpMode::Feasible => "cp-feasible",
            CpMode::Optimize => "constraint-programming",
        }
    }

    fn allocate(&self, problem: &AllocationProblem) -> AllocationOutcome {
        self.allocate_with_deadline(problem, Deadline::never())
    }

    fn allocate_with_deadline(
        &self,
        problem: &AllocationProblem,
        deadline: Deadline,
    ) -> AllocationOutcome {
        let mut sp = cpo_obs::span!("allocator.allocate", algo = self.name());
        let start = Instant::now();
        let mut assignment = Assignment::unassigned(problem.n());
        let mut tracker = LoadTracker::new(problem.m(), problem.h());
        let mut rejected = Vec::new();

        for req in problem.batch().requests() {
            // Anytime admission: requests already placed stay placed;
            // once the overall deadline expires the remaining requests
            // are rejected without solving (a clean admission-control
            // rejection, not a violation). Before that, each request's
            // solve budget is its usual per-request slice, clipped to
            // the time the overall deadline leaves.
            let remaining = deadline.remaining();
            if remaining == Some(Duration::ZERO) {
                rejected.push(req.id);
                continue;
            }
            let budget = match remaining {
                Some(r) => self.per_request_deadline.min(r),
                None => self.per_request_deadline,
            };
            let mut csp = build_request_csp(problem, req, &tracker);
            let cost = marginal_cost(problem, req, &tracker);
            let config = SearchConfig {
                deadline: Some(budget),
                max_nodes: self.max_nodes,
                value_order: ValueOrder::ByCost(cost.clone()),
                engine: self.engine,
            };
            let solution: Option<Vec<usize>> = match self.mode {
                CpMode::Feasible => {
                    let (outcome, _) = solve(&mut csp, &config);
                    outcome.solution().map(<[usize]>::to_vec)
                }
                CpMode::Optimize => {
                    let (best, _complete, _) = optimize(&mut csp, &cost, &config);
                    best.map(|(s, _)| s)
                }
            };
            match solution {
                Some(values) => {
                    for (v, &j) in values.iter().enumerate() {
                        let k = req.vms[v];
                        assignment.assign(k, ServerId(j));
                        tracker.add(k, ServerId(j), problem.batch());
                    }
                }
                None => rejected.push(req.id),
            }
        }
        let outcome =
            AllocationOutcome::from_assignment(problem, assignment, rejected, start.elapsed(), 0);
        crate::allocator::observe_outcome(&mut sp, self.name(), &outcome);
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpo_model::attr::AttrSet;

    fn infra(servers: usize) -> Infrastructure {
        Infrastructure::new(
            AttrSet::standard(),
            vec![
                (
                    "dc0".into(),
                    ServerProfile::commodity(3).build_many(servers / 2),
                ),
                (
                    "dc1".into(),
                    ServerProfile::commodity(3).build_many(servers - servers / 2),
                ),
            ],
        )
    }

    #[test]
    fn places_simple_batch_cleanly() {
        let mut batch = RequestBatch::new();
        for _ in 0..6 {
            batch.push_request(vec![vm_spec(2.0, 1024.0, 10.0)], vec![]);
        }
        let p = AllocationProblem::new(infra(4), batch, None);
        let out = CpAllocator::default().allocate(&p);
        assert!(out.is_clean());
        assert_eq!(out.rejection_rate, 0.0);
        assert!(out.assignment.is_complete());
    }

    #[test]
    fn consolidates_for_cost() {
        // 3 small VMs, 4 servers: optimal packs them on one server
        // (single opex) — B&B must find that.
        let mut batch = RequestBatch::new();
        batch.push_request(vec![vm_spec(1.0, 512.0, 5.0); 3], vec![]);
        let p = AllocationProblem::new(infra(4), batch, None);
        let out = CpAllocator::default().allocate(&p);
        assert!(out.is_clean());
        let tracker = p.tracker(&out.assignment);
        assert_eq!(
            tracker.active_servers(),
            1,
            "B&B should consolidate to one host"
        );
    }

    #[test]
    fn honours_all_four_rule_kinds() {
        let mut batch = RequestBatch::new();
        batch.push_request(
            vec![vm_spec(1.0, 512.0, 5.0); 2],
            vec![AffinityRule::new(
                AffinityKind::SameServer,
                vec![VmId(0), VmId(1)],
            )],
        );
        batch.push_request(
            vec![vm_spec(1.0, 512.0, 5.0); 2],
            vec![AffinityRule::new(
                AffinityKind::DifferentServer,
                vec![VmId(2), VmId(3)],
            )],
        );
        batch.push_request(
            vec![vm_spec(1.0, 512.0, 5.0); 2],
            vec![AffinityRule::new(
                AffinityKind::SameDatacenter,
                vec![VmId(4), VmId(5)],
            )],
        );
        batch.push_request(
            vec![vm_spec(1.0, 512.0, 5.0); 2],
            vec![AffinityRule::new(
                AffinityKind::DifferentDatacenter,
                vec![VmId(6), VmId(7)],
            )],
        );
        let p = AllocationProblem::new(infra(4), batch, None);
        let out = CpAllocator::default().allocate(&p);
        assert!(
            out.is_clean(),
            "violations: {:?}",
            p.check(&out.assignment).violations()
        );
        assert_eq!(out.rejection_rate, 0.0);
        let a = &out.assignment;
        assert_eq!(a.server_of(VmId(0)), a.server_of(VmId(1)));
        assert_ne!(a.server_of(VmId(2)), a.server_of(VmId(3)));
        let dc = |k: usize| p.infra().datacenter_of(a.server_of(VmId(k)).unwrap());
        assert_eq!(dc(4), dc(5));
        assert_ne!(dc(6), dc(7));
    }

    #[test]
    fn rejects_infeasible_requests_cleanly() {
        let mut batch = RequestBatch::new();
        batch.push_request(vec![vm_spec(100.0, 512.0, 5.0)], vec![]); // > any server
        batch.push_request(vec![vm_spec(1.0, 512.0, 5.0)], vec![]);
        let p = AllocationProblem::new(infra(2), batch, None);
        let out = CpAllocator::default().allocate(&p);
        assert_eq!(out.rejected, vec![RequestId(0)]);
        assert!(out.is_clean());
        assert_eq!(out.rejection_rate, 0.5);
    }

    #[test]
    fn feasible_mode_also_clean_but_maybe_dearer() {
        let mut batch = RequestBatch::new();
        batch.push_request(vec![vm_spec(1.0, 512.0, 5.0); 4], vec![]);
        let p = AllocationProblem::new(infra(4), batch, None);
        let fast = CpAllocator::feasible_only().allocate(&p);
        let opt = CpAllocator::default().allocate(&p);
        assert!(fast.is_clean() && opt.is_clean());
        assert!(opt.provider_cost() <= fast.provider_cost() + 1e-9);
    }

    #[test]
    fn expired_deadline_rejects_the_rest_cleanly() {
        let mut batch = RequestBatch::new();
        for _ in 0..3 {
            batch.push_request(vec![vm_spec(1.0, 512.0, 5.0)], vec![]);
        }
        let p = AllocationProblem::new(infra(4), batch, None);
        let out =
            CpAllocator::default().allocate_with_deadline(&p, Deadline::within(Duration::ZERO));
        assert_eq!(out.rejected.len(), 3, "no request may start past expiry");
        assert!(out.is_clean(), "deadline rejections are admission control");
        let unbounded = CpAllocator::default().allocate_with_deadline(&p, Deadline::never());
        assert_eq!(unbounded.rejected.len(), 0);
    }

    #[test]
    fn earlier_requests_constrain_later_ones() {
        // Two same-server pairs that each fill >half a server's CPU: they
        // must land on different servers.
        let mut batch = RequestBatch::new();
        batch.push_request(
            vec![vm_spec(10.0, 512.0, 5.0); 2],
            vec![AffinityRule::new(
                AffinityKind::SameServer,
                vec![VmId(0), VmId(1)],
            )],
        );
        batch.push_request(
            vec![vm_spec(10.0, 512.0, 5.0); 2],
            vec![AffinityRule::new(
                AffinityKind::SameServer,
                vec![VmId(2), VmId(3)],
            )],
        );
        let p = AllocationProblem::new(infra(2), batch, None);
        let out = CpAllocator::default().allocate(&p);
        assert!(out.is_clean());
        assert_eq!(out.rejection_rate, 0.0);
        let a = &out.assignment;
        assert_ne!(a.server_of(VmId(0)), a.server_of(VmId(2)));
    }
}
