//! Adapter exposing an [`AllocationProblem`] to the MOEA engine: genes are
//! server ids (real-coded), objectives are the three Eq. 15 terms, and the
//! constraint-violation degree feeds constraint-domination.
//!
//! Genome evaluation reuses pooled [`DeltaEvaluator`]s: each rayon worker
//! pops one from the pool, `reset`s it onto the decoded assignment (every
//! buffer — tracker matrix, per-server occupancy lists, penalty caches —
//! is reused, no per-genome allocation of derived state), scores, and
//! returns it. Scores are bit-identical to the old per-genome
//! `check`/`evaluate` pair, pinned by `evaluation_matches_direct_model_calls`.

use crate::encoding::GenomeCodec;
use crate::eval_pool::EvaluatorPool;
use cpo_model::prelude::*;
use cpo_moea::prelude::{Evaluation, MoeaProblem};

/// The allocation problem in MOEA clothing.
pub struct AllocMoeaProblem<'a> {
    problem: &'a AllocationProblem,
    codec: GenomeCodec,
    /// Shared evaluator pool — brief pop/push locks only, never held
    /// across a score (see [`EvaluatorPool`]).
    pool: EvaluatorPool<'a>,
}

impl<'a> AllocMoeaProblem<'a> {
    /// Wraps a problem.
    pub fn new(problem: &'a AllocationProblem) -> Self {
        let codec = GenomeCodec::new(problem.m(), problem.n());
        Self {
            problem,
            codec,
            pool: EvaluatorPool::new(problem),
        }
    }

    /// The genome codec in use.
    pub fn codec(&self) -> GenomeCodec {
        self.codec
    }

    /// The wrapped problem.
    pub fn problem(&self) -> &AllocationProblem {
        self.problem
    }

    /// Scores an assignment on a pooled evaluator.
    fn pooled_score(&self, assignment: Assignment) -> cpo_model::delta::MoveScore {
        self.pool.score(assignment)
    }
}

impl MoeaProblem for AllocMoeaProblem<'_> {
    fn n_vars(&self) -> usize {
        self.problem.n()
    }

    fn n_objectives(&self) -> usize {
        3
    }

    fn bounds(&self, _i: usize) -> (f64, f64) {
        self.codec.bounds()
    }

    fn evaluate(&self, genes: &[f64]) -> Evaluation {
        let assignment = self.codec.decode(genes);
        let score = self.pooled_score(assignment);
        Evaluation {
            objectives: score.objectives.as_array().to_vec(),
            violation: score.violation,
        }
    }

    fn name(&self) -> &str {
        "iaas-allocation"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpo_model::attr::AttrSet;

    fn problem() -> AllocationProblem {
        let infra = Infrastructure::new(
            AttrSet::standard(),
            vec![("dc".into(), ServerProfile::commodity(3).build_many(3))],
        );
        let mut batch = RequestBatch::new();
        batch.push_request(
            vec![vm_spec(2.0, 1024.0, 10.0), vm_spec(2.0, 1024.0, 10.0)],
            vec![AffinityRule::new(
                AffinityKind::DifferentServer,
                vec![VmId(0), VmId(1)],
            )],
        );
        AllocationProblem::new(infra, batch, None)
    }

    #[test]
    fn dimensions_match_problem() {
        let p = problem();
        let adapter = AllocMoeaProblem::new(&p);
        assert_eq!(adapter.n_vars(), 2);
        assert_eq!(adapter.n_objectives(), 3);
        assert_eq!(adapter.bounds(0), (0.0, 3.0));
    }

    #[test]
    fn feasible_genome_has_zero_violation() {
        let p = problem();
        let adapter = AllocMoeaProblem::new(&p);
        // VMs on different servers: feasible.
        let e = adapter.evaluate(&[0.5, 1.5]);
        assert_eq!(e.violation, 0.0);
        assert_eq!(e.objectives.len(), 3);
        assert!(e.objectives[0] > 0.0, "usage+opex is positive");
    }

    #[test]
    fn rule_breaking_genome_is_penalised() {
        let p = problem();
        let adapter = AllocMoeaProblem::new(&p);
        // Both VMs on server 1: breaks the different-server rule.
        let e = adapter.evaluate(&[1.5, 1.5]);
        assert!(e.violation > 0.0);
    }

    #[test]
    fn evaluation_matches_direct_model_calls() {
        let p = problem();
        let adapter = AllocMoeaProblem::new(&p);
        let genes = [0.5, 2.5];
        let e = adapter.evaluate(&genes);
        let a = adapter.codec().decode(&genes);
        let direct = p.evaluate(&a);
        assert_eq!(e.objectives, direct.as_array().to_vec());
    }
}
