//! The deterministic synthetic trace amplifier.
//!
//! Committed sample traces are a few dozen rows; the macro-benchmark
//! needs millions of arrivals. [`Amplifier`] scales a seed trace by
//! interleaving `factor` **replicas** of it on the same timeline, each
//! replica's events jittered in time and demand so the amplified stream
//! is not a lock-step chorus:
//!
//! * the seed trace is materialised once (it is small by construction);
//!   the amplified stream itself is lazy — a `factor`-way merge over
//!   per-replica cursors, O(factor) memory regardless of output length;
//! * jitter is **hash-based**, a pure function of `(seed, replica,
//!   index)` (SplitMix64), never a sequential RNG — so the stream is
//!   byte-identical for a given seed no matter how it is consumed, and
//!   replicas can be cursored independently;
//! * each replica's timestamps are clamped monotone after jitter, and
//!   the merge breaks timestamp ties by replica id, so the output is a
//!   deterministic, globally non-decreasing event stream.
//!
//! Replica 0 carries zero jitter: the original trace is always embedded
//! verbatim in the amplified stream.

use crate::event::{TraceError, TraceEvent};
use crate::reader::DatasetReader;
use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;

/// Amplification parameters.
#[derive(Clone, Copy, Debug)]
pub struct AmplifyConfig {
    /// Number of interleaved replicas (≥ 1); output length is
    /// `factor × seed-trace length`.
    pub factor: usize,
    /// Maximum absolute timestamp jitter in seconds (uniform in
    /// `[-time_jitter, +time_jitter]`).
    pub time_jitter: f64,
    /// Maximum relative demand jitter (each attribute scales by a factor
    /// in `[1 - demand_jitter, 1 + demand_jitter]`).
    pub demand_jitter: f64,
    /// Jitter seed — the whole stream is a pure function of it.
    pub seed: u64,
}

impl Default for AmplifyConfig {
    fn default() -> Self {
        Self {
            factor: 1,
            time_jitter: 0.0,
            demand_jitter: 0.0,
            seed: 0,
        }
    }
}

/// SplitMix64 — the repo's standard allocation-free hash chain.
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A uniform draw in `[-1, 1]` from a hash of `(seed, replica, index,
/// lane)` — pure, order-independent.
fn unit_jitter(seed: u64, replica: u64, index: u64, lane: u64) -> f64 {
    let h = splitmix(
        seed ^ replica.wrapping_mul(0x2545_F491_4F6C_DD1D)
            ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ lane.wrapping_mul(0xD6E8_FEB8_6659_FD93),
    );
    // 53 mantissa-exact bits → [0, 1) → [-1, 1].
    (h >> 11) as f64 * (2.0 / (1u64 << 53) as f64) - 1.0
}

/// One replica's next pending event in the merge heap, ordered by
/// `(at, replica)` — the replica id breaks ties deterministically.
struct Cursor {
    at: f64,
    replica: u32,
    pos: usize,
    event: TraceEvent,
}

impl PartialEq for Cursor {
    fn eq(&self, other: &Self) -> bool {
        self.at.total_cmp(&other.at) == Ordering::Equal && self.replica == other.replica
    }
}
impl Eq for Cursor {}
impl PartialOrd for Cursor {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Cursor {
    fn cmp(&self, other: &Self) -> Ordering {
        self.at
            .total_cmp(&other.at)
            .then_with(|| self.replica.cmp(&other.replica))
    }
}

/// Lazily merges `factor` jittered replicas of a materialised seed
/// trace. Implements [`DatasetReader`], so it slots anywhere a plain
/// reader does.
pub struct Amplifier {
    base: Vec<TraceEvent>,
    config: AmplifyConfig,
    heap: BinaryHeap<Reverse<Cursor>>,
    /// Per-replica emitted-time watermark (monotone clamp after jitter).
    watermark: Vec<f64>,
    arrival_span: f64,
    horizon: f64,
}

impl Amplifier {
    /// Drains `inner` into the seed trace and prepares the merge. The
    /// first reader error aborts construction.
    pub fn new<D: DatasetReader>(mut inner: D, config: AmplifyConfig) -> Result<Self, TraceError> {
        assert!(config.factor >= 1, "amplification factor must be >= 1");
        assert!(
            config.time_jitter >= 0.0 && config.demand_jitter >= 0.0,
            "jitter magnitudes must be non-negative"
        );
        assert!(
            config.demand_jitter < 1.0,
            "demand jitter must stay below 1 (demands must stay positive)"
        );
        let mut base = Vec::new();
        while let Some(item) = inner.next_event() {
            base.push(item?);
        }
        let arrival_span = base.iter().fold(0.0f64, |m, e| m.max(e.at));
        let horizon = base.iter().fold(0.0f64, |m, e| m.max(e.at + e.holding));
        let mut amp = Self {
            base,
            config,
            heap: BinaryHeap::with_capacity(config.factor),
            watermark: vec![0.0; config.factor],
            arrival_span,
            horizon,
        };
        for r in 0..config.factor as u32 {
            amp.push_cursor(r, 0);
        }
        Ok(amp)
    }

    /// Events in the seed trace.
    pub fn base_len(&self) -> usize {
        self.base.len()
    }

    /// Total events the amplified stream will emit.
    pub fn len(&self) -> usize {
        self.base.len() * self.config.factor
    }

    /// Whether the stream is empty.
    pub fn is_empty(&self) -> bool {
        self.base.is_empty()
    }

    /// Latest arrival time in the seed trace (the amplified stream's
    /// arrivals also end within `time_jitter` of this).
    pub fn arrival_span(&self) -> f64 {
        self.arrival_span
    }

    /// Latest departure time (`at + holding`) in the seed trace.
    pub fn horizon(&self) -> f64 {
        self.horizon
    }

    /// Jitters base event `pos` for `replica` and advances the replica
    /// watermark. Replica 0 is the verbatim original.
    fn push_cursor(&mut self, replica: u32, pos: usize) {
        let Some(&base) = self.base.get(pos) else {
            return;
        };
        let mut event = base;
        if replica > 0 {
            let (seed, r, i) = (self.config.seed, u64::from(replica), pos as u64);
            let at = base.at + self.config.time_jitter * unit_jitter(seed, r, i, 0);
            event.at = at.max(0.0);
            let dj = self.config.demand_jitter;
            if dj > 0.0 {
                event.cpu *= 1.0 + dj * unit_jitter(seed, r, i, 1);
                event.ram *= 1.0 + dj * unit_jitter(seed, r, i, 2);
                event.disk *= 1.0 + dj * unit_jitter(seed, r, i, 3);
            }
        }
        // Clamp the replica's stream monotone *before* merging, so the
        // heap always holds final timestamps and the merge output is
        // globally non-decreasing.
        let w = &mut self.watermark[replica as usize];
        event.at = event.at.max(*w);
        *w = event.at;
        event.id = u64::from(replica) * self.base.len() as u64 + pos as u64;
        self.heap.push(Reverse(Cursor {
            at: event.at,
            replica,
            pos,
            event,
        }));
    }
}

impl DatasetReader for Amplifier {
    fn next_event(&mut self) -> Option<Result<TraceEvent, TraceError>> {
        let Reverse(cursor) = self.heap.pop()?;
        self.push_cursor(cursor.replica, cursor.pos + 1);
        Some(Ok(cursor.event))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reader::VecReader;

    fn base() -> Vec<TraceEvent> {
        (0..8)
            .map(|i| TraceEvent {
                at: i as f64 * 10.0,
                id: i,
                vm_count: 1,
                cpu: 2.0,
                ram: 2048.0,
                disk: 20.0,
                holding: 35.0,
            })
            .collect()
    }

    fn drain(mut a: Amplifier) -> Vec<TraceEvent> {
        std::iter::from_fn(move || a.next_event())
            .map(Result::unwrap)
            .collect()
    }

    #[test]
    fn factor_one_zero_jitter_is_the_identity() {
        let cfg = AmplifyConfig::default();
        let out = drain(Amplifier::new(VecReader::new(base()), cfg).unwrap());
        assert_eq!(out, base());
    }

    #[test]
    fn output_length_and_span_scale_with_factor() {
        let cfg = AmplifyConfig {
            factor: 25,
            time_jitter: 3.0,
            demand_jitter: 0.2,
            seed: 7,
        };
        let amp = Amplifier::new(VecReader::new(base()), cfg).unwrap();
        assert_eq!(amp.len(), 200);
        assert_eq!(amp.base_len(), 8);
        assert_eq!(amp.arrival_span(), 70.0);
        assert_eq!(amp.horizon(), 105.0);
        let out = drain(amp);
        assert_eq!(out.len(), 200, "every replica event is emitted");
        // Arrivals stay near the seed span: same wall-clock, 25× rate.
        let last = out.last().unwrap().at;
        assert!(last <= 73.0 + 1e-9, "span must not stretch beyond jitter");
    }

    #[test]
    fn stream_is_non_decreasing_with_unique_ids() {
        let cfg = AmplifyConfig {
            factor: 13,
            time_jitter: 25.0, // deliberately larger than the event gap
            demand_jitter: 0.3,
            seed: 42,
        };
        let out = drain(Amplifier::new(VecReader::new(base()), cfg).unwrap());
        let mut ids = std::collections::HashSet::new();
        let mut last = 0.0f64;
        for e in &out {
            assert!(e.at >= last, "timeline regressed: {} < {last}", e.at);
            assert!(e.validate().is_ok());
            assert!(ids.insert(e.id), "duplicate id {}", e.id);
            last = e.at;
        }
    }

    #[test]
    fn same_seed_is_byte_identical() {
        let cfg = AmplifyConfig {
            factor: 9,
            time_jitter: 5.0,
            demand_jitter: 0.25,
            seed: 1234,
        };
        let a = drain(Amplifier::new(VecReader::new(base()), cfg).unwrap());
        let b = drain(Amplifier::new(VecReader::new(base()), cfg).unwrap());
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            // Bit-level equality, not approximate: the stream must be
            // byte-identical for the macro-bench determinism gate.
            assert_eq!(x.at.to_bits(), y.at.to_bits());
            assert_eq!(x.cpu.to_bits(), y.cpu.to_bits());
            assert_eq!(x.ram.to_bits(), y.ram.to_bits());
            assert_eq!(x.disk.to_bits(), y.disk.to_bits());
            assert_eq!(x.id, y.id);
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mk = |seed| AmplifyConfig {
            factor: 4,
            time_jitter: 5.0,
            demand_jitter: 0.2,
            seed,
        };
        let a = drain(Amplifier::new(VecReader::new(base()), mk(1)).unwrap());
        let b = drain(Amplifier::new(VecReader::new(base()), mk(2)).unwrap());
        assert!(
            a.iter()
                .zip(&b)
                .any(|(x, y)| x.at != y.at || x.cpu != y.cpu),
            "different seeds must produce different jitter"
        );
    }

    #[test]
    fn replica_zero_embeds_the_original_trace() {
        let cfg = AmplifyConfig {
            factor: 6,
            time_jitter: 4.0,
            demand_jitter: 0.3,
            seed: 99,
        };
        let out = drain(Amplifier::new(VecReader::new(base()), cfg).unwrap());
        let originals: Vec<&TraceEvent> = out.iter().filter(|e| e.id < 8).collect();
        for (orig, seed_event) in originals.iter().zip(base().iter()) {
            assert_eq!(orig.at, seed_event.at);
            assert_eq!(orig.cpu, seed_event.cpu);
        }
    }

    #[test]
    fn reader_errors_abort_construction() {
        struct Failing;
        impl DatasetReader for Failing {
            fn next_event(&mut self) -> Option<Result<TraceEvent, TraceError>> {
                Some(Err(TraceError::Io("boom".into())))
            }
        }
        assert!(Amplifier::new(Failing, AmplifyConfig::default()).is_err());
    }
}
