//! Bridging trace events into the discrete-event kernel.
//!
//! [`TraceArrivalSource`] adapts any [`DatasetReader`] to
//! `cpo_des::sources::ArrivalSource`: each [`TraceEvent`] becomes one
//! timestamped arrival whose request body is built by
//! `ArrivalSpec::trace_request_at` — the same constructor family the
//! Poisson path uses, so trace-fed requests mint flight-recorder
//! correlation uids and draw cost parameters exactly like synthetic ones.
//!
//! Reader errors cannot propagate through the infallible
//! `ArrivalSource` contract, so the source ends the stream at the first
//! error and parks it in [`TraceArrivalSource::error`] for the driver to
//! inspect after the run.

use crate::event::TraceError;
use crate::reader::DatasetReader;
use cpo_des::sources::{Arrival, ArrivalSource};
use cpo_des::time::SimTime;
use cpo_scenario::arrival_gen::ArrivalSpec;

/// Streams a [`DatasetReader`] as DES arrivals.
pub struct TraceArrivalSource<D: DatasetReader> {
    reader: D,
    spec: ArrivalSpec,
    seed: u64,
    index: u64,
    watermark: f64,
    error: Option<TraceError>,
}

impl<D: DatasetReader> TraceArrivalSource<D> {
    /// Wraps `reader`. The spec's cost ranges parameterise what the trace
    /// does not record (QoS guarantees, downtime and migration costs);
    /// its `rate` and `lifetime` fields are ignored — the trace dictates
    /// timing and holding.
    pub fn new(reader: D, spec: ArrivalSpec, seed: u64) -> Self {
        Self {
            reader,
            spec,
            seed,
            index: 0,
            watermark: 0.0,
            error: None,
        }
    }

    /// The first reader error, if the stream ended on one.
    pub fn error(&self) -> Option<&TraceError> {
        self.error.as_ref()
    }

    /// Arrivals emitted so far.
    pub fn emitted(&self) -> u64 {
        self.index
    }

    /// Rows the underlying reader skipped under its malformed-row policy.
    pub fn skipped_rows(&self) -> usize {
        self.reader.skipped_rows()
    }
}

impl<D: DatasetReader> ArrivalSource for TraceArrivalSource<D> {
    fn next_arrival(&mut self) -> Option<Arrival> {
        if self.error.is_some() {
            return None;
        }
        let event = match self.reader.next_event()? {
            Ok(e) => e,
            Err(e) => {
                self.error = Some(e);
                return None;
            }
        };
        let batch =
            self.spec
                .trace_request_at(self.seed, self.index, &event.demand(), event.vm_count);
        // Defensive monotone clamp: readers should already be sorted
        // (or wrapped in `Sorted`), but the kernel's event queue panics
        // on past times, so never let a regression through.
        self.watermark = self.watermark.max(event.at.max(0.0));
        let key = self.index;
        self.index += 1;
        Some(Arrival {
            at: SimTime::new(self.watermark),
            batch,
            holding: event.holding.max(0.0),
            key,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TraceEvent;
    use crate::reader::VecReader;

    fn ev(at: f64, vm_count: usize, holding: f64) -> TraceEvent {
        TraceEvent {
            at,
            id: 0,
            vm_count,
            cpu: 2.0,
            ram: 4096.0,
            disk: 40.0,
            holding,
        }
    }

    #[test]
    fn events_become_keyed_arrivals() {
        let events = vec![ev(0.0, 1, 60.0), ev(5.0, 3, 0.0), ev(5.0, 2, 30.0)];
        let mut src = TraceArrivalSource::new(VecReader::new(events), ArrivalSpec::default(), 7);
        let a = src.next_arrival().unwrap();
        assert_eq!(a.key, 0);
        assert_eq!(a.batch.vm_count(), 1);
        assert_eq!(a.holding, 60.0);
        let b = src.next_arrival().unwrap();
        assert_eq!(b.key, 1);
        assert_eq!(b.batch.vm_count(), 3, "vm_count fans out");
        assert_eq!(b.holding, 0.0, "zero-duration VMs are legal");
        assert_eq!(b.batch.vms()[0].demand, vec![2.0, 4096.0, 40.0]);
        let c = src.next_arrival().unwrap();
        assert_eq!(c.at, b.at, "simultaneous arrivals are allowed");
        assert!(src.next_arrival().is_none());
        assert_eq!(src.emitted(), 3);
        assert!(src.error().is_none());
    }

    #[test]
    fn stream_is_deterministic_under_seed() {
        let events = vec![ev(0.0, 2, 10.0), ev(1.0, 1, 20.0)];
        let mut a =
            TraceArrivalSource::new(VecReader::new(events.clone()), ArrivalSpec::default(), 9);
        let mut b = TraceArrivalSource::new(VecReader::new(events), ArrivalSpec::default(), 9);
        while let (Some(x), Some(y)) = (a.next_arrival(), b.next_arrival()) {
            assert_eq!(x.at, y.at);
            assert_eq!(x.key, y.key);
            assert_eq!(x.batch.vms(), y.batch.vms());
        }
    }

    #[test]
    fn reader_error_parks_and_ends_the_stream() {
        struct FailAfterOne {
            emitted: bool,
        }
        impl DatasetReader for FailAfterOne {
            fn next_event(&mut self) -> Option<Result<TraceEvent, TraceError>> {
                if self.emitted {
                    Some(Err(TraceError::OutOfOrder {
                        line: 0,
                        at: 1.0,
                        watermark: 2.0,
                    }))
                } else {
                    self.emitted = true;
                    Some(Ok(ev(0.0, 1, 5.0)))
                }
            }
        }
        let mut src =
            TraceArrivalSource::new(FailAfterOne { emitted: false }, ArrivalSpec::default(), 1);
        assert!(src.next_arrival().is_some());
        assert!(src.next_arrival().is_none());
        assert!(matches!(src.error(), Some(TraceError::OutOfOrder { .. })));
        assert!(src.next_arrival().is_none(), "the stream stays ended");
    }

    #[test]
    fn time_regressions_clamp_to_the_watermark() {
        let events = vec![ev(10.0, 1, 5.0), ev(8.0, 1, 5.0)];
        let mut src = TraceArrivalSource::new(VecReader::new(events), ArrivalSpec::default(), 2);
        let a = src.next_arrival().unwrap();
        let b = src.next_arrival().unwrap();
        assert!(b.at >= a.at, "the kernel never sees a past time");
    }
}
