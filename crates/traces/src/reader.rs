//! The streaming reader abstraction and shared CSV machinery.
//!
//! A [`DatasetReader`] is a fallible iterator over [`TraceEvent`]s. The
//! concrete readers ([`crate::azure::AzureReader`],
//! [`crate::huawei::HuaweiReader`]) parse CSV line by line from any
//! `BufRead` — a reusable line buffer, no per-row allocation beyond the
//! field split — so multi-gigabyte traces stream in constant memory.
//!
//! Production traces are rarely perfectly sorted. [`Sorted`] wraps any
//! reader with a bounded min-heap reorder buffer: inversions within the
//! buffer are silently repaired, inversions beyond it surface as
//! [`TraceError::OutOfOrder`] instead of silently corrupting the
//! simulation timeline.

use crate::azure::AzureReader;
use crate::event::{TraceError, TraceEvent};
use crate::huawei::HuaweiReader;
use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;
use std::io::BufRead;
use std::path::Path;

/// A stream of normalised trace events.
///
/// `next_event` returns `None` at end of stream; an `Err` item reports a
/// defect the configured policy did not absorb. Readers are free to keep
/// yielding after an error, but drivers typically stop at the first one.
pub trait DatasetReader {
    /// The next event, an error, or `None` when the stream is exhausted.
    fn next_event(&mut self) -> Option<Result<TraceEvent, TraceError>>;

    /// Rows dropped so far under [`MalformedPolicy::Skip`].
    fn skipped_rows(&self) -> usize {
        0
    }
}

/// What a reader does with a row that fails to parse.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MalformedPolicy {
    /// Drop the row, count it in [`DatasetReader::skipped_rows`], and
    /// continue — the production-ingestion default.
    Skip,
    /// Surface the row as [`TraceError::MalformedRow`].
    Fail,
}

/// Reads the next non-empty line into `buf`, bumping `line_no`. Returns
/// `None` at EOF. Shared by the concrete readers.
pub(crate) fn read_record<R: BufRead>(
    input: &mut R,
    buf: &mut String,
    line_no: &mut usize,
) -> Option<Result<(), TraceError>> {
    loop {
        buf.clear();
        match input.read_line(buf) {
            Ok(0) => return None,
            Ok(_) => {
                *line_no += 1;
                if !buf.trim().is_empty() {
                    return Some(Ok(()));
                }
            }
            Err(e) => return Some(Err(TraceError::Io(e.to_string()))),
        }
    }
}

/// Resolves a required column name to its index in the header.
pub(crate) fn require_column(header: &[&str], name: &str) -> Result<usize, TraceError> {
    header
        .iter()
        .position(|c| c.trim().eq_ignore_ascii_case(name))
        .ok_or_else(|| TraceError::MissingColumn {
            column: name.into(),
        })
}

/// Resolves an optional column name.
pub(crate) fn optional_column(header: &[&str], name: &str) -> Option<usize> {
    header
        .iter()
        .position(|c| c.trim().eq_ignore_ascii_case(name))
}

/// Parses field `idx` of a split row as a finite `f64` (row-local error
/// text; the caller owns the line number).
pub(crate) fn parse_field(fields: &[&str], idx: usize, name: &str) -> Result<f64, String> {
    let raw = fields
        .get(idx)
        .ok_or_else(|| format!("missing field {name:?} (column {idx})"))?
        .trim();
    let v: f64 = raw
        .parse()
        .map_err(|_| format!("field {name:?} is not a number: {raw:?}"))?;
    if !v.is_finite() {
        return Err(format!("field {name:?} is not finite: {raw:?}"));
    }
    Ok(v)
}

/// Heap entry ordered by `(at, id)` — `id` breaks timestamp ties
/// deterministically.
struct ByTime(TraceEvent);

impl PartialEq for ByTime {
    fn eq(&self, other: &Self) -> bool {
        self.0.at.total_cmp(&other.0.at) == Ordering::Equal && self.0.id == other.0.id
    }
}
impl Eq for ByTime {}
impl PartialOrd for ByTime {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for ByTime {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0
            .at
            .total_cmp(&other.0.at)
            .then_with(|| self.0.id.cmp(&other.0.id))
    }
}

/// A bounded reorder buffer over any reader: holds up to `window` events
/// in a min-heap and emits the earliest, so inversions up to `window`
/// positions apart come out sorted. An event that would still regress
/// behind the emitted watermark is reported as
/// [`TraceError::OutOfOrder`].
pub struct Sorted<D: DatasetReader> {
    inner: D,
    window: usize,
    heap: BinaryHeap<Reverse<ByTime>>,
    watermark: f64,
    inner_done: bool,
}

impl<D: DatasetReader> Sorted<D> {
    /// Wraps `inner` with a reorder buffer of `window` events (≥ 1).
    pub fn new(inner: D, window: usize) -> Self {
        assert!(window >= 1, "reorder window must hold at least one event");
        Self {
            inner,
            window,
            heap: BinaryHeap::with_capacity(window + 1),
            watermark: f64::NEG_INFINITY,
            inner_done: false,
        }
    }
}

impl<D: DatasetReader> DatasetReader for Sorted<D> {
    fn next_event(&mut self) -> Option<Result<TraceEvent, TraceError>> {
        while !self.inner_done && self.heap.len() < self.window {
            match self.inner.next_event() {
                Some(Ok(e)) => self.heap.push(Reverse(ByTime(e))),
                Some(Err(e)) => return Some(Err(e)),
                None => self.inner_done = true,
            }
        }
        let Reverse(ByTime(e)) = self.heap.pop()?;
        if e.at < self.watermark {
            return Some(Err(TraceError::OutOfOrder {
                line: 0,
                at: e.at,
                watermark: self.watermark,
            }));
        }
        self.watermark = e.at;
        Some(Ok(e))
    }

    fn skipped_rows(&self) -> usize {
        self.inner.skipped_rows()
    }
}

/// Opens a dataset from a `kind:path` spec (`azure:trace.csv`,
/// `huawei:trace.csv`); a bare path defaults to the Azure schema. The
/// reader is wrapped in a [`Sorted`] buffer of 256 events.
pub fn open_dataset(
    spec: &str,
    policy: MalformedPolicy,
) -> Result<Box<dyn DatasetReader>, TraceError> {
    let (kind, path) = match spec.split_once(':') {
        Some((k, p)) => (k, p),
        None => ("azure", spec),
    };
    const REORDER_WINDOW: usize = 256;
    match kind {
        "azure" => Ok(Box::new(Sorted::new(
            AzureReader::open(Path::new(path), policy)?,
            REORDER_WINDOW,
        ))),
        "huawei" => Ok(Box::new(Sorted::new(
            HuaweiReader::open(Path::new(path), policy)?,
            REORDER_WINDOW,
        ))),
        other => Err(TraceError::Io(format!(
            "unknown dataset kind {other:?} (expected azure: or huawei:)"
        ))),
    }
}

impl DatasetReader for Box<dyn DatasetReader> {
    fn next_event(&mut self) -> Option<Result<TraceEvent, TraceError>> {
        (**self).next_event()
    }

    fn skipped_rows(&self) -> usize {
        (**self).skipped_rows()
    }
}

/// An in-memory reader over a fixed event list — test scaffolding and
/// the amplifier's seed-trace replay.
pub struct VecReader {
    events: std::vec::IntoIter<TraceEvent>,
}

impl VecReader {
    /// A reader that yields `events` in order.
    pub fn new(events: Vec<TraceEvent>) -> Self {
        Self {
            events: events.into_iter(),
        }
    }
}

impl DatasetReader for VecReader {
    fn next_event(&mut self) -> Option<Result<TraceEvent, TraceError>> {
        self.events.next().map(Ok)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(at: f64, id: u64) -> TraceEvent {
        TraceEvent {
            at,
            id,
            vm_count: 1,
            cpu: 1.0,
            ram: 1024.0,
            disk: 10.0,
            holding: 60.0,
        }
    }

    #[test]
    fn sorted_repairs_inversions_within_the_window() {
        let shuffled = vec![ev(3.0, 0), ev(1.0, 1), ev(2.0, 2), ev(5.0, 3), ev(4.0, 4)];
        let mut r = Sorted::new(VecReader::new(shuffled), 4);
        let times: Vec<f64> = std::iter::from_fn(|| r.next_event())
            .map(|e| e.unwrap().at)
            .collect();
        assert_eq!(times, vec![1.0, 2.0, 3.0, 4.0, 5.0]);
    }

    #[test]
    fn sorted_flags_inversions_beyond_the_window() {
        // With a window of 2, the t=0 event arrives after t=10 and t=20
        // have already been emitted — an unrepairable inversion.
        let events = vec![ev(10.0, 0), ev(20.0, 1), ev(30.0, 2), ev(0.0, 3)];
        let mut r = Sorted::new(VecReader::new(events), 2);
        let mut saw_error = false;
        while let Some(item) = r.next_event() {
            if let Err(TraceError::OutOfOrder { at, watermark, .. }) = item {
                assert_eq!(at, 0.0);
                assert!(watermark >= 10.0);
                saw_error = true;
                break;
            }
        }
        assert!(saw_error, "the deep inversion must surface as an error");
    }

    #[test]
    fn sorted_ties_break_by_id() {
        let events = vec![ev(1.0, 2), ev(1.0, 0), ev(1.0, 1)];
        let mut r = Sorted::new(VecReader::new(events), 3);
        let ids: Vec<u64> = std::iter::from_fn(|| r.next_event())
            .map(|e| e.unwrap().id)
            .collect();
        assert_eq!(ids, vec![0, 1, 2]);
    }

    #[test]
    fn open_dataset_rejects_unknown_kinds() {
        assert!(matches!(
            open_dataset("gcp:trace.csv", MalformedPolicy::Fail),
            Err(TraceError::Io(_))
        ));
    }
}
