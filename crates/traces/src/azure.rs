//! Azure-style VM trace reader.
//!
//! Consumes the pragmatic per-VM schema of the Azure public VM traces
//! (one row per VM lifetime), streamed line by line:
//!
//! ```csv
//! vm_id,vm_created,vm_deleted,core_count,memory_gb
//! a1,0,3600,2,4
//! ```
//!
//! * `vm_created` / `vm_deleted` — seconds from the trace epoch; the
//!   holding time is `deleted − created`, clamped at zero (the public
//!   traces contain zero- and negative-duration rows from clock skew);
//! * `memory_gb` converts to the model's MiB unit;
//! * an optional `disk_gb` column supplies disk demand; absent, disk
//!   defaults to 10 GiB per core (the traces don't publish disk).
//!
//! Rows stream in file order; wrap in [`crate::reader::Sorted`] when the
//! file is not globally sorted by `vm_created`.

use crate::event::{TraceError, TraceEvent};
use crate::reader::{
    optional_column, parse_field, read_record, require_column, DatasetReader, MalformedPolicy,
};
use std::fs::File;
use std::io::{BufRead, BufReader};
use std::path::Path;

/// Default disk demand per core when the trace has no `disk_gb` column.
const DEFAULT_DISK_GB_PER_CORE: f64 = 10.0;

struct Columns {
    id: usize,
    created: usize,
    deleted: usize,
    cores: usize,
    memory: usize,
    disk: Option<usize>,
}

/// Streaming reader for Azure-style per-VM CSV traces.
pub struct AzureReader<R: BufRead> {
    input: R,
    buf: String,
    line_no: usize,
    policy: MalformedPolicy,
    skipped: usize,
    columns: Columns,
    next_id: u64,
}

impl AzureReader<BufReader<File>> {
    /// Opens a trace file from disk.
    pub fn open(path: &Path, policy: MalformedPolicy) -> Result<Self, TraceError> {
        let file =
            File::open(path).map_err(|e| TraceError::Io(format!("{}: {e}", path.display())))?;
        Self::new(BufReader::new(file), policy)
    }
}

impl<R: BufRead> AzureReader<R> {
    /// Wraps any buffered input (a file, an embedded `&str` via
    /// `Cursor`), parsing the header row eagerly.
    pub fn new(mut input: R, policy: MalformedPolicy) -> Result<Self, TraceError> {
        let mut buf = String::new();
        let mut line_no = 0usize;
        match read_record(&mut input, &mut buf, &mut line_no) {
            Some(Ok(())) => {}
            Some(Err(e)) => return Err(e),
            None => {
                return Err(TraceError::MissingColumn {
                    column: "vm_created".into(),
                })
            }
        }
        let header: Vec<&str> = buf.trim_end().split(',').collect();
        let columns = Columns {
            id: require_column(&header, "vm_id")?,
            created: require_column(&header, "vm_created")?,
            deleted: require_column(&header, "vm_deleted")?,
            cores: require_column(&header, "core_count")?,
            memory: require_column(&header, "memory_gb")?,
            disk: optional_column(&header, "disk_gb"),
        };
        Ok(Self {
            input,
            buf,
            line_no,
            policy,
            skipped: 0,
            columns,
            next_id: 0,
        })
    }

    fn parse_row(&self, fields: &[&str]) -> Result<TraceEvent, String> {
        let c = &self.columns;
        if fields.get(c.id).is_none_or(|f| f.trim().is_empty()) {
            return Err("empty vm_id".into());
        }
        let created = parse_field(fields, c.created, "vm_created")?;
        let deleted = parse_field(fields, c.deleted, "vm_deleted")?;
        let cores = parse_field(fields, c.cores, "core_count")?;
        let memory_gb = parse_field(fields, c.memory, "memory_gb")?;
        let disk = match c.disk {
            Some(idx) => parse_field(fields, idx, "disk_gb")?,
            None => cores * DEFAULT_DISK_GB_PER_CORE,
        };
        let event = TraceEvent {
            at: created,
            id: self.next_id,
            vm_count: 1,
            cpu: cores,
            ram: memory_gb * 1024.0,
            disk,
            // Zero- and negative-duration rows (clock skew) clamp to an
            // instant admit-and-depart.
            holding: (deleted - created).max(0.0),
        };
        event.validate()?;
        Ok(event)
    }
}

impl<R: BufRead> DatasetReader for AzureReader<R> {
    fn next_event(&mut self) -> Option<Result<TraceEvent, TraceError>> {
        loop {
            match read_record(&mut self.input, &mut self.buf, &mut self.line_no) {
                Some(Ok(())) => {}
                Some(Err(e)) => return Some(Err(e)),
                None => return None,
            }
            let fields: Vec<&str> = self.buf.trim_end().split(',').collect();
            match self.parse_row(&fields) {
                Ok(event) => {
                    self.next_id += 1;
                    return Some(Ok(event));
                }
                Err(reason) => match self.policy {
                    MalformedPolicy::Skip => {
                        self.skipped += 1;
                        continue;
                    }
                    MalformedPolicy::Fail => {
                        return Some(Err(TraceError::MalformedRow {
                            line: self.line_no,
                            reason,
                        }))
                    }
                },
            }
        }
    }

    fn skipped_rows(&self) -> usize {
        self.skipped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    const SAMPLE: &str = "\
vm_id,vm_created,vm_deleted,core_count,memory_gb
a,0,600,2,4
b,30,30,1,2
c,60,960,4,8
";

    fn collect(input: &str, policy: MalformedPolicy) -> Vec<Result<TraceEvent, TraceError>> {
        let mut r = AzureReader::new(Cursor::new(input), policy).unwrap();
        std::iter::from_fn(|| r.next_event()).collect()
    }

    #[test]
    fn parses_rows_and_normalises_units() {
        let events: Vec<TraceEvent> = collect(SAMPLE, MalformedPolicy::Fail)
            .into_iter()
            .map(Result::unwrap)
            .collect();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].at, 0.0);
        assert_eq!(events[0].cpu, 2.0);
        assert_eq!(events[0].ram, 4096.0, "GB converts to MiB");
        assert_eq!(events[0].disk, 20.0, "disk defaults to 10 GiB per core");
        assert_eq!(events[0].holding, 600.0);
        assert_eq!(events[1].holding, 0.0, "zero-duration VM");
        assert_eq!(events[2].id, 2, "ids are row order");
    }

    #[test]
    fn negative_duration_clamps_to_zero() {
        let input = "vm_id,vm_created,vm_deleted,core_count,memory_gb\nx,100,40,1,1\n";
        let events = collect(input, MalformedPolicy::Fail);
        assert_eq!(events[0].as_ref().unwrap().holding, 0.0);
    }

    #[test]
    fn optional_disk_column_is_honoured() {
        let input = "vm_id,vm_created,vm_deleted,core_count,memory_gb,disk_gb\nx,0,10,1,1,55\n";
        let events = collect(input, MalformedPolicy::Fail);
        assert_eq!(events[0].as_ref().unwrap().disk, 55.0);
    }

    #[test]
    fn skip_policy_counts_malformed_rows() {
        let input = "\
vm_id,vm_created,vm_deleted,core_count,memory_gb
a,0,600,2,4
b,not-a-number,600,1,2
,5,600,1,2
c,60,960,4,8
";
        let mut r = AzureReader::new(Cursor::new(input), MalformedPolicy::Skip).unwrap();
        let events: Vec<TraceEvent> = std::iter::from_fn(|| r.next_event())
            .map(Result::unwrap)
            .collect();
        assert_eq!(events.len(), 2);
        assert_eq!(r.skipped_rows(), 2);
    }

    #[test]
    fn fail_policy_reports_line_numbers() {
        let input = "vm_id,vm_created,vm_deleted,core_count,memory_gb\na,0,600,2,4\nb,oops,1,1,1\n";
        let items = collect(input, MalformedPolicy::Fail);
        assert!(items[0].is_ok());
        match &items[1] {
            Err(TraceError::MalformedRow { line, reason }) => {
                assert_eq!(*line, 3);
                assert!(reason.contains("vm_created"));
            }
            other => panic!("expected MalformedRow, got {other:?}"),
        }
    }

    #[test]
    fn missing_required_column_is_rejected_up_front() {
        let input = "vm_id,vm_created,core_count,memory_gb\n";
        match AzureReader::new(Cursor::new(input), MalformedPolicy::Fail).err() {
            Some(TraceError::MissingColumn { column }) => assert_eq!(column, "vm_deleted"),
            other => panic!("expected MissingColumn, got {other:?}"),
        }
    }
}
