//! The normalised trace-event stream all readers emit.

use std::fmt;

/// One normalised arrival parsed from a production trace: a request for
/// `vm_count` identical VMs of the given shape, arriving `at` seconds
/// after the trace epoch and holding the platform for `holding` seconds.
///
/// The struct is `Copy` and carries no heap data — a reader can stream
/// millions of these without allocating per event.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TraceEvent {
    /// Arrival time in seconds from the trace epoch.
    pub at: f64,
    /// Stable per-stream id (row order for readers; replica-qualified for
    /// the amplifier).
    pub id: u64,
    /// Number of identical VMs requested (1 for per-VM traces).
    pub vm_count: usize,
    /// vCPU cores per VM.
    pub cpu: f64,
    /// RAM per VM in MiB.
    pub ram: f64,
    /// Disk per VM in GiB.
    pub disk: f64,
    /// Holding time in seconds (zero-duration VMs are clamped to 0.0).
    pub holding: f64,
}

impl TraceEvent {
    /// The demand vector in the model's standard attribute order
    /// (vCPU, RAM MiB, disk GiB).
    #[inline]
    pub fn demand(&self) -> [f64; 3] {
        [self.cpu, self.ram, self.disk]
    }

    /// Checks the invariants every reader must uphold: finite
    /// non-negative time, demand, and holding, and at least one VM.
    pub fn validate(&self) -> Result<(), String> {
        for (name, v) in [
            ("at", self.at),
            ("cpu", self.cpu),
            ("ram", self.ram),
            ("disk", self.disk),
            ("holding", self.holding),
        ] {
            if !v.is_finite() || v < 0.0 {
                return Err(format!("{name} must be finite and >= 0, got {v}"));
            }
        }
        if self.vm_count == 0 {
            return Err("vm_count must be >= 1".into());
        }
        Ok(())
    }
}

/// Errors surfaced by dataset readers and the amplifier.
#[derive(Clone, Debug, PartialEq)]
pub enum TraceError {
    /// Underlying I/O failure (message form — keeps the error `Clone`).
    Io(String),
    /// The header lacks a required column.
    MissingColumn {
        /// The column the schema requires.
        column: String,
    },
    /// A data row failed to parse (1-based line number).
    MalformedRow {
        /// 1-based line number in the input.
        line: usize,
        /// Human-readable parse failure.
        reason: String,
    },
    /// A row's timestamp regressed behind the emitted watermark by more
    /// than the reorder buffer can absorb.
    OutOfOrder {
        /// 1-based line number (0 when unknown, e.g. post-buffer).
        line: usize,
        /// The offending timestamp.
        at: f64,
        /// The watermark already emitted.
        watermark: f64,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Io(msg) => write!(f, "trace I/O error: {msg}"),
            TraceError::MissingColumn { column } => {
                write!(f, "trace header is missing required column {column:?}")
            }
            TraceError::MalformedRow { line, reason } => {
                write!(f, "malformed trace row at line {line}: {reason}")
            }
            TraceError::OutOfOrder {
                line,
                at,
                watermark,
            } => write!(
                f,
                "out-of-order trace row (line {line}): t={at} behind watermark {watermark} \
                 beyond the reorder buffer"
            ),
        }
    }
}

impl std::error::Error for TraceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validate_accepts_sane_events() {
        let e = TraceEvent {
            at: 1.0,
            id: 0,
            vm_count: 2,
            cpu: 2.0,
            ram: 4096.0,
            disk: 40.0,
            holding: 0.0,
        };
        assert!(e.validate().is_ok(), "zero holding is legal");
        assert_eq!(e.demand(), [2.0, 4096.0, 40.0]);
    }

    #[test]
    fn validate_rejects_nan_and_empty_requests() {
        let mut e = TraceEvent {
            at: 0.0,
            id: 0,
            vm_count: 1,
            cpu: 1.0,
            ram: 1024.0,
            disk: 10.0,
            holding: 5.0,
        };
        e.cpu = f64::NAN;
        assert!(e.validate().is_err());
        e.cpu = 1.0;
        e.vm_count = 0;
        assert!(e.validate().is_err());
    }

    #[test]
    fn errors_render_with_context() {
        let e = TraceError::MalformedRow {
            line: 7,
            reason: "bad float".into(),
        };
        assert!(e.to_string().contains("line 7"));
        let o = TraceError::OutOfOrder {
            line: 3,
            at: 1.0,
            watermark: 9.0,
        };
        assert!(o.to_string().contains("watermark 9"));
    }
}
