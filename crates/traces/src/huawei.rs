//! Huawei-style VM trace reader.
//!
//! Consumes the request-oriented schema of the Huawei cloud traces (one
//! row per request, resources stated in the model's native units):
//!
//! ```csv
//! id,cpu,memory_mb,disk_gb,start_time,duration
//! 0,4,8192,80,0,1800
//! ```
//!
//! * `start_time` — seconds from the trace epoch; `duration` — holding
//!   time in seconds, clamped at zero;
//! * an optional `count` column turns a row into a multi-VM request of
//!   `count` identical VMs (absent, every request is a single VM).
//!
//! Rows stream in file order; wrap in [`crate::reader::Sorted`] when the
//! file is not globally sorted by `start_time`.

use crate::event::{TraceError, TraceEvent};
use crate::reader::{
    optional_column, parse_field, read_record, require_column, DatasetReader, MalformedPolicy,
};
use std::fs::File;
use std::io::{BufRead, BufReader};
use std::path::Path;

struct Columns {
    cpu: usize,
    memory: usize,
    disk: usize,
    start: usize,
    duration: usize,
    count: Option<usize>,
}

/// Streaming reader for Huawei-style per-request CSV traces.
pub struct HuaweiReader<R: BufRead> {
    input: R,
    buf: String,
    line_no: usize,
    policy: MalformedPolicy,
    skipped: usize,
    columns: Columns,
    next_id: u64,
}

impl HuaweiReader<BufReader<File>> {
    /// Opens a trace file from disk.
    pub fn open(path: &Path, policy: MalformedPolicy) -> Result<Self, TraceError> {
        let file =
            File::open(path).map_err(|e| TraceError::Io(format!("{}: {e}", path.display())))?;
        Self::new(BufReader::new(file), policy)
    }
}

impl<R: BufRead> HuaweiReader<R> {
    /// Wraps any buffered input, parsing the header row eagerly.
    pub fn new(mut input: R, policy: MalformedPolicy) -> Result<Self, TraceError> {
        let mut buf = String::new();
        let mut line_no = 0usize;
        match read_record(&mut input, &mut buf, &mut line_no) {
            Some(Ok(())) => {}
            Some(Err(e)) => return Err(e),
            None => {
                return Err(TraceError::MissingColumn {
                    column: "start_time".into(),
                })
            }
        }
        let header: Vec<&str> = buf.trim_end().split(',').collect();
        require_column(&header, "id")?;
        let columns = Columns {
            cpu: require_column(&header, "cpu")?,
            memory: require_column(&header, "memory_mb")?,
            disk: require_column(&header, "disk_gb")?,
            start: require_column(&header, "start_time")?,
            duration: require_column(&header, "duration")?,
            count: optional_column(&header, "count"),
        };
        Ok(Self {
            input,
            buf,
            line_no,
            policy,
            skipped: 0,
            columns,
            next_id: 0,
        })
    }

    fn parse_row(&self, fields: &[&str]) -> Result<TraceEvent, String> {
        let c = &self.columns;
        let vm_count = match c.count {
            Some(idx) => {
                let n = parse_field(fields, idx, "count")?;
                if n < 1.0 || n.fract() != 0.0 {
                    return Err(format!("count must be a positive integer, got {n}"));
                }
                n as usize
            }
            None => 1,
        };
        let event = TraceEvent {
            at: parse_field(fields, c.start, "start_time")?,
            id: self.next_id,
            vm_count,
            cpu: parse_field(fields, c.cpu, "cpu")?,
            ram: parse_field(fields, c.memory, "memory_mb")?,
            disk: parse_field(fields, c.disk, "disk_gb")?,
            holding: parse_field(fields, c.duration, "duration")?.max(0.0),
        };
        event.validate()?;
        Ok(event)
    }
}

impl<R: BufRead> DatasetReader for HuaweiReader<R> {
    fn next_event(&mut self) -> Option<Result<TraceEvent, TraceError>> {
        loop {
            match read_record(&mut self.input, &mut self.buf, &mut self.line_no) {
                Some(Ok(())) => {}
                Some(Err(e)) => return Some(Err(e)),
                None => return None,
            }
            let fields: Vec<&str> = self.buf.trim_end().split(',').collect();
            match self.parse_row(&fields) {
                Ok(event) => {
                    self.next_id += 1;
                    return Some(Ok(event));
                }
                Err(reason) => match self.policy {
                    MalformedPolicy::Skip => {
                        self.skipped += 1;
                        continue;
                    }
                    MalformedPolicy::Fail => {
                        return Some(Err(TraceError::MalformedRow {
                            line: self.line_no,
                            reason,
                        }))
                    }
                },
            }
        }
    }

    fn skipped_rows(&self) -> usize {
        self.skipped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn parses_native_units_and_counts() {
        let input = "\
id,cpu,memory_mb,disk_gb,start_time,duration,count
0,4,8192,80,0,1800,1
1,1,1024,10,30,600,3
";
        let mut r = HuaweiReader::new(Cursor::new(input), MalformedPolicy::Fail).unwrap();
        let events: Vec<TraceEvent> = std::iter::from_fn(|| r.next_event())
            .map(Result::unwrap)
            .collect();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].ram, 8192.0, "memory is already MiB");
        assert_eq!(events[0].vm_count, 1);
        assert_eq!(events[1].vm_count, 3, "count column fans out VMs");
        assert_eq!(events[1].holding, 600.0);
    }

    #[test]
    fn count_column_rejects_fractions_and_zero() {
        let input = "id,cpu,memory_mb,disk_gb,start_time,duration,count\n0,1,1024,10,0,60,0\n";
        let mut r = HuaweiReader::new(Cursor::new(input), MalformedPolicy::Fail).unwrap();
        assert!(matches!(
            r.next_event(),
            Some(Err(TraceError::MalformedRow { .. }))
        ));
    }

    #[test]
    fn missing_column_reports_its_name() {
        let input = "id,cpu,memory_mb,start_time,duration\n";
        match HuaweiReader::new(Cursor::new(input), MalformedPolicy::Fail).err() {
            Some(TraceError::MissingColumn { column }) => assert_eq!(column, "disk_gb"),
            other => panic!("expected MissingColumn, got {other:?}"),
        }
    }

    #[test]
    fn negative_duration_clamps() {
        let input = "id,cpu,memory_mb,disk_gb,start_time,duration\n0,1,1024,10,5,-3\n";
        let mut r = HuaweiReader::new(Cursor::new(input), MalformedPolicy::Fail).unwrap();
        assert_eq!(r.next_event().unwrap().unwrap().holding, 0.0);
    }
}
