//! # cpo-traces — streaming production-trace ingestion
//!
//! The scenario generator synthesises paper-scale workloads (tens of
//! servers, hundreds of VMs); nothing there exercises the repo's
//! production-scale north star. This crate closes the gap the way the
//! related simulation literature does (DISSECT-CF, dslab-iaas): replay
//! normalised **production VM traces** against a simulated fleet.
//!
//! Three layers, each streaming — no whole-file materialisation:
//!
//! * [`reader`] — the [`DatasetReader`](reader::DatasetReader) trait and
//!   CSV readers for Azure-style ([`azure::AzureReader`]) and
//!   Huawei-style ([`huawei::HuaweiReader`]) trace schemas, with a
//!   configurable malformed-row policy and a bounded reorder buffer
//!   ([`reader::Sorted`]) for slightly out-of-order rows;
//! * [`amplify`] — a deterministic synthetic amplifier that interleaves
//!   `factor` jittered replicas of a seed trace on the same timeline,
//!   scaling a few dozen committed rows up to millions of arrivals;
//! * [`source`] — [`source::TraceArrivalSource`], which turns the
//!   normalised [`event::TraceEvent`] stream into `cpo-des` arrivals via
//!   `ArrivalSpec::trace_request_at`, so trace-fed requests mint
//!   flight-recorder correlation uids exactly like Poisson arrivals.

pub mod amplify;
pub mod azure;
pub mod event;
pub mod huawei;
pub mod reader;
pub mod source;

/// Everything a trace-replay driver needs.
pub mod prelude {
    pub use crate::amplify::{Amplifier, AmplifyConfig};
    pub use crate::azure::AzureReader;
    pub use crate::event::{TraceError, TraceEvent};
    pub use crate::huawei::HuaweiReader;
    pub use crate::reader::{open_dataset, DatasetReader, MalformedPolicy, Sorted, VecReader};
    pub use crate::source::TraceArrivalSource;
}
